# Empty dependencies file for firmware_unit_test.
# This may be replaced when dependencies are built.
