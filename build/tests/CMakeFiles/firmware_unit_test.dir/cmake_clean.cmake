file(REMOVE_RECURSE
  "CMakeFiles/firmware_unit_test.dir/firmware_unit_test.cpp.o"
  "CMakeFiles/firmware_unit_test.dir/firmware_unit_test.cpp.o.d"
  "firmware_unit_test"
  "firmware_unit_test.pdb"
  "firmware_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
