# Empty compiler generated dependencies file for tw_knobs_test.
# This may be replaced when dependencies are built.
