file(REMOVE_RECURSE
  "CMakeFiles/tw_knobs_test.dir/tw_knobs_test.cpp.o"
  "CMakeFiles/tw_knobs_test.dir/tw_knobs_test.cpp.o.d"
  "tw_knobs_test"
  "tw_knobs_test.pdb"
  "tw_knobs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_knobs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
