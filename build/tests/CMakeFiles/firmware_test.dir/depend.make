# Empty dependencies file for firmware_test.
# This may be replaced when dependencies are built.
