file(REMOVE_RECURSE
  "CMakeFiles/firmware_test.dir/firmware_test.cpp.o"
  "CMakeFiles/firmware_test.dir/firmware_test.cpp.o.d"
  "firmware_test"
  "firmware_test.pdb"
  "firmware_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
