# Empty dependencies file for gvt_test.
# This may be replaced when dependencies are built.
