# Empty compiler generated dependencies file for gvt_test.
# This may be replaced when dependencies are built.
