file(REMOVE_RECURSE
  "CMakeFiles/gvt_test.dir/gvt_test.cpp.o"
  "CMakeFiles/gvt_test.dir/gvt_test.cpp.o.d"
  "gvt_test"
  "gvt_test.pdb"
  "gvt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
