# Empty dependencies file for gvt_unit_test.
# This may be replaced when dependencies are built.
