file(REMOVE_RECURSE
  "CMakeFiles/gvt_unit_test.dir/gvt_unit_test.cpp.o"
  "CMakeFiles/gvt_unit_test.dir/gvt_unit_test.cpp.o.d"
  "gvt_unit_test"
  "gvt_unit_test.pdb"
  "gvt_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvt_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
