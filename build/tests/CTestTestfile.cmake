# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/gvt_test[1]_include.cmake")
include("/root/repo/build/tests/firmware_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/tw_knobs_test[1]_include.cmake")
include("/root/repo/build/tests/firmware_unit_test[1]_include.cmake")
include("/root/repo/build/tests/gvt_unit_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
