# Empty dependencies file for nicwarp_warped.
# This may be replaced when dependencies are built.
