file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_warped.dir/gvt_mattern.cpp.o"
  "CMakeFiles/nicwarp_warped.dir/gvt_mattern.cpp.o.d"
  "CMakeFiles/nicwarp_warped.dir/gvt_nic.cpp.o"
  "CMakeFiles/nicwarp_warped.dir/gvt_nic.cpp.o.d"
  "CMakeFiles/nicwarp_warped.dir/gvt_pgvt.cpp.o"
  "CMakeFiles/nicwarp_warped.dir/gvt_pgvt.cpp.o.d"
  "CMakeFiles/nicwarp_warped.dir/kernel.cpp.o"
  "CMakeFiles/nicwarp_warped.dir/kernel.cpp.o.d"
  "CMakeFiles/nicwarp_warped.dir/lp.cpp.o"
  "CMakeFiles/nicwarp_warped.dir/lp.cpp.o.d"
  "libnicwarp_warped.a"
  "libnicwarp_warped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_warped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
