file(REMOVE_RECURSE
  "libnicwarp_warped.a"
)
