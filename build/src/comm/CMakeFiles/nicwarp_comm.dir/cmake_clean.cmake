file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_comm.dir/host_comm.cpp.o"
  "CMakeFiles/nicwarp_comm.dir/host_comm.cpp.o.d"
  "libnicwarp_comm.a"
  "libnicwarp_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
