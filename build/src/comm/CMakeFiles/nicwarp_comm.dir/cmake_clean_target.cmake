file(REMOVE_RECURSE
  "libnicwarp_comm.a"
)
