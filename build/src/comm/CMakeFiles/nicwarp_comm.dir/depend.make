# Empty dependencies file for nicwarp_comm.
# This may be replaced when dependencies are built.
