file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_models.dir/phold.cpp.o"
  "CMakeFiles/nicwarp_models.dir/phold.cpp.o.d"
  "CMakeFiles/nicwarp_models.dir/police.cpp.o"
  "CMakeFiles/nicwarp_models.dir/police.cpp.o.d"
  "CMakeFiles/nicwarp_models.dir/raid.cpp.o"
  "CMakeFiles/nicwarp_models.dir/raid.cpp.o.d"
  "libnicwarp_models.a"
  "libnicwarp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
