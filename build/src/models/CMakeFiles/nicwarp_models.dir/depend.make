# Empty dependencies file for nicwarp_models.
# This may be replaced when dependencies are built.
