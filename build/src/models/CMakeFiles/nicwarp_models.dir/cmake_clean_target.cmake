file(REMOVE_RECURSE
  "libnicwarp_models.a"
)
