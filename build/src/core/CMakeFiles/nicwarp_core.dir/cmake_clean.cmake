file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_core.dir/config.cpp.o"
  "CMakeFiles/nicwarp_core.dir/config.cpp.o.d"
  "CMakeFiles/nicwarp_core.dir/log.cpp.o"
  "CMakeFiles/nicwarp_core.dir/log.cpp.o.d"
  "CMakeFiles/nicwarp_core.dir/rng.cpp.o"
  "CMakeFiles/nicwarp_core.dir/rng.cpp.o.d"
  "CMakeFiles/nicwarp_core.dir/stats.cpp.o"
  "CMakeFiles/nicwarp_core.dir/stats.cpp.o.d"
  "libnicwarp_core.a"
  "libnicwarp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
