# Empty dependencies file for nicwarp_core.
# This may be replaced when dependencies are built.
