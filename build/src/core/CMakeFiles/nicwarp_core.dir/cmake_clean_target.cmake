file(REMOVE_RECURSE
  "libnicwarp_core.a"
)
