file(REMOVE_RECURSE
  "libnicwarp_hw.a"
)
