
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cluster.cpp" "src/hw/CMakeFiles/nicwarp_hw.dir/cluster.cpp.o" "gcc" "src/hw/CMakeFiles/nicwarp_hw.dir/cluster.cpp.o.d"
  "/root/repo/src/hw/cost_model.cpp" "src/hw/CMakeFiles/nicwarp_hw.dir/cost_model.cpp.o" "gcc" "src/hw/CMakeFiles/nicwarp_hw.dir/cost_model.cpp.o.d"
  "/root/repo/src/hw/network.cpp" "src/hw/CMakeFiles/nicwarp_hw.dir/network.cpp.o" "gcc" "src/hw/CMakeFiles/nicwarp_hw.dir/network.cpp.o.d"
  "/root/repo/src/hw/nic.cpp" "src/hw/CMakeFiles/nicwarp_hw.dir/nic.cpp.o" "gcc" "src/hw/CMakeFiles/nicwarp_hw.dir/nic.cpp.o.d"
  "/root/repo/src/hw/node.cpp" "src/hw/CMakeFiles/nicwarp_hw.dir/node.cpp.o" "gcc" "src/hw/CMakeFiles/nicwarp_hw.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/nicwarp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nicwarp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
