# Empty dependencies file for nicwarp_hw.
# This may be replaced when dependencies are built.
