file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_hw.dir/cluster.cpp.o"
  "CMakeFiles/nicwarp_hw.dir/cluster.cpp.o.d"
  "CMakeFiles/nicwarp_hw.dir/cost_model.cpp.o"
  "CMakeFiles/nicwarp_hw.dir/cost_model.cpp.o.d"
  "CMakeFiles/nicwarp_hw.dir/network.cpp.o"
  "CMakeFiles/nicwarp_hw.dir/network.cpp.o.d"
  "CMakeFiles/nicwarp_hw.dir/nic.cpp.o"
  "CMakeFiles/nicwarp_hw.dir/nic.cpp.o.d"
  "CMakeFiles/nicwarp_hw.dir/node.cpp.o"
  "CMakeFiles/nicwarp_hw.dir/node.cpp.o.d"
  "libnicwarp_hw.a"
  "libnicwarp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
