# Empty dependencies file for nicwarp_firmware.
# This may be replaced when dependencies are built.
