file(REMOVE_RECURSE
  "libnicwarp_firmware.a"
)
