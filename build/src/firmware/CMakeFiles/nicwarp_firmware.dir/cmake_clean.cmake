file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_firmware.dir/cancel_firmware.cpp.o"
  "CMakeFiles/nicwarp_firmware.dir/cancel_firmware.cpp.o.d"
  "CMakeFiles/nicwarp_firmware.dir/combined_firmware.cpp.o"
  "CMakeFiles/nicwarp_firmware.dir/combined_firmware.cpp.o.d"
  "CMakeFiles/nicwarp_firmware.dir/gvt_firmware.cpp.o"
  "CMakeFiles/nicwarp_firmware.dir/gvt_firmware.cpp.o.d"
  "libnicwarp_firmware.a"
  "libnicwarp_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
