
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/firmware/cancel_firmware.cpp" "src/firmware/CMakeFiles/nicwarp_firmware.dir/cancel_firmware.cpp.o" "gcc" "src/firmware/CMakeFiles/nicwarp_firmware.dir/cancel_firmware.cpp.o.d"
  "/root/repo/src/firmware/combined_firmware.cpp" "src/firmware/CMakeFiles/nicwarp_firmware.dir/combined_firmware.cpp.o" "gcc" "src/firmware/CMakeFiles/nicwarp_firmware.dir/combined_firmware.cpp.o.d"
  "/root/repo/src/firmware/gvt_firmware.cpp" "src/firmware/CMakeFiles/nicwarp_firmware.dir/gvt_firmware.cpp.o" "gcc" "src/firmware/CMakeFiles/nicwarp_firmware.dir/gvt_firmware.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/nicwarp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nicwarp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nicwarp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
