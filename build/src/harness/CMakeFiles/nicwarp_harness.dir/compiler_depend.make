# Empty compiler generated dependencies file for nicwarp_harness.
# This may be replaced when dependencies are built.
