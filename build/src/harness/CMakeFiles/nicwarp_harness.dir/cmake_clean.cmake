file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_harness.dir/experiment.cpp.o"
  "CMakeFiles/nicwarp_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/nicwarp_harness.dir/table.cpp.o"
  "CMakeFiles/nicwarp_harness.dir/table.cpp.o.d"
  "libnicwarp_harness.a"
  "libnicwarp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
