file(REMOVE_RECURSE
  "libnicwarp_harness.a"
)
