file(REMOVE_RECURSE
  "libnicwarp_sim.a"
)
