# Empty dependencies file for nicwarp_sim.
# This may be replaced when dependencies are built.
