file(REMOVE_RECURSE
  "CMakeFiles/nicwarp_sim.dir/engine.cpp.o"
  "CMakeFiles/nicwarp_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nicwarp_sim.dir/server.cpp.o"
  "CMakeFiles/nicwarp_sim.dir/server.cpp.o.d"
  "libnicwarp_sim.a"
  "libnicwarp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nicwarp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
