file(REMOVE_RECURSE
  "CMakeFiles/custom_firmware_tour.dir/custom_firmware_tour.cpp.o"
  "CMakeFiles/custom_firmware_tour.dir/custom_firmware_tour.cpp.o.d"
  "custom_firmware_tour"
  "custom_firmware_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_firmware_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
