# Empty compiler generated dependencies file for custom_firmware_tour.
# This may be replaced when dependencies are built.
