file(REMOVE_RECURSE
  "CMakeFiles/raid_gvt_comparison.dir/raid_gvt_comparison.cpp.o"
  "CMakeFiles/raid_gvt_comparison.dir/raid_gvt_comparison.cpp.o.d"
  "raid_gvt_comparison"
  "raid_gvt_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raid_gvt_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
