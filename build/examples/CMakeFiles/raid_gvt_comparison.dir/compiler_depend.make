# Empty compiler generated dependencies file for raid_gvt_comparison.
# This may be replaced when dependencies are built.
