file(REMOVE_RECURSE
  "CMakeFiles/police_early_cancellation.dir/police_early_cancellation.cpp.o"
  "CMakeFiles/police_early_cancellation.dir/police_early_cancellation.cpp.o.d"
  "police_early_cancellation"
  "police_early_cancellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/police_early_cancellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
