# Empty dependencies file for police_early_cancellation.
# This may be replaced when dependencies are built.
