# Empty compiler generated dependencies file for bench_abl_nic_speed.
# This may be replaced when dependencies are built.
