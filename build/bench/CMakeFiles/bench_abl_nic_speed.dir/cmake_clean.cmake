file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_nic_speed.dir/bench_abl_nic_speed.cpp.o"
  "CMakeFiles/bench_abl_nic_speed.dir/bench_abl_nic_speed.cpp.o.d"
  "bench_abl_nic_speed"
  "bench_abl_nic_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_nic_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
