file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_lazy_cancel.dir/bench_abl_lazy_cancel.cpp.o"
  "CMakeFiles/bench_abl_lazy_cancel.dir/bench_abl_lazy_cancel.cpp.o.d"
  "bench_abl_lazy_cancel"
  "bench_abl_lazy_cancel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_lazy_cancel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
