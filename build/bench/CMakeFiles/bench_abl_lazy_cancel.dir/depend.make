# Empty dependencies file for bench_abl_lazy_cancel.
# This may be replaced when dependencies are built.
