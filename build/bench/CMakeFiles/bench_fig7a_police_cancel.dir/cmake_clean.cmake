file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_police_cancel.dir/bench_fig7a_police_cancel.cpp.o"
  "CMakeFiles/bench_fig7a_police_cancel.dir/bench_fig7a_police_cancel.cpp.o.d"
  "bench_fig7a_police_cancel"
  "bench_fig7a_police_cancel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_police_cancel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
