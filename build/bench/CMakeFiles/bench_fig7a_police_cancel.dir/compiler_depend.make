# Empty compiler generated dependencies file for bench_fig7a_police_cancel.
# This may be replaced when dependencies are built.
