# Empty compiler generated dependencies file for bench_abl_pgvt.
# This may be replaced when dependencies are built.
