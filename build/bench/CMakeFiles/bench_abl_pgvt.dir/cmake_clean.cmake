file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_pgvt.dir/bench_abl_pgvt.cpp.o"
  "CMakeFiles/bench_abl_pgvt.dir/bench_abl_pgvt.cpp.o.d"
  "bench_abl_pgvt"
  "bench_abl_pgvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_pgvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
