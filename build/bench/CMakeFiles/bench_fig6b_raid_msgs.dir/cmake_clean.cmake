file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6b_raid_msgs.dir/bench_fig6b_raid_msgs.cpp.o"
  "CMakeFiles/bench_fig6b_raid_msgs.dir/bench_fig6b_raid_msgs.cpp.o.d"
  "bench_fig6b_raid_msgs"
  "bench_fig6b_raid_msgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_raid_msgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
