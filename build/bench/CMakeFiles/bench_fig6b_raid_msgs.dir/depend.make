# Empty dependencies file for bench_fig6b_raid_msgs.
# This may be replaced when dependencies are built.
