# Empty compiler generated dependencies file for bench_fig6a_raid_cancel.
# This may be replaced when dependencies are built.
