file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_raid_cancel.dir/bench_fig6a_raid_cancel.cpp.o"
  "CMakeFiles/bench_fig6a_raid_cancel.dir/bench_fig6a_raid_cancel.cpp.o.d"
  "bench_fig6a_raid_cancel"
  "bench_fig6a_raid_cancel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_raid_cancel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
