file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_state_saving.dir/bench_abl_state_saving.cpp.o"
  "CMakeFiles/bench_abl_state_saving.dir/bench_abl_state_saving.cpp.o.d"
  "bench_abl_state_saving"
  "bench_abl_state_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_state_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
