# Empty compiler generated dependencies file for bench_abl_state_saving.
# This may be replaced when dependencies are built.
