file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_police_dropped.dir/bench_fig7b_police_dropped.cpp.o"
  "CMakeFiles/bench_fig7b_police_dropped.dir/bench_fig7b_police_dropped.cpp.o.d"
  "bench_fig7b_police_dropped"
  "bench_fig7b_police_dropped.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_police_dropped.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
