# Empty dependencies file for bench_fig7b_police_dropped.
# This may be replaced when dependencies are built.
