# Empty compiler generated dependencies file for bench_fig8_police_msgcount.
# This may be replaced when dependencies are built.
