file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_police_msgcount.dir/bench_fig8_police_msgcount.cpp.o"
  "CMakeFiles/bench_fig8_police_msgcount.dir/bench_fig8_police_msgcount.cpp.o.d"
  "bench_fig8_police_msgcount"
  "bench_fig8_police_msgcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_police_msgcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
