file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_piggyback.dir/bench_abl_piggyback.cpp.o"
  "CMakeFiles/bench_abl_piggyback.dir/bench_abl_piggyback.cpp.o.d"
  "bench_abl_piggyback"
  "bench_abl_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
