# Empty compiler generated dependencies file for bench_abl_piggyback.
# This may be replaced when dependencies are built.
