# Empty dependencies file for bench_fig4_raid_gvt.
# This may be replaced when dependencies are built.
