# Empty compiler generated dependencies file for bench_fig5a_police_gvt.
# This may be replaced when dependencies are built.
