file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_police_gvt.dir/bench_fig5a_police_gvt.cpp.o"
  "CMakeFiles/bench_fig5a_police_gvt.dir/bench_fig5a_police_gvt.cpp.o.d"
  "bench_fig5a_police_gvt"
  "bench_fig5a_police_gvt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_police_gvt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
