# Empty compiler generated dependencies file for bench_fig5b_police_rounds.
# This may be replaced when dependencies are built.
