file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_police_rounds.dir/bench_fig5b_police_rounds.cpp.o"
  "CMakeFiles/bench_fig5b_police_rounds.dir/bench_fig5b_police_rounds.cpp.o.d"
  "bench_fig5b_police_rounds"
  "bench_fig5b_police_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_police_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
