
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5b_police_rounds.cpp" "bench/CMakeFiles/bench_fig5b_police_rounds.dir/bench_fig5b_police_rounds.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5b_police_rounds.dir/bench_fig5b_police_rounds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/nicwarp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/nicwarp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/warped/CMakeFiles/nicwarp_warped.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/nicwarp_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/nicwarp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nicwarp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nicwarp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nicwarp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
