file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_credit.dir/bench_abl_credit.cpp.o"
  "CMakeFiles/bench_abl_credit.dir/bench_abl_credit.cpp.o.d"
  "bench_abl_credit"
  "bench_abl_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
