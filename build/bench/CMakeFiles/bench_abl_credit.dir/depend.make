# Empty dependencies file for bench_abl_credit.
# This may be replaced when dependencies are built.
