// Shared infrastructure for the figure-reproduction benchmarks.
//
// Each bench binary reproduces one table/figure from the paper's §4: it runs
// the sweep (points in parallel across cores; each run is single-threaded
// and deterministic), registers the measured simulated times with
// google-benchmark for uniform reporting, and prints the figure's rows as an
// aligned table plus CSV.
//
// The testbed presets live in presets.hpp (shared with the regression
// runner, bench_runner).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "presets.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace nicwarp::bench {

// Turns on tail-latency histogram recording for every sweep point. Purely
// observational: signatures and all sim-derived metrics are unchanged.
inline void enable_latency(std::vector<harness::ExperimentConfig>& cfgs) {
  for (auto& cfg : cfgs) cfg.latency.enabled = true;
}

// Shared tail-latency table: register_point appends one row per successful
// sweep point whose run recorded latency; finish() prints it when non-empty.
inline harness::Table& latency_table() {
  static harness::Table t = [] {
    harness::Table lt("Tail latency (modeled us) — message delivery / event commit");
    lt.set_header({"point", "msg p50", "msg p99", "msg p99.9", "commit p50",
                   "commit p99", "commit p99.9"});
    return lt;
  }();
  return t;
}

inline std::size_t& latency_rows() {
  static std::size_t n = 0;
  return n;
}

// Runs all configs in parallel and returns the results in order.
inline std::vector<harness::ExperimentResult> run_sweep(
    const std::vector<harness::ExperimentConfig>& cfgs) {
  std::fprintf(stderr, "[bench] running %zu experiments...\n", cfgs.size());
  auto results = harness::run_parallel(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].failed()) {
      std::fprintf(stderr, "[bench] WARNING: point %zu failed: %s\n", i,
                   results[i].error.c_str());
    } else if (!results[i].completed) {
      std::fprintf(stderr, "[bench] WARNING: point %zu hit the simulated-time cap\n", i);
    }
  }
  return results;
}

// When any of the sweep points backing one table row failed, adds an error
// row (label cells + combined reasons in the trailing "error" column) and
// returns true so the caller skips its metric row — a failed run carries no
// metrics, and folding its zero-initialized counters into a figure would
// silently corrupt the reproduction.
inline bool add_error_rows(harness::Table& t, std::vector<std::string> label_cells,
                           std::initializer_list<const harness::ExperimentResult*> rs) {
  std::string err;
  for (const harness::ExperimentResult* r : rs) {
    if (!r->failed()) continue;
    if (!err.empty()) err += "; ";
    err += r->error;
  }
  if (err.empty()) return false;
  t.add_error_row(std::move(label_cells), err);
  return true;
}

// Registers one google-benchmark entry per sweep point that reports the
// already-measured simulated seconds (manual time) and key counters.
// Failed points are skipped: their counters are meaningless zeros.
inline void register_point(const std::string& name, const harness::ExperimentResult& r) {
  if (r.failed()) {
    std::fprintf(stderr, "[bench] skipping %s: %s\n", name.c_str(), r.error.c_str());
    return;
  }
  benchmark::RegisterBenchmark(name.c_str(),
                               [r](benchmark::State& state) {
                                 for (auto _ : state) {
                                   state.SetIterationTime(r.sim_seconds);
                                 }
                                 state.counters["sim_seconds"] = r.sim_seconds;
                                 state.counters["committed"] =
                                     static_cast<double>(r.committed_events);
                                 state.counters["rollbacks"] =
                                     static_cast<double>(r.rollbacks);
                                 state.counters["wire_packets"] =
                                     static_cast<double>(r.wire_packets);
                                 state.counters["gvt_rounds"] =
                                     static_cast<double>(r.gvt_rounds);
                                 state.counters["nic_drops"] =
                                     static_cast<double>(r.dropped_by_nic);
                                 if (r.latency.enabled) {
                                   state.counters["msg_p99_us"] = r.latency.delivery_us.p99;
                                   state.counters["msg_p999_us"] =
                                       r.latency.delivery_us.p999;
                                   state.counters["commit_p99_us"] = r.latency.commit_us.p99;
                                 }
                               })
      ->UseManualTime()
      ->Iterations(1);
  if (r.latency.enabled) {
    latency_table().add_row({name, harness::Table::num(r.latency.delivery_us.p50, 2),
                             harness::Table::num(r.latency.delivery_us.p99, 2),
                             harness::Table::num(r.latency.delivery_us.p999, 2),
                             harness::Table::num(r.latency.commit_us.p50, 2),
                             harness::Table::num(r.latency.commit_us.p99, 2),
                             harness::Table::num(r.latency.commit_us.p999, 2)});
    ++latency_rows();
  }
}

inline int finish(harness::Table& table, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n");
  table.print();
  std::printf("\nCSV:\n%s\n", table.to_csv().c_str());
  if (latency_rows() > 0) {
    latency_table().print();
    std::printf("\nCSV:\n%s\n", latency_table().to_csv().c_str());
  }
  return 0;
}

}  // namespace nicwarp::bench
