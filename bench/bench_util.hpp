// Shared infrastructure for the figure-reproduction benchmarks.
//
// Each bench binary reproduces one table/figure from the paper's §4: it runs
// the sweep (points in parallel across cores; each run is single-threaded
// and deterministic), registers the measured simulated times with
// google-benchmark for uniform reporting, and prints the figure's rows as an
// aligned table plus CSV.
//
// Two calibrated testbed presets (see EXPERIMENTS.md):
//  * gvt_preset    — the configuration for the GVT figures (Figs. 4, 5a, 5b);
//  * cancel_preset — the congestion-point configuration for the early-
//                    cancellation figures (Figs. 6, 7, 8), where the paper's
//                    system demonstrably operated (e.g. RAID's ~350 messages
//                    per disk request in Fig. 6b).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace nicwarp::bench {

inline harness::ExperimentConfig gvt_preset(harness::ModelKind model) {
  harness::ExperimentConfig cfg;
  cfg.model = model;
  cfg.nodes = 8;
  cfg.seed = 23;
  cfg.rollback_scope = warped::RollbackScope::kLp;
  cfg.max_sim_seconds = 600;
  if (model == harness::ModelKind::kRaid) {
    cfg.raid.sources = 10;  // paper: "10 processes ... 8 forks ... 8 disks"
    cfg.raid.forks = 8;
    cfg.raid.disks = 8;
    cfg.raid.total_requests = 8000;
    cfg.cost.host_event_exec_us = 18.0;
  } else if (model == harness::ModelKind::kPolice) {
    cfg.police.stations = 900;
    cfg.cost.host_event_exec_us = 8.0;  // POLICE is fine-grained
  }
  return cfg;
}

inline harness::ExperimentConfig cancel_preset(harness::ModelKind model) {
  harness::ExperimentConfig cfg = gvt_preset(model);
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 200;
  // Operate the testbed at its congestion point: the LANai4-class NIC is
  // the bottleneck and the baseline is rollback-bound, which is the regime
  // where in-place cancellation pays (and where the paper's message counts
  // place its system).
  cfg.cost.nic_per_packet_us = 11.25;
  if (model == harness::ModelKind::kRaid) {
    cfg.raid.sources = 16;  // paper §4.2: "16 source processes"
  }
  return cfg;
}

// Runs all configs in parallel and returns the results in order.
inline std::vector<harness::ExperimentResult> run_sweep(
    const std::vector<harness::ExperimentConfig>& cfgs) {
  std::fprintf(stderr, "[bench] running %zu experiments...\n", cfgs.size());
  auto results = harness::run_parallel(cfgs);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].completed) {
      std::fprintf(stderr, "[bench] WARNING: point %zu hit the simulated-time cap\n", i);
    }
  }
  return results;
}

// Registers one google-benchmark entry per sweep point that reports the
// already-measured simulated seconds (manual time) and key counters.
inline void register_point(const std::string& name, const harness::ExperimentResult& r) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [r](benchmark::State& state) {
                                 for (auto _ : state) {
                                   state.SetIterationTime(r.sim_seconds);
                                 }
                                 state.counters["sim_seconds"] = r.sim_seconds;
                                 state.counters["committed"] =
                                     static_cast<double>(r.committed_events);
                                 state.counters["rollbacks"] =
                                     static_cast<double>(r.rollbacks);
                                 state.counters["wire_packets"] =
                                     static_cast<double>(r.wire_packets);
                                 state.counters["gvt_rounds"] =
                                     static_cast<double>(r.gvt_rounds);
                                 state.counters["nic_drops"] =
                                     static_cast<double>(r.dropped_by_nic);
                               })
      ->UseManualTime()
      ->Iterations(1);
}

inline int finish(harness::Table& table, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("\n");
  table.print();
  std::printf("\nCSV:\n%s\n", table.to_csv().c_str());
  return 0;
}

}  // namespace nicwarp::bench
