// Figure 6(a): "RAID Performance with NIC Direct Cancelation" — percentage
// runtime improvement from early message cancellation versus the number of
// disk requests.
//
// Expected shape (paper): a modest improvement (<5%) — RAID's request/reply
// chains drain the send ring quickly, so few messages can be cancelled in
// place. Request counts are scaled 1:10 from the paper's 50k–400k so each
// point completes in seconds on a laptop; the x-axis *shape* (flat, small
// improvement across sizes) is what is being reproduced.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> requests = {5000, 10000, 20000, 40000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t r : requests) {
    for (bool cancel : {false, true}) {
      harness::ExperimentConfig cfg = bench::cancel_preset(harness::ModelKind::kRaid);
      cfg.raid.total_requests = r;
      cfg.early_cancel = cancel;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 6a — RAID performance with NIC direct cancellation");
  t.set_header({"disk requests", "baseline (s)", "cancel (s)", "improvement",
                "signatures"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& off = results[2 * i];
    const auto& on = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(requests[i]))},
            {&off, &on})) {
      continue;
    }
    const double impr = 100.0 * (off.sim_seconds - on.sim_seconds) / off.sim_seconds;
    t.add_row({harness::Table::num(static_cast<std::int64_t>(requests[i])),
               harness::Table::num(off.sim_seconds, 4),
               harness::Table::num(on.sim_seconds, 4), harness::Table::pct(impr, 2),
               off.signature == on.signature ? "match" : "MISMATCH"});
    bench::register_point("fig6a/warped/requests:" + std::to_string(requests[i]), off);
    bench::register_point("fig6a/cancel/requests:" + std::to_string(requests[i]), on);
  }
  return bench::finish(t, argc, argv);
}
