// Ablation A5: the classic Time-Warp state-saving trade-off.
//
// Copy state saving every event (WARPED's default and this testbed's) makes
// rollback cheap but taxes every forward step; saving every N events
// amortizes the copy but forces a coast-forward replay from the nearest
// snapshot on rollback. The sweet spot depends on the rollback rate — this
// bench sweeps the period on both a mild workload (RAID) and a
// rollback-heavy one (POLICE), then adds two rows the fixed sweep can't
// reach: the adaptive checkpoint interval (period 0, recomputed from the
// observed rollback rate) and the incremental undo-log, which replaces the
// per-step clone with record-before-write logging.
//
// Saved-bytes columns report what each discipline actually paid: snapshot
// bytes for copy saving, logged undo bytes for incremental. Before this
// column existed the table silently conflated "snapshots taken" with
// "bytes copied", hiding the fact that period-k saving still clones the
// whole state on the steps it does save.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  // Period 0 = adaptive interval; the trailing entry reruns the workload in
  // incremental (undo-log) mode, where the period only paces snapshots kept
  // as a fallback for overflow/stale-mark rollbacks.
  const std::vector<std::int64_t> periods = {1, 2, 4, 8, 16, 64, 0};

  std::vector<harness::ExperimentConfig> cfgs;
  for (auto model : {harness::ModelKind::kRaid, harness::ModelKind::kPolice}) {
    for (std::int64_t p : periods) {
      harness::ExperimentConfig cfg = bench::gvt_preset(model);
      cfg.gvt_mode = warped::GvtMode::kNic;
      cfg.gvt_period = 200;
      cfg.state_save_period = p;
      cfgs.push_back(cfg);
    }
    harness::ExperimentConfig cfg = bench::gvt_preset(model);
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.gvt_period = 200;
    cfg.state_save_period = 0;
    cfg.state_mode = warped::StateSaveMode::kIncremental;
    cfgs.push_back(cfg);
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  const std::size_t rows = periods.size() + 1;  // + incremental
  auto row_label = [&](std::size_t i) -> std::string {
    if (i == periods.size()) return "incr";
    if (periods[i] == 0) return "adaptive";
    return std::to_string(periods[i]);
  };
  auto saved_mb = [](const harness::ExperimentResult& r) {
    // Copy saving reports snapshot bytes; incremental reports logged undo
    // bytes (its snapshots are the rare fallback, folded in for honesty).
    return static_cast<double>(r.state_save_bytes + r.undo_bytes_logged) /
           (1024.0 * 1024.0);
  };

  harness::Table t("Ablation A5 — state-saving period sweep (simulated seconds)");
  t.set_header({"save period", "RAID (s)", "RAID replays", "RAID saved MB",
                "POLICE (s)", "POLICE replays", "POLICE saved MB",
                "signatures stable"});
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& raid = results[i];
    const auto& police = results[rows + i];
    if (bench::add_error_rows(t, {row_label(i)}, {&raid, &police})) {
      continue;
    }
    const bool stable = raid.signature == results[0].signature &&
                        police.signature == results[rows].signature;
    t.add_row({row_label(i), harness::Table::num(raid.sim_seconds, 4),
               harness::Table::num(raid.events_replayed),
               harness::Table::num(saved_mb(raid), 2),
               harness::Table::num(police.sim_seconds, 4),
               harness::Table::num(police.events_replayed),
               harness::Table::num(saved_mb(police), 2), stable ? "yes" : "NO"});
    const std::string variant =
        i == periods.size() ? "incr"
        : periods[i] == 0   ? "adaptive"
                            : "period:" + std::to_string(periods[i]);
    bench::register_point("abl_state/raid/" + variant, raid);
    bench::register_point("abl_state/police/" + variant, police);
  }
  return bench::finish(t, argc, argv);
}
