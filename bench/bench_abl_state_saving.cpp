// Ablation A5: the classic Time-Warp state-saving trade-off.
//
// Copy state saving every event (WARPED's default and this testbed's) makes
// rollback cheap but taxes every forward step; saving every N events
// amortizes the copy but forces a coast-forward replay from the nearest
// snapshot on rollback. The sweet spot depends on the rollback rate — this
// bench sweeps the period on both a mild workload (RAID) and a
// rollback-heavy one (POLICE).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> periods = {1, 2, 4, 8, 16, 64};

  std::vector<harness::ExperimentConfig> cfgs;
  for (auto model : {harness::ModelKind::kRaid, harness::ModelKind::kPolice}) {
    for (std::int64_t p : periods) {
      harness::ExperimentConfig cfg = bench::gvt_preset(model);
      cfg.gvt_mode = warped::GvtMode::kNic;
      cfg.gvt_period = 200;
      cfg.state_save_period = p;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Ablation A5 — state-saving period sweep (simulated seconds)");
  t.set_header({"save period", "RAID (s)", "RAID replays", "POLICE (s)",
                "POLICE replays", "signatures stable"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& raid = results[i];
    const auto& police = results[periods.size() + i];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(periods[i]))},
            {&raid, &police})) {
      continue;
    }
    const bool stable = raid.signature == results[0].signature &&
                        police.signature == results[periods.size()].signature;
    t.add_row({harness::Table::num(static_cast<std::int64_t>(periods[i])),
               harness::Table::num(raid.sim_seconds, 4),
               harness::Table::num(raid.events_replayed),
               harness::Table::num(police.sim_seconds, 4),
               harness::Table::num(police.events_replayed), stable ? "yes" : "NO"});
    bench::register_point("abl_state/raid/period:" + std::to_string(periods[i]), raid);
    bench::register_point("abl_state/police/period:" + std::to_string(periods[i]),
                          police);
  }
  return bench::finish(t, argc, argv);
}
