// Ablation A3: the paper's closing conjecture — "As programmable cards with
// better processors continue to appear, it is possible that a significantly
// larger class of optimizations will become feasible" / "we expect to be
// able to drop significantly more messages with a better NIC processor".
//
// Sweep the NIC's per-packet firmware cost (a proxy for NIC CPU speed) and
// measure (a) both optimizations' combined benefit over the plain baseline
// and (b) the cancellation drop share — showing how the win depends on where
// the NIC sits relative to the congestion knee.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<double> nic_us = {2.0, 6.0, 10.0, 11.25, 11.75};

  std::vector<harness::ExperimentConfig> cfgs;
  for (double n : nic_us) {
    // Baseline: host Mattern, no cancellation.
    harness::ExperimentConfig base = bench::gvt_preset(harness::ModelKind::kPolice);
    base.gvt_mode = warped::GvtMode::kHostMattern;
    base.gvt_period = 200;
    base.cost.nic_per_packet_us = n;
    base.max_sim_seconds = 30;  // bound the deep-thrash points
    cfgs.push_back(base);
    // Both paper optimizations on the same hardware.
    harness::ExperimentConfig opt = base;
    opt.gvt_mode = warped::GvtMode::kNic;
    opt.early_cancel = true;
    cfgs.push_back(opt);
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Ablation A3 — NIC processor speed sweep (POLICE, both optimizations)");
  t.set_header({"NIC us/pkt", "baseline (s)", "optimized (s)", "improvement",
                "NIC drops", "drop share", "signatures"});
  for (std::size_t i = 0; i < nic_us.size(); ++i) {
    const auto& base = results[2 * i];
    const auto& opt = results[2 * i + 1];
    if (bench::add_error_rows(t, {harness::Table::num(nic_us[i], 2)},
                              {&base, &opt})) {
      continue;
    }
    const double impr = 100.0 * (base.sim_seconds - opt.sim_seconds) / base.sim_seconds;
    const double share = opt.antis_generated > 0
                             ? 100.0 * static_cast<double>(opt.dropped_by_nic) /
                                   static_cast<double>(opt.antis_generated)
                             : 0.0;
    t.add_row({harness::Table::num(nic_us[i], 2),
               base.completed ? harness::Table::num(base.sim_seconds, 4) : ">cap",
               opt.completed ? harness::Table::num(opt.sim_seconds, 4) : ">cap",
               harness::Table::pct(impr, 1), harness::Table::num(opt.dropped_by_nic),
               harness::Table::pct(share, 1),
               base.signature == opt.signature
                   ? "match"
                   : (base.completed && opt.completed ? "MISMATCH" : "n/a")});
    bench::register_point("abl_nic_speed/base/us:" + harness::Table::num(nic_us[i], 2),
                          base);
    bench::register_point("abl_nic_speed/opt/us:" + harness::Table::num(nic_us[i], 2),
                          opt);
  }
  return bench::finish(t, argc, argv);
}
