// The two calibrated testbed presets every benchmark builds on (see
// EXPERIMENTS.md):
//  * gvt_preset    — the configuration for the GVT figures (Figs. 4, 5a, 5b);
//  * cancel_preset — the congestion-point configuration for the early-
//                    cancellation figures (Figs. 6, 7, 8), where the paper's
//                    system demonstrably operated (e.g. RAID's ~350 messages
//                    per disk request in Fig. 6b).
//
// Shared between the google-benchmark figure binaries (bench_util.hpp) and
// the regression runner (scenarios.cpp) so a preset change moves every
// consumer at once.
#pragma once

#include "harness/experiment.hpp"

namespace nicwarp::bench {

inline harness::ExperimentConfig gvt_preset(harness::ModelKind model) {
  harness::ExperimentConfig cfg;
  cfg.model = model;
  cfg.nodes = 8;
  cfg.seed = 23;
  cfg.rollback_scope = warped::RollbackScope::kLp;
  cfg.max_sim_seconds = 600;
  if (model == harness::ModelKind::kRaid) {
    cfg.raid.sources = 10;  // paper: "10 processes ... 8 forks ... 8 disks"
    cfg.raid.forks = 8;
    cfg.raid.disks = 8;
    cfg.raid.total_requests = 8000;
    cfg.cost.host_event_exec_us = 18.0;
  } else if (model == harness::ModelKind::kPolice) {
    cfg.police.stations = 900;
    cfg.cost.host_event_exec_us = 8.0;  // POLICE is fine-grained
  }
  return cfg;
}

inline harness::ExperimentConfig cancel_preset(harness::ModelKind model) {
  harness::ExperimentConfig cfg = gvt_preset(model);
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 200;
  // Operate the testbed at its congestion point: the LANai4-class NIC is
  // the bottleneck and the baseline is rollback-bound, which is the regime
  // where in-place cancellation pays (and where the paper's message counts
  // place its system).
  cfg.cost.nic_per_packet_us = 11.25;
  if (model == harness::ModelKind::kRaid) {
    cfg.raid.sources = 16;  // paper §4.2: "16 source processes"
  }
  return cfg;
}

}  // namespace nicwarp::bench
