// Figure 4: "RAID GVT Execution Time" — simulated execution time of the RAID
// model as a function of the GVT period, host-resident Mattern (WARPED)
// versus NIC-resident GVT.
//
// Expected shape (paper): WARPED degrades steeply as the period approaches 1
// (control-message storm); NIC-GVT is nearly flat, wins decisively at
// aggressive periods, and is slightly slower at very infrequent GVT (the
// per-packet NIC checks).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> periods = {1, 10, 100, 1000, 10000, 100000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t p : periods) {
    for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic}) {
      harness::ExperimentConfig cfg = bench::gvt_preset(harness::ModelKind::kRaid);
      cfg.gvt_period = p;
      cfg.gvt_mode = mode;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 4 — RAID performance with NIC GVT (simulated seconds)");
  t.set_header({"GVT period (events)", "WARPED (s)", "NIC GVT (s)", "WARPED rounds",
                "NIC rounds", "signatures"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& host = results[2 * i];
    const auto& nic = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(periods[i]))},
            {&host, &nic})) {
      continue;
    }
    t.add_row({harness::Table::num(static_cast<std::int64_t>(periods[i])),
               harness::Table::num(host.sim_seconds, 4),
               harness::Table::num(nic.sim_seconds, 4),
               harness::Table::num(host.gvt_rounds), harness::Table::num(nic.gvt_rounds),
               host.signature == nic.signature ? "match" : "MISMATCH"});
    bench::register_point("fig4/warped/period:" + std::to_string(periods[i]), host);
    bench::register_point("fig4/nicgvt/period:" + std::to_string(periods[i]), nic);
  }
  return bench::finish(t, argc, argv);
}
