// bench_runner — the benchmark-regression harness.
//
// Runs every registered scenario (bench/scenarios.cpp: representative points
// off all bench_fig*/bench_abl* sweeps plus smoke and profiler scenarios)
// sequentially, measuring host wall time around each, and writes one
// schema-versioned JSON document:
//
//   $ ./bench_runner --list                       # names only, no runs
//   $ ./bench_runner --filter=smoke --out=b.json  # substring-selected subset
//   $ ./bench_runner --out=bench/baselines/BENCH_0001.json
//
// The document separates deterministic metrics (simulated seconds, committed
// events, rollbacks, wire packets, signatures — identical on every machine
// for a given seed) from noisy ones (wall seconds, rusage), so
// tools/bench_compare.py can gate tightly on the former and loosely on the
// latter. Scenarios run sequentially precisely so per-scenario wall time is
// not polluted by sibling runs.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/latency.hpp"
#include "micro.hpp"
#include "scenarios.hpp"

namespace {

using nicwarp::bench::MicroBench;
using nicwarp::bench::MicroResult;
using nicwarp::bench::Scenario;
using nicwarp::harness::ExperimentResult;

// v2: tail-latency summaries (lat_* objects) joined the deterministic block
// and every scenario reports them (all-zero when recording is off).
constexpr int kBenchSchemaVersion = 2;

// Same stable double formatting as the profiler's JSON export.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct ScenarioRun {
  const Scenario* sc{nullptr};
  ExperimentResult r;
  double wall_seconds{0.0};
};

void write_scenario_json(std::ostream& os, const ScenarioRun& run) {
  const ExperimentResult& r = run.r;
  const double committed_rate =
      r.sim_seconds > 0.0 ? static_cast<double>(r.committed_events) / r.sim_seconds : 0.0;
  const double rollback_eff =
      r.events_processed > 0 ? static_cast<double>(r.committed_events) /
                                   static_cast<double>(r.events_processed)
                             : 0.0;
  // Mean simulated time between GVT estimations — the "GVT latency" the
  // figures care about (how stale the commit horizon runs).
  const double gvt_latency_us =
      r.gvt_estimations > 0 ? r.sim_seconds * 1e6 / static_cast<double>(r.gvt_estimations)
                            : 0.0;

  os << "    {\"name\": \"" << run.sc->name << "\", \"group\": \"" << run.sc->group
     << "\",\n     \"deterministic\": {"
     << "\"completed\": " << (r.completed ? "true" : "false")
     << ", \"sim_seconds\": " << fmt(r.sim_seconds)
     << ", \"committed_events\": " << r.committed_events
     << ", \"events_processed\": " << r.events_processed
     << ", \"events_rolled_back\": " << r.events_rolled_back
     << ", \"rollbacks\": " << r.rollbacks
     << ", \"committed_rate_per_sim_sec\": " << fmt(committed_rate)
     << ", \"rollback_efficiency\": " << fmt(rollback_eff)
     << ", \"gvt_estimations\": " << r.gvt_estimations
     << ", \"gvt_rounds\": " << r.gvt_rounds
     << ", \"gvt_latency_us\": " << fmt(gvt_latency_us)
     << ", \"wire_packets\": " << r.wire_packets
     << ", \"wire_bytes\": " << r.wire_bytes
     << ", \"event_msgs_generated\": " << r.event_msgs_generated
     << ", \"antis_generated\": " << r.antis_generated
     << ", \"nic_drops\": " << r.dropped_by_nic
     << ", \"filtered_antis\": " << r.filtered_antis
     << ", \"antis_suppressed\": " << r.antis_suppressed
     << ", \"signature\": " << r.signature;
  if (run.sc->cfg.shards > 1) {
    // Sharded scenarios only: keeping these keys out of shards=1 rows leaves
    // every pre-sharding baseline block byte-identical. shard_rounds is
    // deterministic — the LBTS decisions are data-dependent, not
    // timing-dependent.
    os << ", \"shards\": " << run.sc->cfg.shards
       << ", \"shard_rounds\": " << r.shard_rounds;
  }
  if (run.sc->cfg.fault.enabled()) {
    // Chaos scenarios: injection and recovery volumes are seeded and fully
    // deterministic, so they gate exactly like the commit metrics.
    os << ", \"fault_drops\": " << r.fault_drops
       << ", \"fault_dups\": " << r.fault_dups
       << ", \"fault_corrupts\": " << r.fault_corrupts
       << ", \"fault_delays\": " << r.fault_delays
       << ", \"retransmits\": " << r.retransmits
       << ", \"naks_sent\": " << r.naks_sent
       << ", \"retx_timeouts\": " << r.retx_timeouts
       << ", \"retx_evicted\": " << r.retx_evicted
       << ", \"rel_crc_discards\": " << r.rel_crc_discards
       << ", \"rel_dup_discards\": " << r.rel_dup_discards
       << ", \"rel_gap_discards\": " << r.rel_gap_discards
       << ", \"gvt_token_regens\": " << r.gvt_token_regens
       << ", \"gvt_tokens_stale\": " << r.gvt_tokens_stale
       << ", \"credit_resyncs\": " << r.credit_resyncs;
  }
  if (r.profile != nullptr) {
    const auto& p = *r.profile;
    os << ", \"work_efficiency\": " << fmt(p.work_efficiency)
       << ", \"time_vs_lower_bound\": " << fmt(p.time_vs_lower_bound)
       << ", \"critical_path_events\": " << p.critical_path.critical_path_events
       << ", \"cascade_roots\": " << p.cascades.roots
       << ", \"cascade_max_depth\": " << p.cascades.max_depth
       << ", \"nic_drops_attributed\": " << p.cascades.nic_drops_attributed;
  }
  // Tail-latency summaries. Every sample is simulated time, so bucket
  // counts, min/max, and interpolated quantiles are all byte-deterministic
  // and gate at --tolerance=0 like the commit metrics. All-zero (count 0)
  // when the scenario runs with recording off.
  os << ", \"latency_enabled\": " << (r.latency.enabled ? "true" : "false");
  const auto& lat_names = nicwarp::LatencyReport::metric_names();
  for (std::size_t i = 0; i < lat_names.size(); ++i) {
    os << ", \"lat_" << lat_names[i] << "\": ";
    r.latency.metric(i).to_json(os);
  }
  // Wall-clock phase attribution rides in the NOISY block: the numbers are
  // machine-dependent and must never join a byte-identity comparison.
  os << "},\n     \"noisy\": {\"wall_seconds\": " << fmt(run.wall_seconds);
  if (r.phase_enabled) {
    for (std::size_t i = 0; i < nicwarp::kPhaseCount; ++i) {
      os << ", \"phase_" << nicwarp::phase_name(static_cast<nicwarp::Phase>(i))
         << "_seconds\": " << fmt(r.phase_seconds[i]);
    }
  }
  os << "}}";
}

struct MicroRun {
  const MicroBench* mb{nullptr};
  MicroResult r;
};

// Micro benches share the scenarios array (and therefore the compare tool's
// machinery): `ops` and `checksum` are bit-deterministic, wall_seconds is the
// noisy payload the --wall-tolerance gate exists for.
void write_micro_json(std::ostream& os, const MicroRun& run) {
  os << "    {\"name\": \"" << run.mb->name << "\", \"group\": \"micro\",\n"
     << "     \"deterministic\": {\"completed\": true, \"ops\": " << run.r.ops
     << ", \"checksum\": " << run.r.checksum
     << "},\n     \"noisy\": {\"wall_seconds\": " << fmt(run.r.wall_seconds) << "}}";
}

void write_bench_json(std::ostream& os, const std::vector<ScenarioRun>& runs,
                      const std::vector<MicroRun>& micro_runs) {
  os << "{\n  \"type\": \"nicwarp-bench\",\n  \"schema_version\": "
     << kBenchSchemaVersion << ",\n  \"seed\": 23,\n  \"scenarios\": [\n";
  bool first = true;
  for (const ScenarioRun& run : runs) {
    if (!first) os << ",\n";
    first = false;
    write_scenario_json(os, run);
  }
  for (const MicroRun& run : micro_runs) {
    if (!first) os << ",\n";
    first = false;
    write_micro_json(os, run);
  }
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  const double user_s = static_cast<double>(ru.ru_utime.tv_sec) +
                        static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
  const double sys_s = static_cast<double>(ru.ru_stime.tv_sec) +
                       static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
  os << "\n  ],\n  \"rusage\": {\"max_rss_kb\": " << ru.ru_maxrss
     << ", \"user_seconds\": " << fmt(user_s)
     << ", \"system_seconds\": " << fmt(sys_s) << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string filter;
  std::string out_path;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.rfind(flag, 0) != 0) return nullptr;
      if (arg.size() > n && arg[n] == '=') return arg.c_str() + n + 1;
      if (arg.size() == n && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (arg == "--list") {
      list_only = true;
    } else if (const char* v = value("--filter")) {
      filter = v;
    } else if (const char* v = value("--out")) {
      out_path = v;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: bench_runner [--list] [--filter=SUBSTR] [--out=FILE]\n"
          "  --list     print matching scenario names and exit\n"
          "  --filter   run only scenarios whose name contains SUBSTR\n"
          "  --out      write the BENCH JSON here (default: stdout)\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  const std::vector<Scenario> all = nicwarp::bench::all_scenarios();
  std::vector<const Scenario*> selected;
  for (const Scenario& s : all) {
    if (filter.empty() || s.name.find(filter) != std::string::npos) {
      selected.push_back(&s);
    }
  }
  const std::vector<MicroBench>& micro_all = nicwarp::bench::micro_benches();
  std::vector<const MicroBench*> micro_selected;
  for (const MicroBench& mb : micro_all) {
    if (filter.empty() || mb.name.find(filter) != std::string::npos) {
      micro_selected.push_back(&mb);
    }
  }
  if (list_only) {
    for (const Scenario* s : selected) std::printf("%s\n", s->name.c_str());
    for (const MicroBench* mb : micro_selected) std::printf("%s\n", mb->name.c_str());
    return 0;
  }
  if (selected.empty() && micro_selected.empty()) {
    std::fprintf(stderr, "no scenarios match filter '%s'\n", filter.c_str());
    return 2;
  }

  std::vector<ScenarioRun> runs;
  runs.reserve(selected.size());
  int failures = 0;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const Scenario* sc = selected[i];
    std::fprintf(stderr, "[%2zu/%zu] %s ...\n", i + 1, selected.size(),
                 sc->name.c_str());
    // Phase attribution is wall-clock-only; turning it on cannot perturb the
    // deterministic block, so every scenario reports it.
    nicwarp::harness::ExperimentConfig cfg = sc->cfg;
    cfg.phase.enabled = true;
    const auto t0 = std::chrono::steady_clock::now();
    ExperimentResult r = nicwarp::harness::run_experiment(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.completed) {
      std::fprintf(stderr, "         WARNING: hit the simulated-time cap\n");
      ++failures;
    }
    ScenarioRun run;
    run.sc = sc;
    run.r = std::move(r);
    run.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    runs.push_back(std::move(run));
  }

  std::vector<MicroRun> micro_runs;
  micro_runs.reserve(micro_selected.size());
  if (!micro_selected.empty()) {
    // Frequency-governor warmup: the micro benches are sub-second, so on a
    // cold-clocked core the first measurements read up to 2x slow and trip
    // the wall gate. ~300ms of busy work ramps the core first.
    volatile std::uint64_t sink = 0;
    const auto w0 = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - w0 < std::chrono::milliseconds(300)) {
      for (std::uint64_t i = 0; i < 100000; ++i) sink = sink + i * 2654435761ULL;
    }
  }
  for (std::size_t i = 0; i < micro_selected.size(); ++i) {
    const MicroBench* mb = micro_selected[i];
    std::fprintf(stderr, "[%2zu/%zu] %s ...\n", i + 1, micro_selected.size(),
                 mb->name.c_str());
    MicroRun run;
    run.mb = mb;
    run.r = mb->run();
    micro_runs.push_back(std::move(run));
  }

  if (out_path.empty()) {
    write_bench_json(std::cout, runs, micro_runs);
  } else {
    std::ofstream os(out_path);
    if (!os.good()) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", out_path.c_str());
      return 2;
    }
    write_bench_json(os, runs, micro_runs);
    std::fprintf(stderr, "wrote %zu scenarios -> %s\n",
                 runs.size() + micro_runs.size(), out_path.c_str());
  }
  return failures > 0 ? 1 : 0;
}
