// Hot-path micro benchmarks for the `micro` bench group.
//
// These measure the discrete-event core directly — no testbed, no model —
// so a regression in Engine::schedule/cancel/run or the LogicalProcess
// pending-queue machinery shows up as a wall-clock jump on exactly the
// operation that slowed down, not as noise inside an end-to-end scenario.
// Each bench runs a fixed deterministic workload: `ops` and `checksum` gate
// bit-exactly (tools/bench_compare.py --tolerance=0) while `wall_seconds`
// gates loosely (--wall-tolerance).
//
// `micro/engine/schedule_run_churn_legacy` runs the same workload on a
// faithful copy of the pre-optimization scheduler (std::priority_queue +
// unordered_map + std::function with lazy tombstones), kept as a reference
// so the speedup of the slot-indexed heap stays visible — and honest — in
// every BENCH json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nicwarp::bench {

struct MicroResult {
  std::int64_t ops{0};       // deterministic: operations performed
  std::int64_t checksum{0};  // deterministic: workload fingerprint
  double wall_seconds{0.0};  // noisy: measured around the workload only
};

struct MicroBench {
  std::string name;  // "micro/<subsystem>/<case>", filterable like scenarios
  MicroResult (*run)();
};

const std::vector<MicroBench>& micro_benches();

// Comm/NIC datapath kernels (micro_comm.cpp): pooled datapath vs faithful
// pre-pool `_legacy` twins over identical deterministic schedules. Folded
// into micro_benches() after the engine/LP group.
const std::vector<MicroBench>& micro_comm_benches();

}  // namespace nicwarp::bench
