// fig_tail: tail amplification vs fault rate — how much a lossy fabric
// inflates p99.9 message-delivery and event-commit latency under each GVT
// manager and cancellation mode.
//
// Companion to the chaos group: chaos asserts committed state stays exactly
// equal under faults; this sweep quantifies what the recovery machinery
// (go-back-N replays, NAKs, token regeneration) costs at the tail, where
// NIC-offload systems are actually judged. Expected shape: the p50 barely
// moves with loss, while p99.9 grows multiplicatively — and the NIC-GVT +
// early-cancellation stack amplifies less than host Mattern because fewer
// packets cross the wire per committed event.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  struct Variant {
    const char* name;
    warped::GvtMode mode;
    bool cancel;
    warped::CancellationMode cancellation;
  };
  const std::vector<Variant> variants = {
      {"mattern", warped::GvtMode::kHostMattern, false,
       warped::CancellationMode::kAggressive},
      {"nicgvt_cancel", warped::GvtMode::kNic, true,
       warped::CancellationMode::kAggressive},
      {"nicgvt_lazy", warped::GvtMode::kNic, false, warped::CancellationMode::kLazy},
  };
  const std::vector<double> losses = {0.0, 0.005, 0.01};

  std::vector<harness::ExperimentConfig> cfgs;
  for (const Variant& v : variants) {
    for (double loss : losses) {
      harness::ExperimentConfig cfg = bench::cancel_preset(harness::ModelKind::kRaid);
      cfg.gvt_mode = v.mode;
      cfg.raid.total_requests = 3000;
      cfg.early_cancel = v.cancel;
      cfg.cancellation = v.cancellation;
      if (v.cancellation == warped::CancellationMode::kLazy) {
        // Lazy cancellation runs off the congestion point (same operating
        // point as the abl_lazy sweep) and excludes the NIC drop machinery.
        cfg = bench::gvt_preset(harness::ModelKind::kRaid);
        cfg.gvt_mode = warped::GvtMode::kNic;
        cfg.gvt_period = 200;
        cfg.raid.total_requests = 3000;
        cfg.cancellation = warped::CancellationMode::kLazy;
      }
      cfg.fault.drop_rate = loss;
      cfg.fault.seed = 11;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("fig_tail — p99.9 amplification vs fault rate (modeled us)");
  t.set_header({"variant", "loss", "msg p50", "msg p99.9", "msg amp", "commit p99.9",
                "commit amp", "retransmits"});
  for (std::size_t vi = 0; vi < variants.size(); ++vi) {
    const auto& base = results[vi * losses.size()];
    for (std::size_t li = 0; li < losses.size(); ++li) {
      const auto& r = results[vi * losses.size() + li];
      const std::string loss_label = harness::Table::num(losses[li] * 100.0, 1) + "%";
      if (bench::add_error_rows(t, {variants[vi].name, loss_label}, {&r})) continue;
      // Amplification = this point's p99.9 over the variant's loss=0 p99.9.
      auto amp = [&](double v, double b) { return b > 0.0 ? v / b : 0.0; };
      t.add_row({variants[vi].name, loss_label,
                 harness::Table::num(r.latency.delivery_us.p50, 2),
                 harness::Table::num(r.latency.delivery_us.p999, 2),
                 harness::Table::num(
                     amp(r.latency.delivery_us.p999, base.latency.delivery_us.p999), 3),
                 harness::Table::num(r.latency.commit_us.p999, 2),
                 harness::Table::num(
                     amp(r.latency.commit_us.p999, base.latency.commit_us.p999), 3),
                 harness::Table::num(r.retransmits)});
      bench::register_point(std::string("fig_tail/") + variants[vi].name +
                                "/loss:" + loss_label,
                            r);
    }
  }
  return bench::finish(t, argc, argv);
}
