// The benchmark-regression scenario registry.
//
// One named, deterministic experiment per entry — representative points off
// every figure/ablation sweep (bench_fig*, bench_abl*) plus two fast smoke
// scenarios for CI and two profiler scenarios that exercise the cascade /
// critical-path subsystem. bench_runner executes these and serializes the
// result set as a schema-versioned BENCH_<n>.json; tools/bench_compare.py
// diffs two such files and fails on regression.
//
// Naming: "<group>/<variant>/<axis>:<value>" (mirrors the google-benchmark
// point names of the figure binaries), so substring filters like
// "--filter=fig7" or "--filter=smoke" select natural slices.
#pragma once

#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace nicwarp::bench {

struct Scenario {
  std::string name;
  std::string group;  // "fig4", "abl_credit", "smoke", "profile", ...
  harness::ExperimentConfig cfg;
};

// Every registered scenario, in a fixed deterministic order.
std::vector<Scenario> all_scenarios();

}  // namespace nicwarp::bench
