#include "scenarios.hpp"

#include "presets.hpp"

namespace nicwarp::bench {

namespace {

using harness::ExperimentConfig;
using harness::ModelKind;

void add(std::vector<Scenario>& out, std::string group, std::string variant,
         ExperimentConfig cfg) {
  Scenario s;
  s.name = group + "/" + variant;
  s.group = std::move(group);
  s.cfg = std::move(cfg);
  out.push_back(std::move(s));
}

}  // namespace

std::vector<Scenario> all_scenarios() {
  std::vector<Scenario> out;

  // --- smoke: small and fast; the CI gate runs only these ---
  {
    ExperimentConfig cfg = gvt_preset(ModelKind::kRaid);
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.raid.total_requests = 2000;
    add(out, "smoke", "raid", cfg);

    cfg = gvt_preset(ModelKind::kPolice);
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.police.stations = 300;
    add(out, "smoke", "police", cfg);
  }

  // --- profile: the cascade / critical-path profiler on both models at the
  // congestion point, where rollback structure is richest ---
  for (ModelKind m : {ModelKind::kRaid, ModelKind::kPolice}) {
    ExperimentConfig cfg = cancel_preset(m);
    cfg.early_cancel = true;
    if (m == ModelKind::kRaid) cfg.raid.total_requests = 4000;
    cfg.profile.enabled = true;
    add(out, "profile", m == ModelKind::kRaid ? "raid" : "police", cfg);
  }

  // --- fig4: RAID GVT period sweep, WARPED vs NIC GVT ---
  for (std::int64_t p : {std::int64_t{1}, std::int64_t{100}, std::int64_t{10000}}) {
    for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic}) {
      ExperimentConfig cfg = gvt_preset(ModelKind::kRaid);
      cfg.gvt_period = p;
      cfg.gvt_mode = mode;
      add(out, "fig4",
          std::string(mode == warped::GvtMode::kNic ? "nicgvt" : "warped") +
              "/period:" + std::to_string(p),
          cfg);
    }
  }

  // --- fig5 (a+b share the sweep): POLICE GVT period sweep ---
  for (std::int64_t p : {std::int64_t{1}, std::int64_t{100}, std::int64_t{10000}}) {
    for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic}) {
      ExperimentConfig cfg = gvt_preset(ModelKind::kPolice);
      cfg.gvt_period = p;
      cfg.gvt_mode = mode;
      add(out, "fig5",
          std::string(mode == warped::GvtMode::kNic ? "nicgvt" : "warped") +
              "/period:" + std::to_string(p),
          cfg);
    }
  }

  // --- fig6 (a+b share the sweep): RAID early cancellation vs request count ---
  for (std::int64_t r : {std::int64_t{5000}, std::int64_t{10000}}) {
    for (bool cancel : {false, true}) {
      ExperimentConfig cfg = cancel_preset(ModelKind::kRaid);
      cfg.raid.total_requests = r;
      cfg.early_cancel = cancel;
      add(out, "fig6",
          std::string(cancel ? "cancel" : "warped") + "/requests:" + std::to_string(r),
          cfg);
    }
  }

  // --- fig7/fig8 (shared sweep): POLICE early cancellation vs station count ---
  for (std::int64_t s : {std::int64_t{900}, std::int64_t{2000}}) {
    for (bool cancel : {false, true}) {
      ExperimentConfig cfg = cancel_preset(ModelKind::kPolice);
      cfg.police.stations = s;
      cfg.early_cancel = cancel;
      add(out, "fig7",
          std::string(cancel ? "cancel" : "warped") + "/stations:" + std::to_string(s),
          cfg);
    }
  }

  // --- abl_piggyback (A1): token piggybacking on/off at aggressive period ---
  for (ModelKind m : {ModelKind::kRaid, ModelKind::kPolice}) {
    for (bool piggyback : {true, false}) {
      ExperimentConfig cfg = gvt_preset(m);
      cfg.gvt_mode = warped::GvtMode::kNic;
      cfg.gvt_period = 10;
      cfg.piggyback = piggyback;
      add(out, "abl_piggyback",
          std::string(m == ModelKind::kRaid ? "raid" : "police") + "/" +
              (piggyback ? "on" : "off"),
          cfg);
    }
  }

  // --- abl_credit (A2): sequence-number credit repair on/off ---
  for (bool repair : {true, false}) {
    ExperimentConfig cfg = cancel_preset(ModelKind::kPolice);
    cfg.early_cancel = true;
    cfg.credit_repair = repair;
    add(out, "abl_credit", repair ? "repair" : "norepair", cfg);
  }

  // --- abl_nic_speed (A3): NIC per-packet cost sweep, both optimizations ---
  for (double n : {2.0, 11.25}) {
    ExperimentConfig cfg = gvt_preset(ModelKind::kPolice);
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.gvt_period = 200;
    cfg.early_cancel = true;
    cfg.cost.nic_per_packet_us = n;
    cfg.max_sim_seconds = 30;
    add(out, "abl_nic_speed", "nic_us:" + std::to_string(n).substr(0, 5), cfg);
  }

  // --- abl_pgvt (A4): GVT algorithm three-way at the canonical period ---
  for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kPGvt,
                    warped::GvtMode::kNic}) {
    ExperimentConfig cfg = gvt_preset(ModelKind::kRaid);
    cfg.gvt_period = 100;
    cfg.gvt_mode = mode;
    const char* v = mode == warped::GvtMode::kHostMattern ? "mattern"
                    : mode == warped::GvtMode::kPGvt      ? "pgvt"
                                                          : "nicgvt";
    add(out, "abl_pgvt", v, cfg);
  }

  // --- abl_state (A5): state-saving period ---
  for (std::int64_t p : {std::int64_t{1}, std::int64_t{8}, std::int64_t{64}}) {
    ExperimentConfig cfg = gvt_preset(ModelKind::kRaid);
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.gvt_period = 200;
    cfg.state_save_period = p;
    add(out, "abl_state", "period:" + std::to_string(p), cfg);
  }
  {
    // Adaptive checkpoint interval (period 0) and the incremental undo-log,
    // on the same workload as the period sweep. Committed events and
    // signature must match the fixed-period rows exactly — state saving is
    // a cost knob, never a correctness knob.
    ExperimentConfig cfg = gvt_preset(ModelKind::kRaid);
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.gvt_period = 200;
    cfg.state_save_period = 0;
    add(out, "abl_state", "adaptive", cfg);

    cfg.state_mode = warped::StateSaveMode::kIncremental;
    add(out, "abl_state", "incr", cfg);
  }

  // --- chaos: fault-sweep scenarios. Deterministic seeded fault plans; the
  // committed-state metrics (committed/signature) must stay EXACTLY equal to
  // the matching fault-free runs — recovery costs time, never correctness.
  // Wall-clock metrics show the price of the reliability layer's replays. ---
  for (double loss : {0.001, 0.01}) {
    for (bool cancel : {false, true}) {
      ExperimentConfig cfg = cancel_preset(ModelKind::kRaid);
      cfg.raid.total_requests = 5000;
      cfg.early_cancel = cancel;
      cfg.fault.drop_rate = loss;
      cfg.fault.seed = 11;
      add(out, "chaos",
          std::string(cancel ? "cancel" : "warped") + "/raid_loss:" +
              (loss < 0.005 ? "0.1%" : "1%"),
          cfg);
    }
  }
  {
    // Mixed-fault POLICE run: drops + dups + corruption + delay together.
    ExperimentConfig cfg = cancel_preset(ModelKind::kPolice);
    cfg.police.stations = 900;
    cfg.early_cancel = true;
    cfg.fault.drop_rate = 0.01;
    cfg.fault.dup_rate = 0.005;
    cfg.fault.corrupt_rate = 0.005;
    cfg.fault.delay_rate = 0.01;
    cfg.fault.seed = 11;
    add(out, "chaos", "cancel/police_mixed", cfg);
  }
  {
    // Token-loss stress on the host-Mattern ring (sequenced kHostGvtToken
    // recovery) as a counterpoint to the NIC-GVT regeneration path above.
    ExperimentConfig cfg = gvt_preset(ModelKind::kRaid);
    cfg.gvt_mode = warped::GvtMode::kHostMattern;
    cfg.raid.total_requests = 5000;
    cfg.fault.drop_rate = 0.02;
    cfg.fault.seed = 11;
    add(out, "chaos", "mattern/raid_loss:2%", cfg);
  }

  // --- fig_tail: tail amplification vs fault rate, per GVT manager and
  // cancellation mode. The only scenario group with latency recording on:
  // every point reports deterministic p50/p99/p99.9 delivery and commit
  // latencies, and the loss:0 point of each variant is the normalization
  // base for the amplification chart (tools/plot_figures.py). ---
  for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic}) {
    for (double loss : {0.0, 0.005, 0.01}) {
      ExperimentConfig cfg = cancel_preset(ModelKind::kRaid);
      cfg.gvt_mode = mode;
      cfg.raid.total_requests = 3000;
      cfg.early_cancel = mode == warped::GvtMode::kNic;
      cfg.fault.drop_rate = loss;
      cfg.fault.seed = 11;
      cfg.latency.enabled = true;
      const char* v = mode == warped::GvtMode::kNic ? "nicgvt_cancel" : "mattern";
      const char* l = loss == 0.0 ? "0%" : (loss < 0.0075 ? "0.5%" : "1%");
      add(out, "fig_tail", std::string(v) + "/loss:" + l, cfg);
    }
  }
  for (double loss : {0.0, 0.01}) {
    // Lazy cancellation leg: held outputs lengthen the commit tail when a
    // lossy fabric forces replays.
    ExperimentConfig cfg = gvt_preset(ModelKind::kRaid);
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.gvt_period = 200;
    cfg.raid.total_requests = 3000;
    cfg.cancellation = warped::CancellationMode::kLazy;
    cfg.fault.drop_rate = loss;
    cfg.fault.seed = 11;
    cfg.latency.enabled = true;
    add(out, "fig_tail",
        std::string("nicgvt_lazy/loss:") + (loss == 0.0 ? "0%" : "1%"), cfg);
  }

  // --- abl_lazy (A6): aggressive vs lazy cancellation ---
  for (ModelKind m : {ModelKind::kRaid, ModelKind::kPolice}) {
    for (auto mode : {warped::CancellationMode::kAggressive,
                      warped::CancellationMode::kLazy}) {
      ExperimentConfig cfg = gvt_preset(m);
      cfg.gvt_mode = warped::GvtMode::kNic;
      cfg.gvt_period = 200;
      cfg.cancellation = mode;
      add(out, "abl_lazy",
          std::string(m == ModelKind::kRaid ? "raid" : "police") + "/" +
              (mode == warped::CancellationMode::kLazy ? "lazy" : "aggressive"),
          cfg);
    }
  }

  // --- micro: end-to-end companion to the micro/engine + micro/lp hot-path
  // benches (bench/micro.cpp). PHOLD is pure event churn — schedule / cancel
  // / rollback with a trivial model body — so its wall-clock tracks the DES
  // core's overhead more directly than the paper-figure scenarios do. ---
  {
    ExperimentConfig cfg;
    cfg.model = ModelKind::kPhold;
    cfg.nodes = 8;
    cfg.seed = 23;
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.gvt_period = 200;
    cfg.phold.objects = 64;
    cfg.phold.population = 4;
    cfg.phold.horizon = 20000;
    add(out, "micro", "phold/e2e", cfg);
  }

  // --- micro/shard: host-thread sharding on the PHOLD churn workload
  // (docs/SHARDING.md). s1 is the legacy single-threaded twin — same config,
  // same seed — so the wall-clock ratio s1/sN is the sharding speedup and the
  // committed/signature rows prove the partitioned run commits the same
  // events. The link latency is raised to 40us to give the conservative
  // windows useful width; all three variants share it, so they stay
  // comparable with each other (not with micro/phold/e2e above). ---
  for (std::uint32_t shards : {1u, 2u, 4u}) {
    ExperimentConfig cfg;
    cfg.model = ModelKind::kPhold;
    cfg.nodes = 16;
    cfg.seed = 23;
    cfg.gvt_mode = warped::GvtMode::kNic;
    cfg.gvt_period = 200;
    cfg.phold.objects = 64;
    cfg.phold.population = 4;
    cfg.phold.horizon = 20000;
    cfg.cost.link_latency_us = 40.0;
    cfg.shards = shards;
    add(out, "micro", "shard_phold/s" + std::to_string(shards), cfg);
  }

  return out;
}

}  // namespace nicwarp::bench
