// Figure 7(a): "POLICE Performance with NIC Direct Cancelation" — percentage
// runtime improvement from early message cancellation versus the number of
// police stations.
//
// Expected shape (paper): substantially larger improvement than RAID (up to
// ~27% in the paper) — POLICE's bursty fan-out keeps the NIC send ring deep,
// so a large share of to-be-cancelled messages dies in place, and the
// secondary rollbacks they would have caused never happen.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> stations = {900, 1000, 2000, 3000, 4000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t s : stations) {
    for (bool cancel : {false, true}) {
      harness::ExperimentConfig cfg = bench::cancel_preset(harness::ModelKind::kPolice);
      cfg.police.stations = s;
      cfg.early_cancel = cancel;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 7a — POLICE performance with NIC direct cancellation");
  t.set_header({"police stations", "baseline (s)", "cancel (s)", "improvement",
                "signatures"});
  for (std::size_t i = 0; i < stations.size(); ++i) {
    const auto& off = results[2 * i];
    const auto& on = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(stations[i]))},
            {&off, &on})) {
      continue;
    }
    const double impr = 100.0 * (off.sim_seconds - on.sim_seconds) / off.sim_seconds;
    t.add_row({harness::Table::num(static_cast<std::int64_t>(stations[i])),
               harness::Table::num(off.sim_seconds, 4),
               harness::Table::num(on.sim_seconds, 4), harness::Table::pct(impr, 2),
               off.signature == on.signature ? "match" : "MISMATCH"});
    bench::register_point("fig7a/warped/stations:" + std::to_string(stations[i]), off);
    bench::register_point("fig7a/cancel/stations:" + std::to_string(stations[i]), on);
  }
  return bench::finish(t, argc, argv);
}
