// Ablation A6: aggressive versus lazy cancellation (the dynamic-switching
// idea of the paper's reference [27], Rajan & Wilsey 1995).
//
// With deterministic event identity, re-execution after a rollback usually
// regenerates identical messages; lazy cancellation then sends no
// anti-messages at all for them. This bench quantifies the anti-traffic and
// run-time difference on both workloads (NIC GVT, no NIC cancellation —
// the two strategies are host-side alternatives).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;

  std::vector<harness::ExperimentConfig> cfgs;
  for (auto model : {harness::ModelKind::kRaid, harness::ModelKind::kPolice}) {
    for (auto mode : {warped::CancellationMode::kAggressive,
                      warped::CancellationMode::kLazy}) {
      harness::ExperimentConfig cfg = bench::gvt_preset(model);
      cfg.gvt_mode = warped::GvtMode::kNic;
      cfg.gvt_period = 200;
      cfg.cancellation = mode;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Ablation A6 — aggressive vs lazy cancellation");
  t.set_header({"model", "aggressive (s)", "lazy (s)", "antis (aggr)", "antis (lazy)",
                "lazy matches", "signatures"});
  const char* names[] = {"RAID", "POLICE"};
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& agg = results[2 * i];
    const auto& lazy = results[2 * i + 1];
    if (bench::add_error_rows(t, {names[i]}, {&agg, &lazy})) {
      continue;
    }
    t.add_row({names[i], harness::Table::num(agg.sim_seconds, 4),
               harness::Table::num(lazy.sim_seconds, 4),
               harness::Table::num(agg.antis_generated),
               harness::Table::num(lazy.antis_generated),
               harness::Table::num(lazy.lazy_matched),
               agg.signature == lazy.signature ? "match" : "MISMATCH"});
    bench::register_point(std::string("abl_lazy/aggressive/") + names[i], agg);
    bench::register_point(std::string("abl_lazy/lazy/") + names[i], lazy);
  }
  return bench::finish(t, argc, argv);
}
