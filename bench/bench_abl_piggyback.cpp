// Ablation A1: what does opportunistic piggybacking buy NIC-level GVT?
//
// The paper piggybacks both the GVT token (onto event packets already headed
// for the next LP in the ring) and the host handshake reply (into "four
// unused fields in the Basic Event Message"). This ablation disables both:
// every token becomes a dedicated wire message and every handshake reply a
// dedicated mailbox write.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  struct Point {
    harness::ModelKind model;
    const char* name;
  };
  const std::vector<Point> points = {{harness::ModelKind::kRaid, "RAID"},
                                     {harness::ModelKind::kPolice, "POLICE"}};

  std::vector<harness::ExperimentConfig> cfgs;
  for (const Point& pt : points) {
    for (bool piggyback : {true, false}) {
      harness::ExperimentConfig cfg = bench::gvt_preset(pt.model);
      cfg.gvt_mode = warped::GvtMode::kNic;
      cfg.gvt_period = 10;  // aggressive enough that token transport matters
      cfg.piggyback = piggyback;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Ablation A1 — NIC GVT with and without piggybacking (period 10)");
  t.set_header({"model", "piggyback (s)", "dedicated (s)", "penalty", "signatures"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& with = results[2 * i];
    const auto& without = results[2 * i + 1];
    if (bench::add_error_rows(t, {points[i].name}, {&with, &without})) {
      continue;
    }
    const double penalty =
        100.0 * (without.sim_seconds - with.sim_seconds) / with.sim_seconds;
    t.add_row({points[i].name, harness::Table::num(with.sim_seconds, 4),
               harness::Table::num(without.sim_seconds, 4),
               harness::Table::pct(penalty, 2),
               with.signature == without.signature ? "match" : "MISMATCH"});
    bench::register_point(std::string("abl_piggyback/on/") + points[i].name, with);
    bench::register_point(std::string("abl_piggyback/off/") + points[i].name, without);
  }
  return bench::finish(t, argc, argv);
}
