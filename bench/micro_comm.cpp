// Comm/NIC datapath micro benchmarks for the `micro` bench group.
//
// Two workloads distilled from the host-comm and NIC-reliability hot loops,
// each run twice over the same deterministic schedule:
//
//  * micro/comm_credit_churn   — credit-windowed send/stage/drain across 8
//    channels, the shape HostComm drives per application message;
//  * micro/retx_churn          — retransmit-ring store/ack-retire/go-back-N
//    plus sorted void-list maintenance, the shape the NIC reliability
//    sublayer drives per wire packet.
//
// The `_legacy` twins run the identical schedule on faithful copies of the
// pre-pool containers (std::deque<Packet> queues, unordered_map channels,
// a heap allocation per NIC hop — what accept_from_host's shared hook state
// used to cost), so every BENCH json keeps showing what the PacketPool +
// FlatRing datapath buys. Both twins produce bit-identical `ops`/`checksum`
// by construction; only `wall_seconds` (and allocator traffic) differ.
#include "micro.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/flat_ring.hpp"
#include "core/types.hpp"
#include "hw/packet.hpp"
#include "hw/packet_pool.hpp"

namespace nicwarp::bench {

namespace {

using hw::Packet;
using hw::PacketPool;
using hw::PacketRef;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::uint64_t mix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void fill_packet(Packet& p, int dst, std::uint64_t seq, std::uint64_t r) {
  p.hdr.kind = hw::PacketKind::kEvent;
  p.hdr.dst = static_cast<NodeId>(dst);
  p.hdr.bip_seq = seq;
  p.hdr.size_bytes = 64;
  // Payload past SSO territory so the legacy path pays a real heap
  // allocation per packet construction/copy, like the models do.
  p.app.assign({static_cast<std::int64_t>(r & 0xFFFF),
                static_cast<std::int64_t>((r >> 16) & 0xFFFF),
                static_cast<std::int64_t>((r >> 32) & 0xFFFF),
                static_cast<std::int64_t>(seq)});
}

std::int64_t payload_fold(const Packet& p) {
  std::int64_t f = static_cast<std::int64_t>(p.hdr.bip_seq);
  for (std::int64_t v : p.app) f = f * 31 + v;
  return f;
}

// ---------------------------------------------------------------------------
// Credit churn: HostComm's send path shape.
// ---------------------------------------------------------------------------

// Pooled datapath: flat channel vector, PacketRefs through FlatRings, one
// shared slab. Mirrors HostComm + Nic queue structure post-pool.
struct PooledCommPath {
  struct Ch {
    std::int64_t credits{0};
    FlatRing<PacketRef> staged;
    FlatRing<PacketRef> wire;
  };
  PacketPool pool;
  std::vector<Ch> ch;

  PooledCommPath(int nodes, std::int64_t window) : ch(static_cast<std::size_t>(nodes)) {
    for (auto& c : ch) c.credits = window;
  }
  Ch& channel(int dst) { return ch[static_cast<std::size_t>(dst)]; }

  PacketRef make(int dst, std::uint64_t seq, std::uint64_t r) {
    PacketRef ref = pool.acquire();
    fill_packet(pool.get(ref), dst, seq, r);
    return ref;
  }
  void transmit(Ch& c, PacketRef h) { c.wire.push_back(h); }
  void stage(Ch& c, PacketRef h) { c.staged.push_back(h); }
  bool wire_empty(const Ch& c) const { return c.wire.empty(); }
  bool has_staged(const Ch& c) const { return !c.staged.empty(); }
  void transmit_staged(Ch& c) { c.wire.push_back(c.staged.pop_front()); }
  std::int64_t deliver(Ch& c) {
    const PacketRef ref = c.wire.pop_front();
    const std::int64_t f = payload_fold(pool.get(ref));
    pool.release(ref);
    return f;
  }
};

// Faithful copy of the pre-pool containers: channels behind a hash map,
// value-typed Packets through deques, and one heap allocation per wire hop
// (the NIC DMA hook used to pin the packet in a shared_ptr pair while the
// bus transfer was in flight).
struct LegacyCommPath {
  struct Ch {
    std::int64_t credits{0};
    std::deque<Packet> staged;
    std::deque<Packet> wire;
  };
  std::unordered_map<int, Ch> ch_map;
  std::int64_t window;

  LegacyCommPath(int /*nodes*/, std::int64_t w) : window(w) {}
  Ch& channel(int dst) {
    auto it = ch_map.find(dst);
    if (it == ch_map.end()) {
      it = ch_map.emplace(dst, Ch{}).first;
      it->second.credits = window;
    }
    return it->second;
  }

  Packet make(int dst, std::uint64_t seq, std::uint64_t r) {
    Packet p;
    fill_packet(p, dst, seq, r);
    return p;
  }
  void transmit(Ch& c, Packet h) {
    auto hook = std::make_shared<std::pair<Packet, int>>(std::move(h), 0);
    c.wire.push_back(std::move(hook->first));
  }
  void stage(Ch& c, Packet h) { c.staged.push_back(std::move(h)); }
  bool wire_empty(const Ch& c) const { return c.wire.empty(); }
  bool has_staged(const Ch& c) const { return !c.staged.empty(); }
  void transmit_staged(Ch& c) {
    transmit(c, std::move(c.staged.front()));
    c.staged.pop_front();
  }
  std::int64_t deliver(Ch& c) {
    const std::int64_t f = payload_fold(c.wire.front());
    c.wire.pop_front();
    return f;
  }
};

template <typename Path>
MicroResult comm_credit_churn() {
  constexpr int kNodes = 8;
  constexpr std::int64_t kWindow = 16;
  constexpr std::int64_t kSends = 700000;
  Path path(kNodes, kWindow);
  std::uint64_t rng = 2026;
  std::int64_t ops = 0;
  std::int64_t sum = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < kSends; ++i) {
    const std::uint64_t r = mix(rng);
    const int dst = static_cast<int>(r % kNodes);
    auto& c = path.channel(dst);
    auto h = path.make(dst, static_cast<std::uint64_t>(i + 1), r);
    if (c.credits > 0) {
      --c.credits;
      path.transmit(c, std::move(h));
    } else {
      path.stage(c, std::move(h));
    }
    ++ops;
    if ((r >> 8) % 4 == 0) {  // receiver turn: drain one channel, return credits
      auto& c2 = path.channel(static_cast<int>((r >> 16) % kNodes));
      std::int64_t returned = 0;
      while (!path.wire_empty(c2)) {
        sum += path.deliver(c2);
        ++ops;
        ++returned;
      }
      c2.credits += returned;
      while (c2.credits > 0 && path.has_staged(c2)) {
        --c2.credits;
        path.transmit_staged(c2);
        ++ops;
      }
    }
  }
  // Final drain so the checksum covers every packet sent.
  for (int d = 0; d < kNodes; ++d) {
    auto& c = path.channel(d);
    for (;;) {
      while (!path.wire_empty(c)) {
        sum += path.deliver(c);
        ++ops;
        ++c.credits;
      }
      if (c.credits > 0 && path.has_staged(c)) {
        --c.credits;
        path.transmit_staged(c);
        ++ops;
      } else {
        break;
      }
    }
  }

  MicroResult res;
  res.wall_seconds = seconds_since(t0);
  res.ops = ops;
  res.checksum = sum;
  return res;
}

// ---------------------------------------------------------------------------
// Retx churn: the NIC reliability sublayer's per-packet shape.
// ---------------------------------------------------------------------------

// Pooled: retransmit ring of PacketRefs (stored copies via pool.clone reuse
// slot payload capacity), sorted void list in a FlatRing.
struct PooledRetxPath {
  PacketPool pool;
  FlatRing<PacketRef> ring;
  FlatRing<std::uint64_t> voided;
  std::uint64_t voids_retired{0};

  PacketRef make(std::uint64_t seq, std::uint64_t r) {
    PacketRef ref = pool.acquire();
    fill_packet(pool.get(ref), 1, seq, r);
    return ref;
  }
  std::uint64_t seq_of(PacketRef h) const { return pool.get(h).hdr.bip_seq; }
  std::size_t ring_size() const { return ring.size(); }
  void store(PacketRef h) { ring.push_back(pool.clone(h)); }
  void evict_oldest() { pool.release(ring.pop_front()); }
  void drop(PacketRef h) { pool.release(h); }
  std::int64_t wire_free(PacketRef h) {
    const std::int64_t f = payload_fold(pool.get(h));
    pool.release(h);
    return f;
  }
  std::uint64_t front_seq() const { return pool.get(ring.front()).hdr.bip_seq; }
  void retire_front() { pool.release(ring.pop_front()); }
  std::int64_t go_back_n() {
    std::int64_t f = 0;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const PacketRef clone = pool.clone(ring.at(i));
      Packet& p = pool.get(clone);
      ++p.hdr.retx_count;
      f += payload_fold(p) + p.hdr.retx_count;
      pool.release(clone);  // retransmitted copy leaves the wire
    }
    return f;
  }
  void record_void(std::uint64_t seq) {
    std::size_t lo = 0;
    std::size_t hi = voided.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (voided.at(mid) < seq) lo = mid + 1;
      else hi = mid;
    }
    voided.insert_at(lo, seq);
  }
  std::uint64_t void_cum(std::uint64_t seq) {
    while (!voided.empty() && voided.front() < seq - 64) {
      voided.pop_front();
      ++voids_retired;
    }
    std::uint64_t n = voids_retired;
    for (std::size_t i = 0; i < voided.size() && voided.at(i) < seq; ++i) ++n;
    return n;
  }
};

// Faithful copy of the pre-pool reliability containers: value-typed Packets
// in deques, every stored/retransmitted copy a fresh heap-backed vector.
struct LegacyRetxPath {
  std::deque<Packet> ring;
  std::deque<std::uint64_t> voided;
  std::uint64_t voids_retired{0};

  Packet make(std::uint64_t seq, std::uint64_t r) {
    Packet p;
    fill_packet(p, 1, seq, r);
    return p;
  }
  std::uint64_t seq_of(const Packet& h) const { return h.hdr.bip_seq; }
  std::size_t ring_size() const { return ring.size(); }
  void store(const Packet& h) { ring.push_back(h); }
  void evict_oldest() { ring.pop_front(); }
  void drop(Packet&&) {}
  std::int64_t wire_free(Packet&& h) {
    // The old DMA hook pinned every outgoing packet in shared state for the
    // bus-transfer completion — one control-block allocation per departure.
    auto hook = std::make_shared<std::pair<Packet, int>>(std::move(h), 0);
    return payload_fold(hook->first);
  }
  std::uint64_t front_seq() const { return ring.front().hdr.bip_seq; }
  void retire_front() { ring.pop_front(); }
  std::int64_t go_back_n() {
    std::int64_t f = 0;
    for (const Packet& stored : ring) {
      Packet clone = stored;
      ++clone.hdr.retx_count;
      f += payload_fold(clone) + clone.hdr.retx_count;
    }
    return f;
  }
  void record_void(std::uint64_t seq) {
    voided.insert(std::lower_bound(voided.begin(), voided.end(), seq), seq);
  }
  std::uint64_t void_cum(std::uint64_t seq) {
    while (!voided.empty() && voided.front() < seq - 64) {
      voided.pop_front();
      ++voids_retired;
    }
    std::uint64_t n = voids_retired;
    for (std::uint64_t v : voided) {
      if (v < seq) ++n;
      else break;
    }
    return n;
  }
};

template <typename Path>
MicroResult retx_churn() {
  constexpr std::int64_t kSends = 400000;
  constexpr std::size_t kRingCap = 64;
  Path path;
  std::uint64_t rng = 77;
  std::int64_t ops = 0;
  std::int64_t sum = 0;
  std::uint64_t acked = 1;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < kSends; ++i) {
    const std::uint64_t r = mix(rng);
    const auto seq = static_cast<std::uint64_t>(i + 1);
    auto h = path.make(seq, r);
    sum += static_cast<std::int64_t>(path.void_cum(seq));
    if (r % 32 == 0) {  // early cancellation: voided in place, never on the wire
      path.record_void(seq);
      path.drop(std::move(h));
      ++ops;
      continue;
    }
    if (path.ring_size() >= kRingCap) path.evict_oldest();
    path.store(h);                      // stored retransmit copy
    sum += path.wire_free(std::move(h));  // original departs the wire
    ++ops;
    if ((r >> 8) % 8 == 0) {  // cumulative ack from the peer
      acked = std::min(seq, acked + 1 + (r >> 16) % 8);
      while (path.ring_size() > 0 && path.front_seq() < acked) {
        path.retire_front();
        ++ops;
      }
    }
    if ((r >> 24) % 128 == 0) {  // NAK: go-back-N over the live ring
      sum += path.go_back_n();
      ops += static_cast<std::int64_t>(path.ring_size());
    }
  }

  MicroResult res;
  res.wall_seconds = seconds_since(t0);
  res.ops = ops;
  res.checksum = sum;
  return res;
}

}  // namespace

const std::vector<MicroBench>& micro_comm_benches() {
  static const std::vector<MicroBench> kBenches = {
      {"micro/comm_credit_churn", comm_credit_churn<PooledCommPath>},
      {"micro/comm_credit_churn_legacy", comm_credit_churn<LegacyCommPath>},
      {"micro/retx_churn", retx_churn<PooledRetxPath>},
      {"micro/retx_churn_legacy", retx_churn<LegacyRetxPath>},
  };
  return kBenches;
}

}  // namespace nicwarp::bench
