#include "micro.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "core/types.hpp"
#include "sim/engine.hpp"
#include "warped/lp.hpp"
#include "warped/object.hpp"

namespace nicwarp::bench {

namespace {

using nicwarp::SimTime;
using nicwarp::VirtualTime;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Deterministic workload mixer (same constants as core splitmix usage).
std::uint64_t mix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// Engine churn: new scheduler vs the pre-optimization reference.
// ---------------------------------------------------------------------------

// Faithful copy of the scheduler this PR replaced: binary heap of (when,seq)
// + id->std::function hash map, cancellation via lazy tombstones. Kept ONLY
// as the baseline half of micro/engine/schedule_run_churn_legacy, so the
// BENCH json always shows what the slot-indexed heap buys.
class LegacyEngine {
 public:
  using Callback = std::function<void()>;
  struct Handle {
    std::uint64_t id{0};
  };

  SimTime now() const { return now_; }

  Handle schedule(SimTime delay, Callback fn) {
    const std::uint64_t id = next_seq_++;
    heap_.push(HeapEntry{now_ + delay, id});
    tasks_.emplace(id, std::move(fn));
    return Handle{id};
  }

  bool cancel(Handle h) { return tasks_.erase(h.id) > 0; }

  std::uint64_t run_until(SimTime deadline) {
    std::uint64_t ran = 0;
    while (!heap_.empty()) {
      const HeapEntry top = heap_.top();
      auto it = tasks_.find(top.seq);
      if (it == tasks_.end()) {  // cancelled
        heap_.pop();
        continue;
      }
      if (top.when > deadline) break;
      heap_.pop();
      Callback fn = std::move(it->second);
      tasks_.erase(it);
      now_ = top.when;
      fn();
      ++ran;
    }
    return ran;
  }

 private:
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    bool operator>(const HeapEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };
  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{1};
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> tasks_;
};

// The churn workload, identical across engines: 64 self-rescheduling actors,
// each activation folds the checksum, cancels one previously-scheduled
// far-future "doomed" task, and schedules its successor plus a fresh doomed
// task. This exercises exactly the schedule/cancel/pop-min cycle the kernel
// and NIC firmware drive on every simulated packet. Actor captures are 24
// bytes — representative of the kernel's host-task closures, and (on
// purpose) past std::function's inline buffer.
constexpr std::int64_t kTarget = 3000000;      // executed activations
constexpr int kActors = 64;
constexpr std::int64_t kDoomedAt = 1LL << 60;  // never reached by run_until

template <typename E>
MicroResult engine_churn() {
  using Handle = decltype(std::declval<E&>().schedule(
      SimTime{}, std::declval<typename E::Callback>()));

  struct St {
    E eng;
    std::int64_t remaining{kTarget};
    std::int64_t sum{0};
    std::uint64_t rng{12345};
    std::vector<Handle> doomed;
  };
  auto st = std::make_unique<St>();
  st->doomed.reserve(kActors + 4);

  struct Actor {
    St* s;
    std::uint64_t id;
    std::uint64_t salt;
    void operator()() {
      s->sum += static_cast<std::int64_t>(id * 31 + (salt & 0xFF));
      if (s->remaining-- <= 0) return;
      if (!s->doomed.empty()) {
        s->eng.cancel(s->doomed.back());
        s->doomed.pop_back();
      }
      const std::uint64_t r = mix(s->rng);
      s->eng.schedule(SimTime{static_cast<std::int64_t>(1 + r % 97)},
                      Actor{s, id, r});
      s->doomed.push_back(
          s->eng.schedule(SimTime{kDoomedAt}, Actor{s, id ^ 0xDEAD, r}));
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  for (int a = 0; a < kActors; ++a) {
    st->eng.schedule(SimTime{1 + a}, Actor{st.get(), static_cast<std::uint64_t>(a), 0});
  }
  const std::uint64_t ran = st->eng.run_until(SimTime{kDoomedAt - 1});

  MicroResult r;
  r.wall_seconds = seconds_since(t0);
  r.ops = static_cast<std::int64_t>(ran);
  r.checksum = st->sum ^ st->eng.now().ns;
  return r;
}

// Pure schedule+cancel-by-handle churn (no execution): fills the slot pool,
// cancels from both ends, refills — the O(1)-cancel path in isolation.
MicroResult engine_cancel_churn() {
  constexpr int kRounds = 400;
  constexpr int kBatch = 25000;
  sim::Engine eng;
  std::vector<sim::TaskHandle> handles;
  handles.reserve(kBatch);
  std::int64_t ops = 0;
  std::int64_t alive = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    handles.clear();
    for (int i = 0; i < kBatch; ++i) {
      handles.push_back(
          eng.schedule(SimTime{1 + ((i * 7919) % 1000)}, [&alive] { ++alive; }));
      ++ops;
    }
    // Cancel from both ends toward the middle; leave every 16th to run.
    std::size_t lo = 0, hi = handles.size();
    while (lo < hi) {
      if (lo % 16 != 0 && eng.cancel(handles[lo])) ++ops;
      ++lo;
      if (lo >= hi) break;
      --hi;
      if (hi % 16 != 0 && eng.cancel(handles[hi])) ++ops;
    }
    ops += static_cast<std::int64_t>(eng.run_until(eng.now() + SimTime{2000}));
  }

  MicroResult r;
  r.wall_seconds = seconds_since(t0);
  r.ops = ops;
  r.checksum = alive ^ eng.now().ns ^ static_cast<std::int64_t>(eng.executed());
  return r;
}

// ---------------------------------------------------------------------------
// LogicalProcess churn.
// ---------------------------------------------------------------------------

struct MicroState : warped::CloneableState<MicroState> {
  std::int64_t acc{0};
};

// `fanout` false: pure state update. true: every execution also sends one
// event onward (ring topology), feeding the rollback bench's queues.
class MicroObject final : public warped::SimulationObject {
 public:
  MicroObject(ObjectId id, ObjectId ring, bool fanout)
      : SimulationObject(id, "m" + std::to_string(id), std::make_unique<MicroState>()),
        ring_(ring),
        fanout_(fanout) {}

  void initialize(warped::ObjectContext&) override {}

  void execute(warped::ObjectContext& ctx, const warped::EventMsg& ev) override {
    auto& st = state_as<MicroState>();
    st.acc += ev.data.empty() ? 1 : ev.data[0];
    ctx.fold_signature(st.acc * 17 + ctx.now().t);
    if (fanout_) {
      ctx.send(ring_, ctx.now() + 3 + (st.acc & 7), {st.acc & 1023});
    }
  }

 private:
  ObjectId ring_;
  bool fanout_;
};

warped::EventMsg external_event(ObjectId dst, std::int64_t recv,
                                std::uint64_t uniq) {
  warped::EventMsg ev;
  ev.src_obj = 9999;
  ev.dst_obj = dst;
  ev.send_ts = VirtualTime{recv - 1};
  ev.recv_ts = VirtualTime{recv};
  ev.id = warped::make_event_id(warped::make_root_id(dst), 9999,
                                static_cast<std::uint32_t>(uniq));
  ev.data = {static_cast<std::int64_t>(uniq & 255)};
  return ev;
}

// Insert/annihilate churn: batches of positives, half of which are killed
// by antis while still pending (the indexed-annihilation fast path), the
// rest executed.
MicroResult lp_insert_annihilate() {
  constexpr int kObjects = 32;
  constexpr int kRounds = 150;
  constexpr int kBatch = 2000;
  StatsRegistry stats;
  warped::LogicalProcess lp(0, stats, 42);
  for (int o = 0; o < kObjects; ++o) {
    lp.add_object(std::make_unique<MicroObject>(o, (o + 1) % kObjects, false));
  }

  std::int64_t ops = 0;
  std::uint64_t uniq = 0;
  std::int64_t base = 1;
  std::uint64_t rng = 99;

  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kRounds; ++round) {
    std::vector<warped::EventMsg> batch;
    batch.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      const std::uint64_t r = mix(rng);
      batch.push_back(external_event(static_cast<ObjectId>(r % kObjects),
                                     base + static_cast<std::int64_t>(r % 5000),
                                     ++uniq));
    }
    for (const auto& ev : batch) {
      lp.insert(ev);
      ++ops;
    }
    // Annihilate every other one while it is still pending.
    for (std::size_t i = 0; i < batch.size(); i += 2) {
      lp.insert(batch[i].as_anti());
      ++ops;
    }
    while (lp.has_ready_event()) {
      lp.execute_next();
      ++ops;
    }
    base += 5001;  // next round strictly in the future: no stragglers here
  }

  MicroResult r;
  r.wall_seconds = seconds_since(t0);
  r.ops = ops;
  r.checksum = lp.signature_sum() ^
               static_cast<std::int64_t>(lp.events_processed());
  return r;
}

// Rollback churn: execute a ring workload, then land a straggler under the
// processed horizon every round — rollback, anti generation, re-insertion,
// and annihilation of the antis against their positives.
MicroResult lp_rollback_churn() {
  constexpr int kObjects = 16;
  constexpr int kRounds = 400;
  StatsRegistry stats;
  warped::LogicalProcess lp(0, stats, 42, warped::RollbackScope::kObject);
  for (int o = 0; o < kObjects; ++o) {
    lp.add_object(std::make_unique<MicroObject>(o, (o + 1) % kObjects, true));
  }

  std::int64_t ops = 0;
  std::uint64_t uniq = 0;
  std::uint64_t rng = 7;

  // Deliver a batch of messages (sends or antis) transitively: every insert
  // can trigger an anti-rollback whose own antis must also land, or the
  // bench would leak ghost positives between rounds.
  std::deque<warped::EventMsg> inbox;
  auto deliver_all = [&] {
    while (!inbox.empty()) {
      warped::EventMsg m = std::move(inbox.front());
      inbox.pop_front();
      auto res = lp.insert(std::move(m));
      ++ops;
      for (auto& a : res.antis) inbox.push_back(std::move(a));
    }
  };

  // Seed each object, then keep the ring alive by reinserting sends.
  std::int64_t horizon = 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (int o = 0; o < kObjects; ++o) {
    lp.insert(external_event(o, horizon + o, ++uniq));
  }
  for (int round = 0; round < kRounds; ++round) {
    // Drain up to a bounded number of executions, routing sends back in.
    for (int step = 0; step < 400 && lp.has_ready_event(); ++step) {
      auto ex = lp.execute_next();
      ++ops;
      horizon = std::max(horizon, ex.ts.t);
      for (auto& s : ex.sends) inbox.push_back(std::move(s));
      for (auto& a : ex.antis) inbox.push_back(std::move(a));
      deliver_all();
    }
    // Straggler: below the processed horizon, forcing a rollback whose
    // antis we deliver right back (annihilation against pending positives).
    const std::uint64_t r = mix(rng);
    const std::int64_t ts = std::max<std::int64_t>(1, horizon - 40);
    inbox.push_back(
        external_event(static_cast<ObjectId>(r % kObjects), ts, ++uniq));
    deliver_all();
  }

  MicroResult r;
  r.wall_seconds = seconds_since(t0);
  r.ops = ops;
  r.checksum = lp.signature_sum() ^
               static_cast<std::int64_t>(lp.events_processed()) ^
               static_cast<std::int64_t>(lp.rollbacks() * 131);
  return r;
}

// ---------------------------------------------------------------------------
// State-saving churn: incremental undo-log vs the full-copy discipline it
// replaced, over an identical rollback-heavy schedule with a deliberately
// fat (2 KB) state. The legacy twin runs the exact pre-PR configuration
// (copy mode, period 1), so the BENCH json always shows what the undo log
// buys: a few dozen logged bytes per event instead of a 2 KB clone.
// ---------------------------------------------------------------------------

struct ChurnState : warped::CloneableState<ChurnState> {
  std::array<std::int64_t, 256> slots{};
  std::int64_t cursor{0};
};

class ChurnObject final : public warped::SimulationObject {
 public:
  ChurnObject(ObjectId id, ObjectId ring)
      : SimulationObject(id, "c" + std::to_string(id),
                         std::make_unique<ChurnState>()),
        ring_(ring) {}

  void initialize(warped::ObjectContext&) override {}

  void execute(warped::ObjectContext& ctx, const warped::EventMsg& ev) override {
    auto& st = state_as<ChurnState>();
    const std::int64_t v = ev.data.empty() ? 1 : ev.data[0];
    // Touch two slots plus the cursor: a sparse write set against a fat
    // state, the regime incremental saving is built for.
    const auto a = static_cast<std::size_t>((st.cursor + v) & 255);
    const auto b = static_cast<std::size_t>((st.cursor * 31 + v + 1) & 255);
    st.mut(st.slots[a]) += v + 1;
    st.mut(st.slots[b]) ^= st.slots[a] + 0x9E3779B9;
    st.mut(st.cursor) = st.slots[b] & 0x7FFFFFFF;
    ctx.fold_signature(st.slots[a] * 17 + ctx.now().t);
    ctx.send(ring_, ctx.now() + 3 + (st.slots[a] & 7), {st.slots[a] & 1023});
  }

 private:
  ObjectId ring_;
};

// Same shape as lp_rollback_churn: ring fan-out plus a per-round straggler
// under the horizon. Both state-saving modes run this byte-for-byte identical
// schedule, so their checksums must match — the bench doubles as an
// equivalence check between undo-replay and snapshot-restore rollback.
MicroResult lp_state_churn(warped::StateSaveMode mode, std::int64_t period) {
  constexpr int kObjects = 16;
  constexpr int kRounds = 250;
  StatsRegistry stats;
  warped::LogicalProcess lp(0, stats, 42, warped::RollbackScope::kObject,
                            warped::CancellationMode::kAggressive, period, mode);
  for (int o = 0; o < kObjects; ++o) {
    lp.add_object(std::make_unique<ChurnObject>(o, (o + 1) % kObjects));
  }

  std::int64_t ops = 0;
  std::uint64_t uniq = 0;
  std::uint64_t rng = 7;

  std::deque<warped::EventMsg> inbox;
  auto deliver_all = [&] {
    while (!inbox.empty()) {
      warped::EventMsg m = std::move(inbox.front());
      inbox.pop_front();
      auto res = lp.insert(std::move(m));
      ++ops;
      for (auto& a : res.antis) inbox.push_back(std::move(a));
    }
  };

  std::int64_t horizon = 1;
  const auto t0 = std::chrono::steady_clock::now();
  for (int o = 0; o < kObjects; ++o) {
    lp.insert(external_event(o, horizon + o, ++uniq));
  }
  for (int round = 0; round < kRounds; ++round) {
    for (int step = 0; step < 400 && lp.has_ready_event(); ++step) {
      auto ex = lp.execute_next();
      ++ops;
      horizon = std::max(horizon, ex.ts.t);
      for (auto& s : ex.sends) inbox.push_back(std::move(s));
      for (auto& a : ex.antis) inbox.push_back(std::move(a));
      deliver_all();
    }
    const std::uint64_t r = mix(rng);
    const std::int64_t ts = std::max<std::int64_t>(1, horizon - 40);
    inbox.push_back(
        external_event(static_cast<ObjectId>(r % kObjects), ts, ++uniq));
    deliver_all();
  }

  MicroResult r;
  r.wall_seconds = seconds_since(t0);
  r.ops = ops;
  r.checksum = lp.signature_sum() ^
               static_cast<std::int64_t>(lp.events_processed()) ^
               static_cast<std::int64_t>(lp.rollbacks() * 131);
  return r;
}

MicroResult lp_state_churn_incremental() {
  // Period 0 = adaptive checkpoint interval.
  return lp_state_churn(warped::StateSaveMode::kIncremental, 0);
}

MicroResult lp_state_churn_legacy() {
  return lp_state_churn(warped::StateSaveMode::kCopy, 1);
}

}  // namespace

const std::vector<MicroBench>& micro_benches() {
  static const std::vector<MicroBench> kBenches = [] {
    std::vector<MicroBench> v = {
        {"micro/engine/schedule_run_churn", [] { return engine_churn<sim::Engine>(); }},
        {"micro/engine/schedule_run_churn_legacy",
         [] { return engine_churn<LegacyEngine>(); }},
        {"micro/engine/cancel_churn", engine_cancel_churn},
        {"micro/lp/insert_annihilate", lp_insert_annihilate},
        {"micro/lp/rollback_churn", lp_rollback_churn},
        {"micro/lp/state_churn", lp_state_churn_incremental},
        {"micro/lp/state_churn_legacy", lp_state_churn_legacy},
    };
    const auto& comm = micro_comm_benches();
    v.insert(v.end(), comm.begin(), comm.end());
    return v;
  }();
  return kBenches;
}

}  // namespace nicwarp::bench
