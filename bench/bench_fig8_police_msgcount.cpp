// Figure 8: "Overall Messages Generated (including messages that will be
// canceled)" for the POLICE model, baseline WARPED versus direct
// cancellation, versus the number of police stations.
//
// Expected shape (paper): cancellation reduces the total message count
// "ostensibly because of the reduction in the rollbacks due to the
// elimination of some of the anti-messages before they cause erroneous
// computation at their destination".
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> stations = {900, 1000, 2000, 3000, 4000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t s : stations) {
    for (bool cancel : {false, true}) {
      harness::ExperimentConfig cfg = bench::cancel_preset(harness::ModelKind::kPolice);
      cfg.police.stations = s;
      cfg.early_cancel = cancel;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 8 — POLICE overall messages generated (incl. later-cancelled)");
  t.set_header({"police stations", "WARPED msgs", "cancel msgs", "WARPED rollbacks",
                "cancel rollbacks", "reduction"});
  for (std::size_t i = 0; i < stations.size(); ++i) {
    const auto& off = results[2 * i];
    const auto& on = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(stations[i]))},
            {&off, &on})) {
      continue;
    }
    const std::int64_t moff = off.event_msgs_generated + off.antis_generated;
    const std::int64_t mon = on.event_msgs_generated + on.antis_generated;
    const double red =
        100.0 * static_cast<double>(moff - mon) / static_cast<double>(moff);
    t.add_row({harness::Table::num(static_cast<std::int64_t>(stations[i])),
               harness::Table::num(moff), harness::Table::num(mon),
               harness::Table::num(off.rollbacks), harness::Table::num(on.rollbacks),
               harness::Table::pct(red, 1)});
    bench::register_point("fig8/warped/stations:" + std::to_string(stations[i]), off);
    bench::register_point("fig8/cancel/stations:" + std::to_string(stations[i]), on);
  }
  return bench::finish(t, argc, argv);
}
