// Figure 5(b): "POLICE — NIC GVT Rounds" — number of GVT ring circulations
// over the whole run versus GVT period.
//
// Expected shape (paper): WARPED's round count explodes toward small periods
// (the paper reports ~450,000 at GVT_COUNT = 1) because the host initiates
// an estimation per period regardless of outstanding tokens; the NIC's count
// stays "relatively constant" because GvtTokenPending serializes estimations
// and the NIC opportunistically forwards GVT information.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> periods = {1, 10, 100, 1000, 10000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t p : periods) {
    for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic}) {
      harness::ExperimentConfig cfg = bench::gvt_preset(harness::ModelKind::kPolice);
      cfg.gvt_period = p;
      cfg.gvt_mode = mode;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 5b — POLICE number of GVT rounds");
  t.set_header({"GVT period (events)", "WARPED rounds", "NIC GVT rounds",
                "WARPED estimations", "NIC estimations"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& host = results[2 * i];
    const auto& nic = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(periods[i]))},
            {&host, &nic})) {
      continue;
    }
    t.add_row({harness::Table::num(static_cast<std::int64_t>(periods[i])),
               harness::Table::num(host.gvt_rounds), harness::Table::num(nic.gvt_rounds),
               harness::Table::num(host.gvt_estimations),
               harness::Table::num(nic.gvt_estimations)});
    bench::register_point("fig5b/warped/period:" + std::to_string(periods[i]), host);
    bench::register_point("fig5b/nicgvt/period:" + std::to_string(periods[i]), nic);
  }
  return bench::finish(t, argc, argv);
}
