// Figure 6(b): "RAID Message Count — NIC Direct Cancelation" — total
// messages sent versus the number of disk requests, baseline WARPED versus
// direct cancellation.
//
// Expected shape (paper): both grow linearly with requests; the cancellation
// line sits visibly below the baseline (dropped-in-place messages plus the
// secondary rollbacks they no longer cause).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> requests = {5000, 10000, 20000, 40000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t r : requests) {
    for (bool cancel : {false, true}) {
      harness::ExperimentConfig cfg = bench::cancel_preset(harness::ModelKind::kRaid);
      cfg.raid.total_requests = r;
      cfg.early_cancel = cancel;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 6b — RAID messages sent with NIC direct cancellation");
  t.set_header({"disk requests", "WARPED msgs sent", "cancel msgs sent", "NIC drops",
                "reduction"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto& off = results[2 * i];
    const auto& on = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(requests[i]))},
            {&off, &on})) {
      continue;
    }
    const double red =
        100.0 * static_cast<double>(off.wire_packets - on.wire_packets) /
        static_cast<double>(off.wire_packets);
    t.add_row({harness::Table::num(static_cast<std::int64_t>(requests[i])),
               harness::Table::num(off.wire_packets), harness::Table::num(on.wire_packets),
               harness::Table::num(on.dropped_by_nic), harness::Table::pct(red, 2)});
    bench::register_point("fig6b/warped/requests:" + std::to_string(requests[i]), off);
    bench::register_point("fig6b/cancel/requests:" + std::to_string(requests[i]), on);
  }
  return bench::finish(t, argc, argv);
}
