// Figure 5(a): "POLICE Performance with NIC GVT (8 Processors)" — simulated
// execution time versus GVT period.
//
// Expected shape (paper): at highly aggressive GVT the traditional
// implementation "breaks down because the communication traffic overwhelms
// the host processor resources"; the NIC version does not. The two converge
// as GVT becomes infrequent.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> periods = {1, 10, 100, 1000, 10000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t p : periods) {
    for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic}) {
      harness::ExperimentConfig cfg = bench::gvt_preset(harness::ModelKind::kPolice);
      cfg.gvt_period = p;
      cfg.gvt_mode = mode;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 5a — POLICE performance with NIC GVT (simulated seconds)");
  t.set_header({"GVT period (events)", "WARPED (s)", "NIC GVT (s)", "signatures"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& host = results[2 * i];
    const auto& nic = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(periods[i]))},
            {&host, &nic})) {
      continue;
    }
    t.add_row({harness::Table::num(static_cast<std::int64_t>(periods[i])),
               harness::Table::num(host.sim_seconds, 4),
               harness::Table::num(nic.sim_seconds, 4),
               host.signature == nic.signature ? "match" : "MISMATCH"});
    bench::register_point("fig5a/warped/period:" + std::to_string(periods[i]), host);
    bench::register_point("fig5a/nicgvt/period:" + std::to_string(periods[i]), nic);
  }
  return bench::finish(t, argc, argv);
}
