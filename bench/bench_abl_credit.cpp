// Ablation A2: §3.2's flow-control repair under NIC packet dropping.
//
// Dropped packets consumed MPICH credits the receiver can never return. The
// paper fixes this with sequence numbers plus NIC-side credit tracking; this
// testbed refunds at the sender from the drop notices. With the repair
// disabled, the window leaks shut and the sender survives only through a
// timeout/resync fallback. The repair is a LIVENESS feature: both variants
// must complete with identical signatures. Run time may move either way —
// in the congestion regime the broken variant's stalls act as accidental
// send throttling, which is itself an instructive data point.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> stations = {900, 2000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t s : stations) {
    for (bool repair : {true, false}) {
      harness::ExperimentConfig cfg = bench::cancel_preset(harness::ModelKind::kPolice);
      cfg.police.stations = s;
      cfg.early_cancel = true;
      cfg.credit_repair = repair;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Ablation A2 — early cancellation with/without credit repair");
  t.set_header({"police stations", "repaired (s)", "broken (s)", "delta",
                "NIC drops (repaired)", "signatures"});
  for (std::size_t i = 0; i < stations.size(); ++i) {
    const auto& with = results[2 * i];
    const auto& without = results[2 * i + 1];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(stations[i]))},
            {&with, &without})) {
      continue;
    }
    const double penalty =
        100.0 * (without.sim_seconds - with.sim_seconds) / with.sim_seconds;
    t.add_row({harness::Table::num(static_cast<std::int64_t>(stations[i])),
               harness::Table::num(with.sim_seconds, 4),
               harness::Table::num(without.sim_seconds, 4),
               harness::Table::pct(penalty, 2), harness::Table::num(with.dropped_by_nic),
               with.signature == without.signature ? "match" : "MISMATCH"});
    bench::register_point("abl_credit/repair/stations:" + std::to_string(stations[i]),
                          with);
    bench::register_point("abl_credit/broken/stations:" + std::to_string(stations[i]),
                          without);
  }
  return bench::finish(t, argc, argv);
}
