// Figure 7(b): "Percentage of Canceled Messages Dropped by NIC" for the
// POLICE model, versus the number of police stations.
//
// A cancelled message is one for which the host generated an anti-message;
// it was "dropped by the NIC" when the positive died in the send ring or at
// the host-tx hook instead of crossing the wire. The paper reports 52–62%;
// this testbed lands in the same tens-of-percent band (see EXPERIMENTS.md
// for the calibration discussion).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> stations = {900, 1000, 2000, 3000, 4000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t s : stations) {
    harness::ExperimentConfig cfg = bench::cancel_preset(harness::ModelKind::kPolice);
    cfg.police.stations = s;
    cfg.early_cancel = true;
    cfgs.push_back(cfg);
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Fig. 7b — percentage of cancelled messages dropped by the NIC");
  t.set_header({"police stations", "cancelled (antis)", "dropped by NIC",
                "antis filtered", "% dropped"});
  for (std::size_t i = 0; i < stations.size(); ++i) {
    const auto& r = results[i];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(stations[i]))}, {&r})) {
      continue;
    }
    const double pct = r.antis_generated > 0
                           ? 100.0 * static_cast<double>(r.dropped_by_nic) /
                                 static_cast<double>(r.antis_generated)
                           : 0.0;
    t.add_row({harness::Table::num(static_cast<std::int64_t>(stations[i])),
               harness::Table::num(r.antis_generated),
               harness::Table::num(r.dropped_by_nic),
               harness::Table::num(r.filtered_antis), harness::Table::pct(pct, 1)});
    bench::register_point("fig7b/cancel/stations:" + std::to_string(stations[i]), r);
  }
  return bench::finish(t, argc, argv);
}
