// Ablation A4: WARPED's two host GVT algorithms against the NIC version.
//
// The paper: "WARPED implements two GVT algorithms, pGVT and Mattern's
// algorithm. We use Mattern's algorithm because it has a lower overhead and
// produces good estimates." pGVT's cost is an acknowledgement per remote
// event message; this bench quantifies that and places all three on one
// axis.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;
  const std::vector<std::int64_t> periods = {10, 100, 1000};

  std::vector<harness::ExperimentConfig> cfgs;
  for (std::int64_t p : periods) {
    for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kPGvt,
                      warped::GvtMode::kNic}) {
      harness::ExperimentConfig cfg = bench::gvt_preset(harness::ModelKind::kRaid);
      cfg.gvt_period = p;
      cfg.gvt_mode = mode;
      cfgs.push_back(cfg);
    }
  }
  bench::enable_latency(cfgs);
  const auto results = bench::run_sweep(cfgs);

  harness::Table t("Ablation A4 — Mattern vs pGVT vs NIC GVT (RAID)");
  t.set_header({"GVT period", "Mattern (s)", "pGVT (s)", "NIC GVT (s)",
                "pGVT wire pkts", "Mattern wire pkts"});
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const auto& mat = results[3 * i];
    const auto& pg = results[3 * i + 1];
    const auto& nic = results[3 * i + 2];
    if (bench::add_error_rows(
            t, {harness::Table::num(static_cast<std::int64_t>(periods[i]))},
            {&mat, &pg, &nic})) {
      continue;
    }
    t.add_row({harness::Table::num(static_cast<std::int64_t>(periods[i])),
               harness::Table::num(mat.sim_seconds, 4),
               harness::Table::num(pg.sim_seconds, 4),
               harness::Table::num(nic.sim_seconds, 4),
               harness::Table::num(pg.wire_packets), harness::Table::num(mat.wire_packets)});
    bench::register_point("abl_pgvt/mattern/period:" + std::to_string(periods[i]), mat);
    bench::register_point("abl_pgvt/pgvt/period:" + std::to_string(periods[i]), pg);
    bench::register_point("abl_pgvt/nic/period:" + std::to_string(periods[i]), nic);
  }
  return bench::finish(t, argc, argv);
}
