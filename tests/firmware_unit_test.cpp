// Unit tests for the firmware modules against a scripted fake NicContext —
// the token protocol, handshake sequencing, coloring, and the cancellation
// drop rules, each exercised in isolation from the full testbed.
#include <gtest/gtest.h>

#include <deque>

#include "firmware/cancel_firmware.hpp"
#include "firmware/combined_firmware.hpp"
#include "firmware/gvt_firmware.hpp"

namespace nicwarp::firmware {
namespace {

class FakeNicContext final : public hw::NicContext {
 public:
  FakeNicContext(NodeId id, std::uint32_t world) : id_(id), world_(world) {}

  NodeId node_id() const override { return id_; }
  std::uint32_t world_size() const override { return world_; }
  SimTime now() const override { return now_; }
  const hw::CostModel& cost() const override { return cost_; }
  hw::Mailbox& mailbox() override { return mailbox_; }
  StatsRegistry& stats() override { return stats_; }

  std::size_t send_ring_size() const override { return ring_.size(); }
  const hw::Packet& send_ring_at(std::size_t i) const override { return ring_.at(i); }
  hw::Packet& send_ring_mutable_at(std::size_t i) override { return ring_.at(i); }
  hw::Packet drop_from_send_ring(std::size_t i) override {
    hw::Packet p = std::move(ring_.at(i));
    ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(i));
    return p;
  }
  void emit(hw::Packet pkt) override { emitted.push_back(std::move(pkt)); }
  void deliver_to_host(hw::Packet pkt) override { delivered.push_back(std::move(pkt)); }
  void schedule(SimTime delay, SmallFn<SimTime(), 64> fn) override {
    timers.push_back({now_ + delay, std::move(fn)});
  }

  // --- test controls ---
  void advance_to(SimTime t) {
    // Fire due timers in order (each may schedule more).
    for (;;) {
      std::size_t best = timers.size();
      for (std::size_t i = 0; i < timers.size(); ++i) {
        if (timers[i].first <= t && (best == timers.size() ||
                                     timers[i].first < timers[best].first)) {
          best = i;
        }
      }
      if (best == timers.size()) break;
      auto [when, fn] = std::move(timers[best]);
      timers.erase(timers.begin() + static_cast<std::ptrdiff_t>(best));
      now_ = when;
      fn();
    }
    now_ = t;
  }

  std::deque<hw::Packet> ring_;
  std::vector<hw::Packet> emitted;
  std::vector<hw::Packet> delivered;
  std::vector<std::pair<SimTime, SmallFn<SimTime(), 64>>> timers;
  hw::CostModel cost_;
  hw::Mailbox mailbox_;
  StatsRegistry stats_;
  SimTime now_{SimTime::zero()};
  NodeId id_;
  std::uint32_t world_;
};

hw::Packet event_pkt(NodeId dst, ObjectId src_obj, ObjectId dst_obj, std::int64_t send_ts,
                     EventId id, bool negative = false, std::uint64_t counter = 0) {
  hw::Packet p;
  p.hdr.kind = hw::PacketKind::kEvent;
  p.hdr.dst = dst;
  p.hdr.src_obj = src_obj;
  p.hdr.dst_obj = dst_obj;
  p.hdr.send_ts = VirtualTime{send_ts};
  p.hdr.recv_ts = VirtualTime{send_ts + 5};
  p.hdr.event_id = id;
  p.hdr.negative = negative;
  p.hdr.anti_counter_pb = counter;
  p.hdr.size_bytes = 128;
  return p;
}

// ---------------------------------------------------------------------------
// CancelFirmware drop rules
// ---------------------------------------------------------------------------

class CancelUnit : public ::testing::Test {
 protected:
  CancelUnit() : ctx_(0, 4) {
    CancelFirmwareOptions opts;
    opts.lp_scope = true;
    fw_ = std::make_unique<CancelFirmware>(opts);
    fw_->attach(ctx_);
  }
  FakeNicContext ctx_;
  std::unique_ptr<CancelFirmware> fw_;
};

TEST_F(CancelUnit, IncomingAntiScansRingAndDropsDoomed) {
  // Ring holds three positives: ts 120, 85, 110 (FIFO order), all generated
  // pre-anti (counter 0). An anti with receive ts 100 arrives (paper Fig 3b).
  ctx_.ring_.push_back(event_pkt(1, 7, 9, 120, 1001));
  ctx_.ring_.push_back(event_pkt(2, 8, 9, 85, 1002));
  ctx_.ring_.push_back(event_pkt(3, 7, 9, 110, 1003));

  hw::Packet anti = event_pkt(0, 5, 7, 100, 2000, /*negative=*/true);
  anti.hdr.recv_ts = VirtualTime{100};
  const auto r = fw_->on_net_rx(anti);
  EXPECT_EQ(r.action, hw::Firmware::Action::kForward);  // antis reach the host

  // 120 and 110 dropped; 85 survives (not beyond the rollback point).
  ASSERT_EQ(ctx_.ring_.size(), 1u);
  EXPECT_EQ(ctx_.ring_[0].hdr.send_ts, (VirtualTime{85}));
  EXPECT_EQ(ctx_.stats_.value("cancel.dropped_positive"), 2);
  // Drop entries recorded under the dropped packets' sender objects.
  EXPECT_TRUE(ctx_.mailbox_.take_dropped(7, 1001));
  EXPECT_TRUE(ctx_.mailbox_.take_dropped(7, 1003));
}

TEST_F(CancelUnit, PostAntiMessagesAreNotDropped) {
  hw::Packet anti = event_pkt(0, 5, 7, 100, 2000, true);
  anti.hdr.recv_ts = VirtualTime{100};
  fw_->on_net_rx(anti);  // host counter will be 1 after processing

  // FIFO channel order: pre-anti messages (counter 0) arrive first and are
  // doomed; post-anti messages (counter 1) follow and must pass. The
  // counter-1 arrival also prunes the anti record (the host has caught up).
  hw::Packet pre = event_pkt(1, 7, 9, 150, 1005, false, /*counter=*/0);
  EXPECT_EQ(fw_->on_host_tx(pre).action, hw::Firmware::Action::kDrop);
  hw::Packet post = event_pkt(1, 7, 9, 150, 1004, false, /*counter=*/1);
  EXPECT_EQ(fw_->on_host_tx(post).action, hw::Firmware::Action::kForward);
  // Record pruned: later high-timestamp traffic flows untouched.
  hw::Packet later = event_pkt(1, 7, 9, 200, 1006, false, /*counter=*/1);
  EXPECT_EQ(fw_->on_host_tx(later).action, hw::Firmware::Action::kForward);
}

TEST_F(CancelUnit, AntiFromHostIsFilteredWhenItsPositiveWasDropped) {
  hw::Packet anti_in = event_pkt(0, 5, 7, 100, 2000, true);
  anti_in.hdr.recv_ts = VirtualTime{100};
  fw_->on_net_rx(anti_in);
  hw::Packet doomed = event_pkt(1, 7, 9, 150, 1006, false, 0);
  ASSERT_EQ(fw_->on_host_tx(doomed).action, hw::Firmware::Action::kDrop);

  // The host's matching anti (generated at its rollback) must die too.
  hw::Packet anti_out = event_pkt(1, 7, 9, 150, 1006, true, 1);
  EXPECT_EQ(fw_->on_host_tx(anti_out).action, hw::Firmware::Action::kDrop);
  EXPECT_EQ(ctx_.stats_.value("cancel.filtered_anti"), 1);
  // Both produced accounting notices.
  EXPECT_EQ(ctx_.mailbox_.drop_notices.size(), 2u);
  EXPECT_FALSE(ctx_.mailbox_.drop_notices[0].negative);
  EXPECT_TRUE(ctx_.mailbox_.drop_notices[1].negative);
}

TEST_F(CancelUnit, RingAntiBeforeDoomedPositiveIsNotFiltered) {
  // Ring: [anti(X), positive(X)] — the anti pairs with an EARLIER
  // incarnation already on the wire; only the positive may be dropped.
  ctx_.ring_.push_back(event_pkt(1, 7, 9, 150, 1007, /*negative=*/true, 0));
  ctx_.ring_.push_back(event_pkt(1, 7, 9, 150, 1007, /*negative=*/false, 0));

  hw::Packet anti = event_pkt(0, 5, 7, 100, 2000, true);
  anti.hdr.recv_ts = VirtualTime{100};
  fw_->on_net_rx(anti);

  ASSERT_EQ(ctx_.ring_.size(), 1u);
  EXPECT_TRUE(ctx_.ring_[0].hdr.negative) << "the leading anti must survive";
  EXPECT_EQ(ctx_.stats_.value("cancel.filtered_anti"), 0);
}

TEST_F(CancelUnit, RingAntiAfterDoomedPositiveIsFiltered) {
  // Ring: [positive(X), anti(X)] — the pair dies together.
  ctx_.ring_.push_back(event_pkt(1, 7, 9, 150, 1008, false, 0));
  ctx_.ring_.push_back(event_pkt(1, 7, 9, 150, 1008, true, 0));

  hw::Packet anti = event_pkt(0, 5, 7, 100, 2000, true);
  anti.hdr.recv_ts = VirtualTime{100};
  fw_->on_net_rx(anti);

  EXPECT_TRUE(ctx_.ring_.empty());
  EXPECT_EQ(ctx_.stats_.value("cancel.dropped_positive"), 1);
  EXPECT_EQ(ctx_.stats_.value("cancel.filtered_anti"), 1);
  // The pair consumed its own entry: nothing left for the host to suppress.
  EXPECT_FALSE(ctx_.mailbox_.take_dropped(7, 1008));
}

TEST_F(CancelUnit, ObjectScopeOnlyDropsTheTargetsObjects) {
  CancelFirmwareOptions opts;
  opts.lp_scope = false;
  CancelFirmware objfw(opts);
  objfw.attach(ctx_);

  ctx_.ring_.push_back(event_pkt(1, /*src_obj=*/7, 9, 150, 1009, false, 0));
  ctx_.ring_.push_back(event_pkt(1, /*src_obj=*/8, 9, 150, 1010, false, 0));

  // Anti targets local object 7: only object 7's output is doomed.
  hw::Packet anti = event_pkt(0, 5, /*dst_obj=*/7, 100, 2001, true);
  anti.hdr.recv_ts = VirtualTime{100};
  objfw.on_net_rx(anti);

  ASSERT_EQ(ctx_.ring_.size(), 1u);
  EXPECT_EQ(ctx_.ring_[0].hdr.src_obj, 8u);
}

TEST_F(CancelUnit, ControlPacketsAreNeverDropped) {
  hw::Packet anti = event_pkt(0, 5, 7, 100, 2000, true);
  anti.hdr.recv_ts = VirtualTime{100};
  fw_->on_net_rx(anti);

  hw::Packet tok;
  tok.hdr.kind = hw::PacketKind::kHostGvtToken;
  tok.hdr.dst = 1;
  EXPECT_EQ(fw_->on_host_tx(tok).action, hw::Firmware::Action::kForward);
  hw::Packet cr;
  cr.hdr.kind = hw::PacketKind::kCreditUpdate;
  cr.hdr.dst = 1;
  EXPECT_EQ(fw_->on_host_tx(cr).action, hw::Firmware::Action::kForward);
}

TEST_F(CancelUnit, DroppedPbStampedOnNextDeparture) {
  hw::Packet anti = event_pkt(0, 5, 7, 100, 2000, true);
  anti.hdr.recv_ts = VirtualTime{100};
  fw_->on_net_rx(anti);
  hw::Packet doomed = event_pkt(1, 7, 9, 150, 1011, false, 0);
  ASSERT_EQ(fw_->on_host_tx(doomed).action, hw::Firmware::Action::kDrop);

  hw::Packet next = event_pkt(1, 7, 9, 150, 1012, false, 5);
  fw_->on_wire_tx(next);
  EXPECT_EQ(next.hdr.dropped_pb, 1u);
  // One-shot: the counter was consumed.
  hw::Packet after = event_pkt(1, 7, 9, 151, 1013, false, 5);
  fw_->on_wire_tx(after);
  EXPECT_EQ(after.hdr.dropped_pb, 0u);
}

// ---------------------------------------------------------------------------
// GvtFirmware protocol
// ---------------------------------------------------------------------------

class GvtUnit : public ::testing::Test {
 protected:
  GvtUnit(NodeId id = 0, std::uint32_t world = 3) : ctx_(id, world) {
    GvtFirmwareOptions opts;
    opts.period = 10;
    opts.autonomy_us = 1e9;  // no autonomous initiation during the test
    fw_ = std::make_unique<GvtFirmware>(opts);
    fw_->attach(ctx_);
    ctx_.mailbox_.timewarp_initialised = true;
  }

  // Answers the pending handshake through the mailbox and runs the poll.
  void answer_handshake(std::int64_t lvt) {
    ASSERT_FALSE(ctx_.delivered.empty()) << "no handshake notification";
    const hw::Packet notify = ctx_.delivered.back();
    ASSERT_EQ(notify.hdr.kind, hw::PacketKind::kNicGvtToken);
    ctx_.mailbox_.host_values.valid = true;
    ctx_.mailbox_.host_values.epoch = notify.hdr.gvt.epoch;
    ctx_.mailbox_.host_values.lvt = VirtualTime{lvt};
    ctx_.mailbox_.handshake_requested = false;
    ctx_.advance_to(ctx_.now() + SimTime::from_us(200));  // poll fires
  }

  FakeNicContext ctx_;
  std::unique_ptr<GvtFirmware> fw_;
};

TEST_F(GvtUnit, RootInitiatesAfterPeriodEvents) {
  ctx_.mailbox_.events_processed = 5;
  ctx_.advance_to(SimTime::from_us(100));
  EXPECT_TRUE(ctx_.delivered.empty()) << "below period: no estimation";
  ctx_.mailbox_.events_processed = 10;
  ctx_.advance_to(SimTime::from_us(200));
  EXPECT_FALSE(ctx_.delivered.empty()) << "period reached: handshake requested";
  EXPECT_TRUE(ctx_.mailbox_.handshake_requested);
}

TEST_F(GvtUnit, TokenForwardedAsWirePacketAfterWindow) {
  ctx_.mailbox_.events_processed = 10;
  ctx_.advance_to(SimTime::from_us(100));
  answer_handshake(500);
  // No event traffic to piggyback on: the poll must emit a dedicated token
  // to the next rank.
  ASSERT_FALSE(ctx_.emitted.empty());
  const hw::Packet& tok = ctx_.emitted.back();
  EXPECT_EQ(tok.hdr.kind, hw::PacketKind::kNicGvtToken);
  EXPECT_EQ(tok.hdr.dst, 1u);
  EXPECT_EQ(tok.hdr.gvt.round, 1);
  EXPECT_LE(tok.hdr.gvt.t, (VirtualTime{500}));
}

TEST_F(GvtUnit, TokenPiggybacksOnEventToNextRank) {
  ctx_.mailbox_.events_processed = 10;
  ctx_.advance_to(SimTime::from_us(100));
  answer_handshake(500);
  // Re-arm: completed? No — the token is outgoing. Build a fresh firmware
  // where a ride shows up within the window.
  GvtFirmwareOptions opts;
  opts.period = 10;
  opts.autonomy_us = 1e9;
  FakeNicContext ctx(0, 3);
  ctx.mailbox_.timewarp_initialised = true;
  GvtFirmware fw(opts);
  fw.attach(ctx);
  ctx.mailbox_.events_processed = 10;
  ctx.advance_to(SimTime::from_us(100));
  // Answer via piggybacked header (the other handshake path).
  const std::uint64_t epoch = ctx.delivered.back().hdr.gvt.epoch;
  hw::Packet reply = event_pkt(2, 1, 2, 100, 3000);
  reply.hdr.gvt_handshake = true;
  reply.hdr.gvt.epoch = epoch;
  reply.hdr.gvt.t = VirtualTime{321};
  fw.on_host_tx(reply);
  EXPECT_FALSE(reply.hdr.gvt_handshake) << "reply must be stripped";

  // An event packet bound for rank 1 departs: the token rides along.
  hw::Packet ride = event_pkt(1, 1, 2, 101, 3001);
  fw.on_wire_tx(ride);
  EXPECT_TRUE(ride.hdr.gvt_token_pb);
  EXPECT_EQ(ride.hdr.gvt.round, 1);
  EXPECT_EQ(ctx.stats_.value("gvt.tokens_piggybacked"), 1);
}

TEST_F(GvtUnit, WireColoringCountsAtExitAndEntry) {
  hw::Packet out = event_pkt(1, 1, 2, 100, 3002);
  fw_->on_wire_tx(out);
  EXPECT_EQ(out.hdr.color_epoch, 0u);  // epoch 0 before any estimation

  hw::Packet in = event_pkt(0, 5, 1, 90, 3003);
  in.hdr.color_epoch = 0;
  EXPECT_EQ(fw_->on_net_rx(in).action, hw::Firmware::Action::kForward);
  // (Counts are internal; the integration tests verify they drain. Here we
  // only verify coloring and that events still flow.)
}

TEST_F(GvtUnit, NonRootHoldsTokenUntilHandshake) {
  GvtFirmwareOptions opts;
  FakeNicContext ctx(1, 3);  // rank 1: not the root
  ctx.mailbox_.timewarp_initialised = true;
  GvtFirmware fw(opts);
  fw.attach(ctx);

  hw::Packet tok;
  tok.hdr.kind = hw::PacketKind::kNicGvtToken;
  tok.hdr.dst = 1;
  tok.hdr.gvt.epoch = 1;
  tok.hdr.gvt.round = 1;
  tok.hdr.gvt.t = VirtualTime{777};
  tok.hdr.gvt.tmin = VirtualTime::inf();
  EXPECT_EQ(fw.on_net_rx(tok).action, hw::Firmware::Action::kConsume);
  EXPECT_TRUE(ctx.mailbox_.handshake_requested);
  EXPECT_TRUE(ctx.emitted.empty()) << "must wait for the host's T";

  ctx.mailbox_.host_values.valid = true;
  ctx.mailbox_.host_values.epoch = 1;
  ctx.mailbox_.host_values.lvt = VirtualTime{600};
  ctx.advance_to(SimTime::from_us(200));
  ASSERT_FALSE(ctx.emitted.empty());
  EXPECT_EQ(ctx.emitted.back().hdr.dst, 2u);  // forwarded along the ring
  EXPECT_EQ(ctx.emitted.back().hdr.gvt.t, (VirtualTime{600}));
}

TEST_F(GvtUnit, BroadcastAdoptedAndReportedToHost) {
  hw::Packet bc;
  bc.hdr.kind = hw::PacketKind::kGvtBroadcast;
  bc.hdr.dst = 0;
  bc.hdr.gvt.gvt = VirtualTime{4242};
  bc.hdr.gvt.epoch = 3;
  EXPECT_EQ(fw_->on_net_rx(bc).action, hw::Firmware::Action::kConsume);
  EXPECT_EQ(ctx_.mailbox_.gvt, (VirtualTime{4242}));
  ASSERT_FALSE(ctx_.delivered.empty());
  EXPECT_EQ(ctx_.delivered.back().hdr.kind, hw::PacketKind::kGvtBroadcast);
}

// ---------------------------------------------------------------------------
// CombinedFirmware composition
// ---------------------------------------------------------------------------

TEST(CombinedUnit, HandshakeStrippedEvenWhenPacketDropped) {
  FakeNicContext ctx(0, 3);
  ctx.mailbox_.timewarp_initialised = true;
  GvtFirmwareOptions gopts;
  gopts.period = 1;
  gopts.autonomy_us = 1e9;
  CombinedFirmware fw(gopts, CancelFirmwareOptions{});
  fw.attach(ctx);

  // Start an estimation so a handshake is pending.
  ctx.mailbox_.events_processed = 1;
  ctx.advance_to(SimTime::from_us(100));
  ASSERT_TRUE(ctx.mailbox_.handshake_requested);
  const std::uint64_t epoch = ctx.delivered.back().hdr.gvt.epoch;

  // Prime a cancellation record so the carrier packet gets dropped.
  hw::Packet anti = event_pkt(0, 5, 7, 100, 9000, true);
  anti.hdr.recv_ts = VirtualTime{100};
  fw.on_net_rx(anti);

  // The handshake reply rides a DOOMED packet.
  hw::Packet carrier = event_pkt(1, 7, 9, 150, 9001, false, 0);
  carrier.hdr.gvt_handshake = true;
  carrier.hdr.gvt.epoch = epoch;
  carrier.hdr.gvt.t = VirtualTime{123};
  const auto r = fw.on_host_tx(carrier);
  EXPECT_EQ(r.action, hw::Firmware::Action::kDrop) << "cancellation dooms it";
  // ...but the GVT machinery must have consumed the reply first: the token
  // proceeds (queued for the ring) instead of deadlocking.
  ctx.advance_to(ctx.now() + SimTime::from_us(200));
  EXPECT_FALSE(ctx.emitted.empty()) << "token stuck: the handshake reply was lost";
}

TEST(CombinedUnit, TokenConsumptionShortCircuitsCancellation) {
  FakeNicContext ctx(1, 3);
  CombinedFirmware fw(GvtFirmwareOptions{}, CancelFirmwareOptions{});
  fw.attach(ctx);
  hw::Packet tok;
  tok.hdr.kind = hw::PacketKind::kNicGvtToken;
  tok.hdr.gvt.epoch = 1;
  tok.hdr.gvt.round = 1;
  EXPECT_EQ(fw.on_net_rx(tok).action, hw::Firmware::Action::kConsume);
}

}  // namespace
}  // namespace nicwarp::firmware
