// Tests for the WARPED-style tuning knobs: lazy cancellation and periodic
// state saving. Both must be invisible to the simulation's committed results
// while visibly changing the cost profile.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace nicwarp {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::ModelKind;

ExperimentConfig knob_config(std::uint64_t seed = 31) {
  ExperimentConfig cfg;
  cfg.model = ModelKind::kPhold;
  cfg.phold.objects = 32;
  cfg.phold.horizon = 1200;
  cfg.nodes = 8;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 75;
  cfg.seed = seed;
  cfg.paranoia_checks = true;
  cfg.max_sim_seconds = 200;
  return cfg;
}

// ---------------------------------------------------------------------------
// Lazy cancellation
// ---------------------------------------------------------------------------

TEST(LazyCancellationTest, SameResultsAsAggressive) {
  ExperimentConfig agg = knob_config();
  ExperimentConfig lazy = knob_config();
  lazy.cancellation = warped::CancellationMode::kLazy;
  const ExperimentResult a = harness::run_experiment(agg);
  const ExperimentResult l = harness::run_experiment(lazy);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(l.completed);
  EXPECT_EQ(a.signature, l.signature);
  EXPECT_EQ(a.committed_events, l.committed_events);
}

TEST(LazyCancellationTest, SendsFewerAntiMessages) {
  ExperimentConfig agg = knob_config();
  ExperimentConfig lazy = knob_config();
  lazy.cancellation = warped::CancellationMode::kLazy;
  const ExperimentResult a = harness::run_experiment(agg);
  const ExperimentResult l = harness::run_experiment(lazy);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(l.completed);
  ASSERT_GT(a.rollbacks, 0) << "need rollbacks for the comparison to mean anything";
  // Deterministic re-execution regenerates most sends identically, so lazy
  // matching should eliminate the bulk of the anti traffic.
  EXPECT_LT(l.antis_generated, a.antis_generated);
}

TEST(LazyCancellationTest, MatchesAreCounted) {
  ExperimentConfig lazy = knob_config();
  lazy.cancellation = warped::CancellationMode::kLazy;
  harness::Testbed tb = harness::build_testbed(lazy);
  ASSERT_TRUE(tb.run_to_completion(lazy.max_sim_seconds));
  const StatsRegistry& st = tb.cluster->stats();
  if (st.value("tw.rollbacks") > 0) {
    EXPECT_GT(st.value("tw.lazy_matched") + st.value("tw.lazy_cancelled"), 0);
  }
  // No lazy records may outlive the run (they all resolve by match, flush,
  // or annihilation).
  for (const auto& k : tb.kernels) EXPECT_EQ(k->lp().lazy_records(), 0u);
}

TEST(LazyCancellationTest, SeedSweepStaysCanonical) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    ExperimentConfig ref = knob_config(seed);
    ref.nodes = 1;
    const ExperimentResult canon = harness::run_experiment(ref);
    ExperimentConfig lazy = knob_config(seed);
    lazy.cancellation = warped::CancellationMode::kLazy;
    lazy.rollback_scope = warped::RollbackScope::kLp;
    const ExperimentResult l = harness::run_experiment(lazy);
    ASSERT_TRUE(l.completed) << "seed " << seed;
    EXPECT_EQ(l.signature, canon.signature) << "seed " << seed;
  }
}

TEST(LazyCancellationTest, RefusesToCombineWithNicEarlyCancel) {
  ExperimentConfig cfg = knob_config();
  cfg.cancellation = warped::CancellationMode::kLazy;
  cfg.early_cancel = true;
  EXPECT_DEATH(harness::build_testbed(cfg), "requires aggressive cancellation");
}

TEST(LazyCancellationTest, ContentDivergentRegenerationIsCancelled) {
  // Regression: RAID disks' replies change content when a straggler lands
  // ahead of them (the service queue shifts), so re-execution regenerates
  // the same event *id* with different data. Id-only matching silently kept
  // the stale message; content matching must cancel-and-replace it.
  for (std::uint64_t seed : {5ull, 7ull, 23ull}) {
    ExperimentConfig agg;
    agg.model = ModelKind::kRaid;
    agg.raid.total_requests = 1500;
    agg.nodes = 8;
    agg.gvt_mode = warped::GvtMode::kNic;
    agg.gvt_period = 100;
    agg.seed = seed;
    agg.paranoia_checks = true;
    agg.max_sim_seconds = 200;
    ExperimentConfig lazy = agg;
    lazy.cancellation = warped::CancellationMode::kLazy;
    const ExperimentResult a = harness::run_experiment(agg);
    const ExperimentResult l = harness::run_experiment(lazy);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(l.completed);
    EXPECT_EQ(a.signature, l.signature) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Periodic state saving
// ---------------------------------------------------------------------------

class StateSavingSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(StateSavingSweep, ResultsIndependentOfPeriod) {
  ExperimentConfig ref = knob_config(9);
  const ExperimentResult canon = harness::run_experiment(ref);
  ExperimentConfig cfg = knob_config(9);
  cfg.state_save_period = GetParam();
  const ExperimentResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed) << "period " << GetParam();
  EXPECT_EQ(r.signature, canon.signature);
  EXPECT_EQ(r.committed_events, canon.committed_events);
}

INSTANTIATE_TEST_SUITE_P(Periods, StateSavingSweep, ::testing::Values(1, 2, 4, 8, 32));

TEST(StateSavingTest, CoastForwardReplaysAreCharged) {
  ExperimentConfig cfg = knob_config(9);
  cfg.state_save_period = 8;
  harness::Testbed tb = harness::build_testbed(cfg);
  ASSERT_TRUE(tb.run_to_completion(cfg.max_sim_seconds));
  const StatsRegistry& st = tb.cluster->stats();
  if (st.value("tw.rollbacks") > 0) {
    EXPECT_GT(st.value("tw.events_replayed"), 0)
        << "period-8 snapshots must force coast-forward on some rollbacks";
  }
}

TEST(StateSavingTest, NoReplaysAtPeriodOne) {
  ExperimentConfig cfg = knob_config(9);
  cfg.state_save_period = 1;
  harness::Testbed tb = harness::build_testbed(cfg);
  ASSERT_TRUE(tb.run_to_completion(cfg.max_sim_seconds));
  EXPECT_EQ(tb.cluster->stats().value("tw.events_replayed"), 0);
}

TEST(StateSavingTest, ComposesWithEarlyCancellation) {
  ExperimentConfig off = knob_config(12);
  off.model = ModelKind::kPolice;
  off.police.stations = 150;
  off.police.hops_per_call = 12;
  off.cost.host_event_exec_us = 8.0;
  off.state_save_period = 4;
  ExperimentConfig on = off;
  on.early_cancel = true;
  const ExperimentResult a = harness::run_experiment(off);
  const ExperimentResult b = harness::run_experiment(on);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.signature, b.signature);
}

TEST(StateSavingTest, AdaptiveIntervalStaysCanonical) {
  // Period 0 = adaptive checkpoint interval: the period changes on the fly
  // with the observed rollback rate, which must never leak into results.
  ExperimentConfig ref = knob_config(9);
  const ExperimentResult canon = harness::run_experiment(ref);
  ExperimentConfig cfg = knob_config(9);
  cfg.state_save_period = 0;
  const ExperimentResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.signature, canon.signature);
  EXPECT_EQ(r.committed_events, canon.committed_events);
}

class IncrementalSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(IncrementalSweep, UndoLogStaysCanonical) {
  // Incremental (undo-log) state saving across fallback-snapshot periods,
  // including the adaptive interval (0): byte-identical committed results.
  ExperimentConfig ref = knob_config(9);
  const ExperimentResult canon = harness::run_experiment(ref);
  ExperimentConfig cfg = knob_config(9);
  cfg.state_save_period = GetParam();
  cfg.state_mode = warped::StateSaveMode::kIncremental;
  const ExperimentResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed) << "period " << GetParam();
  EXPECT_EQ(r.signature, canon.signature);
  EXPECT_EQ(r.committed_events, canon.committed_events);
  EXPECT_GT(r.undo_bytes_logged, 0);
}

INSTANTIATE_TEST_SUITE_P(Periods, IncrementalSweep, ::testing::Values(0, 1, 8));

TEST(StateSavingTest, IncrementalServesRollbacksWithoutReplay) {
  // With every model mutation write-barriered, rollbacks take the pure-undo
  // path: rewinds happen, coast-forward does not.
  ExperimentConfig cfg = knob_config(9);
  cfg.state_save_period = 0;
  cfg.state_mode = warped::StateSaveMode::kIncremental;
  harness::Testbed tb = harness::build_testbed(cfg);
  ASSERT_TRUE(tb.run_to_completion(cfg.max_sim_seconds));
  const StatsRegistry& st = tb.cluster->stats();
  if (st.value("tw.rollbacks") > 0) {
    EXPECT_GT(st.value("tw.undo_rewinds"), 0);
    EXPECT_EQ(st.value("tw.events_replayed"), 0);
  }
}

TEST(StateSavingTest, ComposesWithLazyCancellation) {
  ExperimentConfig cfg = knob_config(13);
  cfg.cancellation = warped::CancellationMode::kLazy;
  cfg.state_save_period = 4;
  ExperimentConfig ref = knob_config(13);
  const ExperimentResult a = harness::run_experiment(ref);
  const ExperimentResult b = harness::run_experiment(cfg);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.signature, b.signature);
}

}  // namespace
}  // namespace nicwarp
