// Early-cancellation firmware tests: drops happen, every drop pairs with a
// suppressed/filtered anti (audited via the shared rings at termination),
// flow control survives, and the paranoia-checked LP never sees a duplicate
// or a zombie.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace nicwarp {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::ModelKind;

ExperimentConfig cancel_config(bool on, std::uint64_t seed = 23) {
  ExperimentConfig cfg;
  cfg.model = ModelKind::kPolice;
  cfg.police.stations = 200;
  cfg.police.hops_per_call = 15;
  cfg.nodes = 8;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 100;
  cfg.seed = seed;
  cfg.cost.host_event_exec_us = 8.0;
  cfg.rollback_scope = warped::RollbackScope::kLp;
  cfg.early_cancel = on;
  cfg.paranoia_checks = true;
  cfg.max_sim_seconds = 120;
  return cfg;
}

TEST(CancelFirmwareTest, NoDropsWhenDisabled) {
  const ExperimentResult r = harness::run_experiment(cancel_config(false));
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.dropped_by_nic, 0);
  EXPECT_EQ(r.filtered_antis, 0);
}

TEST(CancelFirmwareTest, DropsHappenAndResultsUnchanged) {
  const ExperimentResult off = harness::run_experiment(cancel_config(false));
  const ExperimentResult on = harness::run_experiment(cancel_config(true));
  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  EXPECT_GT(on.dropped_by_nic, 0) << "the firmware never cancelled anything";
  // THE property: in-place cancellation must not change the simulation.
  EXPECT_EQ(off.signature, on.signature);
  EXPECT_EQ(off.committed_events, on.committed_events);
}

TEST(CancelFirmwareTest, EveryDropPairsWithARemovedAnti) {
  ExperimentConfig cfg = cancel_config(true);
  harness::Testbed tb = harness::build_testbed(cfg);
  ASSERT_TRUE(tb.run_to_completion(cfg.max_sim_seconds));
  const StatsRegistry& st = tb.cluster->stats();
  // Dropped positives == filtered antis at termination (each pair vanishes
  // together), modulo entries whose anti had not yet been generated when the
  // run ended — which cannot exist once everything terminated:
  EXPECT_EQ(st.value("cancel.dropped_positive"), st.value("cancel.filtered_anti"));
  // ...and indeed no dangling entries survive in any shared ring.
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    const hw::Mailbox& mb = tb.cluster->node(n).mailbox();
    for (const auto& [obj, ring] : mb.dropped_ids) {
      EXPECT_TRUE(ring.empty()) << "dangling drop entry on node " << n;
    }
    EXPECT_TRUE(mb.drop_notices.empty()) << "undrained notices on node " << n;
  }
}

TEST(CancelFirmwareTest, SequenceGapsMatchDrops) {
  ExperimentConfig cfg = cancel_config(true);
  harness::Testbed tb = harness::build_testbed(cfg);
  ASSERT_TRUE(tb.run_to_completion(cfg.max_sim_seconds));
  const StatsRegistry& st = tb.cluster->stats();
  // Every dropped sequenced packet shows up as exactly one receiver-side gap.
  EXPECT_EQ(st.value("comm.seq_gaps"),
            st.value("cancel.dropped_positive") + st.value("cancel.filtered_anti"));
  // And every drop refunded its credit.
  EXPECT_EQ(st.value("comm.credits_refunded"),
            st.value("cancel.dropped_positive") + st.value("cancel.filtered_anti"));
}

TEST(CancelFirmwareTest, CreditRepairAblationStillCorrectButSlower) {
  ExperimentConfig on = cancel_config(true);
  ExperimentConfig noRepair = cancel_config(true);
  noRepair.credit_repair = false;  // ablation A2
  const ExperimentResult a = harness::run_experiment(on);
  const ExperimentResult b = harness::run_experiment(noRepair);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed) << "resync fallback must keep the run live";
  EXPECT_EQ(a.signature, b.signature);
  // Broken flow control costs time whenever drops actually happened.
  if (b.dropped_by_nic > 100) EXPECT_GE(b.sim_seconds, a.sim_seconds * 0.95);
}

TEST(CancelFirmwareTest, ObjectScopeIsAlsoSound) {
  ExperimentConfig off = cancel_config(false);
  off.rollback_scope = warped::RollbackScope::kObject;
  ExperimentConfig on = cancel_config(true);
  on.rollback_scope = warped::RollbackScope::kObject;
  const ExperimentResult a = harness::run_experiment(off);
  const ExperimentResult b = harness::run_experiment(on);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.signature, b.signature);
}

TEST(CancelFirmwareTest, WorksUnderHostMatternToo) {
  // The paper pairs cancellation with NIC GVT, but it must compose with any
  // GVT algorithm (the drop notices reconcile the white counts).
  ExperimentConfig off = cancel_config(false);
  off.gvt_mode = warped::GvtMode::kHostMattern;
  ExperimentConfig on = cancel_config(true);
  on.gvt_mode = warped::GvtMode::kHostMattern;
  const ExperimentResult a = harness::run_experiment(off);
  const ExperimentResult b = harness::run_experiment(on);
  ASSERT_TRUE(a.completed) << "Mattern must drain its white counts despite drops";
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.signature, b.signature);
}

TEST(CancelFirmwareTest, WorksUnderPGvtToo) {
  ExperimentConfig off = cancel_config(false);
  off.gvt_mode = warped::GvtMode::kPGvt;
  ExperimentConfig on = cancel_config(true);
  on.gvt_mode = warped::GvtMode::kPGvt;
  const ExperimentResult a = harness::run_experiment(off);
  const ExperimentResult b = harness::run_experiment(on);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed) << "pGVT must forget acks for dropped packets";
  EXPECT_EQ(a.signature, b.signature);
}

TEST(CancelFirmwareTest, RaidDropsFarLessThanPolice) {
  // The paper's contrast (Fig. 6 vs Fig. 7): RAID's request/reply chains
  // leave little in the send ring; POLICE's bursts leave a lot.
  ExperimentConfig raid = cancel_config(true);
  raid.model = ModelKind::kRaid;
  raid.raid.total_requests = 4000;
  raid.cost.host_event_exec_us = 18.0;
  const ExperimentResult r = harness::run_experiment(raid);
  const ExperimentResult p = harness::run_experiment(cancel_config(true));
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(p.completed);
  const double raid_share =
      r.antis_generated ? double(r.dropped_by_nic) / double(r.antis_generated) : 0.0;
  const double police_share =
      p.antis_generated ? double(p.dropped_by_nic) / double(p.antis_generated) : 0.0;
  EXPECT_LT(raid_share, police_share + 0.25);
}

// Property sweep over seeds: the cancellation machinery must be sound for
// any rollback pattern the workload throws at it.
class CancelSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CancelSeedSweep, SignatureInvariantAcrossCancellation) {
  const std::uint64_t seed = GetParam();
  const ExperimentResult off = harness::run_experiment(cancel_config(false, seed));
  const ExperimentResult on = harness::run_experiment(cancel_config(true, seed));
  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  EXPECT_EQ(off.signature, on.signature) << "seed " << seed;
  EXPECT_EQ(off.committed_events, on.committed_events);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CancelSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace nicwarp
