// Unit tests for the hardware discrete-event engine and the FIFO work server.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/server.hpp"

namespace nicwarp::sim {
namespace {

TEST(EngineTest, RunsCallbacksInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(SimTime::from_ns(30), [&] { order.push_back(3); });
  e.schedule(SimTime::from_ns(10), [&] { order.push_back(1); });
  e.schedule(SimTime::from_ns(20), [&] { order.push_back(2); });
  EXPECT_EQ(e.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now().ns, 30);
}

TEST(EngineTest, EqualTimesFireInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(SimTime::from_ns(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, CallbacksMayScheduleMore) {
  Engine e;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) e.schedule(SimTime::from_ns(1), chain);
  };
  e.schedule(SimTime::from_ns(1), chain);
  e.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now().ns, 5);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  TaskHandle h = e.schedule(SimTime::from_ns(10), [&] { ran = true; });
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineTest, RunUntilStopsAtDeadline) {
  Engine e;
  std::vector<int> order;
  e.schedule(SimTime::from_ns(10), [&] { order.push_back(1); });
  e.schedule(SimTime::from_ns(20), [&] { order.push_back(2); });
  e.schedule(SimTime::from_ns(30), [&] { order.push_back(3); });
  e.run_until(SimTime::from_ns(20));  // inclusive
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  e.run();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EngineTest, StopRequestHalts) {
  Engine e;
  int fired = 0;
  e.schedule(SimTime::from_ns(1), [&] {
    ++fired;
    e.stop();
  });
  e.schedule(SimTime::from_ns(2), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  e.run();  // resumes after stop
  EXPECT_EQ(fired, 2);
}

TEST(EngineTest, ZeroDelayRunsAtCurrentTime) {
  Engine e;
  SimTime seen{SimTime::max()};
  e.schedule(SimTime::from_ns(7), [&] {
    e.schedule(SimTime::zero(), [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen.ns, 7);
}

TEST(EngineTest, ExecutedCountAccumulates) {
  Engine e;
  for (int i = 0; i < 4; ++i) e.schedule(SimTime::from_ns(i), [] {});
  e.run();
  EXPECT_EQ(e.executed(), 4u);
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

TEST(ServerTest, JobsCompleteInFifoOrderWithQueueing) {
  Engine e;
  Server s(e, "cpu");
  std::vector<std::pair<int, std::int64_t>> done;  // (id, completion ns)
  s.submit(SimTime::from_ns(10), [&] { done.emplace_back(1, e.now().ns); });
  s.submit(SimTime::from_ns(5), [&] { done.emplace_back(2, e.now().ns); });
  s.submit(SimTime::from_ns(1), [&] { done.emplace_back(3, e.now().ns); });
  e.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], (std::pair<int, std::int64_t>{1, 10}));
  EXPECT_EQ(done[1], (std::pair<int, std::int64_t>{2, 15}));  // queued behind
  EXPECT_EQ(done[2], (std::pair<int, std::int64_t>{3, 16}));
}

TEST(ServerTest, BusyAccountingAndIdle) {
  Engine e;
  Server s(e, "cpu");
  EXPECT_TRUE(s.idle());
  s.submit(SimTime::from_ns(25), nullptr);
  EXPECT_FALSE(s.idle());
  e.run();
  EXPECT_TRUE(s.idle());
  EXPECT_EQ(s.busy_time().ns, 25);
  EXPECT_EQ(s.jobs_completed(), 1u);
}

TEST(ServerTest, DynamicCostEvaluatedAtServiceStart) {
  Engine e;
  Server s(e, "cpu");
  std::int64_t knob = 10;
  std::int64_t start2 = -1;
  s.submit(SimTime::from_ns(50), [&] { knob = 3; });
  s.submit_dynamic(
      [&] {
        start2 = e.now().ns;      // must run at t=50, after job 1
        return SimTime::from_ns(knob);  // sees the updated knob
      },
      nullptr);
  e.run();
  EXPECT_EQ(start2, 50);
  EXPECT_EQ(e.now().ns, 53);
  EXPECT_EQ(s.busy_time().ns, 53);
}

TEST(ServerTest, CompletionMaySubmitFollowOnWork) {
  Engine e;
  Server s(e, "cpu");
  std::vector<std::int64_t> at;
  s.submit(SimTime::from_ns(10), [&] {
    at.push_back(e.now().ns);
    s.submit(SimTime::from_ns(7), [&] { at.push_back(e.now().ns); });
  });
  e.run();
  EXPECT_EQ(at, (std::vector<std::int64_t>{10, 17}));
}

TEST(ServerTest, StatsRegistryIntegration) {
  Engine e;
  StatsRegistry stats;
  Server s(e, "mycpu", &stats);
  s.submit(SimTime::from_ns(40), nullptr);
  s.submit(SimTime::from_ns(2), nullptr);
  e.run();
  EXPECT_EQ(stats.value("mycpu.jobs"), 2);
  EXPECT_EQ(stats.value("mycpu.busy_ns"), 42);
}

TEST(ServerTest, QueueLengthObservable) {
  Engine e;
  Server s(e, "cpu");
  s.submit(SimTime::from_ns(10), nullptr);
  s.submit(SimTime::from_ns(10), nullptr);
  s.submit(SimTime::from_ns(10), nullptr);
  EXPECT_EQ(s.queue_length(), 2u);  // one in service, two waiting
  e.run();
  EXPECT_EQ(s.queue_length(), 0u);
}

TEST(ServerTest, ZeroCostJobsStillSerialize) {
  Engine e;
  Server s(e, "cpu");
  std::vector<int> order;
  s.submit(SimTime::zero(), [&] { order.push_back(1); });
  s.submit(SimTime::zero(), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace nicwarp::sim
