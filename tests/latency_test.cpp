// Tests for the tail-latency observability layer: recorder unit behavior,
// report JSON shape, histogram determinism end-to-end (same seed => byte-
// identical bucket counts and quantiles), the gating-off path (zero samples,
// zero perturbation), and the chaos property — fault injection with
// recording enabled still commits the exact fault-free simulation state
// while visibly fattening the delivery tail.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/latency.hpp"
#include "core/stats.hpp"
#include "harness/experiment.hpp"

namespace nicwarp {
namespace {

std::string report_json(const LatencyReport& rep) {
  std::ostringstream os;
  rep.to_json(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Recorder unit tests
// ---------------------------------------------------------------------------

TEST(LatencyRecorder, DisabledByDefaultAndNullRecorderIsDisabled) {
  LatencyRecorder rec;
  EXPECT_FALSE(rec.enabled());
  EXPECT_FALSE(LatencyRecorder::null_recorder().enabled());
  const LatencyReport rep = rec.report();
  EXPECT_FALSE(rep.enabled);
  for (std::size_t i = 0; i < LatencyReport::metric_names().size(); ++i) {
    EXPECT_EQ(rep.metric(i).count, 0);
    EXPECT_TRUE(rep.metric(i).buckets.empty());
  }
}

TEST(LatencyRecorder, BoundsAreStrictlyIncreasing) {
  const auto& bounds = LatencyRecorder::latency_bounds();
  ASSERT_GT(bounds.size(), 10u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
  // Covers modeled-us and virtual-tick ranges seen in practice.
  EXPECT_LE(bounds.front(), 0.01);
  EXPECT_GE(bounds.back(), 1e9);
}

TEST(LatencyRecorder, SingleSampleQuantilesAreExact) {
  // A one-sample histogram must report that exact sample at every quantile —
  // the min/max clamp collapses the bucket's interpolation range to a point.
  LatencyRecorder rec;
  rec.set_enabled(true);
  rec.record_delivery(/*vt_ticks=*/37, /*us=*/123.456);
  const LatencyReport rep = rec.report();
  EXPECT_EQ(rep.delivery_us.count, 1);
  EXPECT_DOUBLE_EQ(rep.delivery_us.min, 123.456);
  EXPECT_DOUBLE_EQ(rep.delivery_us.p50, 123.456);
  EXPECT_DOUBLE_EQ(rep.delivery_us.p999, 123.456);
  EXPECT_DOUBLE_EQ(rep.delivery_us.max, 123.456);
  EXPECT_DOUBLE_EQ(rep.delivery_vt.p50, 37.0);
  ASSERT_EQ(rep.delivery_us.buckets.size(), 1u);
  EXPECT_EQ(rep.delivery_us.buckets[0].second, 1);
}

TEST(LatencyRecorder, QuantilesInterpolateWithinBuckets) {
  LatencyRecorder rec;
  rec.set_enabled(true);
  // 1000 samples spread across several decades; p50/p99/p999 must be ordered
  // and bracketed by the exact extremes.
  for (int i = 1; i <= 1000; ++i) {
    rec.record_nic_wire(static_cast<double>(i) * 0.5);
  }
  const LatencyStats s = rec.report().nic_wire_us;
  EXPECT_EQ(s.count, 1000);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 500.0);
  EXPECT_LT(s.min, s.p50);
  EXPECT_LT(s.p50, s.p99);
  EXPECT_LT(s.p99, s.p999);
  EXPECT_LT(s.p999, s.max);
  // p50 of a uniform 0.5..500 spread sits near 250 — interpolation keeps it
  // inside the covering log bucket rather than snapping to a bound.
  EXPECT_GT(s.p50, 150.0);
  EXPECT_LT(s.p50, 350.0);
}

TEST(LatencyRecorder, ClearZeroesHistogramsButKeepsEnabled) {
  LatencyRecorder rec;
  rec.set_enabled(true);
  rec.record_commit(10, 5.0);
  rec.clear();
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.report().commit_us.count, 0);
}

TEST(LatencyReport, JsonHasAllMetricSections) {
  LatencyRecorder rec;
  rec.set_enabled(true);
  rec.record_delivery(5, 2.0);
  rec.record_nic_wire(1.0);
  rec.record_commit(9, 3.0);
  const std::string json = report_json(rec.report());
  EXPECT_NE(json.find("\"type\": \"latency_report\""), std::string::npos);
  for (const char* name : LatencyReport::metric_names()) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << name;
  }
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: full testbed runs
// ---------------------------------------------------------------------------

harness::ExperimentConfig latency_config() {
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kRaid;
  cfg.raid.total_requests = 1200;
  cfg.nodes = 4;
  cfg.seed = 23;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 100;
  cfg.early_cancel = true;
  cfg.max_sim_seconds = 600;
  cfg.latency.enabled = true;
  return cfg;
}

TEST(LatencyE2E, SameSeedRerunsAreByteIdentical) {
  const harness::ExperimentConfig cfg = latency_config();
  const harness::ExperimentResult r1 = harness::run_experiment(cfg);
  const harness::ExperimentResult r2 = harness::run_experiment(cfg);
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_TRUE(r1.latency.enabled);
  EXPECT_GT(r1.latency.delivery_us.count, 0);
  EXPECT_GT(r1.latency.commit_us.count, 0);
  EXPECT_GT(r1.latency.nic_wire_us.count, 0);
  // Every sample is simulated time, so the whole report — bucket counts,
  // exact min/max, interpolated quantiles — serializes byte-identically.
  EXPECT_EQ(report_json(r1.latency), report_json(r2.latency));
  EXPECT_EQ(r1.latency.delivery_us.buckets, r2.latency.delivery_us.buckets);
  EXPECT_EQ(r1.latency.commit_vt.buckets, r2.latency.commit_vt.buckets);
}

TEST(LatencyE2E, DisabledRecorderProducesZeroSamples) {
  harness::ExperimentConfig cfg = latency_config();
  cfg.latency.enabled = false;
  const harness::ExperimentResult r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_FALSE(r.latency.enabled);
  for (std::size_t i = 0; i < LatencyReport::metric_names().size(); ++i) {
    EXPECT_EQ(r.latency.metric(i).count, 0)
        << LatencyReport::metric_names()[i];
  }
}

TEST(LatencyE2E, RecordingDoesNotPerturbTheSimulation) {
  harness::ExperimentConfig off = latency_config();
  off.latency.enabled = false;
  const harness::ExperimentResult r_off = harness::run_experiment(off);
  const harness::ExperimentResult r_on = harness::run_experiment(latency_config());
  ASSERT_TRUE(r_off.completed);
  ASSERT_TRUE(r_on.completed);
  // Stamping sent_at and folding histogram samples must not change a single
  // simulation outcome: identical commits, signature, and message counts.
  EXPECT_EQ(r_on.signature, r_off.signature);
  EXPECT_EQ(r_on.committed_events, r_off.committed_events);
  EXPECT_EQ(r_on.events_processed, r_off.events_processed);
  EXPECT_EQ(r_on.rollbacks, r_off.rollbacks);
  EXPECT_EQ(r_on.wire_packets, r_off.wire_packets);
  EXPECT_EQ(r_on.gvt_rounds, r_off.gvt_rounds);
}

TEST(LatencyE2E, ChaosTwinKeepsSignatureAndFattensTheTail) {
  const harness::ExperimentConfig clean_cfg = latency_config();
  harness::ExperimentConfig chaos_cfg = clean_cfg;
  chaos_cfg.fault.drop_rate = 0.01;
  chaos_cfg.fault.seed = 11;
  const harness::ExperimentResult clean = harness::run_experiment(clean_cfg);
  const harness::ExperimentResult chaos = harness::run_experiment(chaos_cfg);
  ASSERT_TRUE(clean.completed);
  ASSERT_TRUE(chaos.completed) << "chaos run hit the simulated-time cap";
  // The reliability-layer contract survives recording: faults cost recovery
  // time, never correctness.
  EXPECT_EQ(chaos.signature, clean.signature);
  EXPECT_EQ(chaos.committed_events, clean.committed_events);
  EXPECT_GT(chaos.fault_drops, 0);
  EXPECT_GT(chaos.retransmits, 0);
  // ...and the recovery time is exactly what the tail histograms surface:
  // retransmit timeouts push the worst delivery far past the fault-free max.
  EXPECT_TRUE(chaos.latency.enabled);
  EXPECT_GT(chaos.latency.delivery_us.max, clean.latency.delivery_us.max);
  EXPECT_GE(chaos.latency.delivery_us.p999, clean.latency.delivery_us.p999);
}

}  // namespace
}  // namespace nicwarp
