// Whole-system property tests: for a grid of (model, GVT mode, cancellation,
// rollback scope, seed) the distributed optimistic run must commit exactly
// the canonical result of a 1-node reference run — the strongest statement
// that neither the Time-Warp machinery nor either NIC optimization changes
// what is being simulated, only how fast.
#include <gtest/gtest.h>

#include <map>

#include "harness/experiment.hpp"

namespace nicwarp {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::ModelKind;

struct GridParam {
  ModelKind model;
  warped::GvtMode gvt;
  bool cancel;
  warped::RollbackScope scope;
  std::uint64_t seed;
};

ExperimentConfig grid_config(const GridParam& p) {
  ExperimentConfig cfg;
  cfg.model = p.model;
  cfg.raid.total_requests = 1500;
  cfg.police.stations = 150;
  cfg.police.hops_per_call = 12;
  cfg.phold.objects = 32;
  cfg.phold.horizon = 900;
  cfg.nodes = 8;
  cfg.gvt_mode = p.gvt;
  cfg.gvt_period = 75;
  cfg.early_cancel = p.cancel;
  cfg.rollback_scope = p.scope;
  cfg.seed = p.seed;
  cfg.paranoia_checks = true;
  if (p.model == ModelKind::kPolice) cfg.cost.host_event_exec_us = 8.0;
  cfg.max_sim_seconds = 200;
  return cfg;
}

// Canonical results are cached per (model, seed): a 1-node run has no
// optimism, no network, no firmware — it IS the simulation's ground truth.
const ExperimentResult& canonical(ModelKind model, std::uint64_t seed) {
  static std::map<std::pair<int, std::uint64_t>, ExperimentResult> cache;
  auto key = std::make_pair(static_cast<int>(model), seed);
  auto it = cache.find(key);
  if (it == cache.end()) {
    GridParam ref{model, warped::GvtMode::kHostMattern, false,
                  warped::RollbackScope::kObject, seed};
    ExperimentConfig cfg = grid_config(ref);
    cfg.nodes = 1;
    it = cache.emplace(key, harness::run_experiment(cfg)).first;
    EXPECT_TRUE(it->second.completed);
    EXPECT_EQ(it->second.rollbacks, 0);
  }
  return it->second;
}

class FullGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(FullGrid, CommitsTheCanonicalResult) {
  const GridParam p = GetParam();
  const ExperimentResult& canon = canonical(p.model, p.seed);
  const ExperimentResult r = harness::run_experiment(grid_config(p));
  ASSERT_TRUE(r.completed) << "run hit the simulated-time cap";
  EXPECT_EQ(r.signature, canon.signature);
  EXPECT_EQ(r.committed_events, canon.committed_events);
  EXPECT_TRUE(r.final_gvt.is_inf());
  // Sanity on the efficiency accounting.
  EXPECT_EQ(r.committed_events, r.events_processed - r.events_rolled_back);
}

std::vector<GridParam> grid() {
  std::vector<GridParam> out;
  const ModelKind models[] = {ModelKind::kRaid, ModelKind::kPolice, ModelKind::kPhold};
  const warped::GvtMode modes[] = {warped::GvtMode::kHostMattern, warped::GvtMode::kNic,
                                   warped::GvtMode::kPGvt};
  const warped::RollbackScope scopes[] = {warped::RollbackScope::kObject,
                                          warped::RollbackScope::kLp};
  for (auto m : models) {
    for (auto g : modes) {
      for (auto s : scopes) {
        for (bool cancel : {false, true}) {
          // Two seeds for the flagship combination (NIC GVT + cancel),
          // one for the rest, to bound test runtime.
          const int nseeds = (g == warped::GvtMode::kNic && cancel) ? 2 : 1;
          for (int seed = 1; seed <= nseeds; ++seed) {
            out.push_back({m, g, cancel, s, static_cast<std::uint64_t>(seed)});
          }
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Everything, FullGrid, ::testing::ValuesIn(grid()),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      const GridParam& p = info.param;
      std::string name;
      name += p.model == ModelKind::kRaid ? "raid"
              : p.model == ModelKind::kPolice ? "police"
                                              : "phold";
      name += p.gvt == warped::GvtMode::kHostMattern ? "_mattern"
              : p.gvt == warped::GvtMode::kNic ? "_nic"
                                               : "_pgvt";
      name += p.cancel ? "_cancel" : "_plain";
      name += p.scope == warped::RollbackScope::kLp ? "_lpscope" : "_objscope";
      name += "_s" + std::to_string(p.seed);
      return name;
    });

// Cross-mode equivalence at a heavier load (one shot, not in the grid):
// the two paper optimizations together must match the plain baseline.
TEST(IntegrationTest, CombinedOptimizationsMatchBaselineUnderLoad) {
  GridParam base{ModelKind::kPolice, warped::GvtMode::kHostMattern, false,
                 warped::RollbackScope::kLp, 4};
  GridParam opt{ModelKind::kPolice, warped::GvtMode::kNic, true,
                warped::RollbackScope::kLp, 4};
  ExperimentConfig a = grid_config(base);
  ExperimentConfig b = grid_config(opt);
  a.police.stations = 300;
  b.police.stations = 300;
  const ExperimentResult ra = harness::run_experiment(a);
  const ExperimentResult rb = harness::run_experiment(b);
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(rb.completed);
  EXPECT_EQ(ra.signature, rb.signature);
  EXPECT_EQ(ra.committed_events, rb.committed_events);
}

// The harness's parallel sweep runner must produce exactly what serial runs
// produce (each experiment is single-threaded and isolated).
TEST(IntegrationTest, ParallelSweepMatchesSerial) {
  std::vector<ExperimentConfig> cfgs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    GridParam p{ModelKind::kPhold, warped::GvtMode::kNic, false,
                warped::RollbackScope::kLp, seed};
    cfgs.push_back(grid_config(p));
  }
  const auto par = harness::run_parallel(cfgs, 4);
  ASSERT_EQ(par.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const ExperimentResult serial = harness::run_experiment(cfgs[i]);
    EXPECT_EQ(par[i].signature, serial.signature);
    EXPECT_DOUBLE_EQ(par[i].sim_seconds, serial.sim_seconds);
  }
}

// The experiment cap must be honoured and reported.
TEST(IntegrationTest, SimTimeCapReportsIncomplete) {
  GridParam p{ModelKind::kPhold, warped::GvtMode::kHostMattern, false,
              warped::RollbackScope::kLp, 1};
  ExperimentConfig cfg = grid_config(p);
  cfg.phold.horizon = 100000;  // far more work than the cap allows
  cfg.phold.objects = 64;
  cfg.max_sim_seconds = 0.01;
  const ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.events_processed, 0);
}

}  // namespace
}  // namespace nicwarp
