// Unit tests for the host-side GVT managers against a scripted fake
// KernelApi: Mattern's token algebra (epoch colors, incremental white
// counting, pipelined estimations), the NIC manager's handshake paths, and
// pGVT's acknowledgement bookkeeping — all without a testbed.
#include <gtest/gtest.h>

#include <deque>

#include "warped/gvt_mattern.hpp"
#include "warped/gvt_nic.hpp"
#include "warped/gvt_pgvt.hpp"

namespace nicwarp::warped {
namespace {

class FakeKernelApi final : public KernelApi {
 public:
  FakeKernelApi(NodeId rank, std::uint32_t world) : rank_(rank), world_(world) {}

  NodeId rank() const override { return rank_; }
  std::uint32_t world_size() const override { return world_; }
  const hw::CostModel& cost() const override { return cost_; }
  StatsRegistry& stats() override { return stats_; }
  hw::Mailbox& mailbox() override { return mailbox_; }
  VirtualTime safe_local_min() const override { return local_min_; }
  std::int64_t events_processed() const override { return events_; }
  bool lp_idle() const override { return idle_; }
  void send_control(hw::Packet pkt) override { sent.push_back(std::move(pkt)); }
  void run_host_task(SimTime, SmallFn<void(), 64> fn) override { fn(); }
  void schedule(SimTime delay, SmallFn<void(), 64> fn) override {
    timers.push_back({now_ + delay, std::move(fn)});
  }
  void on_new_gvt(VirtualTime g) override { published.push_back(g); }
  SimTime now() const override { return now_; }

  // Pops the oldest control packet sent (FIFO).
  hw::Packet pop_sent() {
    EXPECT_FALSE(sent.empty());
    hw::Packet p = std::move(sent.front());
    sent.erase(sent.begin());
    return p;
  }

  std::vector<hw::Packet> sent;
  std::vector<VirtualTime> published;
  std::vector<std::pair<SimTime, SmallFn<void(), 64>>> timers;
  hw::CostModel cost_;
  hw::Mailbox mailbox_;
  StatsRegistry stats_;
  VirtualTime local_min_{VirtualTime::inf()};
  std::int64_t events_{0};
  bool idle_{false};
  SimTime now_{SimTime::zero()};
  NodeId rank_;
  std::uint32_t world_;
};

hw::PacketHeader event_hdr(VirtualTime recv, bool negative = false) {
  hw::PacketHeader h;
  h.kind = hw::PacketKind::kEvent;
  h.recv_ts = recv;
  h.send_ts = VirtualTime{recv.t - 1};
  h.negative = negative;
  return h;
}

// ---------------------------------------------------------------------------
// MatternGvtManager
// ---------------------------------------------------------------------------

TEST(MatternUnit, RootInitiatesAfterPeriodAndStampsColors) {
  FakeKernelApi api(0, 3);
  MatternOptions opts;
  opts.period = 10;
  MatternGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  // Before the period: outgoing events are colored epoch 0, no token.
  hw::PacketHeader h = event_hdr(VirtualTime{50});
  mgr.stamp_outgoing(h);
  EXPECT_EQ(h.color_epoch, 0u);
  EXPECT_TRUE(api.sent.empty());

  api.events_ = 10;
  api.local_min_ = VirtualTime{40};
  mgr.on_event_processed();
  ASSERT_EQ(api.sent.size(), 1u);
  const hw::Packet tok = api.pop_sent();
  EXPECT_EQ(tok.hdr.kind, hw::PacketKind::kHostGvtToken);
  EXPECT_EQ(tok.hdr.dst, 1u);  // ring successor
  EXPECT_EQ(tok.hdr.gvt.epoch, 1u);
  // Root's own contribution: one white (epoch-0) send, zero received.
  EXPECT_EQ(tok.hdr.gvt.white_count, 1);
  EXPECT_EQ(tok.hdr.gvt.t, (VirtualTime{40}));

  // Sends after initiation are red (epoch 1).
  hw::PacketHeader h2 = event_hdr(VirtualTime{60});
  mgr.stamp_outgoing(h2);
  EXPECT_EQ(h2.color_epoch, 1u);
}

TEST(MatternUnit, NonRootContributesIncrementallyAndForwards) {
  FakeKernelApi api(1, 3);
  MatternGvtManager mgr(MatternOptions{});
  mgr.attach(api);
  mgr.start();

  // This LP sent 2 whites and received 1 white before the cut.
  hw::PacketHeader a = event_hdr(VirtualTime{30});
  hw::PacketHeader b = event_hdr(VirtualTime{20});
  mgr.stamp_outgoing(a);
  mgr.stamp_outgoing(b);
  hw::PacketHeader in = event_hdr(VirtualTime{25});
  in.color_epoch = 0;
  mgr.on_event_received(in);

  api.local_min_ = VirtualTime{22};
  hw::Packet tok;
  tok.hdr.kind = hw::PacketKind::kHostGvtToken;
  tok.hdr.src = 0;
  tok.hdr.gvt.epoch = 1;
  tok.hdr.gvt.round = 1;
  tok.hdr.gvt.white_count = 5;
  tok.hdr.gvt.t = VirtualTime{40};
  tok.hdr.gvt.tmin = VirtualTime::inf();
  mgr.on_control(tok);

  ASSERT_EQ(api.sent.size(), 1u);
  const hw::Packet fwd = api.pop_sent();
  EXPECT_EQ(fwd.hdr.dst, 2u);
  EXPECT_EQ(fwd.hdr.gvt.white_count, 5 + 2 - 1);
  EXPECT_EQ(fwd.hdr.gvt.t, (VirtualTime{22}));  // min(40, 22)

  // Second visit with no new activity contributes zero.
  hw::Packet tok2 = fwd;
  mgr.on_control(tok2);
  const hw::Packet fwd2 = api.pop_sent();
  EXPECT_EQ(fwd2.hdr.gvt.white_count, 6);

  // A late white arrival is subtracted at the next visit.
  hw::PacketHeader late = event_hdr(VirtualTime{21});
  late.color_epoch = 0;
  mgr.on_event_received(late);
  hw::Packet tok3 = fwd2;
  mgr.on_control(tok3);
  EXPECT_EQ(api.pop_sent().hdr.gvt.white_count, 5);
}

TEST(MatternUnit, RootCompletesWhenCountDrainsAndBroadcasts) {
  FakeKernelApi api(0, 2);
  MatternOptions opts;
  opts.period = 1;
  MatternGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  api.events_ = 1;
  api.local_min_ = VirtualTime{100};
  mgr.on_event_processed();  // initiate (no whites outstanding)
  hw::Packet tok = api.pop_sent();
  EXPECT_EQ(tok.hdr.gvt.white_count, 0);

  // Token returns to the root: count 0 -> broadcast + publish.
  mgr.on_control(tok);
  ASSERT_EQ(api.sent.size(), 1u);  // broadcast to rank 1
  const hw::Packet bc = api.pop_sent();
  EXPECT_EQ(bc.hdr.kind, hw::PacketKind::kGvtBroadcast);
  EXPECT_EQ(bc.hdr.gvt.gvt, (VirtualTime{100}));
  ASSERT_EQ(api.published.size(), 1u);
  EXPECT_EQ(api.published[0], (VirtualTime{100}));
  EXPECT_EQ(api.stats_.value("gvt.rounds"), 1);
}

TEST(MatternUnit, InTransitWhiteForcesAnotherRound) {
  FakeKernelApi api(0, 2);
  MatternOptions opts;
  opts.period = 1;
  MatternGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  // One white in transit (sent, never received anywhere yet).
  hw::PacketHeader w = event_hdr(VirtualTime{10});
  mgr.stamp_outgoing(w);
  api.events_ = 1;
  api.local_min_ = VirtualTime{50};
  mgr.on_event_processed();
  hw::Packet tok = api.pop_sent();
  EXPECT_EQ(tok.hdr.gvt.white_count, 1);

  // Returns with count 1: another circulation, no completion.
  mgr.on_control(tok);
  hw::Packet tok2 = api.pop_sent();
  EXPECT_EQ(tok2.hdr.kind, hw::PacketKind::kHostGvtToken);
  EXPECT_EQ(tok2.hdr.gvt.round, 2);
  EXPECT_TRUE(api.published.empty());

  // The white lands (as received by the root in this 2-node ring). In the
  // real kernel the receive is counted and the event inserted in the SAME
  // host task, so the local minimum reflects it before any token visit —
  // the fake must honour that contract.
  hw::PacketHeader arrived = event_hdr(VirtualTime{10});
  arrived.color_epoch = 0;
  mgr.on_event_received(arrived);
  api.local_min_ = VirtualTime{10};
  // The next return drains the count and completes with GVT <= 10.
  mgr.on_control(tok2);
  const hw::Packet bc = api.pop_sent();
  EXPECT_EQ(bc.hdr.kind, hw::PacketKind::kGvtBroadcast);
  EXPECT_LE(bc.hdr.gvt.gvt.t, 10);
}

TEST(MatternUnit, PipelinedEstimationsCarryDistinctEpochs) {
  FakeKernelApi api(0, 2);
  MatternOptions opts;
  opts.period = 1;
  opts.max_outstanding = 4;
  MatternGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  api.local_min_ = VirtualTime{10};
  api.events_ = 1;
  mgr.on_event_processed();
  api.events_ = 2;
  mgr.on_event_processed();
  api.events_ = 3;
  mgr.on_event_processed();
  ASSERT_EQ(api.sent.size(), 3u);
  EXPECT_EQ(api.sent[0].hdr.gvt.epoch, 1u);
  EXPECT_EQ(api.sent[1].hdr.gvt.epoch, 2u);
  EXPECT_EQ(api.sent[2].hdr.gvt.epoch, 3u);
  EXPECT_EQ(mgr.outstanding(), 3u);

  // Cap respected.
  opts.max_outstanding = 4;
  api.events_ = 4;
  mgr.on_event_processed();
  api.events_ = 5;
  mgr.on_event_processed();  // fifth: over the cap, refused
  EXPECT_EQ(mgr.outstanding(), 4u);
}

TEST(MatternUnit, DropNoticeRetractsWhiteSend) {
  FakeKernelApi api(0, 2);
  MatternOptions opts;
  opts.period = 1;
  MatternGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  hw::PacketHeader w = event_hdr(VirtualTime{10});
  mgr.stamp_outgoing(w);
  // The NIC dropped it in place: retract before initiating.
  hw::DropNotice n;
  n.color_epoch = w.color_epoch;
  mgr.on_nic_drop(n);

  api.events_ = 1;
  api.local_min_ = VirtualTime{50};
  mgr.on_event_processed();
  hw::Packet tok = api.pop_sent();
  EXPECT_EQ(tok.hdr.gvt.white_count, 0) << "retracted send must not block draining";
  mgr.on_control(tok);
  EXPECT_FALSE(api.published.empty());
}

TEST(MatternUnit, IdlePollInitiatesForTermination) {
  FakeKernelApi api(0, 2);
  MatternOptions opts;
  opts.period = 1000000;  // period will never be hit
  opts.idle_initiate_us = 100.0;
  MatternGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  api.idle_ = true;
  api.local_min_ = VirtualTime::inf();
  api.now_ = SimTime::from_us(500);
  mgr.idle_poll();
  ASSERT_EQ(api.sent.size(), 1u);
  hw::Packet tok = api.pop_sent();
  mgr.on_control(tok);
  ASSERT_FALSE(api.published.empty());
  EXPECT_TRUE(api.published.back().is_inf()) << "all idle: GVT reaches +inf";
}

TEST(MatternUnit, ColorWindowStaysBoundedOverManyEstimations) {
  // The per-color counters are a flat epoch-indexed window pruned when an
  // estimation completes; without pruning a long run's memory grows with
  // epoch count. Drive hundreds of full estimations and check the
  // gvt.color_map_peak gauge never exceeds the architectural bound.
  FakeKernelApi api(0, 2);
  MatternOptions opts;
  opts.period = 1;
  opts.max_outstanding = 4;
  MatternGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  api.local_min_ = VirtualTime{10};
  for (int round = 1; round <= 300; ++round) {
    // Some colored traffic in every epoch, so cells really materialize.
    hw::PacketHeader out = event_hdr(VirtualTime{10 + round});
    mgr.stamp_outgoing(out);
    hw::PacketHeader in = event_hdr(VirtualTime{10 + round});
    in.color_epoch = out.color_epoch;
    mgr.on_event_received(in);

    api.events_ = round;
    mgr.on_event_processed();  // initiate
    ASSERT_EQ(api.sent.size(), 1u);
    mgr.on_control(api.pop_sent());  // return to root: complete + broadcast
    ASSERT_EQ(api.sent.size(), 1u);
    api.sent.clear();  // drop the broadcast to the (absent) peer
  }
  EXPECT_EQ(api.stats_.value("gvt.estimations"), 300);
  const std::int64_t peak = api.stats_.value("gvt.color_map_peak");
  EXPECT_GT(peak, 0);
  EXPECT_LE(peak, static_cast<std::int64_t>(opts.max_outstanding) + 4)
      << "color window must not grow with total epochs";
}

// ---------------------------------------------------------------------------
// NicGvtManager (host half)
// ---------------------------------------------------------------------------

TEST(NicGvtUnit, PiggybacksHandshakeReplyOnNextEvent) {
  FakeKernelApi api(2, 4);
  NicGvtManager mgr(NicGvtHostOptions{});
  mgr.attach(api);

  hw::Packet notify;
  notify.hdr.kind = hw::PacketKind::kNicGvtToken;
  notify.hdr.gvt.epoch = 7;
  api.local_min_ = VirtualTime{333};
  mgr.on_control(notify);

  hw::PacketHeader h = event_hdr(VirtualTime{400});
  mgr.stamp_outgoing(h);
  EXPECT_TRUE(h.gvt_handshake);
  EXPECT_EQ(h.gvt.epoch, 7u);
  EXPECT_EQ(h.gvt.t, (VirtualTime{333}));

  // One reply only.
  hw::PacketHeader h2 = event_hdr(VirtualTime{401});
  mgr.stamp_outgoing(h2);
  EXPECT_FALSE(h2.gvt_handshake);
}

TEST(NicGvtUnit, FallsBackToMailboxWriteAfterWindow) {
  FakeKernelApi api(2, 4);
  NicGvtHostOptions opts;
  opts.piggyback_window_us = 25.0;
  NicGvtManager mgr(opts);
  mgr.attach(api);

  hw::Packet notify;
  notify.hdr.kind = hw::PacketKind::kNicGvtToken;
  notify.hdr.gvt.epoch = 3;
  api.local_min_ = VirtualTime{55};
  mgr.on_control(notify);
  ASSERT_EQ(api.timers.size(), 1u);
  // No outgoing event shows up; the timer fires the dedicated write.
  api.now_ = api.timers[0].first;
  api.timers[0].second();
  EXPECT_TRUE(api.mailbox_.host_values.valid);
  EXPECT_EQ(api.mailbox_.host_values.epoch, 3u);
  EXPECT_EQ(api.mailbox_.host_values.lvt, (VirtualTime{55}));
}

TEST(NicGvtUnit, AdoptsNicPublishedGvt) {
  FakeKernelApi api(2, 4);
  NicGvtManager mgr(NicGvtHostOptions{});
  mgr.attach(api);
  api.mailbox_.gvt = VirtualTime{900};
  hw::Packet bc;
  bc.hdr.kind = hw::PacketKind::kGvtBroadcast;
  mgr.on_control(bc);
  ASSERT_EQ(api.published.size(), 1u);
  EXPECT_EQ(api.published[0], (VirtualTime{900}));
}

// ---------------------------------------------------------------------------
// PGvtManager
// ---------------------------------------------------------------------------

TEST(PGvtUnit, AcksEveryReceivedEventAndTracksOutstanding) {
  FakeKernelApi api(1, 3);
  PGvtManager mgr(PGvtOptions{});
  mgr.attach(api);
  mgr.start();

  hw::PacketHeader out = event_hdr(VirtualTime{70});
  out.event_id = 42;
  mgr.stamp_outgoing(out);
  EXPECT_EQ(mgr.unacked(), 1u);

  hw::PacketHeader in = event_hdr(VirtualTime{60});
  in.src = 0;
  in.event_id = 99;
  mgr.on_event_received(in);
  ASSERT_EQ(api.sent.size(), 1u);
  const hw::Packet ack = api.pop_sent();
  EXPECT_EQ(ack.hdr.kind, hw::PacketKind::kAck);
  EXPECT_EQ(ack.hdr.dst, 0u);
  EXPECT_EQ(ack.hdr.event_id, 99u);

  // Our own send is acknowledged.
  hw::Packet got_ack;
  got_ack.hdr.kind = hw::PacketKind::kAck;
  got_ack.hdr.event_id = 42;
  mgr.on_control(got_ack);
  EXPECT_EQ(mgr.unacked(), 0u);
}

TEST(PGvtUnit, GatherComputesMinOverReports) {
  FakeKernelApi api(0, 3);
  PGvtOptions opts;
  opts.period = 1;
  PGvtManager mgr(opts);
  mgr.attach(api);
  mgr.start();

  api.events_ = 1;
  api.local_min_ = VirtualTime{500};
  mgr.on_event_processed();  // broadcast requests to ranks 1, 2
  ASSERT_EQ(api.sent.size(), 2u);
  api.sent.clear();

  hw::Packet rep1;
  rep1.hdr.kind = hw::PacketKind::kPGvtReport;
  rep1.hdr.src = 1;
  rep1.hdr.gvt.epoch = 1;
  rep1.hdr.gvt.t = VirtualTime{321};
  mgr.on_control(rep1);
  EXPECT_TRUE(api.published.empty()) << "one report outstanding";

  hw::Packet rep2 = rep1;
  rep2.hdr.src = 2;
  rep2.hdr.gvt.t = VirtualTime{444};
  mgr.on_control(rep2);
  ASSERT_EQ(api.published.size(), 1u);
  EXPECT_EQ(api.published[0], (VirtualTime{321}));
  // Broadcast of the final value to both peers.
  EXPECT_EQ(api.sent.size(), 2u);
  EXPECT_EQ(api.sent[0].hdr.kind, hw::PacketKind::kGvtBroadcast);
}

TEST(PGvtUnit, UnackedSendBoundsTheReport) {
  FakeKernelApi api(1, 2);
  PGvtManager mgr(PGvtOptions{});
  mgr.attach(api);
  mgr.start();

  hw::PacketHeader out = event_hdr(VirtualTime{15});
  out.event_id = 7;
  mgr.stamp_outgoing(out);
  api.local_min_ = VirtualTime{800};  // LP itself is far ahead

  hw::Packet req;
  req.hdr.kind = hw::PacketKind::kPGvtRequest;
  req.hdr.src = 0;
  req.hdr.gvt.epoch = 5;
  mgr.on_control(req);
  ASSERT_EQ(api.sent.size(), 1u);
  EXPECT_EQ(api.sent[0].hdr.gvt.t, (VirtualTime{15})) << "in-flight send holds GVT";
}

TEST(PGvtUnit, DropNoticeClearsPendingAck) {
  FakeKernelApi api(1, 2);
  PGvtManager mgr(PGvtOptions{});
  mgr.attach(api);
  mgr.start();

  hw::PacketHeader out = event_hdr(VirtualTime{15});
  out.event_id = 7;
  mgr.stamp_outgoing(out);
  hw::DropNotice n;
  n.id = 7;
  n.negative = false;
  mgr.on_nic_drop(n);
  EXPECT_EQ(mgr.unacked(), 0u) << "a dropped packet will never be acked";
}

}  // namespace
}  // namespace nicwarp::warped
