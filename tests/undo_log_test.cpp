// Unit tests for the pooled record-before-write undo log
// (src/core/undo_log.hpp): record/rewind symmetry, wide-write splitting,
// mark staleness after reset, chunk recycling through the pool, capped-pool
// overflow, and fossil trimming via release_below.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "core/undo_log.hpp"

namespace nicwarp::core {
namespace {

TEST(UndoLog, RecordRewindRestoresExactBytes) {
  UndoChunkPool pool;
  UndoLog log(pool);

  std::int64_t a = 10;
  double b = 2.5;
  std::array<char, 8> c{'o', 'r', 'i', 'g', 'i', 'n', 'a', 'l'};

  const UndoLog::Mark m = log.mark();
  EXPECT_TRUE(log.record(&a, sizeof(a)));
  a = 99;
  EXPECT_TRUE(log.record(&b, sizeof(b)));
  b = -7.25;
  EXPECT_TRUE(log.record(&c, sizeof(c)));
  c = {'c', 'l', 'o', 'b', 'b', 'e', 'r', '!'};

  log.rewind_to(m);
  EXPECT_EQ(a, 10);
  EXPECT_EQ(b, 2.5);
  EXPECT_EQ(c[0], 'o');
  EXPECT_EQ(c[7], 'l');
  EXPECT_EQ(log.mark(), m);
  EXPECT_EQ(log.entries(), 0u);
}

TEST(UndoLog, RewindToIntermediateMarkKeepsOlderEntries) {
  UndoChunkPool pool;
  UndoLog log(pool);

  int x = 1;
  const UndoLog::Mark m0 = log.mark();
  log.record(&x, sizeof(x));
  x = 2;
  const UndoLog::Mark m1 = log.mark();
  log.record(&x, sizeof(x));
  x = 3;

  log.rewind_to(m1);  // undoes only the second write
  EXPECT_EQ(x, 2);
  log.rewind_to(m0);
  EXPECT_EQ(x, 1);
}

TEST(UndoLog, WideWritesSplitAcrossEntriesAndRestore) {
  UndoChunkPool pool;
  UndoLog log(pool);

  // 300 bytes: far past kInlineBytes, forcing a multi-entry split.
  std::array<unsigned char, 300> buf{};
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<unsigned char>(i * 7 + 1);
  }
  const auto orig = buf;

  const UndoLog::Mark m = log.mark();
  EXPECT_TRUE(log.record(buf.data(), buf.size()));
  EXPECT_GT(log.entries(), 1u);
  EXPECT_EQ(log.bytes_logged(), buf.size());
  buf.fill(0xEE);

  log.rewind_to(m);
  EXPECT_EQ(buf, orig);
}

TEST(UndoLog, ResetMakesAllPriorMarksStale) {
  UndoChunkPool pool;
  UndoLog log(pool);

  int x = 5;
  const UndoLog::Mark before = log.mark();
  log.record(&x, sizeof(x));
  x = 6;

  EXPECT_GE(before, log.first_pos());
  log.reset();
  // Entries discarded without being applied...
  EXPECT_EQ(x, 6);
  EXPECT_EQ(log.entries(), 0u);
  // ...and the burned position makes every earlier mark detectably stale,
  // including a mark taken exactly at the old end.
  EXPECT_LT(before, log.first_pos());
  EXPECT_LT(log.mark() - 1, log.first_pos());
  // New marks taken after the reset are live again.
  const UndoLog::Mark after = log.mark();
  log.record(&x, sizeof(x));
  x = 7;
  log.rewind_to(after);
  EXPECT_EQ(x, 6);
}

TEST(UndoLog, ChunkReuseAfterRewindDoesNotGrowPool) {
  UndoChunkPool pool;
  UndoLog log(pool);

  int sink = 0;
  // Burn in: one rollback's worth of entries, spanning several chunks.
  constexpr int kEntriesPerRound = UndoChunkPool::kChunkSlots * 3 + 5;
  const UndoLog::Mark m = log.mark();
  for (int i = 0; i < kEntriesPerRound; ++i) log.record(&sink, sizeof(sink));
  log.rewind_to(m);
  const std::size_t plateau = pool.allocated();
  EXPECT_GE(plateau, 3u);

  // Steady state: the same record/rewind cycle must recycle chunks through
  // the pool freelist, not allocate fresh ones.
  for (int round = 0; round < 50; ++round) {
    const UndoLog::Mark r = log.mark();
    for (int i = 0; i < kEntriesPerRound; ++i) log.record(&sink, sizeof(sink));
    log.rewind_to(r);
  }
  EXPECT_EQ(pool.allocated(), plateau);
  EXPECT_EQ(pool.peak(), plateau);
}

TEST(UndoLog, CappedPoolOverflowsStickilyAndRecovers) {
  UndoChunkPool pool(1);  // exactly one chunk ever
  UndoLog log(pool);

  int sink = 0;
  for (std::size_t i = 0; i < UndoChunkPool::kChunkSlots; ++i) {
    EXPECT_TRUE(log.record(&sink, sizeof(sink)));
  }
  // 65th entry needs a second chunk: cap hit, sticky flag raised.
  EXPECT_FALSE(log.record(&sink, sizeof(sink)));
  EXPECT_TRUE(log.overflowed());
  EXPECT_FALSE(log.record(&sink, sizeof(sink)));

  // The already-logged prefix still restores correctly.
  const UndoLog::Mark all = log.first_pos();
  sink = 42;
  log.rewind_to(all);
  EXPECT_EQ(sink, 0);

  log.clear_overflow();
  EXPECT_FALSE(log.overflowed());
  EXPECT_TRUE(log.record(&sink, sizeof(sink)));
  EXPECT_EQ(pool.allocated(), 1u);
}

TEST(UndoLog, ReleaseBelowFreesWholeChunksOnly) {
  UndoChunkPool pool;
  UndoLog log(pool);

  int sink = 0;
  constexpr std::size_t kSlots = UndoChunkPool::kChunkSlots;
  for (std::size_t i = 0; i < kSlots * 2 + 10; ++i) {
    log.record(&sink, sizeof(sink));
  }
  EXPECT_EQ(log.chunks_held(), 3u);

  // Mark inside the second chunk: only the first chunk is physically freed,
  // but the logical floor advances all the way to the mark — entries below
  // it are fossil-collected even while their straddled chunk survives.
  const UndoLog::Mark mid = log.first_pos() + kSlots + 3;
  log.release_below(mid);
  EXPECT_EQ(log.chunks_held(), 2u);
  EXPECT_EQ(log.first_pos(), mid);
  EXPECT_EQ(pool.live(), 2u);

  // No-op when the mark is at or below the current floor.
  log.release_below(log.first_pos());
  EXPECT_EQ(log.chunks_held(), 2u);

  // Entries at or above the floor still rewind.
  const UndoLog::Mark tail = log.mark();
  log.record(&sink, sizeof(sink));
  sink = 9;
  log.rewind_to(tail);
  EXPECT_EQ(sink, 0);
}

TEST(UndoLog, DestructorReturnsChunksToPool) {
  UndoChunkPool pool;
  {
    UndoLog log(pool);
    int sink = 0;
    for (std::size_t i = 0; i < UndoChunkPool::kChunkSlots + 1; ++i) {
      log.record(&sink, sizeof(sink));
    }
    EXPECT_EQ(pool.live(), 2u);
  }
  EXPECT_EQ(pool.live(), 0u);
  // A second log reuses the freed chunks instead of allocating.
  UndoLog log2(pool);
  int sink = 0;
  log2.record(&sink, sizeof(sink));
  EXPECT_EQ(pool.allocated(), 2u);
}

}  // namespace
}  // namespace nicwarp::core
