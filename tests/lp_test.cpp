// Tests for the Time-Warp LogicalProcess: canonical ordering, rollback
// (object- and LP-scoped), anti-message annihilation, state restoration,
// fossil collection, and the determinism invariants the NIC optimizations
// rely on.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "core/stats.hpp"
#include "warped/lp.hpp"

namespace nicwarp::warped {
namespace {

// A simple counter object: every event adds data[0] to an accumulator and
// (optionally) forwards to data[1] if >= 0 with delay data[2].
struct AccState : CloneableState<AccState> {
  std::int64_t acc{0};
  std::int64_t executed{0};
};

class AccObject final : public SimulationObject {
 public:
  explicit AccObject(ObjectId id)
      : SimulationObject(id, "acc" + std::to_string(id), std::make_unique<AccState>()) {}

  void initialize(ObjectContext&) override {}

  void execute(ObjectContext& ctx, const EventMsg& ev) override {
    auto& st = state_as<AccState>();
    st.acc += ev.data.at(0);
    st.executed += 1;
    ctx.fold_signature(ev.data.at(0) * 17 + ctx.now().t);
    if (ev.data.size() >= 3 && ev.data.at(1) >= 0) {
      ctx.send(static_cast<ObjectId>(ev.data.at(1)), ctx.now() + ev.data.at(2),
               {ev.data.at(0) + 1, -1, 0});
    }
  }
};

EventMsg make_event(ObjectId dst, std::int64_t recv, std::int64_t value = 1,
                    EventId id = kInvalidEvent) {
  static std::uint64_t next_id = 1000;
  EventMsg ev;
  ev.src_obj = 999;  // external
  ev.dst_obj = dst;
  ev.send_ts = VirtualTime{recv - 1};
  ev.recv_ts = VirtualTime{recv};
  ev.id = id == kInvalidEvent ? next_id++ : id;
  ev.data = {value, -1, 0};
  return ev;
}

class LpFixture : public ::testing::Test {
 protected:
  explicit LpFixture(RollbackScope scope = RollbackScope::kObject)
      : lp_(0, stats_, 42, scope) {
    lp_.add_object(std::make_unique<AccObject>(0));
    lp_.add_object(std::make_unique<AccObject>(1));
    lp_.set_paranoia(true);
    // The external pseudo-sender object must exist nowhere; events are
    // injected directly via insert().
  }

  StatsRegistry stats_;
  LogicalProcess lp_;
};

// Helper: run everything currently pending to completion.
std::size_t drain(LogicalProcess& lp) {
  std::size_t n = 0;
  while (lp.has_ready_event()) {
    auto r = lp.execute_next();
    EXPECT_TRUE(r.executed);
    // Local forwarding: reinsert sends addressed to local objects.
    for (auto& ev : r.sends) {
      if (lp.has_object(ev.dst_obj)) lp.insert(std::move(ev));
    }
    ++n;
  }
  return n;
}

TEST_F(LpFixture, ExecutesInCanonicalOrderAcrossObjects) {
  lp_.insert(make_event(1, 30));
  lp_.insert(make_event(0, 10));
  lp_.insert(make_event(1, 20));
  std::vector<std::pair<std::int64_t, ObjectId>> order;
  while (lp_.has_ready_event()) {
    auto r = lp_.execute_next();
    order.emplace_back(r.ts.t, r.obj);
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], (std::pair<std::int64_t, ObjectId>{10, 0}));
  EXPECT_EQ(order[1], (std::pair<std::int64_t, ObjectId>{20, 1}));
  EXPECT_EQ(order[2], (std::pair<std::int64_t, ObjectId>{30, 1}));
}

TEST_F(LpFixture, LvtTracksMinPending) {
  EXPECT_TRUE(lp_.lvt().is_inf());
  lp_.insert(make_event(0, 50));
  lp_.insert(make_event(1, 40));
  EXPECT_EQ(lp_.lvt(), (VirtualTime{40}));
  lp_.execute_next();
  EXPECT_EQ(lp_.lvt(), (VirtualTime{50}));
  lp_.execute_next();
  EXPECT_TRUE(lp_.lvt().is_inf());
}

TEST_F(LpFixture, StragglerTriggersObjectRollbackAndAntis) {
  // Object 0 processes events at 10 and 20, each generating a send; then a
  // straggler at 15 arrives.
  EventMsg e10 = make_event(0, 10);
  e10.data = {1, 1, 5};  // sends to object 1
  EventMsg e20 = make_event(0, 20);
  e20.data = {1, 1, 5};
  lp_.insert(e10);
  lp_.insert(e20);
  lp_.execute_next();
  auto r = lp_.execute_next();
  ASSERT_EQ(r.sends.size(), 1u);

  auto res = lp_.insert(make_event(0, 15));
  EXPECT_TRUE(res.rollback);
  EXPECT_EQ(res.events_undone, 1u);          // only the event at 20
  ASSERT_EQ(res.antis.size(), 1u);           // its output is cancelled
  EXPECT_TRUE(res.antis[0].negative);
  EXPECT_EQ(res.antis[0].send_ts, (VirtualTime{20}));
  EXPECT_EQ(lp_.rollbacks(), 1u);
  EXPECT_EQ(lp_.events_rolled_back(), 1u);
  // Both the straggler and the undone event are pending again.
  EXPECT_EQ(lp_.total_pending(), 2u);
}

TEST_F(LpFixture, RollbackRestoresStateExactly) {
  lp_.insert(make_event(0, 10, 100));
  lp_.insert(make_event(0, 20, 1000));
  drain(lp_);
  const std::int64_t sig_before = lp_.signature_sum();

  // Straggler at 15 undoes the event at 20.
  lp_.insert(make_event(0, 15, 7));
  // Re-execute everything.
  drain(lp_);
  // acc must now be 100 + 7 + 1000 and every event counted once in order.
  EXPECT_NE(lp_.signature_sum(), sig_before);  // the new event changed it
  EXPECT_EQ(lp_.events_processed(), 4u);  // 2 first + straggler + re-exec of e20
  EXPECT_EQ(lp_.events_rolled_back(), 1u);
}

TEST_F(LpFixture, SignatureIsScheduleIndependent) {
  // Run A: in order. Run B: with a rollback. Final signatures must match.
  StatsRegistry stats2;
  LogicalProcess a(0, stats_, 7), b(0, stats2, 7);
  a.add_object(std::make_unique<AccObject>(0));
  b.add_object(std::make_unique<AccObject>(0));

  EventMsg e1 = make_event(0, 10, 3, 501);
  EventMsg e2 = make_event(0, 20, 4, 502);
  EventMsg e3 = make_event(0, 30, 5, 503);

  a.insert(e1);
  a.insert(e2);
  a.insert(e3);
  drain(a);

  b.insert(e2);
  b.insert(e3);
  drain(b);          // b optimistically runs 20, 30 first
  b.insert(e1);      // straggler at 10 → rollback of everything
  drain(b);

  EXPECT_EQ(a.signature_sum(), b.signature_sum());
  EXPECT_EQ(b.rollbacks(), 1u);
}

TEST_F(LpFixture, AntiAnnihilatesPendingPositive) {
  EventMsg pos = make_event(0, 10, 1, 777);
  lp_.insert(pos);
  auto res = lp_.insert(pos.as_anti());
  EXPECT_TRUE(res.annihilated);
  EXPECT_FALSE(res.rollback);
  EXPECT_FALSE(lp_.has_ready_event());
}

TEST_F(LpFixture, AntiAfterProcessingRollsBackAndAnnihilates) {
  EventMsg pos = make_event(0, 10, 5, 888);
  lp_.insert(pos);
  lp_.insert(make_event(0, 20, 6));
  drain(lp_);
  EXPECT_EQ(lp_.events_processed(), 2u);

  auto res = lp_.insert(pos.as_anti());
  EXPECT_TRUE(res.rollback);
  EXPECT_TRUE(res.annihilated);
  EXPECT_EQ(res.events_undone, 2u);  // 10 and 20 both undone (>= pivot)
  // Only the event at 20 is pending again; re-execution must not replay 10.
  EXPECT_EQ(lp_.total_pending(), 1u);
  drain(lp_);
  EXPECT_EQ(lp_.anti_counter(0), 0u);  // local (non-network) antis don't count
}

TEST_F(LpFixture, NetworkAntiAdvancesCounters) {
  EventMsg pos = make_event(0, 10, 5, 999);
  lp_.insert(pos, /*from_network=*/true);
  auto res = lp_.insert(pos.as_anti(), /*from_network=*/true);
  EXPECT_TRUE(res.annihilated);
  EXPECT_EQ(lp_.anti_counter(0), 1u);
  EXPECT_EQ(lp_.last_anti_ts(0), (VirtualTime{10}));
  EXPECT_EQ(lp_.anti_counter_piggyback(0), 1u);  // kObject scope
}

TEST_F(LpFixture, OrphanAntiParksAndAnnihilatesLateArrival) {
  EventMsg pos = make_event(0, 10, 5, 1111);
  auto res1 = lp_.insert(pos.as_anti());
  EXPECT_TRUE(res1.stored_orphan);
  EXPECT_EQ(lp_.orphan_antis(), 1u);
  // An orphan holds LVT: the pair is not yet resolved.
  EXPECT_EQ(lp_.lvt(), (VirtualTime{10}));

  auto res2 = lp_.insert(pos);
  EXPECT_TRUE(res2.annihilated);
  EXPECT_EQ(lp_.orphan_antis(), 0u);
  EXPECT_TRUE(lp_.lvt().is_inf());
}

TEST_F(LpFixture, FossilCollectionKeepsBoundaryRecords) {
  for (int t = 10; t <= 50; t += 10) lp_.insert(make_event(0, t));
  drain(lp_);
  EXPECT_EQ(lp_.total_processed_records(), 5u);
  EXPECT_EQ(lp_.fossil_collect(VirtualTime{30}), 2u);  // 10 and 20 reclaimed
  EXPECT_EQ(lp_.total_processed_records(), 3u);        // 30, 40, 50 kept
  // A rollback to exactly GVT must still work.
  auto res = lp_.insert(make_event(0, 30, 9));
  EXPECT_TRUE(res.rollback);
  drain(lp_);
  // GVT never regresses.
  EXPECT_EQ(lp_.fossil_collect(VirtualTime{20}), 0u);
  EXPECT_EQ(lp_.max_gvt_seen(), (VirtualTime{30}));
}

TEST_F(LpFixture, GvtViolationIsFatal) {
  lp_.insert(make_event(0, 50));
  drain(lp_);
  lp_.fossil_collect(VirtualTime{40});
  EXPECT_DEATH(lp_.insert(make_event(0, 30)), "GVT estimation is unsound");
}

TEST_F(LpFixture, DuplicatePositiveIsFatalUnderParanoia) {
  EventMsg pos = make_event(0, 10, 1, 2222);
  lp_.insert(pos);
  EXPECT_DEATH(lp_.insert(pos), "duplicate positive");
}

// ---------------------------------------------------------------------------
// LP-wide rollback scope (the 2002-era semantics the paper's Fig. 3b needs).
// ---------------------------------------------------------------------------

class LpWideFixture : public LpFixture {
 protected:
  LpWideFixture() : LpFixture(RollbackScope::kLp) {}
};

TEST_F(LpWideFixture, StragglerRollsBackEveryObject) {
  EventMsg a20 = make_event(0, 20);
  a20.data = {1, 1, 5};  // object 0 sends to object 1
  lp_.insert(a20);
  lp_.insert(make_event(1, 25));
  drain(lp_);
  EXPECT_EQ(lp_.events_processed(), 3u);  // 20, 25, and the forwarded one

  // Straggler at 15 for object 1: under kLp, object 0's event at 20 is
  // undone too, and its output gets an anti.
  auto res = lp_.insert(make_event(1, 15));
  EXPECT_TRUE(res.rollback);
  EXPECT_EQ(res.events_undone, 3u);
  bool anti_for_forward = false;
  for (const auto& anti : res.antis) anti_for_forward |= anti.send_ts == VirtualTime{20};
  EXPECT_TRUE(anti_for_forward);
}

TEST_F(LpWideFixture, PiggybackCounterIsLpWide) {
  EventMsg p0 = make_event(0, 10, 1, 3333);
  EventMsg p1 = make_event(1, 12, 1, 3334);
  lp_.insert(p0, true);
  lp_.insert(p1, true);
  lp_.insert(p0.as_anti(), true);
  EXPECT_EQ(lp_.anti_counter_piggyback(0), 1u);
  EXPECT_EQ(lp_.anti_counter_piggyback(1), 1u);  // same LP-wide counter
  lp_.insert(p1.as_anti(), true);
  EXPECT_EQ(lp_.anti_counter_piggyback(0), 2u);
}

TEST_F(LpWideFixture, SameTimestampOtherObjectBeforePivotSurvives) {
  // Two events at t=20 on objects 0 and 1. An anti annihilating the one on
  // object 1 must NOT undo the object-0 record (it sorts before the pivot).
  EventMsg e0 = make_event(0, 20, 1, 4440);
  EventMsg e1 = make_event(1, 20, 1, 4441);
  lp_.insert(e0);
  lp_.insert(e1);
  drain(lp_);
  auto res = lp_.insert(e1.as_anti());
  EXPECT_TRUE(res.annihilated);
  EXPECT_EQ(res.events_undone, 1u);  // only e1
  EXPECT_EQ(lp_.total_processed_records(), 1u);
}

TEST_F(LpWideFixture, SignatureMatchesObjectScopeRun) {
  // The same event set under both scopes commits to the same result.
  StatsRegistry s2;
  LogicalProcess obj_lp(0, s2, 99, RollbackScope::kObject);
  obj_lp.add_object(std::make_unique<AccObject>(0));
  obj_lp.add_object(std::make_unique<AccObject>(1));

  std::vector<EventMsg> evs;
  for (int i = 0; i < 10; ++i) {
    evs.push_back(make_event(static_cast<ObjectId>(i % 2), 10 + i * 5, i,
                             static_cast<EventId>(9000 + i)));
  }
  // LP-wide run with a straggler in the middle.
  for (int i = 0; i < 10; ++i) {
    if (i == 4) continue;
    lp_.insert(evs[static_cast<std::size_t>(i)]);
  }
  drain(lp_);
  lp_.insert(evs[4]);  // straggler
  drain(lp_);

  for (const auto& ev : evs) obj_lp.insert(ev);
  drain(obj_lp);

  EXPECT_EQ(lp_.signature_sum(), obj_lp.signature_sum());
}

// ---------------------------------------------------------------------------
// State saving: checkpoint-period gaps, the incremental undo log, and the
// adaptive interval.
// ---------------------------------------------------------------------------

// AccObject with write-barriered mutations, as the incremental undo log
// requires (see docs/ARCHITECTURE.md, "write-barrier contract").
struct BarrierState : CloneableState<BarrierState> {
  std::int64_t acc{0};
  std::int64_t executed{0};
};

class BarrierObject final : public SimulationObject {
 public:
  explicit BarrierObject(ObjectId id)
      : SimulationObject(id, "bar" + std::to_string(id),
                         std::make_unique<BarrierState>()) {}

  void initialize(ObjectContext&) override {}

  void execute(ObjectContext& ctx, const EventMsg& ev) override {
    auto& st = state_as<BarrierState>();
    st.mut(st.acc) += ev.data.at(0);
    st.mut(st.executed) += 1;
    ctx.fold_signature(ev.data.at(0) * 17 + ctx.now().t);
    if (ev.data.size() >= 3 && ev.data.at(1) >= 0) {
      ctx.send(static_cast<ObjectId>(ev.data.at(1)), ctx.now() + ev.data.at(2),
               {ev.data.at(0) + 1, -1, 0});
    }
  }
};

std::unique_ptr<LogicalProcess> make_state_lp(StatsRegistry& stats,
                                              std::int64_t period,
                                              StateSaveMode mode,
                                              int objects = 1) {
  auto lp = std::make_unique<LogicalProcess>(0, stats, 42, RollbackScope::kObject,
                                             CancellationMode::kAggressive, period,
                                             mode);
  for (int o = 0; o < objects; ++o) {
    lp->add_object(std::make_unique<BarrierObject>(static_cast<ObjectId>(o)));
  }
  lp->set_paranoia(true);
  return lp;
}

TEST(LpStateSaving, GapRollbackTakesNoDeadSnapshot) {
  // Regression: rolling back to a position whose record has no snapshot
  // (periodic saving skipped it) used to cut an extra snapshot into the
  // target record and then immediately erase the record — pure waste that
  // inflated state_saves/state_save_bytes. The rollback itself must not
  // snapshot anything.
  StatsRegistry stats;
  auto lp = make_state_lp(stats, 4, StateSaveMode::kCopy);
  lp->insert(make_event(0, 10, 100));
  lp->insert(make_event(0, 20, 1000));
  lp->insert(make_event(0, 30, 10000));
  drain(*lp);
  // Period 4: only the anchor snapshot before the first execution.
  EXPECT_EQ(lp->state_saves(), 1u);
  const std::uint64_t saves_before = lp->state_saves();
  const std::uint64_t bytes_before = lp->state_save_bytes();

  // Straggler at 15: target position (the record at 20) is a gap.
  auto res = lp->insert(make_event(0, 15, 7));
  EXPECT_TRUE(res.rollback);
  EXPECT_EQ(res.events_undone, 2u);
  EXPECT_EQ(lp->state_saves(), saves_before);
  EXPECT_EQ(lp->state_save_bytes(), bytes_before);
  // Coast-forward replayed exactly the one event between the anchor snapshot
  // (position 0) and the rollback point — no double counting.
  EXPECT_EQ(lp->events_replayed(), 1u);

  drain(*lp);
  EXPECT_EQ(lp->events_processed(), 6u);  // 3 + straggler + 2 re-executions
}

TEST(LpStateSaving, IncrementalRollbackIsPureUndo) {
  StatsRegistry stats;
  auto lp = make_state_lp(stats, 0, StateSaveMode::kIncremental);
  lp->insert(make_event(0, 10, 100));
  lp->insert(make_event(0, 20, 1000));
  lp->insert(make_event(0, 30, 10000));
  drain(*lp);
  EXPECT_GT(lp->undo_bytes_logged(), 0u);

  auto res = lp->insert(make_event(0, 15, 7));
  EXPECT_TRUE(res.rollback);
  EXPECT_EQ(res.events_undone, 2u);
  // Served by reverse byte replay: no snapshot restore, no coast-forward.
  EXPECT_EQ(lp->undo_rewinds(), 1u);
  EXPECT_EQ(lp->events_replayed(), 0u);

  drain(*lp);
  // Same trajectory as an in-order copy-mode run of the same four events.
  StatsRegistry stats2;
  auto ref = make_state_lp(stats2, 1, StateSaveMode::kCopy);
  ref->insert(make_event(0, 10, 100));
  ref->insert(make_event(0, 15, 7));
  ref->insert(make_event(0, 20, 1000));
  ref->insert(make_event(0, 30, 10000));
  drain(*ref);
  EXPECT_EQ(lp->signature_sum(), ref->signature_sum());
}

TEST(LpStateSaving, IncrementalMatchesCopyAcrossScrambledSchedules) {
  // The same 40-event workload (two objects, forwarding, repeated
  // stragglers) in copy period-1, copy period-3, incremental adaptive, and
  // incremental period-3 modes: identical committed signatures and event
  // counts. State saving is a cost knob, never a correctness knob.
  struct Run {
    std::int64_t period;
    StateSaveMode mode;
  };
  const Run runs[] = {{1, StateSaveMode::kCopy},
                      {3, StateSaveMode::kCopy},
                      {0, StateSaveMode::kIncremental},
                      {3, StateSaveMode::kIncremental}};
  std::vector<std::int64_t> sigs;
  std::vector<std::uint64_t> processed;
  for (const Run& run : runs) {
    StatsRegistry stats;
    auto lp = make_state_lp(stats, run.period, run.mode, 2);
    // Unlike the fixture drain(), route antis too: a rollback of a
    // forwarding event regenerates its send, which must annihilate the
    // stale copy instead of colliding with it under paranoia.
    std::deque<EventMsg> inbox;
    auto deliver = [&] {
      while (!inbox.empty()) {
        EventMsg m = std::move(inbox.front());
        inbox.pop_front();
        auto res = lp->insert(std::move(m));
        for (auto& a : res.antis) inbox.push_back(std::move(a));
      }
    };
    auto pump = [&] {
      deliver();
      while (lp->has_ready_event()) {
        auto r = lp->execute_next();
        for (auto& ev : r.sends) inbox.push_back(std::move(ev));
        for (auto& a : r.antis) inbox.push_back(std::move(a));
        deliver();
      }
    };
    std::uint64_t s = 7;
    std::vector<EventMsg> evs;
    for (int i = 0; i < 40; ++i) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      EventMsg ev = make_event(static_cast<ObjectId>(i % 2),
                               5 + static_cast<std::int64_t>(s % 200),
                               static_cast<std::int64_t>(s % 97),
                               static_cast<EventId>(70000 + i));
      if (i % 5 == 0) ev.data = {ev.data[0], (i + 1) % 2, 3};  // forward
      evs.push_back(ev);
    }
    // Insert out of order in bursts so stragglers land below the horizon.
    for (int i = 0; i < 40; i += 8) {
      for (int j = i; j < i + 8; ++j) {
        inbox.push_back(evs[static_cast<std::size_t>(j)]);
      }
      pump();
    }
    sigs.push_back(lp->signature_sum());
    processed.push_back(lp->events_processed());
    if (run.mode == StateSaveMode::kIncremental) {
      EXPECT_GT(lp->undo_bytes_logged(), 0u);
    }
  }
  for (std::size_t i = 1; i < sigs.size(); ++i) {
    EXPECT_EQ(sigs[i], sigs[0]) << "mode " << i;
    EXPECT_EQ(processed[i], processed[0]) << "mode " << i;
  }
}

TEST(LpStateSaving, AdaptivePeriodStretchesWhenRollbacksAreRare) {
  StatsRegistry stats;
  auto lp = make_state_lp(stats, 0, StateSaveMode::kCopy);
  EXPECT_EQ(lp->effective_period(), 8);  // the pre-observation default
  for (int i = 0; i < 120; ++i) {
    lp->insert(make_event(0, 10 + i, 1));
    drain(*lp);
  }
  // 120 events, zero rollbacks: the Lin–Lazowska interval sqrt(2*mu) has
  // grown past the default.
  EXPECT_GT(lp->effective_period(), 8);
  EXPECT_LE(lp->effective_period(), 64);
}

TEST(LpStateSaving, AdaptivePeriodShrinksUnderRollbackPressure) {
  StatsRegistry stats;
  auto lp = make_state_lp(stats, 0, StateSaveMode::kCopy);
  // Every second event is a straggler: rollback rate ~0.5 → interval near 2.
  std::int64_t t = 100;
  for (int i = 0; i < 60; ++i) {
    lp->insert(make_event(0, t, 1));
    drain(*lp);
    lp->insert(make_event(0, t - 50, 1));  // straggler below the last event
    drain(*lp);
    t += 60;
  }
  EXPECT_GT(lp->rollbacks(), 0u);
  EXPECT_LT(lp->effective_period(), 8);
}

}  // namespace
}  // namespace nicwarp::warped
