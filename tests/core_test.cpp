// Unit tests for src/core: RNG streams, ring buffer, config, stats, types.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/config.hpp"
#include "core/ring_buffer.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"

namespace nicwarp {
namespace {

// ---------------------------------------------------------------------------
// SimTime / VirtualTime
// ---------------------------------------------------------------------------

TEST(SimTimeTest, ArithmeticAndConversions) {
  SimTime a = SimTime::from_us(2.5);
  EXPECT_EQ(a.ns, 2500);
  EXPECT_DOUBLE_EQ(a.micros(), 2.5);
  EXPECT_DOUBLE_EQ(SimTime::from_seconds(1.5).seconds(), 1.5);
  EXPECT_EQ((a + SimTime::from_ns(500)).ns, 3000);
  EXPECT_EQ((a - SimTime::from_ns(500)).ns, 2000);
  SimTime b = a;
  b += SimTime::from_ns(1);
  EXPECT_LT(a, b);
}

TEST(SimTimeTest, OrderingIsTotal) {
  EXPECT_LT(SimTime::zero(), SimTime::max());
  EXPECT_EQ(SimTime::from_us(1), SimTime::from_ns(1000));
}

TEST(VirtualTimeTest, InfinitySemantics) {
  EXPECT_TRUE(VirtualTime::inf().is_inf());
  EXPECT_FALSE(VirtualTime::zero().is_inf());
  EXPECT_LT(VirtualTime{1000000}, VirtualTime::inf());
  EXPECT_EQ(VirtualTime::min(VirtualTime{3}, VirtualTime::inf()), VirtualTime{3});
  EXPECT_EQ(VirtualTime::max(VirtualTime{3}, VirtualTime::inf()), VirtualTime::inf());
  EXPECT_EQ((VirtualTime{5} + 7).t, 12);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NamedStreamsAreIndependent) {
  Rng a(42, "alpha"), b(42, "beta"), a2(42, "alpha");
  EXPECT_NE(a.next_u64(), b.next_u64());
  Rng a3(42, "alpha");
  EXPECT_EQ(a3.next_u64(), a2.next_u64());
}

TEST(RngTest, NextBelowIsInRangeAndCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(RngTest, UniformInclusiveBounds) {
  Rng r(8);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = r.uniform(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo_hit |= v == -3;
    hi_hit |= v == 3;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
  EXPECT_EQ(r.uniform(5, 5), 5);  // degenerate range
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng r(10);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += r.exponential(25.0);
  EXPECT_NEAR(sum / 20000.0, 25.0, 1.0);
}

TEST(RngTest, ChanceProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, StableHashIsStable) {
  EXPECT_EQ(stable_hash("hello"), stable_hash("hello"));
  EXPECT_NE(stable_hash("hello"), stable_hash("hellp"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

// ---------------------------------------------------------------------------
// RingBuffer
// ---------------------------------------------------------------------------

TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(rb.try_push(i));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.try_push(99));  // overflow refused, contents intact
  for (int i = 0; i < 4; ++i) EXPECT_EQ(rb.pop(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBufferTest, WrapAround) {
  RingBuffer<int> rb(3);
  rb.try_push(1);
  rb.try_push(2);
  EXPECT_EQ(rb.pop(), 1);
  rb.try_push(3);
  rb.try_push(4);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(2), 4);
  EXPECT_EQ(rb.pop(), 2);
  EXPECT_EQ(rb.pop(), 3);
  EXPECT_EQ(rb.pop(), 4);
}

TEST(RingBufferTest, RemoveAtPreservesOrder) {
  RingBuffer<int> rb(5);
  for (int i = 0; i < 5; ++i) rb.try_push(i * 10);
  EXPECT_EQ(rb.remove_at(2), 20);
  EXPECT_EQ(rb.size(), 4u);
  EXPECT_EQ(rb.at(0), 0);
  EXPECT_EQ(rb.at(1), 10);
  EXPECT_EQ(rb.at(2), 30);
  EXPECT_EQ(rb.at(3), 40);
  EXPECT_EQ(rb.remove_at(0), 0);
  EXPECT_EQ(rb.remove_at(2), 40);
  EXPECT_EQ(rb.size(), 2u);
}

TEST(RingBufferTest, RemoveAtAfterWrap) {
  RingBuffer<int> rb(3);
  rb.try_push(1);
  rb.try_push(2);
  rb.try_push(3);
  rb.pop();          // head moved
  rb.try_push(4);    // wraps
  EXPECT_EQ(rb.remove_at(1), 3);
  EXPECT_EQ(rb.at(0), 2);
  EXPECT_EQ(rb.at(1), 4);
}

TEST(RingBufferTest, ClearResets) {
  RingBuffer<int> rb(2);
  rb.try_push(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.try_push(2));
  EXPECT_EQ(rb.front(), 2);
}

// ---------------------------------------------------------------------------
// ParamSet
// ---------------------------------------------------------------------------

TEST(ParamSetTest, ParseAndTypedGetters) {
  ParamSet p = ParamSet::parse("a=1 b=2.5 c=hello  d=true   e=off");
  EXPECT_EQ(p.get_i64("a", -1), 1);
  EXPECT_DOUBLE_EQ(p.get_f64("b", 0.0), 2.5);
  EXPECT_EQ(p.get_str("c", ""), "hello");
  EXPECT_TRUE(p.get_bool("d", false));
  EXPECT_FALSE(p.get_bool("e", true));
  EXPECT_EQ(p.get_i64("missing", 77), 77);
  EXPECT_FALSE(p.contains("missing"));
  EXPECT_TRUE(p.contains("a"));
}

TEST(ParamSetTest, ParseIgnoresBadTokens) {
  ParamSet p = ParamSet::parse("noequals a=1 =bad");
  EXPECT_EQ(p.size(), 1u);
  EXPECT_EQ(p.get_i64("a", 0), 1);
}

TEST(ParamSetTest, CanonicalToString) {
  ParamSet p = ParamSet::parse("z=1 a=2");
  EXPECT_EQ(p.to_string(), "a=2 z=1");  // sorted
}

TEST(ParamSetTest, MergeOverrides) {
  ParamSet base = ParamSet::parse("a=1 b=2");
  ParamSet over = ParamSet::parse("b=3 c=4");
  ParamSet m = base.merged_with(over);
  EXPECT_EQ(m.get_i64("a", 0), 1);
  EXPECT_EQ(m.get_i64("b", 0), 3);
  EXPECT_EQ(m.get_i64("c", 0), 4);
}

TEST(ParamSetTest, SettersRoundTrip) {
  ParamSet p;
  p.set_i64("n", -42);
  p.set_f64("x", 1.25);
  EXPECT_EQ(p.get_i64("n", 0), -42);
  EXPECT_DOUBLE_EQ(p.get_f64("x", 0.0), 1.25);
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

TEST(StatsTest, CountersAccumulate) {
  StatsRegistry s;
  s.counter("x").add(3);
  s.counter("x").add(4);
  s.counter("y").sub(1);
  EXPECT_EQ(s.value("x"), 7);
  EXPECT_EQ(s.value("y"), -1);
  EXPECT_EQ(s.value("never"), 0);
}

TEST(StatsTest, AllCountersSortedByName) {
  StatsRegistry s;
  s.counter("b").add(1);
  s.counter("a").add(2);
  auto all = s.all_counters();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a");
  EXPECT_EQ(all[1].first, "b");
}

TEST(StatsTest, HistogramMeanMaxQuantile) {
  Histogram h({1, 10, 100, 1000});
  for (int i = 0; i < 90; ++i) h.record(5.0);
  for (int i = 0; i < 10; ++i) h.record(500.0);
  EXPECT_EQ(h.count(), 100);
  EXPECT_NEAR(h.mean(), (90 * 5.0 + 10 * 500.0) / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  EXPECT_LE(h.quantile(0.5), 10.0);   // median bucket
  EXPECT_GE(h.quantile(0.95), 100.0);  // tail bucket
}

TEST(StatsTest, ResetClearsEverything) {
  StatsRegistry s;
  s.counter("x").add(1);
  s.histogram("h").record(1.0);
  s.reset();
  EXPECT_EQ(s.value("x"), 0);
  EXPECT_EQ(s.histogram("h").count(), 0);
}

TEST(StatsTest, ResetPreservesHandedOutReferences) {
  StatsRegistry s;
  Counter& c = s.counter("x");
  Histogram& h = s.histogram("h");
  c.add(5);
  h.record(2.0);
  s.reset();
  // The same objects must still be live and registered (in-place reset).
  c.add(3);
  h.record(7.0);
  EXPECT_EQ(s.value("x"), 3);
  EXPECT_EQ(s.histogram("h").count(), 1);
  EXPECT_DOUBLE_EQ(s.histogram("h").max(), 7.0);
}

TEST(StatsTest, QuantileEmptyHistogramIsZero) {
  Histogram h({1, 10, 100});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(StatsTest, QuantileSingleSample) {
  Histogram h({10, 100});
  h.record(5.0);
  // Every quantile of a one-sample histogram is that exact sample: the
  // tracked min/max clamp the bucket's interpolation range to a point.
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(StatsTest, QuantileExtremesAndOverflowBucket) {
  Histogram h({10, 100});
  for (int i = 0; i < 90; ++i) h.record(5.0);
  for (int i = 0; i < 10; ++i) h.record(1e6);  // beyond the last bound
  // q=0 / q=1 report the exact tracked extremes, not bucket bounds.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e6);
  // The median interpolates inside [min, first bound]: rank 49.5 of the 90
  // samples in the first bucket -> 5 + (10 - 5) * 49.5 / 90.
  EXPECT_NEAR(h.quantile(0.5), 7.75, 1e-9);
  // Rank 94.05 lands in the overflow bucket, which interpolates between the
  // last bound (100) and the exact max (there is no upper bound to quote).
  const double q95 = h.quantile(0.95);
  EXPECT_GE(q95, 100.0);
  EXPECT_LE(q95, 1e6);
  EXPECT_NEAR(q95, 100.0 + (1e6 - 100.0) * ((94.05 - 90.0) / 10.0), 1e-6);
}

TEST(StatsTest, NameReuseReturnsSameInstance) {
  StatsRegistry s;
  Counter& a = s.counter("same");
  Counter& b = s.counter("same");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(s.value("same"), 5);
  // A histogram may share a counter's name; they live in separate maps.
  Histogram& ha = s.histogram("same");
  Histogram& hb = s.histogram("same");
  EXPECT_EQ(&ha, &hb);
  ha.record(1.0);
  EXPECT_EQ(s.histogram("same").count(), 1);
  EXPECT_EQ(s.value("same"), 5);  // counter untouched
  ASSERT_EQ(s.all_histograms().size(), 1u);
  EXPECT_EQ(s.all_histograms()[0].first, "same");
}

}  // namespace
}  // namespace nicwarp
