// Tests for the pooled comm/NIC datapath (src/hw/packet_pool.hpp plus the
// PacketRef plumbing through HostComm, Nic and Network):
//
//  * PacketRef generation stamps catch use-after-release across slot reuse;
//  * a capped pool degrades by refusing acquisition, not by aliasing;
//  * release() recycles payload capacity (the allocation-free claim);
//  * the credit-conservation identity holds on the pooled path, and the
//    shared slab drains to zero live packets once traffic quiesces;
//  * a chaos spot-check: under fabric faults the pooled datapath still
//    commits byte-identical simulation state vs a fault-free twin.
#include <gtest/gtest.h>

#include "comm/host_comm.hpp"
#include "harness/experiment.hpp"
#include "hw/cluster.hpp"
#include "hw/packet_pool.hpp"

namespace nicwarp {
namespace {

// ---------------------------------------------------------------------------
// PacketPool unit tests.
// ---------------------------------------------------------------------------

TEST(PacketPool, GenerationInvalidatesStaleRefsAfterSlotReuse) {
  hw::PacketPool pool;
  const hw::PacketRef a = pool.acquire();
  pool.get(a).hdr.event_id = 77;
  EXPECT_TRUE(pool.alive(a));
  pool.release(a);
  EXPECT_FALSE(pool.alive(a));

  // The freelist hands the same slot back — with a bumped generation, so the
  // stale ref stays dead instead of silently aliasing the new packet.
  const hw::PacketRef b = pool.acquire();
  EXPECT_EQ(b.idx, a.idx);
  EXPECT_NE(b.gen, a.gen);
  EXPECT_TRUE(pool.alive(b));
  EXPECT_FALSE(pool.alive(a));
  EXPECT_DEATH(pool.get(a), "stale packet ref");
}

TEST(PacketPool, CappedPoolRefusesAcquisitionInsteadOfGrowing) {
  hw::PacketPool pool(3);
  const hw::PacketRef a = pool.acquire();
  const hw::PacketRef b = pool.acquire();
  const hw::PacketRef c = pool.acquire();
  EXPECT_EQ(pool.live(), 3u);

  const hw::PacketRef overflow = pool.try_acquire();
  EXPECT_TRUE(overflow.is_null());
  EXPECT_FALSE(overflow);
  EXPECT_EQ(pool.live(), 3u);

  pool.release(b);
  const hw::PacketRef d = pool.try_acquire();
  EXPECT_FALSE(d.is_null());
  EXPECT_EQ(pool.live(), 3u);
  EXPECT_EQ(pool.peak(), 3u);
  pool.release(a);
  pool.release(c);
  pool.release(d);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, ReleaseRecyclesPayloadCapacity) {
  hw::PacketPool pool;
  const hw::PacketRef a = pool.acquire();
  pool.get(a).app.assign(128, 42);
  pool.release(a);

  // Same slot, cleared header, empty payload — but the payload vector's
  // buffer survived the release: steady-state traffic allocates nothing.
  const hw::PacketRef b = pool.acquire();
  ASSERT_EQ(b.idx, a.idx);
  EXPECT_EQ(pool.get(b).hdr.event_id, kInvalidEvent);
  EXPECT_TRUE(pool.get(b).app.empty());
  EXPECT_GE(pool.get(b).app.capacity(), 128u);
  pool.release(b);
}

TEST(PacketPool, CloneIsDeepAndTakeMovesOut) {
  hw::PacketPool pool;
  const hw::PacketRef a = pool.acquire();
  pool.get(a).hdr.bip_seq = 9;
  pool.get(a).app = {1, 2, 3};

  const hw::PacketRef c = pool.clone(a);
  pool.get(c).app[0] = 100;
  EXPECT_EQ(pool.get(a).app[0], 1) << "clone must not alias the source";

  const hw::Packet out = pool.take(c);
  EXPECT_EQ(out.hdr.bip_seq, 9u);
  EXPECT_EQ(out.app[0], 100);
  EXPECT_FALSE(pool.alive(c));
  EXPECT_EQ(pool.live(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.live(), 0u);
}

// ---------------------------------------------------------------------------
// Pooled HostComm path: conservation identity + slab drain.
// ---------------------------------------------------------------------------

hw::CostModel pool_comm_cost() {
  hw::CostModel c;
  c.mpi_credit_window = 4;  // tiny window: the staging path is exercised hard
  c.nic_send_ring_slots = 8;
  c.nic_per_packet_us = 1.0;
  return c;
}

hw::Packet pooled_event(NodeId dst, EventId id) {
  hw::Packet p;
  p.hdr.kind = hw::PacketKind::kEvent;
  p.hdr.dst = dst;
  p.hdr.event_id = id;
  p.hdr.recv_ts = VirtualTime{10};
  p.hdr.size_bytes = 128;
  p.app = {1, 2, 3, 4};
  return p;
}

TEST(CommPooledPath, CreditConservationHoldsAndSlabDrains) {
  hw::Cluster cluster(pool_comm_cost(), 3,
                      [](NodeId) { return std::make_unique<hw::BaselineFirmware>(); }, 1);
  std::vector<std::unique_ptr<comm::HostComm>> comms;
  std::vector<std::vector<hw::Packet>> delivered(3);
  for (std::uint32_t n = 0; n < 3; ++n) {
    comms.push_back(std::make_unique<comm::HostComm>(cluster.node(n)));
    comms.back()->set_deliver(
        [&delivered, n](hw::Packet p) { delivered[n].push_back(std::move(p)); });
  }

  // Several bursts well past the window, across all channel pairs, with the
  // conservation identity checked at every quiescent boundary.
  EventId id = 0;
  for (int burst = 0; burst < 4; ++burst) {
    for (NodeId src = 0; src < 3; ++src) {
      for (NodeId dst = 0; dst < 3; ++dst) {
        if (src == dst) continue;
        for (int i = 0; i < 11; ++i) {
          comms[src]->send(pooled_event(dst, ++id));
        }
      }
    }
    cluster.run();
    for (NodeId a = 0; a < 3; ++a) {
      for (NodeId b = 0; b < 3; ++b) {
        if (a != b) comm::HostComm::check_invariants(*comms[a], *comms[b]);
      }
    }
  }

  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(delivered[n].size(), 4u * 2u * 11u);
    EXPECT_EQ(comms[n]->staged(), 0u);
  }
  // Every packet that entered the slab left it: no refs leaked in comm
  // staging, NIC rings, or the fabric.
  EXPECT_EQ(cluster.pool().live(), 0u);
  EXPECT_GT(cluster.pool().peak(), 0u);
}

// ---------------------------------------------------------------------------
// Chaos spot-check: pooled datapath under fabric faults.
// ---------------------------------------------------------------------------

TEST(CommPooledPath, ChaosCommitsMatchFaultFreeTwin) {
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kRaid;
  cfg.raid.total_requests = 400;
  cfg.nodes = 4;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.early_cancel = true;
  cfg.paranoia_checks = true;
  const harness::ExperimentResult clean = harness::run_experiment(cfg);
  ASSERT_TRUE(clean.completed);

  hw::FaultPlan plan;
  plan.drop_rate = 0.02;
  plan.dup_rate = 0.01;
  plan.corrupt_rate = 0.01;
  for (const std::uint64_t seed : {11ull, 12ull}) {
    SCOPED_TRACE(::testing::Message() << "fault seed " << seed);
    harness::ExperimentConfig chaos = cfg;
    chaos.fault = plan;
    chaos.fault.seed = seed;
    const harness::ExperimentResult r = harness::run_experiment(chaos);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.signature, clean.signature);
    EXPECT_EQ(r.committed_events, clean.committed_events);
    EXPECT_GT(r.fault_drops + r.fault_dups + r.fault_corrupts, 0);
    EXPECT_EQ(r.retx_evicted, 0);
  }
}

}  // namespace
}  // namespace nicwarp
