// Host-thread sharding tests (docs/SHARDING.md): the SPSC mailbox ring, the
// shards=1 compatibility contract, multi-shard seed stability, and the
// committed-state equivalence between sharded and single-threaded runs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>

#include "core/spsc_ring.hpp"
#include "harness/experiment.hpp"

namespace nicwarp {
namespace {

TEST(SpscRing, PushPopFifoAcrossWraparound) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.front(), nullptr);
  int next_push = 0;
  int next_pop = 0;
  // 5 in, 3 out, repeated: the indices lap the capacity many times.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5 && ring.size() < 8; ++i) {
      ASSERT_TRUE(ring.try_push(int{next_push}));
      ++next_push;
    }
    for (int i = 0; i < 3; ++i) {
      int* front = ring.front();
      ASSERT_NE(front, nullptr);
      EXPECT_EQ(*front, next_pop);
      ring.pop();
      ++next_pop;
    }
  }
  while (int* front = ring.front()) {
    EXPECT_EQ(*front, next_pop);
    ring.pop();
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRing, FullRingRejectsWithoutConsumingTheValue) {
  SpscRing<std::string> ring(2);
  ASSERT_TRUE(ring.try_push(std::string("a")));
  ASSERT_TRUE(ring.try_push(std::string("b")));
  std::string keep = "survives-a-failed-push";
  EXPECT_FALSE(ring.try_push(std::move(keep)));
  EXPECT_EQ(keep, "survives-a-failed-push");  // move only happens on success
  ring.pop();
  ASSERT_TRUE(ring.try_push(std::move(keep)));
  ring.pop();
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), "survives-a-failed-push");
}

harness::ExperimentConfig shard_config(std::uint32_t shards) {
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kPhold;
  cfg.nodes = 8;
  cfg.seed = 7;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 200;
  cfg.phold.objects = 16;
  cfg.phold.population = 2;
  cfg.phold.horizon = 2000;
  // Wider conservative windows keep the LBTS round count (and test wall
  // time) small; the knob is shared by every variant in a comparison.
  cfg.cost.link_latency_us = 40.0;
  cfg.shards = shards;
  cfg.heatmap.enabled = true;
  return cfg;
}

TEST(Sharding, SingleShardRunsAreByteIdenticalAcrossReruns) {
  const harness::ExperimentResult a = harness::run_experiment(shard_config(1));
  const harness::ExperimentResult b = harness::run_experiment(shard_config(1));
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.committed_events, b.committed_events);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.wire_packets, b.wire_packets);
  EXPECT_EQ(a.heatmap_json, b.heatmap_json);
  EXPECT_EQ(a.shard_rounds, 0);  // the single-threaded loop, not the LBTS one
}

TEST(Sharding, MultiShardRunsAreSeedStableAcrossReruns) {
  for (std::uint32_t shards : {2u, 4u}) {
    const harness::ExperimentResult first =
        harness::run_experiment(shard_config(shards));
    ASSERT_TRUE(first.completed) << shards << " shards";
    EXPECT_GT(first.shard_rounds, 0) << shards << " shards";
    for (int rerun = 0; rerun < 2; ++rerun) {
      const harness::ExperimentResult again =
          harness::run_experiment(shard_config(shards));
      EXPECT_EQ(again.signature, first.signature) << shards << " shards";
      EXPECT_EQ(again.committed_events, first.committed_events);
      EXPECT_EQ(again.events_processed, first.events_processed);
      EXPECT_EQ(again.rollbacks, first.rollbacks);
      EXPECT_EQ(again.wire_packets, first.wire_packets);
      EXPECT_EQ(again.shard_rounds, first.shard_rounds);
      EXPECT_EQ(again.heatmap_json, first.heatmap_json);
    }
  }
}

TEST(Sharding, ShardedRunCommitsExactlyTheSingleThreadedEvents) {
  const harness::ExperimentResult single = harness::run_experiment(shard_config(1));
  for (std::uint32_t shards : {2u, 4u}) {
    const harness::ExperimentResult sharded =
        harness::run_experiment(shard_config(shards));
    ASSERT_TRUE(sharded.completed) << shards << " shards";
    // The optimistic schedule differs (events_processed may not match), but
    // the committed history — count and order-independent signature — must
    // be exactly the single-threaded one.
    EXPECT_EQ(sharded.committed_events, single.committed_events)
        << shards << " shards";
    EXPECT_EQ(sharded.signature, single.signature) << shards << " shards";
    EXPECT_EQ(sharded.final_gvt.t, single.final_gvt.t) << shards << " shards";
  }
}

TEST(Sharding, ChaosOnCrossShardLinksIsRecoveredExactly) {
  // Fault fabric at shards=2: drops and dups now hit packets that cross the
  // mailbox boundary. Recovery must cost work (retransmits), never
  // correctness (signature equals the fault-free twin).
  harness::ExperimentConfig clean = shard_config(2);
  harness::ExperimentConfig chaos = shard_config(2);
  chaos.fault.drop_rate = 0.01;
  chaos.fault.dup_rate = 0.005;
  chaos.fault.seed = 11;
  const harness::ExperimentResult a = harness::run_experiment(clean);
  const harness::ExperimentResult b = harness::run_experiment(chaos);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_GT(b.fault_drops, 0);
  EXPECT_GT(b.retransmits, 0);
  EXPECT_EQ(b.committed_events, a.committed_events);
  EXPECT_EQ(b.signature, a.signature);
  // And the chaos run itself is seed-stable.
  const harness::ExperimentResult b2 = harness::run_experiment(chaos);
  EXPECT_EQ(b2.signature, b.signature);
  EXPECT_EQ(b2.retransmits, b.retransmits);
  EXPECT_EQ(b2.fault_drops, b.fault_drops);
}

TEST(Sharding, InvalidConfigsThrowInsteadOfAborting) {
  harness::ExperimentConfig cfg = shard_config(1);
  cfg.shards = 0;
  EXPECT_THROW(harness::build_testbed(cfg), std::invalid_argument);
  cfg.shards = cfg.nodes + 1;
  EXPECT_THROW(harness::build_testbed(cfg), std::invalid_argument);
  cfg.shards = 2;
  cfg.profile.enabled = true;  // cascade collector is single-threaded
  EXPECT_THROW(harness::build_testbed(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace nicwarp
