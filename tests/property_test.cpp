// Property/stress tests: randomized inputs checked against simple reference
// implementations or algebraic invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>

#include "core/rng.hpp"
#include "harness/experiment.hpp"
#include "hw/fault.hpp"
#include "sim/engine.hpp"
#include "sim/server.hpp"
#include "warped/event.hpp"
#include "warped/lp.hpp"

namespace nicwarp {
namespace {

// ---------------------------------------------------------------------------
// Engine vs a reference priority queue.
// ---------------------------------------------------------------------------

class EngineRandomSchedule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineRandomSchedule, MatchesReferenceOrderWithCancellations) {
  Rng rng(GetParam(), "engine-prop");
  sim::Engine eng;

  struct Ref {
    std::int64_t when;
    std::uint64_t seq;
    int tag;
    bool operator>(const Ref& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> ref;
  std::vector<int> engine_order;
  std::vector<sim::TaskHandle> handles;
  std::vector<Ref> entries;

  std::uint64_t seq = 0;
  for (int i = 0; i < 500; ++i) {
    const auto when = rng.uniform(0, 1000);
    handles.push_back(
        eng.schedule(SimTime::from_ns(when), [i, &engine_order] { engine_order.push_back(i); }));
    entries.push_back(Ref{when, seq++, i});
  }
  // Cancel a random ~20%.
  std::vector<bool> cancelled(500, false);
  for (int i = 0; i < 500; ++i) {
    if (rng.chance(0.2)) {
      ASSERT_TRUE(eng.cancel(handles[static_cast<std::size_t>(i)]));
      cancelled[static_cast<std::size_t>(i)] = true;
    }
  }
  for (const Ref& r : entries) {
    if (!cancelled[static_cast<std::size_t>(r.tag)]) ref.push(r);
  }
  eng.run();

  std::vector<int> ref_order;
  while (!ref.empty()) {
    ref_order.push_back(ref.top().tag);
    ref.pop();
  }
  EXPECT_EQ(engine_order, ref_order);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandomSchedule, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Server: busy time equals the sum of job costs; completions keep order.
// ---------------------------------------------------------------------------

class ServerRandomLoad : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServerRandomLoad, ConservationOfBusyTime) {
  Rng rng(GetParam(), "server-prop");
  sim::Engine eng;
  sim::Server srv(eng, "cpu");
  std::int64_t total_cost = 0;
  std::vector<int> completions;
  int submitted = 0;

  // Jobs arrive in bursts at random times.
  for (int burst = 0; burst < 20; ++burst) {
    const auto at = rng.uniform(0, 5000);
    const int n = static_cast<int>(rng.uniform(1, 5));
    eng.schedule(SimTime::from_ns(at), [&, n] {
      for (int j = 0; j < n; ++j) {
        const auto cost = rng.uniform(1, 100);
        total_cost += cost;
        const int id = submitted++;
        srv.submit(SimTime::from_ns(cost), [&, id] { completions.push_back(id); });
      }
    });
  }
  eng.run();
  EXPECT_EQ(srv.busy_time().ns, total_cost);
  EXPECT_EQ(static_cast<int>(completions.size()), submitted);
  EXPECT_TRUE(std::is_sorted(completions.begin(), completions.end()))
      << "FIFO service must complete jobs in submission order";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServerRandomLoad, ::testing::Values(7, 8, 9));

// ---------------------------------------------------------------------------
// Event identity: deterministic, collision-free in realistic volumes.
// ---------------------------------------------------------------------------

TEST(EventIdProperty, DeterministicAndDistinct) {
  std::map<EventId, std::tuple<EventId, ObjectId, std::uint32_t>> seen;
  Rng rng(99, "ids");
  for (int i = 0; i < 200000; ++i) {
    const EventId parent = rng.next_u64();
    const auto src = static_cast<ObjectId>(rng.uniform(0, 4000));
    const auto idx = static_cast<std::uint32_t>(rng.uniform(0, 8));
    const EventId id = warped::make_event_id(parent, src, idx);
    EXPECT_EQ(id, warped::make_event_id(parent, src, idx)) << "must be a pure function";
    auto [it, fresh] = seen.emplace(id, std::make_tuple(parent, src, idx));
    if (!fresh) {
      EXPECT_EQ(it->second, std::make_tuple(parent, src, idx))
          << "hash collision between distinct send identities";
    }
  }
}

TEST(EventOrderProperty, IsAStrictTotalOrderOnDistinctEvents) {
  Rng rng(123, "order");
  std::vector<warped::EventMsg> evs;
  for (int i = 0; i < 300; ++i) {
    warped::EventMsg e;
    e.recv_ts = VirtualTime{rng.uniform(0, 20)};  // many ties
    e.dst_obj = static_cast<ObjectId>(rng.uniform(0, 3));
    e.id = static_cast<EventId>(i);
    evs.push_back(e);
  }
  warped::EventOrder lt;
  std::sort(evs.begin(), evs.end(), lt);
  for (std::size_t i = 0; i + 1 < evs.size(); ++i) {
    EXPECT_TRUE(lt(evs[i], evs[i + 1]) || !lt(evs[i + 1], evs[i]));
    EXPECT_FALSE(lt(evs[i], evs[i]));  // irreflexive
  }
  // Antisymmetry on a random sample.
  for (int k = 0; k < 1000; ++k) {
    const auto& a = evs[rng.next_below(evs.size())];
    const auto& b = evs[rng.next_below(evs.size())];
    if (lt(a, b)) EXPECT_FALSE(lt(b, a));
  }
}

// ---------------------------------------------------------------------------
// LogicalProcess vs a sequential reference under random insertion schedules.
// ---------------------------------------------------------------------------

struct PropState : warped::CloneableState<PropState> {
  std::int64_t acc{0};
};

class PropObject final : public warped::SimulationObject {
 public:
  explicit PropObject(ObjectId id)
      : SimulationObject(id, "prop" + std::to_string(id), std::make_unique<PropState>()) {}
  void initialize(warped::ObjectContext&) override {}
  void execute(warped::ObjectContext& ctx, const warped::EventMsg& ev) override {
    auto& st = state_as<PropState>();
    // Order-sensitive state update: catches any deviation from canonical order.
    st.acc = st.acc * 31 + ev.data.at(0) + ctx.now().t;
    ctx.fold_signature(st.acc);
  }
};

class LpRandomSchedule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpRandomSchedule, CommitsCanonicalResultUnderAnyArrivalOrder) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed, "lp-prop");

  // A fixed random event set.
  std::vector<warped::EventMsg> evs;
  for (int i = 0; i < 120; ++i) {
    warped::EventMsg e;
    e.src_obj = 999;
    e.dst_obj = static_cast<ObjectId>(rng.uniform(0, 3));
    e.recv_ts = VirtualTime{rng.uniform(1, 40)};  // dense ties
    e.send_ts = VirtualTime{e.recv_ts.t - 1};
    e.id = 5000 + static_cast<EventId>(i);
    e.data = {rng.uniform(-50, 50)};
    evs.push_back(e);
  }

  auto make_lp = [&](StatsRegistry& st, warped::RollbackScope scope) {
    auto lp = std::make_unique<warped::LogicalProcess>(0, st, seed, scope);
    for (ObjectId o = 0; o < 4; ++o) lp->add_object(std::make_unique<PropObject>(o));
    lp->set_paranoia(true);
    return lp;
  };
  auto drain = [](warped::LogicalProcess& lp) {
    while (lp.has_ready_event()) lp.execute_next();
  };

  // Reference: everything inserted up front, processed in canonical order.
  StatsRegistry s0;
  auto ref = make_lp(s0, warped::RollbackScope::kObject);
  for (const auto& e : evs) ref->insert(e);
  drain(*ref);

  for (warped::RollbackScope scope :
       {warped::RollbackScope::kObject, warped::RollbackScope::kLp}) {
    // Adversarial schedule: interleave random insertions with eager
    // processing, so events constantly arrive as stragglers.
    StatsRegistry s1;
    auto lp = make_lp(s1, scope);
    std::vector<warped::EventMsg> shuffled = evs;
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }
    for (const auto& e : shuffled) {
      lp->insert(e);
      const auto steps = rng.uniform(0, 3);
      for (std::int64_t k = 0; k < steps && lp->has_ready_event(); ++k) {
        lp->execute_next();
      }
    }
    drain(*lp);
    EXPECT_EQ(lp->signature_sum(), ref->signature_sum())
        << "scope " << static_cast<int>(scope) << " diverged from canonical";
    EXPECT_GT(lp->rollbacks(), 0u) << "the schedule was supposed to be adversarial";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomSchedule,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

// Anti-message fuzz: every positive is eventually cancelled; the LP must end
// empty with zero signature delta.
class LpAntiFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpAntiFuzz, FullCancellationLeavesNoTrace) {
  Rng rng(GetParam(), "anti-fuzz");
  StatsRegistry st;
  warped::LogicalProcess lp(0, st, GetParam(), warped::RollbackScope::kLp);
  for (ObjectId o = 0; o < 3; ++o) lp.add_object(std::make_unique<PropObject>(o));
  lp.set_paranoia(true);
  const std::int64_t base_sig = lp.signature_sum();

  std::vector<warped::EventMsg> evs;
  for (int i = 0; i < 60; ++i) {
    warped::EventMsg e;
    e.src_obj = 999;
    e.dst_obj = static_cast<ObjectId>(rng.uniform(0, 2));
    e.recv_ts = VirtualTime{rng.uniform(1, 30)};
    e.send_ts = VirtualTime{e.recv_ts.t - 1};
    e.id = 9000 + static_cast<EventId>(i);
    e.data = {i};
    evs.push_back(e);
  }
  // Insert positives (processing some), then cancel ALL of them in a random
  // order, processing in between.
  for (const auto& e : evs) {
    lp.insert(e);
    if (rng.chance(0.5) && lp.has_ready_event()) lp.execute_next();
  }
  std::vector<warped::EventMsg> antis = evs;
  for (std::size_t i = antis.size(); i > 1; --i) {
    std::swap(antis[i - 1], antis[rng.next_below(i)]);
  }
  for (const auto& e : antis) {
    lp.insert(e.as_anti());
    if (rng.chance(0.3) && lp.has_ready_event()) lp.execute_next();
  }
  while (lp.has_ready_event()) lp.execute_next();

  EXPECT_EQ(lp.signature_sum(), base_sig) << "a cancelled event left state behind";
  EXPECT_EQ(lp.total_pending(), 0u);
  EXPECT_EQ(lp.orphan_antis(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpAntiFuzz, ::testing::Values(21, 22, 23, 24, 25, 26));

// ---------------------------------------------------------------------------
// Chaos: the full testbed under randomized fabric fault schedules.
//
// The central robustness property of the reliability layer: for ANY fault
// plan within its envelope (loss <= 5%, duplication, corruption, delay) every
// scenario still terminates and commits a byte-identical simulation state —
// faults may change how long recovery takes, never what the simulation
// computes. Checked per GVT manager, since each has its own recovery story
// (NIC token regeneration, sequenced host tokens, counted pGVT acks).
// ---------------------------------------------------------------------------

struct ChaosCase {
  const char* name;
  hw::FaultPlan plan;
};

class ChaosSignature : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSignature, CommittedStateMatchesFaultFreeRun) {
  std::vector<ChaosCase> cases;
  {
    hw::FaultPlan p;
    p.drop_rate = 0.01;
    cases.push_back({"drop1", p});
  }
  {
    hw::FaultPlan p;
    p.drop_rate = 0.02;
    p.dup_rate = 0.02;
    cases.push_back({"drop+dup", p});
  }
  {
    hw::FaultPlan p;
    p.corrupt_rate = 0.02;
    p.delay_rate = 0.05;
    p.delay_max_us = 40.0;
    cases.push_back({"corrupt+delay", p});
  }
  {
    hw::FaultPlan p;
    p.drop_rate = 0.05;
    p.dup_rate = 0.01;
    p.corrupt_rate = 0.01;
    p.delay_rate = 0.02;
    cases.push_back({"mixed5", p});
  }

  const warped::GvtMode modes[] = {warped::GvtMode::kNic, warped::GvtMode::kHostMattern,
                                   warped::GvtMode::kPGvt};
  for (const warped::GvtMode mode : modes) {
    for (const bool cancel : {false, true}) {
      harness::ExperimentConfig cfg;
      cfg.model = harness::ModelKind::kRaid;
      cfg.raid.total_requests = 600;
      cfg.nodes = 4;
      cfg.gvt_mode = mode;
      cfg.early_cancel = cancel;
      cfg.paranoia_checks = true;
      const harness::ExperimentResult clean = harness::run_experiment(cfg);
      ASSERT_TRUE(clean.completed);

      std::int64_t recoveries = 0;
      for (const ChaosCase& c : cases) {
        harness::ExperimentConfig chaos = cfg;
        chaos.fault = c.plan;
        chaos.fault.seed = GetParam();
        const harness::ExperimentResult r = harness::run_experiment(chaos);
        const char* mode_name = mode == warped::GvtMode::kNic        ? "nic"
                                : mode == warped::GvtMode::kHostMattern ? "mattern"
                                                                        : "pgvt";
        SCOPED_TRACE(::testing::Message() << mode_name << (cancel ? "+cancel" : "")
                                          << " / " << c.name << " / seed "
                                          << GetParam());
        ASSERT_TRUE(r.completed) << "chaos run hit the simulated-time cap";
        // Recovery may cost time, never correctness: identical commits.
        EXPECT_EQ(r.signature, clean.signature);
        EXPECT_EQ(r.committed_events, clean.committed_events);
        EXPECT_TRUE(r.final_gvt.is_inf());
        // Injection actually happened, and no loss became unrecoverable.
        EXPECT_GT(r.fault_drops + r.fault_dups + r.fault_corrupts + r.fault_delays, 0);
        EXPECT_EQ(r.retx_evicted, 0);
        recoveries += r.retransmits + r.naks_sent + r.gvt_token_regens +
                      r.rel_crc_discards + r.rel_dup_discards;
      }
      // Across the plans, this mode exercised the recovery machinery.
      EXPECT_GT(recoveries, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, ChaosSignature, ::testing::Values(1, 2, 3));

// Incremental state saving under the same chaos envelope: for every fault
// plan and seed, the undo-log run commits byte-for-byte the same state as
// the full-copy run of the same plan. Faults force deep and oddly-shaped
// rollbacks (delayed stragglers, regenerated tokens), which is exactly the
// stress the record-before-write log has to survive.
class ChaosIncrementalTwin : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosIncrementalTwin, MatchesFullCopyUnderFaults) {
  std::vector<ChaosCase> cases;
  {
    hw::FaultPlan p;
    p.drop_rate = 0.01;
    cases.push_back({"drop1", p});
  }
  {
    hw::FaultPlan p;
    p.drop_rate = 0.02;
    p.dup_rate = 0.02;
    cases.push_back({"drop+dup", p});
  }
  {
    hw::FaultPlan p;
    p.corrupt_rate = 0.02;
    p.delay_rate = 0.05;
    p.delay_max_us = 40.0;
    cases.push_back({"corrupt+delay", p});
  }
  {
    hw::FaultPlan p;
    p.drop_rate = 0.05;
    p.dup_rate = 0.01;
    p.corrupt_rate = 0.01;
    p.delay_rate = 0.02;
    cases.push_back({"mixed5", p});
  }

  for (const ChaosCase& c : cases) {
    harness::ExperimentConfig copy;
    copy.model = harness::ModelKind::kRaid;
    copy.raid.total_requests = 600;
    copy.nodes = 4;
    copy.gvt_mode = warped::GvtMode::kNic;
    copy.paranoia_checks = true;
    copy.fault = c.plan;
    copy.fault.seed = GetParam();

    harness::ExperimentConfig incr = copy;
    incr.state_save_period = 0;  // adaptive fallback-snapshot interval
    incr.state_mode = warped::StateSaveMode::kIncremental;

    SCOPED_TRACE(::testing::Message() << c.name << " / seed " << GetParam());
    const harness::ExperimentResult a = harness::run_experiment(copy);
    const harness::ExperimentResult b = harness::run_experiment(incr);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(b.signature, a.signature);
    EXPECT_EQ(b.committed_events, a.committed_events);
    EXPECT_GT(b.undo_bytes_logged, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(FaultSeeds, ChaosIncrementalTwin, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace nicwarp
