#!/usr/bin/env python3
"""ctest gate for the benchmark/profiling Python tooling.

Run from the repo root (ctest sets WORKING_DIRECTORY) with two env vars
pointing at built binaries:

  NICWARP_BENCH_RUNNER  — build/bench/bench_runner
  NICWARP_SWEEP_CLI     — build/examples/sweep_cli

Checks:
  1. bench_runner --filter=smoke emits a BENCH document that survives a
     real-JSON-parser round-trip with the expected schema and metrics;
  2. bench_compare.py passes that document against the checked-in baseline
     and, crucially, exits non-zero once a regression is injected;
  3. the generated trace-schema manifest (tools/trace_schema.json) matches
     what the built sweep_cli emits — the C++ enums and the Python tools
     cannot drift apart silently.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.getcwd()
BENCH_RUNNER = os.environ.get("NICWARP_BENCH_RUNNER", "build/bench/bench_runner")
SWEEP_CLI = os.environ.get("NICWARP_SWEEP_CLI", "build/examples/sweep_cli")
COMPARE = os.path.join(REPO, "tools", "bench_compare.py")
BASELINE = os.path.join(REPO, "bench", "baselines", "BENCH_0001.json")
MANIFEST = os.path.join(REPO, "tools", "trace_schema.json")

REQUIRED_METRICS = [
    "completed", "sim_seconds", "committed_events", "events_processed",
    "rollbacks", "committed_rate_per_sim_sec", "rollback_efficiency",
    "gvt_estimations", "gvt_latency_us", "wire_packets", "nic_drops",
    "filtered_antis", "signature", "latency_enabled", "lat_delivery_us",
    "lat_commit_us",
]


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, **kw)


def check(ok, msg):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {msg}")
    if not ok:
        sys.exit(1)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        # 1. schema round-trip through a real JSON parser.
        out = os.path.join(tmp, "bench_smoke.json")
        r = run([BENCH_RUNNER, "--filter=smoke", f"--out={out}"])
        check(r.returncode == 0, f"bench_runner --filter=smoke (rc={r.returncode})")
        with open(out) as f:
            doc = json.load(f)
        check(doc["type"] == "nicwarp-bench" and doc["schema_version"] == 2,
              "BENCH document type/schema_version")
        check(len(doc["scenarios"]) == 2, "smoke filter selects 2 scenarios")
        for s in doc["scenarios"]:
            missing = [m for m in REQUIRED_METRICS if m not in s["deterministic"]]
            check(not missing, f"{s['name']}: all metrics present {missing or ''}")
            check("wall_seconds" in s["noisy"], f"{s['name']}: wall time recorded")
        check("max_rss_kb" in doc["rusage"], "rusage block present")
        reserialized = json.loads(json.dumps(doc))
        check(reserialized == doc, "JSON round-trip is lossless")

        # 2a. the fresh run matches the checked-in baseline bit-exactly.
        # Wall time is NOT gated here: this test runs under `ctest -j` on a
        # saturated machine, where smoke wall times routinely blow any sane
        # band. The controlled wall-clock gates live in CI's sequential
        # bench steps (smoke at 10x, micro at 1.5x).
        r = run([sys.executable, COMPARE, BASELINE, out, "--wall-tolerance=1000"])
        check(r.returncode == 0,
              f"bench_compare vs baseline (rc={r.returncode})\n{r.stdout}{r.stderr}")

        # 2b. an injected regression must flip the gate to non-zero.
        doc["scenarios"][0]["deterministic"]["committed_events"] += 1
        bad = os.path.join(tmp, "bench_regressed.json")
        with open(bad, "w") as f:
            json.dump(doc, f)
        r = run([sys.executable, COMPARE, BASELINE, bad])
        check(r.returncode != 0, "bench_compare flags the injected regression")
        check("committed_events" in r.stdout, "failure names the regressed metric")

        # 2c. ...and a tolerance wide enough to cover it passes again.
        r = run([sys.executable, COMPARE, BASELINE, bad,
                 "--tolerance=0.01", "--wall-tolerance=1000"])
        check(r.returncode == 0, "tolerance band suppresses the small diff")

        # 3. manifest sync: generated schema == checked-in schema.
        r = run([SWEEP_CLI, "--print-trace-schema"])
        check(r.returncode == 0, "sweep_cli --print-trace-schema")
        with open(MANIFEST) as f:
            on_disk = json.load(f)
        check(json.loads(r.stdout) == on_disk,
              "tools/trace_schema.json matches the built binary "
              "(regenerate with: sweep_cli --print-trace-schema)")

    print("all bench-tool checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
