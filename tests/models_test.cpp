// Workload-model tests: construction/partitioning invariants plus model-level
// conservation laws (e.g. RAID commits exactly four events per disk request).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace nicwarp::models {
namespace {

TEST(RaidModelTest, BuildPartitionsAllObjects) {
  RaidParams p;
  p.sources = 10;
  p.forks = 8;
  p.disks = 8;
  BuiltModel m = build_raid(p, 8);
  ASSERT_EQ(m.per_node.size(), 8u);
  std::size_t total = 0;
  for (const auto& v : m.per_node) total += v.size();
  EXPECT_EQ(total, 26u);
  EXPECT_EQ(m.partition->owner.size(), 26u);
  // Round-robin: every object is where the partition says it is.
  for (std::uint32_t n = 0; n < 8; ++n) {
    for (const auto& obj : m.per_node[n]) EXPECT_EQ(m.partition->of(obj->id()), n);
  }
}

TEST(RaidModelTest, QuotaSplitsExactly) {
  RaidParams p;
  p.sources = 3;
  p.total_requests = 10;  // 4 + 3 + 3
  BuiltModel m = build_raid(p, 1);
  // Run it and count: each request contributes exactly 4 committed events
  // (issue, fork routing, disk service, reply).
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kRaid;
  cfg.raid = p;
  cfg.nodes = 1;
  cfg.max_sim_seconds = 120;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.committed_events, 4 * p.total_requests);
}

TEST(RaidModelTest, ConservationAcrossCluster) {
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kRaid;
  cfg.raid.sources = 10;
  cfg.raid.total_requests = 2000;
  cfg.nodes = 8;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.seed = 3;
  cfg.max_sim_seconds = 120;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed);
  // 4 committed events per request, regardless of how many rollbacks the
  // optimistic execution burned on the way.
  EXPECT_EQ(r.committed_events, 4 * cfg.raid.total_requests);
  EXPECT_GT(r.rollbacks, 0) << "an 8-node optimistic run should roll back sometimes";
}

TEST(PoliceModelTest, BuildScalesAutomatically) {
  PoliceParams p;
  p.stations = 1000;
  EXPECT_EQ(p.effective_hubs(), 20);
  EXPECT_EQ(p.effective_seed_window(), 333);
  p.stations = 100;
  EXPECT_EQ(p.effective_hubs(), 8);   // floor
  EXPECT_EQ(p.effective_seed_window(), 50);
  p.hubs = 5;
  p.seed_window = 77;
  EXPECT_EQ(p.effective_hubs(), 5);   // explicit values win
  EXPECT_EQ(p.effective_seed_window(), 77);
}

TEST(PoliceModelTest, EveryStationPlacedOnce) {
  PoliceParams p;
  p.stations = 123;
  BuiltModel m = build_police(p, 8);
  std::size_t total = 0;
  for (const auto& v : m.per_node) total += v.size();
  EXPECT_EQ(total, 123u);
  EXPECT_EQ(m.partition->owner.size(), 123u);
}

TEST(PoliceModelTest, CallsRespectTtl) {
  // With H hops per call and B notifications per hop, committed events are
  // bounded by calls * (H+1) * (1 + burst_max).
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kPolice;
  cfg.police.stations = 100;
  cfg.police.hops_per_call = 10;
  cfg.nodes = 4;
  cfg.seed = 9;
  cfg.max_sim_seconds = 120;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed);
  const std::int64_t max_calls = cfg.police.stations;  // at most one each
  const std::int64_t bound =
      max_calls * (cfg.police.hops_per_call + 1) * (1 + cfg.police.burst_max);
  EXPECT_GT(r.committed_events, 0);
  EXPECT_LE(r.committed_events, bound);
}

TEST(PholdModelTest, HorizonBoundsVirtualTime) {
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kPhold;
  cfg.phold.objects = 16;
  cfg.phold.population = 3;
  cfg.phold.horizon = 500;
  cfg.nodes = 4;
  cfg.max_sim_seconds = 120;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.completed);
  // Events stop at the horizon: at most population*objects chains, each with
  // ~horizon/1 steps is a loose bound; the point is it terminates and
  // commits a plausible amount.
  EXPECT_GT(r.committed_events, cfg.phold.objects * cfg.phold.population);
}

TEST(PholdModelTest, MoreObjectsMoreWork) {
  auto run = [](std::int64_t objects) {
    harness::ExperimentConfig cfg;
    cfg.model = harness::ModelKind::kPhold;
    cfg.phold.objects = objects;
    cfg.phold.horizon = 800;
    cfg.nodes = 4;
    cfg.max_sim_seconds = 120;
    return harness::run_experiment(cfg);
  };
  const auto small = run(8);
  const auto big = run(64);
  ASSERT_TRUE(small.completed);
  ASSERT_TRUE(big.completed);
  EXPECT_GT(big.committed_events, small.committed_events * 3);
}

// Model determinism: two identical builds run to identical results and two
// different seeds diverge.
struct ModelCase {
  harness::ModelKind kind;
  const char* name;
};

class ModelDeterminism : public ::testing::TestWithParam<ModelCase> {};

harness::ExperimentConfig tiny_config(harness::ModelKind kind, std::uint64_t seed) {
  harness::ExperimentConfig cfg;
  cfg.model = kind;
  cfg.raid.total_requests = 1200;
  cfg.police.stations = 120;
  cfg.police.hops_per_call = 10;
  cfg.phold.objects = 24;
  cfg.phold.horizon = 800;
  cfg.nodes = 4;
  cfg.seed = seed;
  cfg.max_sim_seconds = 120;
  return cfg;
}

TEST_P(ModelDeterminism, SameSeedSameEverything) {
  const auto a = harness::run_experiment(tiny_config(GetParam().kind, 77));
  const auto b = harness::run_experiment(tiny_config(GetParam().kind, 77));
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.committed_events, b.committed_events);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds);  // bitwise deterministic
  EXPECT_EQ(a.wire_packets, b.wire_packets);
}

TEST_P(ModelDeterminism, DifferentSeedsDiverge) {
  const auto a = harness::run_experiment(tiny_config(GetParam().kind, 77));
  const auto b = harness::run_experiment(tiny_config(GetParam().kind, 78));
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_NE(a.signature, b.signature);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelDeterminism,
    ::testing::Values(ModelCase{harness::ModelKind::kRaid, "raid"},
                      ModelCase{harness::ModelKind::kPolice, "police"},
                      ModelCase{harness::ModelKind::kPhold, "phold"}),
    [](const ::testing::TestParamInfo<ModelCase>& info) { return info.param.name; });

}  // namespace
}  // namespace nicwarp::models
