// Tests for the messaging stack: credit-based flow control, BIP sequencing,
// drop detection and credit repair — the machinery §3.2 of the paper has to
// keep alive under NIC packet dropping.
#include <gtest/gtest.h>

#include "comm/host_comm.hpp"
#include "hw/cluster.hpp"

namespace nicwarp::comm {
namespace {

hw::CostModel comm_cost() {
  hw::CostModel c;
  c.mpi_credit_window = 4;  // tiny window so stalls are easy to provoke
  c.nic_send_ring_slots = 64;
  c.nic_per_packet_us = 1.0;
  return c;
}

hw::Packet event_packet(NodeId dst, EventId id = 1, VirtualTime recv = VirtualTime{10}) {
  hw::Packet p;
  p.hdr.kind = hw::PacketKind::kEvent;
  p.hdr.dst = dst;
  p.hdr.event_id = id;
  p.hdr.recv_ts = recv;
  p.hdr.size_bytes = 128;
  return p;
}

class CommFixture : public ::testing::Test {
 protected:
  explicit CommFixture(CommOptions opts = {})
      : cluster_(comm_cost(), 2,
                 [](NodeId) { return std::make_unique<hw::BaselineFirmware>(); }, 1) {
    for (std::uint32_t n = 0; n < 2; ++n) {
      comms_.push_back(std::make_unique<HostComm>(cluster_.node(n), opts));
      comms_.back()->set_deliver(
          [this, n](hw::Packet p) { delivered_[n].push_back(std::move(p)); });
    }
  }

  hw::Cluster cluster_;
  std::vector<std::unique_ptr<HostComm>> comms_;
  std::vector<hw::Packet> delivered_[2];
};

TEST_F(CommFixture, DeliversEventsInOrder) {
  for (int i = 0; i < 3; ++i) comms_[0]->send(event_packet(1, static_cast<EventId>(i)));
  cluster_.run();
  ASSERT_EQ(delivered_[1].size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(delivered_[1][static_cast<std::size_t>(i)].hdr.event_id,
              static_cast<EventId>(i));
    EXPECT_EQ(delivered_[1][static_cast<std::size_t>(i)].hdr.bip_seq,
              static_cast<std::uint64_t>(i + 1));
  }
  HostComm::check_invariants(*comms_[0], *comms_[1]);
  HostComm::check_invariants(*comms_[1], *comms_[0]);
}

TEST_F(CommFixture, WindowExhaustionStagesThenResumes) {
  // 10 sends against a window of 4: the first 4 go out, the rest stage until
  // credits return, and everything eventually arrives in order.
  for (int i = 0; i < 10; ++i) comms_[0]->send(event_packet(1, static_cast<EventId>(i)));
  EXPECT_GT(comms_[0]->staged(), 0u);
  EXPECT_EQ(comms_[0]->credits_for(1), 0);
  cluster_.run();
  ASSERT_EQ(delivered_[1].size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(delivered_[1][static_cast<std::size_t>(i)].hdr.event_id,
              static_cast<EventId>(i));
  }
  EXPECT_EQ(comms_[0]->staged(), 0u);
  EXPECT_GT(cluster_.stats().value("comm.credit_msgs"), 0);
  HostComm::check_invariants(*comms_[0], *comms_[1]);
}

TEST_F(CommFixture, ControlTrafficBypassesCredits) {
  // Exhaust the event window, then verify a GVT token still flows.
  for (int i = 0; i < 8; ++i) comms_[0]->send(event_packet(1, static_cast<EventId>(i)));
  hw::Packet tok;
  tok.hdr.kind = hw::PacketKind::kHostGvtToken;
  tok.hdr.dst = 1;
  tok.hdr.size_bytes = 64;
  comms_[0]->send(std::move(tok));
  cluster_.run();
  bool token_seen = false;
  for (const auto& p : delivered_[1]) {
    token_seen |= p.hdr.kind == hw::PacketKind::kHostGvtToken;
  }
  EXPECT_TRUE(token_seen);
}

TEST_F(CommFixture, MinStagedEventTs) {
  EXPECT_TRUE(comms_[0]->min_staged_event_ts().is_inf());
  for (int i = 0; i < 8; ++i) {
    comms_[0]->send(event_packet(1, static_cast<EventId>(i), VirtualTime{100 - i}));
  }
  // 4 staged (window 4): their min recv_ts is 100-7 = 93.
  EXPECT_EQ(comms_[0]->min_staged_event_ts(), (VirtualTime{93}));
  cluster_.run();
  EXPECT_TRUE(comms_[0]->min_staged_event_ts().is_inf());
}

TEST_F(CommFixture, RefundReopensWindowImmediately) {
  for (int i = 0; i < 8; ++i) comms_[0]->send(event_packet(1, static_cast<EventId>(i)));
  const std::size_t staged_before = comms_[0]->staged();
  EXPECT_GT(staged_before, 0u);
  comms_[0]->refund_credits(1, 2);
  EXPECT_EQ(comms_[0]->staged(), staged_before - 2);
  cluster_.run();
  EXPECT_EQ(delivered_[1].size(), 8u);
}

TEST_F(CommFixture, CreditTimerReturnsLeftoversOnQuietChannel) {
  // Send fewer events than half the window: no threshold-triggered return,
  // so only the timer can give the credits back.
  comms_[0]->send(event_packet(1, 1));
  cluster_.run();
  EXPECT_EQ(delivered_[1].size(), 1u);
  // After the run drained, the sender's window must be whole again.
  EXPECT_EQ(comms_[0]->credits_for(1), comm_cost().mpi_credit_window);
}

// Firmware that drops the first N outbound events at the NIC (simulating
// early cancellation) to exercise gap detection.
class DropFirstN : public hw::BaselineFirmware {
 public:
  explicit DropFirstN(int n) : remaining_(n) {}
  HookResult on_host_tx(hw::Packet& pkt) override {
    if (pkt.hdr.kind == hw::PacketKind::kEvent && remaining_ > 0) {
      --remaining_;
      return {Action::kDrop, SimTime::from_ns(100)};
    }
    return hw::BaselineFirmware::on_host_tx(pkt);
  }

 private:
  int remaining_;
};

TEST(CommDropTest, SequenceGapDetectedOnNicDrop) {
  hw::Cluster cluster(comm_cost(), 2,
                      [](NodeId id) -> std::unique_ptr<hw::Firmware> {
                        if (id == 0) return std::make_unique<DropFirstN>(2);
                        return std::make_unique<hw::BaselineFirmware>();
                      },
                      1);
  HostComm a(cluster.node(0)), b(cluster.node(1));
  std::vector<hw::Packet> got;
  b.set_deliver([&](hw::Packet p) { got.push_back(std::move(p)); });
  a.set_deliver([](hw::Packet) {});
  for (int i = 0; i < 5; ++i) a.send(event_packet(1, static_cast<EventId>(i)));
  cluster.run();
  ASSERT_EQ(got.size(), 3u);  // first two died on the NIC
  EXPECT_EQ(got[0].hdr.bip_seq, 3u);  // the receiver saw the gap
  EXPECT_EQ(cluster.stats().value("comm.seq_gaps"), 2);
}

TEST(CommDropTest, RepairOffEventuallyResyncsAtACost) {
  CommOptions opts;
  opts.credit_repair = false;
  opts.credit_timeout_us = 500.0;
  hw::CostModel cost = comm_cost();
  hw::Cluster cluster(cost, 2,
                      [](NodeId id) -> std::unique_ptr<hw::Firmware> {
                        if (id == 0) return std::make_unique<DropFirstN>(4);
                        return std::make_unique<hw::BaselineFirmware>();
                      },
                      1);
  HostComm a(cluster.node(0), opts), b(cluster.node(1), opts);
  std::vector<hw::Packet> got;
  b.set_deliver([&](hw::Packet p) { got.push_back(std::move(p)); });
  a.set_deliver([](hw::Packet) {});
  // Window 4 entirely consumed by dropped packets; without refunds the
  // remaining sends stall until the resync path fires.
  for (int i = 0; i < 8; ++i) a.send(event_packet(1, static_cast<EventId>(i)));
  cluster.run();
  EXPECT_EQ(got.size(), 4u);  // the 4 survivors arrive post-resync
  EXPECT_GT(cluster.stats().value("comm.credit_resyncs"), 0);
}

TEST(CommDropTest, RefundPlusGapKeepsWindowExact) {
  hw::Cluster cluster(comm_cost(), 2,
                      [](NodeId id) -> std::unique_ptr<hw::Firmware> {
                        if (id == 0) return std::make_unique<DropFirstN>(3);
                        return std::make_unique<hw::BaselineFirmware>();
                      },
                      1);
  HostComm a(cluster.node(0)), b(cluster.node(1));
  b.set_deliver([](hw::Packet) {});
  a.set_deliver([](hw::Packet) {});
  for (int i = 0; i < 6; ++i) a.send(event_packet(1, static_cast<EventId>(i)));
  // Simulate the kernel draining drop notices: refund the three drops.
  cluster.run();
  a.refund_credits(1, 3);
  cluster.run();
  // All credits must be home: 6 sends - 3 dropped(refunded) - 3 delivered
  // (returned by receiver).
  EXPECT_EQ(a.credits_for(1), comm_cost().mpi_credit_window);
  EXPECT_EQ(cluster.stats().value("comm.credit_clamped_refund"), 0);
}

TEST(CommDropTest, InvariantHoldsThroughDropsAndRefunds) {
  // The credit conservation identity must survive the full drop lifecycle:
  // consume -> NIC drop -> gap detected -> refund.
  hw::Cluster cluster(comm_cost(), 2,
                      [](NodeId id) -> std::unique_ptr<hw::Firmware> {
                        if (id == 0) return std::make_unique<DropFirstN>(3);
                        return std::make_unique<hw::BaselineFirmware>();
                      },
                      1);
  HostComm a(cluster.node(0)), b(cluster.node(1));
  b.set_deliver([](hw::Packet) {});
  a.set_deliver([](hw::Packet) {});
  for (int i = 0; i < 6; ++i) a.send(event_packet(1, static_cast<EventId>(i)));
  cluster.run();
  a.refund_credits(1, 3);
  cluster.run();
  HostComm::check_invariants(a, b);
  HostComm::check_invariants(b, a);
}

// Lossy fabric with the NIC reliability sublayer on: every event must still
// arrive exactly once and in order, recovered by NAK-triggered (or
// timeout-triggered) go-back-N replays, and the credit window must be whole
// afterwards — a lost kCreditUpdate is replayed, never minted.
TEST(CommRelTest, FabricLossRecoveredByRetransmission) {
  hw::CostModel cost = comm_cost();
  cost.rel_enabled = true;
  hw::FaultPlan plan;
  plan.drop_rate = 0.05;
  plan.dup_rate = 0.02;
  plan.seed = 7;
  hw::Cluster cluster(cost, 2,
                      [](NodeId) { return std::make_unique<hw::BaselineFirmware>(); },
                      1, plan);
  HostComm a(cluster.node(0)), b(cluster.node(1));
  std::vector<hw::Packet> got;
  b.set_deliver([&](hw::Packet p) { got.push_back(std::move(p)); });
  a.set_deliver([](hw::Packet) {});
  const int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    a.send(event_packet(1, static_cast<EventId>(i)));
    if (i % 8 == 7) cluster.run();  // interleave so the window keeps cycling
  }
  cluster.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kSends));
  for (int i = 0; i < kSends; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)].hdr.event_id, static_cast<EventId>(i));
  }
  // The fabric really did lose packets, and the NIC really did recover them.
  EXPECT_GT(cluster.stats().value("net.fault_drops"), 0);
  EXPECT_GT(cluster.stats().value("nic.retransmits"), 0);
  EXPECT_EQ(cluster.stats().value("nic.retx_evicted"), 0);
  EXPECT_EQ(a.credits_for(1), comm_cost().mpi_credit_window);
  EXPECT_EQ(cluster.stats().value("comm.credit_resyncs"), 0);
  HostComm::check_invariants(a, b);
  HostComm::check_invariants(b, a);
}

TEST(CommTest, PerDestinationOrderingAcrossManyDestinations) {
  hw::Cluster cluster(comm_cost(), 4,
                      [](NodeId) { return std::make_unique<hw::BaselineFirmware>(); }, 1);
  std::vector<std::unique_ptr<HostComm>> comms;
  std::vector<std::vector<std::uint64_t>> seqs(4);
  for (std::uint32_t n = 0; n < 4; ++n) {
    comms.push_back(std::make_unique<HostComm>(cluster.node(n)));
    comms.back()->set_deliver(
        [&seqs, n](hw::Packet p) { seqs[n].push_back(p.hdr.bip_seq); });
  }
  // Interleave sends to three destinations.
  for (int round = 0; round < 6; ++round) {
    for (NodeId dst = 1; dst <= 3; ++dst) {
      comms[0]->send(event_packet(dst, static_cast<EventId>(round * 4 + dst)));
    }
  }
  cluster.run();
  for (NodeId dst = 1; dst <= 3; ++dst) {
    ASSERT_EQ(seqs[dst].size(), 6u);
    for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(seqs[dst][i], i + 1);
  }
}

}  // namespace
}  // namespace nicwarp::comm
