// Regression tests for the slot-indexed engine scheduler (O(1) cancel via
// slot handles, no lazy tombstones) and the sweep runner's exception path:
// the behaviours this PR's refactor is most likely to have disturbed.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "harness/experiment.hpp"
#include "sim/engine.hpp"

namespace nicwarp::sim {
namespace {

// --- cancellation during callbacks -----------------------------------------

TEST(EngineSlotHeap, CallbackCancelsSiblingAtSameTime) {
  Engine e;
  bool sibling_ran = false;
  bool later_ran = false;
  TaskHandle sibling;
  TaskHandle later;
  e.schedule(SimTime::from_ns(10), [&] {
    EXPECT_TRUE(e.cancel(sibling)) << "same-time sibling is still pending";
    EXPECT_TRUE(e.cancel(later));
  });
  sibling = e.schedule(SimTime::from_ns(10), [&] { sibling_ran = true; });
  later = e.schedule(SimTime::from_ns(20), [&] { later_ran = true; });
  EXPECT_EQ(e.run(), 1u);
  EXPECT_FALSE(sibling_ran);
  EXPECT_FALSE(later_ran);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineSlotHeap, CancellingTheRunningTaskFails) {
  // The running task's slot is released before its callback is invoked, so a
  // handle to "self" behaves exactly like a handle to a completed task.
  Engine e;
  TaskHandle self;
  bool self_cancel = true;
  self = e.schedule(SimTime::from_ns(5), [&] { self_cancel = e.cancel(self); });
  e.run();
  EXPECT_FALSE(self_cancel);
}

// --- schedule-at-now ordering ----------------------------------------------

TEST(EngineSlotHeap, ZeroDelayFromCallbackRunsSameTimeInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(SimTime::from_ns(5), [&] {
    order.push_back(1);
    e.schedule(SimTime::zero(), [&] { order.push_back(3); });
    e.schedule_at(e.now(), [&] { order.push_back(4); });
    order.push_back(2);
  });
  e.schedule(SimTime::from_ns(5), [&] { order.push_back(5); });
  // The nested zero-delay tasks carry later sequence numbers than the
  // pre-scheduled same-time task, so they run after it.
  EXPECT_EQ(e.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5, 3, 4}));
  EXPECT_EQ(e.now().ns, 5);
}

// --- handle invalidation across slot reuse ---------------------------------

TEST(EngineSlotHeap, StaleHandleCannotCancelSlotSuccessor) {
  Engine e;
  bool survivor_ran = false;
  TaskHandle old_h = e.schedule(SimTime::from_ns(10), [] {});
  EXPECT_TRUE(e.cancel(old_h));
  // The freed slot is recycled for the next task (LIFO free list)...
  TaskHandle new_h = e.schedule(SimTime::from_ns(10), [&] { survivor_ran = true; });
  EXPECT_EQ(new_h.slot, old_h.slot);
  EXPECT_NE(new_h.id, old_h.id);
  // ...yet the stale handle must not reach through to the new occupant.
  EXPECT_FALSE(e.cancel(old_h));
  e.run();
  EXPECT_TRUE(survivor_ran);
  EXPECT_FALSE(e.cancel(new_h)) << "already ran";
}

TEST(EngineSlotHeap, HeavyCancelChurnKeepsHeapConsistent) {
  Engine e;
  std::vector<TaskHandle> hs;
  std::vector<std::int64_t> fired;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t ts = 1 + (i * 7919) % 503;
    hs.push_back(e.schedule(SimTime::from_ns(ts), [&fired, ts] { fired.push_back(ts); }));
  }
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < hs.size(); i += 3) cancelled += e.cancel(hs[i]) ? 1 : 0;
  EXPECT_EQ(cancelled, 334u);
  EXPECT_EQ(e.run(), 1000u - 334u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]) << "pop order must stay non-decreasing";
  }
}

// --- stop latch -------------------------------------------------------------

TEST(EngineSlotHeap, StopFromCallbackHaltsRunThenDrains) {
  Engine e;
  std::vector<int> order;
  e.schedule(SimTime::from_ns(1), [&] { order.push_back(1); });
  e.schedule(SimTime::from_ns(2), [&] {
    order.push_back(2);
    e.stop();
  });
  e.schedule(SimTime::from_ns(3), [&] { order.push_back(3); });
  EXPECT_EQ(e.run(), 2u);
  EXPECT_EQ(e.pending(), 1u);
  EXPECT_FALSE(e.stopped()) << "the halted run consumes the latch";
  // The next run proceeds normally and drains the remainder.
  EXPECT_EQ(e.run(), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EngineSlotHeap, StopWhileIdleLatchesForNextRun) {
  Engine e;
  bool ran = false;
  e.stop();  // issued between runs: must halt the NEXT run before any work
  e.schedule(SimTime::from_ns(1), [&] { ran = true; });
  EXPECT_EQ(e.run_until(SimTime::from_ns(100)), 0u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.run_until(SimTime::from_ns(100)), 1u);
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace nicwarp::sim

// ---------------------------------------------------------------------------
// Sweep-runner crash fixes: a throwing config must fail its own row, not the
// process (an exception escaping a pool thread would std::terminate).
// ---------------------------------------------------------------------------

namespace nicwarp::harness {
namespace {

ExperimentConfig tiny_phold() {
  ExperimentConfig cfg;
  cfg.model = ModelKind::kPhold;
  cfg.nodes = 2;
  cfg.phold.objects = 8;
  cfg.phold.population = 1;
  cfg.phold.horizon = 200;
  return cfg;
}

TEST(BuildTestbedValidation, RejectsZeroNodes) {
  ExperimentConfig cfg = tiny_phold();
  cfg.nodes = 0;
  EXPECT_THROW(build_testbed(cfg), std::invalid_argument);
}

TEST(BuildTestbedValidation, RejectsEmptyWorkload) {
  ExperimentConfig cfg = tiny_phold();
  cfg.phold.objects = 0;
  EXPECT_THROW(build_testbed(cfg), std::invalid_argument);
}

TEST(RunParallelFailure, BadConfigFailsItsRowOnly) {
  ExperimentConfig bad = tiny_phold();
  bad.nodes = 0;
  const std::vector<ExperimentConfig> cfgs = {bad, tiny_phold()};
  const std::vector<ExperimentResult> rs = run_parallel(cfgs, 2);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_TRUE(rs[0].failed());
  EXPECT_NE(rs[0].error.find("nodes"), std::string::npos) << rs[0].error;
  EXPECT_EQ(rs[0].committed_events, 0);
  EXPECT_FALSE(rs[1].failed());
  EXPECT_TRUE(rs[1].completed) << "the healthy config still runs to completion";
  EXPECT_GT(rs[1].committed_events, 0);
}

TEST(RunParallelFailure, AllConfigsFailingStillReturns) {
  ExperimentConfig bad = tiny_phold();
  bad.phold.objects = 0;
  const std::vector<ExperimentResult> rs = run_parallel({bad, bad, bad}, 3);
  ASSERT_EQ(rs.size(), 3u);
  for (const ExperimentResult& r : rs) {
    EXPECT_TRUE(r.failed());
    EXPECT_FALSE(r.completed);
  }
}

}  // namespace
}  // namespace nicwarp::harness
