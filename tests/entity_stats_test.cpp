// Tests for the per-entity hotspot layer and the GVT-progress watchdog:
// EntityStats unit behavior (high-water marks, custody accounting, JSON
// shape), phase-profiler gating, heatmap byte-determinism end-to-end, the
// per-LP heat agreeing with the cascade profiler's per-node waste on a
// seeded chaos run, and the watchdog detecting a token-starved GVT stall.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/entity_stats.hpp"
#include "core/phase_profiler.hpp"
#include "harness/experiment.hpp"

namespace nicwarp {
namespace {

// ---------------------------------------------------------------------------
// EntityStats unit tests
// ---------------------------------------------------------------------------

TEST(EntityStats, DisabledByDefaultAndNullStatsIsDisabled) {
  EntityStats es;
  EXPECT_FALSE(es.enabled());
  EXPECT_FALSE(EntityStats::null_stats().enabled());
}

TEST(EntityStats, HighWaterAndCustodyAccounting) {
  EntityStats es;
  es.configure(3);
  ASSERT_TRUE(es.enabled());
  EXPECT_EQ(es.nodes(), 3u);

  es.note_ring_occupancy(1, 4);
  es.note_ring_occupancy(1, 9);
  es.note_ring_occupancy(1, 2);  // below the mark: must not regress
  EXPECT_EQ(es.node(1).ring_occupancy_hw, 9u);

  es.record_gvt_token_hold(2, 100);
  es.record_gvt_token_hold(2, 50);
  EXPECT_EQ(es.node(2).gvt_tokens, 2u);
  EXPECT_EQ(es.node(2).gvt_token_hold_ns, 150u);
  EXPECT_EQ(es.node(2).gvt_token_hold_max_ns, 100u);

  es.record_link_packet(0, 1, 64);
  es.record_link_packet(0, 1, 36);
  es.record_link_retx(0, 1);
  es.record_link_fault(1, 0);
  es.note_link_queue_depth(0, 1, 7);
  es.note_link_queue_depth(0, 1, 3);
  const EntityStats& ces = es;
  EXPECT_EQ(ces.link(0, 1).packets, 2u);
  EXPECT_EQ(ces.link(0, 1).bytes, 100u);
  EXPECT_EQ(ces.link(0, 1).retransmits, 1u);
  EXPECT_EQ(ces.link(0, 1).queue_depth_hw, 7u);
  EXPECT_EQ(ces.link(1, 0).faults, 1u);
  EXPECT_EQ(ces.link(2, 0).packets, 0u);
}

TEST(EntityStats, JsonListsOnlyActiveLinksInRowMajorOrder) {
  EntityStats es;
  es.configure(2);
  es.record_link_packet(1, 0, 10);
  std::ostringstream os;
  es.to_json(os);
  const std::string j = os.str();
  EXPECT_NE(j.find("\"type\": \"heatmap\""), std::string::npos);
  EXPECT_NE(j.find("\"schema_version\": 1"), std::string::npos);
  // The silent 0->1 link is omitted; the active 1->0 one is present.
  EXPECT_EQ(j.find("{\"src\": 0"), std::string::npos);
  EXPECT_NE(j.find("{\"src\": 1, \"dst\": 0, \"packets\": 1, \"bytes\": 10"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// PhaseProfiler unit tests
// ---------------------------------------------------------------------------

TEST(PhaseProfiler, DisabledScopeRecordsNothing) {
  PhaseProfiler p;
  { ScopedPhaseTimer t(&p, Phase::kRollback); }
  { ScopedPhaseTimer t(nullptr, Phase::kRollback); }
  EXPECT_EQ(p.calls(Phase::kRollback), 0u);
  EXPECT_EQ(p.nanos(Phase::kRollback), 0u);
  EXPECT_FALSE(PhaseProfiler::null_profiler().enabled());
}

TEST(PhaseProfiler, EnabledScopeAccumulates) {
  PhaseProfiler p;
  p.enable();
  { ScopedPhaseTimer t(&p, Phase::kGvt); }
  { ScopedPhaseTimer t(&p, Phase::kGvt); }
  EXPECT_EQ(p.calls(Phase::kGvt), 2u);
  EXPECT_EQ(p.calls(Phase::kEventExec), 0u);
  p.add(Phase::kCommPump, 2'000'000'000ull);
  EXPECT_DOUBLE_EQ(p.seconds(Phase::kCommPump), 2.0);
  EXPECT_STREQ(phase_name(Phase::kEventExec), "event_exec");
  EXPECT_STREQ(phase_name(Phase::kCommPump), "comm_pump");
}

// ---------------------------------------------------------------------------
// End-to-end: full testbed runs
// ---------------------------------------------------------------------------

harness::ExperimentConfig heat_config() {
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kRaid;
  cfg.raid.total_requests = 1200;
  cfg.nodes = 4;
  cfg.seed = 23;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 100;
  cfg.early_cancel = true;
  cfg.max_sim_seconds = 600;
  cfg.heatmap.enabled = true;
  return cfg;
}

harness::ExperimentConfig chaos_heat_config() {
  harness::ExperimentConfig cfg = heat_config();
  cfg.fault.drop_rate = 0.01;
  cfg.fault.seed = 11;
  return cfg;
}

TEST(HeatmapE2E, SameSeedRerunsAreByteIdenticalIncludingChaos) {
  for (const auto& cfg : {heat_config(), chaos_heat_config()}) {
    const harness::ExperimentResult r1 = harness::run_experiment(cfg);
    const harness::ExperimentResult r2 = harness::run_experiment(cfg);
    ASSERT_TRUE(r1.completed);
    ASSERT_FALSE(r1.heatmap_json.empty());
    EXPECT_EQ(r1.heatmap_json, r2.heatmap_json)
        << "heatmap must be byte-identical for a fixed seed";
    EXPECT_NE(r1.heatmap_json.find("\"type\": \"heatmap\""), std::string::npos);
    EXPECT_EQ(r1.signature, r2.signature);
  }
}

TEST(HeatmapE2E, EnablingObservabilityDoesNotPerturbTheRun) {
  harness::ExperimentConfig plain = heat_config();
  plain.heatmap.enabled = false;
  harness::ExperimentConfig instrumented = heat_config();
  instrumented.phase.enabled = true;
  instrumented.watchdog.stall_wall_seconds = 60.0;  // armed, never fires

  const harness::ExperimentResult a = harness::run_experiment(plain);
  const harness::ExperimentResult b = harness::run_experiment(instrumented);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_TRUE(a.heatmap_json.empty());
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.committed_events, b.committed_events);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  // The phase profiler saw the run's hot paths.
  EXPECT_FALSE(a.phase_enabled);
  EXPECT_TRUE(b.phase_enabled);
  EXPECT_GT(b.phase_calls[static_cast<std::size_t>(Phase::kEventExec)], 0u);
  EXPECT_GT(b.phase_calls[static_cast<std::size_t>(Phase::kStateSave)], 0u);
  EXPECT_GT(b.phase_calls[static_cast<std::size_t>(Phase::kGvt)], 0u);
  EXPECT_GT(b.phase_calls[static_cast<std::size_t>(Phase::kCommPump)], 0u);
}

TEST(HeatmapE2E, PerLpHeatMatchesProfilerCascadeTotals) {
  // kObject scope makes the counts line up one-to-one: each rollback trigger
  // undoes exactly one object's records, so the LP's rollback counter and
  // the cascade profiler's per-node rollback count advance in lock-step.
  harness::ExperimentConfig cfg = chaos_heat_config();
  cfg.rollback_scope = warped::RollbackScope::kObject;
  cfg.profile.enabled = true;

  harness::Testbed tb = harness::build_testbed(cfg);
  const bool completed = tb.run_to_completion(cfg.max_sim_seconds);
  const harness::ExperimentResult r = harness::extract_result(tb, completed);
  ASSERT_TRUE(completed);
  ASSERT_GT(r.rollbacks, 0) << "chaos run produced no rollbacks to attribute";
  ASSERT_NE(r.profile, nullptr);

  const EntityStats& es = tb.cluster->entity();
  ASSERT_TRUE(es.enabled());
  std::uint64_t heat_rolled_back = 0;
  std::uint64_t heat_processed = 0;
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    const LpHeat& h = es.lp(n);
    heat_rolled_back += h.rolled_back;
    heat_processed += h.processed;
    EXPECT_EQ(h.committed, h.processed - h.rolled_back);
    EXPECT_LE(h.max_rollback_depth, h.rolled_back);
    const auto it = r.profile->cascades.per_node.find(n);
    if (it == r.profile->cascades.per_node.end()) {
      EXPECT_EQ(h.rollbacks, 0u);
      continue;
    }
    EXPECT_EQ(h.rollbacks, it->second.rollbacks) << "rank " << n;
    EXPECT_EQ(h.rolled_back, it->second.wasted_events) << "rank " << n;
    EXPECT_EQ(h.replayed, it->second.replayed_events) << "rank " << n;
  }
  EXPECT_EQ(heat_rolled_back, static_cast<std::uint64_t>(r.events_rolled_back));
  EXPECT_EQ(heat_processed, static_cast<std::uint64_t>(r.events_processed));
  // Chaos ran through the heat-mapped fabric: injected faults and recovery
  // retransmits must be attributed to links.
  std::uint64_t link_faults = 0;
  std::uint64_t link_packets = 0;
  for (std::uint32_t s = 0; s < cfg.nodes; ++s) {
    for (std::uint32_t d = 0; d < cfg.nodes; ++d) {
      link_faults += es.link(s, d).faults;
      link_packets += es.link(s, d).packets;
    }
  }
  EXPECT_EQ(link_faults, static_cast<std::uint64_t>(
                             r.fault_drops + r.fault_dups + r.fault_corrupts +
                             r.fault_delays));
  EXPECT_EQ(link_packets, static_cast<std::uint64_t>(r.wire_packets));
}

// ---------------------------------------------------------------------------
// GVT-progress watchdog
// ---------------------------------------------------------------------------

TEST(GvtWatchdog, HealthyRunNeverFires) {
  harness::ExperimentConfig cfg = heat_config();
  cfg.watchdog.stall_wall_seconds = 60.0;
  const harness::ExperimentResult r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.failed());
}

TEST(GvtWatchdog, DetectsSeededTokenStarvation) {
  // The stall recipe: NIC-resident GVT with piggybacking off moves every
  // token as a dedicated wire packet; a 100% token drop starves the ring —
  // root regeneration just feeds the same shredder — while NIC poll timers
  // keep the engine busy forever. Virtual time freezes, wall time does not.
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kPhold;
  cfg.phold.objects = 8;
  cfg.phold.horizon = 2000;
  cfg.nodes = 2;
  cfg.seed = 7;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.piggyback = false;
  cfg.fault.token_drop_rate = 1.0;
  cfg.fault.seed = 11;
  cfg.trace.categories = "watchdog";
  cfg.watchdog.stall_wall_seconds = 0.05;
  cfg.watchdog.snapshot_out =
      testing::TempDir() + "nicwarp_watchdog_snapshot.json";

  harness::Testbed tb = harness::build_testbed(cfg);
  try {
    tb.run_to_completion(cfg.max_sim_seconds, cfg.watchdog);
    FAIL() << "watchdog did not fire on a fully token-starved GVT ring";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("GVT watchdog"), std::string::npos);
  }
  // The stall was recorded in the watchdog trace category...
  EXPECT_GT(tb.cluster->trace().total_recorded(), 0u);
  // ...and the diagnostic snapshot landed on disk before the throw.
  std::ifstream snap(cfg.watchdog.snapshot_out);
  ASSERT_TRUE(snap.good());
  std::stringstream ss;
  ss << snap.rdbuf();
  const std::string s = ss.str();
  EXPECT_NE(s.find("\"type\": \"watchdog_snapshot\""), std::string::npos);
  EXPECT_NE(s.find("\"stuck_gvt\""), std::string::npos);
  EXPECT_NE(s.find("\"nic_ring_slots_in_use\""), std::string::npos);
  EXPECT_NE(s.find("\"kernels\""), std::string::npos);
}

TEST(GvtWatchdog, StallSurfacesAsFailedResultThroughRunParallel) {
  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kPhold;
  cfg.phold.objects = 8;
  cfg.phold.horizon = 2000;
  cfg.nodes = 2;
  cfg.seed = 7;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.piggyback = false;
  cfg.fault.token_drop_rate = 1.0;
  cfg.fault.seed = 11;
  cfg.watchdog.stall_wall_seconds = 0.05;

  const auto results = harness::run_parallel({cfg}, 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].failed());
  EXPECT_NE(results[0].error.find("GVT watchdog"), std::string::npos);
}

}  // namespace
}  // namespace nicwarp
