// Unit tests for the observability layer: the trace recorder's ring and
// exporters, the time-series sampler's cadence, and the supporting parsers
// (trace categories, log levels). Export validity is checked with a small
// recursive-descent JSON parser rather than by string comparison, so the
// exporters are free to change formatting without breaking the tests.
#include <cctype>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/log.hpp"
#include "core/stats.hpp"
#include "core/timeseries.hpp"
#include "core/trace.hpp"

namespace nicwarp {
namespace {

// --- minimal JSON validator -------------------------------------------------

class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}

  bool parse_value() {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool parse_object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool parse_array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      if (!parse_value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool parse_string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* c = lit; *c; ++c) {
      if (pos_ >= s_.size() || s_[pos_] != *c) return false;
      ++pos_;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_{0};
};

bool valid_json(const std::string& text) {
  JsonCursor c(text);
  return c.parse_value() && c.at_end();
}

TraceRecord make_record(std::int64_t us, TraceCat cat, TracePoint point,
                        EventId id = 7, NodeId node = 0, NodeId peer = 1) {
  return {SimTime::from_us(static_cast<double>(us)), VirtualTime{100 + us}, cat,
          point, false, node, peer, id, 0, 0};
}

// --- category parsing -------------------------------------------------------

TEST(TraceCategories, ParsesNamesAndAll) {
  EXPECT_EQ(parse_trace_categories(""), 0u);
  EXPECT_EQ(parse_trace_categories("msg"), trace_bit(TraceCat::kMsg));
  EXPECT_EQ(parse_trace_categories("msg,gvt"),
            trace_bit(TraceCat::kMsg) | trace_bit(TraceCat::kGvt));
  EXPECT_EQ(parse_trace_categories("all"), kTraceAll);
  EXPECT_EQ(parse_trace_categories("cancel,rollback,credit"),
            trace_bit(TraceCat::kCancel) | trace_bit(TraceCat::kRollback) |
                trace_bit(TraceCat::kCredit));
  // Unknown names are ignored, not fatal.
  EXPECT_EQ(parse_trace_categories("msg,bogus"), trace_bit(TraceCat::kMsg));
}

// --- ring behavior ----------------------------------------------------------

TEST(TraceRecorder, DisabledByDefault) {
  TraceRecorder tr;
  EXPECT_FALSE(tr.enabled(TraceCat::kMsg));
  EXPECT_FALSE(tr.enabled(TraceCat::kGvt));
  EXPECT_EQ(tr.size(), 0u);
  // The shared null recorder can never be enabled by accident.
  EXPECT_EQ(TraceRecorder::null_recorder().mask(), 0u);
}

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder tr;
  tr.configure(kTraceAll, 8);
  for (int i = 0; i < 5; ++i) {
    tr.record(make_record(i, TraceCat::kMsg, TracePoint::kHostEnqueue,
                          static_cast<EventId>(i)));
  }
  ASSERT_EQ(tr.size(), 5u);
  EXPECT_EQ(tr.total_recorded(), 5u);
  EXPECT_EQ(tr.overwritten(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tr.at(i).event_id, static_cast<EventId>(i));
  }
}

TEST(TraceRecorder, OverflowKeepsMostRecentWindow) {
  TraceRecorder tr;
  tr.configure(trace_bit(TraceCat::kMsg), 4);
  for (int i = 0; i < 10; ++i) {
    tr.record(make_record(i, TraceCat::kMsg, TracePoint::kHostEnqueue,
                          static_cast<EventId>(i)));
  }
  ASSERT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.total_recorded(), 10u);
  EXPECT_EQ(tr.overwritten(), 6u);
  // at(0) is the oldest retained record: ids 6,7,8,9 remain.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tr.at(i).event_id, static_cast<EventId>(6 + i));
  }
}

TEST(TraceRecorder, ConfigureClearsAndReenables) {
  TraceRecorder tr;
  tr.configure(trace_bit(TraceCat::kGvt), 4);
  EXPECT_TRUE(tr.enabled(TraceCat::kGvt));
  EXPECT_FALSE(tr.enabled(TraceCat::kMsg));
  tr.record(make_record(1, TraceCat::kGvt, TracePoint::kGvtInitiate));
  tr.configure(trace_bit(TraceCat::kMsg), 4);
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.total_recorded(), 0u);
  EXPECT_TRUE(tr.enabled(TraceCat::kMsg));
}

// --- exporters --------------------------------------------------------------

TEST(TraceExport, ChromeJsonIsValidAndPairsLifecycles) {
  TraceRecorder tr;
  tr.configure(kTraceAll, 64);
  // A full lifecycle, a dropped message, and a GVT round.
  tr.record(make_record(1, TraceCat::kMsg, TracePoint::kHostEnqueue, 42));
  tr.record(make_record(2, TraceCat::kMsg, TracePoint::kNicStage, 42));
  tr.record(make_record(3, TraceCat::kMsg, TracePoint::kWireTx, 42));
  tr.record(make_record(4, TraceCat::kMsg, TracePoint::kWireDepart, 42));
  tr.record(make_record(5, TraceCat::kMsg, TracePoint::kNicRx, 42, 1, 0));
  tr.record(make_record(6, TraceCat::kMsg, TracePoint::kHostDeliver, 42, 1, 0));
  tr.record(make_record(7, TraceCat::kMsg, TracePoint::kHostEnqueue, 43));
  tr.record(make_record(8, TraceCat::kMsg, TracePoint::kNicDropTx, 43));
  tr.record(make_record(9, TraceCat::kGvt, TracePoint::kGvtInitiate));
  tr.record(make_record(10, TraceCat::kGvt, TracePoint::kGvtComplete));
  tr.record(make_record(11, TraceCat::kCancel, TracePoint::kCancelDropPositive, 43));

  std::ostringstream os;
  tr.export_chrome_json(os);
  const std::string text = os.str();
  EXPECT_TRUE(valid_json(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // Async begin/end pairs must balance for Perfetto to render spans.
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = text.find("\"ph\":\"b\"", pos)) != std::string::npos) { ++begins; ++pos; }
  pos = 0;
  while ((pos = text.find("\"ph\":\"e\"", pos)) != std::string::npos) { ++ends; ++pos; }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  // Virtual time must ride along in args.
  EXPECT_NE(text.find("\"vt\":"), std::string::npos);
}

TEST(TraceExport, ChromeJsonHandlesTruncatedLifecycles) {
  TraceRecorder tr;
  tr.configure(trace_bit(TraceCat::kMsg), 2);  // ring loses the enqueues
  tr.record(make_record(1, TraceCat::kMsg, TracePoint::kHostEnqueue, 7));
  tr.record(make_record(2, TraceCat::kMsg, TracePoint::kNicStage, 7));
  tr.record(make_record(3, TraceCat::kMsg, TracePoint::kNicRx, 7, 1, 0));
  tr.record(make_record(4, TraceCat::kMsg, TracePoint::kHostDeliver, 7, 1, 0));
  std::ostringstream os;
  tr.export_chrome_json(os);
  EXPECT_TRUE(valid_json(os.str())) << os.str();
}

TEST(TraceExport, JsonlEveryLineIsValid) {
  TraceRecorder tr;
  tr.configure(kTraceAll, 16);
  tr.record(make_record(1, TraceCat::kMsg, TracePoint::kHostEnqueue));
  tr.record(make_record(2, TraceCat::kCredit, TracePoint::kCreditStall));
  tr.record(make_record(3, TraceCat::kRollback, TracePoint::kRollback));
  // A GVT record whose vt is +inf must serialize as null, not a bare inf.
  TraceRecord inf_rec = make_record(4, TraceCat::kGvt, TracePoint::kGvtHostAdopt);
  inf_rec.vt = VirtualTime::inf();
  tr.record(inf_rec);

  std::ostringstream os;
  tr.export_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    EXPECT_TRUE(valid_json(line)) << line;
    EXPECT_NE(line.find("\"type\":\"trace_record\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(os.str().find("\"vt\":null"), std::string::npos);
}

// --- time-series sampler ----------------------------------------------------

TEST(TimeSeries, RoundCadence) {
  StatsRegistry st;
  Counter& c = st.counter("tw.events_processed");
  TimeSeriesSampler::Options o;
  o.every_gvt_rounds = 3;
  TimeSeriesSampler s(st, o);
  for (int r = 1; r <= 9; ++r) {
    c.add(10);
    s.on_gvt(SimTime::from_us(r * 100.0), VirtualTime{r * 5});
  }
  EXPECT_EQ(s.rounds_seen(), 9);
  // The first adoption always samples, then every 3rd: rounds 1, 4, 7.
  ASSERT_EQ(s.samples().size(), 3u);
  EXPECT_EQ(s.samples()[0].round, 1);
  EXPECT_EQ(s.samples()[1].round, 4);
  EXPECT_EQ(s.samples()[2].round, 7);
  EXPECT_EQ(s.samples()[0].counters.at(0).second, 10);
  EXPECT_EQ(s.samples()[2].counters.at(0).second, 70);
}

TEST(TimeSeries, VirtualDtCadence) {
  StatsRegistry st;
  st.counter("x").add(1);
  TimeSeriesSampler::Options o;
  o.every_gvt_rounds = 0;  // rounds alone never trigger
  o.min_virtual_dt = 100;
  TimeSeriesSampler s(st, o);
  s.on_gvt(SimTime::from_us(1), VirtualTime{10});   // dt from -1: samples
  s.on_gvt(SimTime::from_us(2), VirtualTime{50});   // +40: no
  s.on_gvt(SimTime::from_us(3), VirtualTime{115});  // +105: samples
  s.on_gvt(SimTime::from_us(4), VirtualTime{130});  // +15: no
  s.on_gvt(SimTime::from_us(5), VirtualTime::inf());  // termination: samples
  EXPECT_EQ(s.samples().size(), 3u);
}

TEST(TimeSeries, PrefixFilterAndForceSample) {
  StatsRegistry st;
  st.counter("tw.events_processed").add(5);
  st.counter("net.packets").add(7);
  TimeSeriesSampler::Options o;
  o.counter_prefixes = {"tw."};
  TimeSeriesSampler s(st, o);
  s.force_sample(SimTime::from_us(1), VirtualTime{1});
  ASSERT_EQ(s.samples().size(), 1u);
  ASSERT_EQ(s.samples()[0].counters.size(), 1u);
  EXPECT_EQ(s.samples()[0].counters[0].first, "tw.events_processed");
}

TEST(TimeSeries, JsonlExportIsValid) {
  StatsRegistry st;
  st.counter("a").add(1);
  TimeSeriesSampler s(st, {});
  s.on_gvt(SimTime::from_us(10), VirtualTime{5});
  s.force_sample(SimTime::from_us(20), VirtualTime::inf());
  std::ostringstream os;
  s.export_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    EXPECT_TRUE(valid_json(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(os.str().find("\"gvt\":null"), std::string::npos);  // inf round
}

// --- log-level parsing (NICWARP_LOG_LEVEL) ----------------------------------

TEST(LogLevelParse, NamesAndIntegers) {
  EXPECT_EQ(parse_log_level("error", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("WARN", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kError), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Info", LogLevel::kWarn), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("debug", LogLevel::kWarn), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("trace", LogLevel::kWarn), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("0", LogLevel::kWarn), LogLevel::kError);
  EXPECT_EQ(parse_log_level("4", LogLevel::kWarn), LogLevel::kTrace);
  // Fallback on nullptr, empty, junk, and out-of-range numbers.
  EXPECT_EQ(parse_log_level(nullptr, LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("verbose", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("99", LogLevel::kInfo), LogLevel::kInfo);
}

}  // namespace
}  // namespace nicwarp
