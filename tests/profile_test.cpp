// Tests for the profiling subsystem: rollback-cascade causality (offline,
// from a synthetic trace), the critical-path lower bound (hand-built 3-LP
// DAG), and the end-to-end profiler on the real models (structure sanity +
// byte-determinism at a fixed seed).
#include <gtest/gtest.h>

#include "core/trace.hpp"
#include "harness/experiment.hpp"
#include "profile/cascade.hpp"
#include "profile/critical_path.hpp"
#include "profile/report.hpp"
#include "profile/trace_analysis.hpp"

namespace nicwarp::profile {
namespace {

TraceRecord rec(TracePoint point, NodeId node, EventId id, bool negative,
                NodeId peer = kInvalidNode, std::uint64_t a = 0,
                std::uint64_t b = 0) {
  TraceRecord r;
  r.cat = TraceCat::kRollback;  // cat is ignored by the analyzer
  r.point = point;
  r.node = node;
  r.event_id = id;
  r.negative = negative;
  r.peer = peer;
  r.a = a;
  r.b = b;
  return r;
}

// A three-node avalanche plus one unlinked secondary, written exactly the
// way kernel + firmware emit it (rollback first, then its antis; drop
// records stamp the dooming anti in `b`).
TEST(CascadeFromTrace, ReconstructsForest) {
  std::vector<TraceRecord> t;
  // Root on node 1: straggler 100 undoes 3 events, replays 1, emits anti 500.
  t.push_back(rec(TracePoint::kRollback, 1, 100, false, 0, 3, 1));
  t.push_back(rec(TracePoint::kHostEnqueue, 1, 500, true));
  // Node 2 rolls back because of anti 500; emits anti 600.
  t.push_back(rec(TracePoint::kRollback, 2, 500, true, 1, 2, 0));
  t.push_back(rec(TracePoint::kHostEnqueue, 2, 600, true));
  // Node 3 rolls back because of anti 600 — depth 2.
  t.push_back(rec(TracePoint::kRollback, 3, 600, true, 2, 1, 0));
  // A second rollback on node 3 caused by an anti nobody registered
  // (scrolled out of the ring) — an unlinked secondary, counted as a root.
  t.push_back(rec(TracePoint::kRollback, 3, 999, true, 0, 1, 0));
  // NIC early cancellation: positive 700 dropped because of anti 500, and
  // anti 500 itself filtered after the drop.
  t.push_back(rec(TracePoint::kCancelDropPositive, 2, 700, false, kInvalidNode,
                  0, /*b=cause anti*/ 500));
  t.push_back(rec(TracePoint::kCancelFilterAnti, 2, 500, true));

  const TraceAnalysis a = analyze_cascades(t);
  EXPECT_EQ(a.records_seen, t.size());
  EXPECT_EQ(a.rollback_records, 4u);
  EXPECT_EQ(a.anti_enqueues, 2u);
  EXPECT_EQ(a.orphan_antis, 0u);

  const CascadeStats& s = a.cascades;
  EXPECT_EQ(s.rollbacks, 4u);
  EXPECT_EQ(s.roots, 2u);  // the straggler tree + the unlinked secondary
  EXPECT_EQ(s.secondary, 3u);
  EXPECT_EQ(s.unlinked_secondary, 1u);
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.wasted_events, 3u + 2u + 1u + 1u);
  EXPECT_EQ(s.wasted_msgs, 2u);  // antis 500 and 600
  EXPECT_EQ(s.replayed_events, 1u);
  EXPECT_EQ(s.max_tree_rollbacks, 3u);
  EXPECT_EQ(s.max_tree_wasted_events, 6u);

  // depth_hist: two at depth 0 (root + unlinked), one at 1, one at 2.
  ASSERT_EQ(s.depth_hist.size(), 3u);
  EXPECT_EQ(s.depth_hist[0], 2u);
  EXPECT_EQ(s.depth_hist[1], 1u);
  EXPECT_EQ(s.depth_hist[2], 1u);
  // fanout_hist: rollbacks 0 and 1 each have one child; 2 and 3 have none.
  ASSERT_EQ(s.fanout_hist.size(), 2u);
  EXPECT_EQ(s.fanout_hist[0], 2u);
  EXPECT_EQ(s.fanout_hist[1], 2u);
  // tree_size_hist: one singleton tree, one 3-rollback avalanche.
  ASSERT_EQ(s.tree_size_hist.size(), 4u);
  EXPECT_EQ(s.tree_size_hist[1], 1u);
  EXPECT_EQ(s.tree_size_hist[3], 1u);

  // The positive drop attributes via caused_by_anti: anti 500 caused the
  // node-2 rollback, which owns the saving. The anti filter has no cause,
  // so it falls back to anti_origin: the node-1 rollback emitted anti 500.
  EXPECT_EQ(s.nic_drops_attributed, 2u);
  EXPECT_EQ(s.nic_drops_unattributed, 0u);
  EXPECT_EQ(s.antis_filtered, 1u);
  ASSERT_TRUE(s.per_node.count(1));
  ASSERT_TRUE(s.per_node.count(2));
  EXPECT_EQ(s.per_node.at(2).nic_drops, 1u);
  EXPECT_EQ(s.per_node.at(1).nic_filtered, 1u);
  EXPECT_EQ(s.per_node.at(3).rollbacks, 2u);
  EXPECT_EQ(s.per_node.at(3).secondary_rollbacks, 2u);
}

TEST(CascadeFromTrace, AntiBeforeAnyRollbackIsOrphan) {
  std::vector<TraceRecord> t;
  t.push_back(rec(TracePoint::kHostEnqueue, 1, 500, true));
  const TraceAnalysis a = analyze_cascades(t);
  EXPECT_EQ(a.orphan_antis, 1u);
  EXPECT_EQ(a.cascades.rollbacks, 0u);
}

// Hand-built DAG over three objects (A=1, B=2, C=3), every event 10us:
//
//   e1(A,@10) --> e2(A,@30) --> e5(C,@50)
//        \                       ^
//         +--> e3(B,@20) --> e4(C,@40)   (e4 precedes e5 on C)
//
// The longest chain is e1,e3,e4,e5 (object C serializes e4 before e5):
// finish = 40us over 4 events; total work is 50us.
TEST(CriticalPath, ThreeLpDag) {
  auto ev = [](EventId id, ObjectId obj, std::int64_t ts, EventId parent) {
    return CpEvent{id, obj, VirtualTime{ts}, parent, 10.0};
  };
  std::vector<CpEvent> events = {
      ev(5, 3, 50, 2), ev(1, 1, 10, kInvalidEvent), ev(4, 3, 40, 3),
      ev(2, 1, 30, 1), ev(3, 2, 20, 1),  // order shuffled on purpose
  };
  const CriticalPathResult r = critical_path(events);
  EXPECT_EQ(r.committed_events, 5u);
  EXPECT_DOUBLE_EQ(r.total_work_us, 50.0);
  EXPECT_DOUBLE_EQ(r.critical_path_us, 40.0);
  EXPECT_EQ(r.critical_path_events, 4u);
  EXPECT_EQ(r.missing_parents, 0u);
  EXPECT_DOUBLE_EQ(r.parallelism(), 1.25);
}

TEST(CriticalPath, MissingParentWeakensButNeverBreaks) {
  std::vector<CpEvent> events = {
      {1, 1, VirtualTime{10}, kInvalidEvent, 10.0},
      {2, 2, VirtualTime{20}, /*parent=*/999, 10.0},  // generator unknown
  };
  const CriticalPathResult r = critical_path(events);
  EXPECT_EQ(r.missing_parents, 1u);
  // The orphan starts at 0: the bound stays a bound (10us chain on obj 2).
  EXPECT_DOUBLE_EQ(r.critical_path_us, 10.0);
}

harness::ExperimentConfig profiled_config(harness::ModelKind model) {
  harness::ExperimentConfig cfg;
  cfg.model = model;
  cfg.nodes = 4;
  cfg.seed = 23;
  cfg.gvt_mode = warped::GvtMode::kNic;
  cfg.gvt_period = 100;
  cfg.early_cancel = true;
  cfg.max_sim_seconds = 600;
  if (model == harness::ModelKind::kRaid) {
    cfg.raid.total_requests = 1500;
  } else {
    cfg.police.stations = 200;
  }
  cfg.profile.enabled = true;
  return cfg;
}

class ProfiledModels
    : public ::testing::TestWithParam<harness::ModelKind> {};

// Acceptance: cascade depth/fan-out histograms + optimism-efficiency scores
// for the real models, byte-identical across runs at seed 23.
TEST_P(ProfiledModels, ReportIsStructuredAndDeterministic) {
  const harness::ExperimentConfig cfg = profiled_config(GetParam());
  const harness::ExperimentResult r1 = harness::run_experiment(cfg);
  const harness::ExperimentResult r2 = harness::run_experiment(cfg);

  ASSERT_TRUE(r1.completed);
  ASSERT_NE(r1.profile, nullptr);
  const ProfileReport& p = *r1.profile;

  EXPECT_EQ(p.committed, static_cast<std::uint64_t>(r1.committed_events));
  EXPECT_GT(p.cascades.rollbacks, 0u);
  EXPECT_FALSE(p.cascades.depth_hist.empty());
  EXPECT_FALSE(p.cascades.fanout_hist.empty());
  EXPECT_GT(p.work_efficiency, 0.0);
  EXPECT_LE(p.work_efficiency, 1.0);
  // Real runs sit strictly above the infinite-parallelism lower bound.
  EXPECT_GT(p.time_vs_lower_bound, 1.0);
  EXPECT_GT(p.critical_path.critical_path_events, 0u);
  EXPECT_LE(p.critical_path.critical_path_us * 1e-6, r1.sim_seconds);

  ASSERT_NE(r2.profile, nullptr);
  EXPECT_EQ(p.to_json_string(), r2.profile->to_json_string());
}

INSTANTIATE_TEST_SUITE_P(RaidAndPolice, ProfiledModels,
                         ::testing::Values(harness::ModelKind::kRaid,
                                           harness::ModelKind::kPolice));

}  // namespace
}  // namespace nicwarp::profile
