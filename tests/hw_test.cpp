// Tests for the hardware layer: cost model, network links, NIC rings and
// backpressure, node packet paths, cluster wiring.
#include <gtest/gtest.h>

#include "hw/cluster.hpp"
#include "hw/cost_model.hpp"

namespace nicwarp::hw {
namespace {

CostModel test_cost() {
  CostModel c;
  // Round numbers so timing assertions are exact.
  c.bus_bandwidth_mb_s = 100.0;  // 10 ns/B
  c.bus_setup_us = 1.0;
  c.link_bandwidth_mb_s = 100.0;
  c.link_latency_us = 2.0;
  c.nic_per_packet_us = 1.0;
  c.host_msg_recv_us = 5.0;
  c.nic_send_ring_slots = 2;
  return c;
}

Packet make_event_packet(NodeId dst, std::uint32_t bytes = 100) {
  Packet p;
  p.hdr.kind = PacketKind::kEvent;
  p.hdr.dst = dst;
  p.hdr.size_bytes = bytes;
  return p;
}

// ---------------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------------

TEST(CostModelTest, DerivedTransferTimes) {
  const CostModel c = test_cost();
  EXPECT_EQ(c.bus_transfer(100).ns, 1000 + 100 * 10);  // setup + bytes/bw
  EXPECT_EQ(c.wire_time(100).ns, 1000);
  EXPECT_EQ(c.us(2.5).ns, 2500);
}

TEST(CostModelTest, ParamOverrides) {
  ParamSet p = ParamSet::parse(
      "cm.host_event_exec_us=99.5 cm.nic_send_ring_slots=7 cm.mpi_credit_window=16");
  const CostModel c = CostModel::from_params(p);
  EXPECT_DOUBLE_EQ(c.host_event_exec_us, 99.5);
  EXPECT_EQ(c.nic_send_ring_slots, 7);
  EXPECT_EQ(c.mpi_credit_window, 16);
  // Untouched fields keep their defaults.
  const CostModel d;
  EXPECT_DOUBLE_EQ(c.bus_setup_us, d.bus_setup_us);
}

TEST(CostModelTest, DefaultsAreLANai4Calibrated) {
  const CostModel c;
  // The NIC must be priced as the bottleneck (see DESIGN.md §5).
  EXPECT_GT(c.nic_per_packet_us, c.host_msg_send_us * 0.5);
  EXPECT_GT(c.host_event_exec_us, 0.0);
  EXPECT_EQ(c.nic_sram_bytes, 1 << 20);  // LANai4: 1 MB
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture() : cost_(test_cost()), net_(engine_, stats_, cost_, pool_, 3) {}
  // Sugar over the pooled interfaces: tests think in value-typed Packets.
  void transmit(NodeId src, Packet pkt, std::function<void()> on_link_free) {
    net_.transmit(src, pool_.acquire(std::move(pkt)), std::move(on_link_free));
  }
  void set_sink(std::function<void(NodeId, Packet)> fn) {
    net_.set_sink([this, fn = std::move(fn)](NodeId dst, PacketRef ref) {
      fn(dst, pool_.take(ref));
    });
  }
  sim::Engine engine_;
  StatsRegistry stats_;
  CostModel cost_;
  PacketPool pool_;
  Network net_;
};

TEST_F(NetworkFixture, DeliversWithSerializationPlusLatency) {
  std::int64_t delivered_at = -1;
  set_sink([&](NodeId dst, Packet p) {
    EXPECT_EQ(dst, 1u);
    EXPECT_EQ(p.hdr.size_bytes, 100u);
    delivered_at = engine_.now().ns;
  });
  transmit(0, make_event_packet(1), nullptr);
  engine_.run();
  // 100 B at 100 MB/s = 1000 ns serialize + 2000 ns latency.
  EXPECT_EQ(delivered_at, 3000);
}

TEST_F(NetworkFixture, PerSourceLinkSerializes) {
  std::vector<std::int64_t> deliveries;
  set_sink([&](NodeId, Packet) { deliveries.push_back(engine_.now().ns); });
  transmit(0, make_event_packet(1), nullptr);
  transmit(0, make_event_packet(2), nullptr);
  engine_.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 3000);
  EXPECT_EQ(deliveries[1], 4000);  // second waited for the link
}

TEST_F(NetworkFixture, DistinctSourcesDoNotContend) {
  std::vector<std::int64_t> deliveries;
  set_sink([&](NodeId, Packet) { deliveries.push_back(engine_.now().ns); });
  transmit(0, make_event_packet(2), nullptr);
  transmit(1, make_event_packet(2), nullptr);
  engine_.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 3000);
  EXPECT_EQ(deliveries[1], 3000);  // parallel links
}

TEST_F(NetworkFixture, LinkFreeCallbackFiresAtSerializeEnd) {
  std::int64_t freed_at = -1;
  set_sink([](NodeId, Packet) {});
  transmit(0, make_event_packet(1), [&] { freed_at = engine_.now().ns; });
  engine_.run();
  EXPECT_EQ(freed_at, 1000);  // before the latency portion
}

TEST_F(NetworkFixture, ChannelFifoPreserved) {
  std::vector<int> order;
  set_sink([&](NodeId, Packet p) { order.push_back(static_cast<int>(p.app[0])); });
  for (int i = 0; i < 5; ++i) {
    Packet p = make_event_packet(1, 64);
    p.app = {i};
    transmit(0, std::move(p), nullptr);
  }
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(net_.packets_delivered(), 5u);
  EXPECT_EQ(stats_.value("net.packets"), 5);
  EXPECT_EQ(stats_.value("net.bytes"), 5 * 64);
}

// ---------------------------------------------------------------------------
// Cluster / Node / Nic end-to-end paths
// ---------------------------------------------------------------------------

class ClusterFixture : public ::testing::Test {
 protected:
  ClusterFixture()
      : cluster_(test_cost(), 2,
                 [](NodeId) { return std::make_unique<BaselineFirmware>(); }, 1) {}
  Cluster cluster_;
};

TEST_F(ClusterFixture, HostToHostPacketDelivery) {
  std::vector<Packet> received;
  cluster_.node(1).set_raw_rx(
      [&](PacketRef ref) { received.push_back(cluster_.pool().take(ref)); });
  cluster_.node(0).set_raw_rx([](PacketRef) { FAIL() << "wrong node"; });

  Packet p = make_event_packet(1);
  p.hdr.src = 0;
  p.app = {42};
  cluster_.node(0).dma_to_nic(std::move(p));
  cluster_.run();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].app.at(0), 42);
  // Path: bus (2000) + nic hook (1000) + wire (1000+2000) + nic hook (1000)
  // + bus (2000) + host recv task (5000) = 14000 ns.
  EXPECT_EQ(cluster_.engine().now().ns, 14000);
}

TEST_F(ClusterFixture, SendRingBackpressure) {
  Nic& nic = cluster_.node(0).nic();
  EXPECT_TRUE(nic.tx_slot_available());
  nic.reserve_tx_slot();
  nic.reserve_tx_slot();  // capacity is 2 in test_cost()
  EXPECT_FALSE(nic.tx_slot_available());
}

TEST_F(ClusterFixture, SlotFreedAfterWireDrain) {
  cluster_.node(1).set_raw_rx([&](PacketRef ref) { cluster_.pool().release(ref); });
  int freed = 0;
  cluster_.node(0).set_tx_ready_cb([&] { ++freed; });
  cluster_.node(0).dma_to_nic(make_event_packet(1));
  cluster_.node(0).dma_to_nic(make_event_packet(1));
  cluster_.run();
  EXPECT_EQ(freed, 2);
  EXPECT_EQ(cluster_.node(0).nic().slots_in_use(), 0u);
}

TEST_F(ClusterFixture, HostRecvCostDependsOnKind) {
  const Node& n = const_cast<Cluster&>(cluster_).node(0);
  Packet ev = make_event_packet(1);
  Packet tok;
  tok.hdr.kind = PacketKind::kHostGvtToken;
  EXPECT_EQ(const_cast<Node&>(n).host_recv_cost(ev).ns,
            test_cost().us(test_cost().host_msg_recv_us).ns);
  EXPECT_EQ(const_cast<Node&>(n).host_recv_cost(tok).ns,
            test_cost().us(test_cost().host_gvt_ctrl_us).ns);
}

TEST_F(ClusterFixture, PerNodeRngStreamsDifferButAreReproducible) {
  const std::uint64_t a0 = cluster_.node_rng(0).next_u64();
  const std::uint64_t b0 = cluster_.node_rng(1).next_u64();
  EXPECT_NE(a0, b0);
  Cluster fresh(test_cost(), 2,
                [](NodeId) { return std::make_unique<BaselineFirmware>(); }, 1);
  EXPECT_EQ(fresh.node_rng(0).next_u64(), a0);
}

// A firmware that drops every outbound event, to exercise the drop path.
class DropAllFirmware : public Firmware {
 public:
  HookResult on_host_tx(Packet& pkt) override {
    if (pkt.hdr.kind == PacketKind::kEvent) return {Action::kDrop, SimTime::from_ns(10)};
    return {Action::kForward, SimTime::from_ns(10)};
  }
  SimTime on_wire_tx(Packet&) override { return SimTime::zero(); }
  HookResult on_net_rx(Packet&) override { return {Action::kForward, SimTime::zero()}; }
};

TEST(NicFirmwareTest, HostTxDropFreesSlotAndSendsNothing) {
  Cluster cluster(test_cost(), 2,
                  [](NodeId) { return std::make_unique<DropAllFirmware>(); }, 1);
  bool received = false;
  cluster.node(1).set_raw_rx([&](PacketRef ref) {
    cluster.pool().release(ref);
    received = true;
  });
  int freed = 0;
  cluster.node(0).set_tx_ready_cb([&] { ++freed; });
  cluster.node(0).dma_to_nic(make_event_packet(1));
  cluster.run();
  EXPECT_FALSE(received);
  EXPECT_EQ(freed, 1);
  EXPECT_EQ(cluster.stats().value("net.packets"), 0);
}

// A firmware that consumes incoming packets on the NIC (never reaches host).
class ConsumeRxFirmware : public BaselineFirmware {
 public:
  HookResult on_net_rx(Packet&) override { return {Action::kConsume, SimTime::from_ns(5)}; }
};

TEST(NicFirmwareTest, NetRxConsumeSavesBusAndHost) {
  Cluster cluster(test_cost(), 2,
                  [](NodeId) { return std::make_unique<ConsumeRxFirmware>(); }, 1);
  bool received = false;
  cluster.node(1).set_raw_rx([&](PacketRef ref) {
    cluster.pool().release(ref);
    received = true;
  });
  cluster.node(0).dma_to_nic(make_event_packet(1));
  cluster.run();
  EXPECT_FALSE(received);
  EXPECT_EQ(cluster.stats().value("net.packets"), 1);  // it did cross the wire
  // Receiver's bus never moved (only the sender's tx DMA ran).
  EXPECT_EQ(cluster.stats().value("bus1.jobs"), 0);
}

// Emitted NIC control packets take priority and bypass host slots.
class EmitterFirmware : public BaselineFirmware {
 public:
  void attach(NicContext& ctx) override {
    Firmware::attach(ctx);
    if (ctx.node_id() == 0) {
      ctx.schedule(SimTime::from_ns(100), [this] {
        Packet tok;
        tok.hdr.kind = PacketKind::kNicGvtToken;
        tok.hdr.dst = 1;
        tok.hdr.size_bytes = 64;
        ctx_->emit(std::move(tok));
        return SimTime::from_ns(1);
      });
    }
  }
  HookResult on_net_rx(Packet& pkt) override {
    if (pkt.hdr.kind == PacketKind::kNicGvtToken) {
      ctx_->stats().counter("test.tokens_seen").add(1);
      return {Action::kConsume, SimTime::zero()};
    }
    return BaselineFirmware::on_net_rx(pkt);
  }
};

TEST(NicFirmwareTest, EmittedControlTrafficFlowsNicToNic) {
  Cluster cluster(test_cost(), 2,
                  [](NodeId) { return std::make_unique<EmitterFirmware>(); }, 1);
  cluster.node(1).set_raw_rx(
      [](PacketRef) { FAIL() << "token must be consumed on the NIC"; });
  cluster.run();
  EXPECT_EQ(cluster.stats().value("test.tokens_seen"), 1);
  EXPECT_EQ(cluster.stats().value("nic.emitted"), 1);
  // No host CPU was involved anywhere.
  EXPECT_EQ(cluster.stats().value("host0.cpu.jobs"), 0);
  EXPECT_EQ(cluster.stats().value("host1.cpu.jobs"), 0);
}

}  // namespace
}  // namespace nicwarp::hw
