// GVT manager tests, at the full-testbed level: all three algorithms must
// terminate, produce monotone sound estimates (the LP aborts the process on
// any below-GVT message, so completion itself certifies soundness), agree on
// results, and show the cost profile the paper describes.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace nicwarp {
namespace {

using harness::ExperimentConfig;
using harness::ExperimentResult;
using harness::ModelKind;
using harness::run_experiment;

ExperimentConfig small_phold(warped::GvtMode mode, std::uint64_t seed = 5) {
  ExperimentConfig cfg;
  cfg.model = ModelKind::kPhold;
  cfg.phold.objects = 32;
  cfg.phold.population = 2;
  cfg.phold.horizon = 1200;
  cfg.nodes = 4;
  cfg.gvt_mode = mode;
  cfg.gvt_period = 50;
  cfg.seed = seed;
  cfg.paranoia_checks = true;
  cfg.max_sim_seconds = 120;
  return cfg;
}

TEST(GvtTest, MatternTerminatesAndCommits) {
  const ExperimentResult r = run_experiment(small_phold(warped::GvtMode::kHostMattern));
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.final_gvt.is_inf());
  EXPECT_GT(r.committed_events, 0);
  EXPECT_GT(r.gvt_rounds, 0);
  EXPECT_GT(r.gvt_estimations, 0);
}

TEST(GvtTest, NicGvtTerminatesAndCommits) {
  const ExperimentResult r = run_experiment(small_phold(warped::GvtMode::kNic));
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.final_gvt.is_inf());
  EXPECT_GT(r.committed_events, 0);
  EXPECT_GT(r.gvt_rounds, 0);
}

TEST(GvtTest, PGvtTerminatesAndCommits) {
  const ExperimentResult r = run_experiment(small_phold(warped::GvtMode::kPGvt));
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.final_gvt.is_inf());
  EXPECT_GT(r.committed_events, 0);
}

TEST(GvtTest, AllModesAgreeOnResults) {
  const ExperimentResult m = run_experiment(small_phold(warped::GvtMode::kHostMattern));
  const ExperimentResult n = run_experiment(small_phold(warped::GvtMode::kNic));
  const ExperimentResult p = run_experiment(small_phold(warped::GvtMode::kPGvt));
  // GVT is pure bookkeeping: the simulation's canonical result is identical.
  EXPECT_EQ(m.signature, n.signature);
  EXPECT_EQ(m.signature, p.signature);
  EXPECT_EQ(m.committed_events, n.committed_events);
  EXPECT_EQ(m.committed_events, p.committed_events);
}

TEST(GvtTest, MatternRoundsScaleInverselyWithPeriod) {
  ExperimentConfig aggressive = small_phold(warped::GvtMode::kHostMattern);
  aggressive.gvt_period = 1;
  ExperimentConfig lazy = small_phold(warped::GvtMode::kHostMattern);
  lazy.gvt_period = 5000;
  const ExperimentResult a = run_experiment(aggressive);
  const ExperimentResult l = run_experiment(lazy);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(l.completed);
  EXPECT_GT(a.gvt_rounds, 10 * l.gvt_rounds);  // the Fig. 5b cliff
  EXPECT_EQ(a.signature, l.signature);
}

TEST(GvtTest, NicGvtRoundsRoughlyConstantAcrossPeriods) {
  ExperimentConfig aggressive = small_phold(warped::GvtMode::kNic);
  aggressive.gvt_period = 1;
  ExperimentConfig lazy = small_phold(warped::GvtMode::kNic);
  lazy.gvt_period = 5000;
  const ExperimentResult a = run_experiment(aggressive);
  const ExperimentResult l = run_experiment(lazy);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(l.completed);
  // "the number of GVT rounds being carried out at the NIC remained
  // relatively constant" — within a small factor, not orders of magnitude.
  EXPECT_LT(a.gvt_rounds, 4 * l.gvt_rounds + 16);
  EXPECT_GT(a.gvt_rounds, l.gvt_rounds / 4 - 16);
}

TEST(GvtTest, HostMatternAtAggressivePeriodCostsWallClock) {
  ExperimentConfig aggressive = small_phold(warped::GvtMode::kHostMattern);
  aggressive.gvt_period = 1;
  ExperimentConfig lazy = small_phold(warped::GvtMode::kHostMattern);
  lazy.gvt_period = 5000;
  const ExperimentResult a = run_experiment(aggressive);
  const ExperimentResult l = run_experiment(lazy);
  // The control-message storm must visibly slow the simulation (Fig. 4 left).
  EXPECT_GT(a.sim_seconds, l.sim_seconds * 1.15);
}

TEST(GvtTest, NicGvtBeatsHostMatternAtAggressivePeriod) {
  ExperimentConfig host = small_phold(warped::GvtMode::kHostMattern);
  host.gvt_period = 1;
  ExperimentConfig nic = small_phold(warped::GvtMode::kNic);
  nic.gvt_period = 1;
  const ExperimentResult h = run_experiment(host);
  const ExperimentResult n = run_experiment(nic);
  EXPECT_LT(n.sim_seconds, h.sim_seconds);  // the paper's headline (Fig. 4)
  EXPECT_EQ(h.signature, n.signature);
}

TEST(GvtTest, NicGvtPiggybacksTokensAndHandshakes) {
  ExperimentConfig cfg = small_phold(warped::GvtMode::kNic);
  harness::Testbed tb = harness::build_testbed(cfg);
  const bool done = tb.run_to_completion(cfg.max_sim_seconds);
  ASSERT_TRUE(done);
  const StatsRegistry& st = tb.cluster->stats();
  EXPECT_GT(st.value("gvt.tokens_piggybacked") + st.value("gvt.wire_tokens"), 0);
  EXPECT_GT(st.value("gvt.handshake_piggybacked") + st.value("gvt.handshake_mailbox"), 0);
  // NIC-resident GVT must not generate host control packets per hop: there
  // are no host-built Mattern tokens at all.
  bool host_tokens = false;
  for (const auto& [k, v] : st.all_counters()) host_tokens |= k == "gvt.host_tokens";
  EXPECT_FALSE(host_tokens);
}

TEST(GvtTest, PiggybackAblationFallsBackToWireTokens) {
  ExperimentConfig cfg = small_phold(warped::GvtMode::kNic);
  cfg.piggyback = false;  // ablation A1
  harness::Testbed tb = harness::build_testbed(cfg);
  ASSERT_TRUE(tb.run_to_completion(cfg.max_sim_seconds));
  const StatsRegistry& st = tb.cluster->stats();
  EXPECT_EQ(st.value("gvt.tokens_piggybacked"), 0);
  EXPECT_GT(st.value("gvt.wire_tokens"), 0);
  EXPECT_EQ(st.value("gvt.handshake_piggybacked"), 0);
}

TEST(GvtTest, PGvtGeneratesAcks) {
  ExperimentConfig cfg = small_phold(warped::GvtMode::kPGvt);
  harness::Testbed tb = harness::build_testbed(cfg);
  ASSERT_TRUE(tb.run_to_completion(cfg.max_sim_seconds));
  const StatsRegistry& st = tb.cluster->stats();
  // One ack per remote event message: pGVT's known overhead (why the paper
  // uses Mattern).
  EXPECT_GE(st.value("gvt.acks"), st.value("tw.events_sent"));
}

TEST(GvtTest, SingleNodeWorldTerminates) {
  for (warped::GvtMode mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic,
                               warped::GvtMode::kPGvt}) {
    ExperimentConfig cfg = small_phold(mode);
    cfg.nodes = 1;
    cfg.phold.objects = 8;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_TRUE(r.completed) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(r.rollbacks, 0) << "single LP cannot rollback";
  }
}

TEST(GvtTest, SingleNodeResultIsTheCanonicalReference) {
  // A 1-node run processes everything in canonical order with no optimism;
  // every distributed run must commit to exactly its result.
  ExperimentConfig ref = small_phold(warped::GvtMode::kHostMattern);
  ref.nodes = 1;
  const ExperimentResult canon = run_experiment(ref);
  for (std::uint32_t nodes : {2u, 4u}) {
    ExperimentConfig cfg = small_phold(warped::GvtMode::kNic);
    cfg.nodes = nodes;
    const ExperimentResult r = run_experiment(cfg);
    EXPECT_EQ(r.signature, canon.signature) << nodes << " nodes";
    EXPECT_EQ(r.committed_events, canon.committed_events);
  }
}

// Property sweep: every (mode, period, seed) combination terminates with the
// canonical signature. Completion certifies GVT soundness because the LP
// hard-aborts on any message below its adopted GVT.
struct GvtSweepParam {
  warped::GvtMode mode;
  std::int64_t period;
  std::uint64_t seed;
};

class GvtSweep : public ::testing::TestWithParam<GvtSweepParam> {};

TEST_P(GvtSweep, TerminatesWithCanonicalResult) {
  const GvtSweepParam p = GetParam();
  ExperimentConfig ref = small_phold(warped::GvtMode::kHostMattern, p.seed);
  ref.nodes = 1;
  const ExperimentResult canon = run_experiment(ref);

  ExperimentConfig cfg = small_phold(p.mode, p.seed);
  cfg.gvt_period = p.period;
  const ExperimentResult r = run_experiment(cfg);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.signature, canon.signature);
}

std::vector<GvtSweepParam> sweep_params() {
  std::vector<GvtSweepParam> out;
  for (auto mode : {warped::GvtMode::kHostMattern, warped::GvtMode::kNic,
                    warped::GvtMode::kPGvt}) {
    for (std::int64_t period : {1, 37, 1000}) {
      for (std::uint64_t seed : {1ull, 2ull}) out.push_back({mode, period, seed});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllModes, GvtSweep, ::testing::ValuesIn(sweep_params()),
                         [](const ::testing::TestParamInfo<GvtSweepParam>& info) {
                           const auto& p = info.param;
                           std::string mode = p.mode == warped::GvtMode::kHostMattern
                                                  ? "mattern"
                                                  : (p.mode == warped::GvtMode::kNic
                                                         ? "nic"
                                                         : "pgvt");
                           return mode + "_p" + std::to_string(p.period) + "_s" +
                                  std::to_string(p.seed);
                         });

}  // namespace
}  // namespace nicwarp
