// Harness utility tests: table formatting/CSV and result plumbing.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace nicwarp::harness {
namespace {

TEST(TableTest, AlignedOutputContainsEverything) {
  Table t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"a-much-longer-name", "23456"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  EXPECT_NE(s.find("23456"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|--"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t("Demo");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n3,4\n");
}

TEST(TableTest, JsonOutput) {
  Table t("Fig \"4\"");
  t.set_header({"gvt period", "sim s"});
  t.add_row({"100", "1.250"});
  t.add_row({"n/a", "12%"});
  EXPECT_EQ(t.to_json(),
            "{\"title\":\"Fig \\\"4\\\"\","
            "\"rows\":[{\"gvt period\":100,\"sim s\":1.250},"
            "{\"gvt period\":\"n/a\",\"sim s\":\"12%\"}]}");
}

TEST(TableTest, JsonRaggedRowsOmitMissingColumns) {
  Table t("T");
  t.set_header({"a", "b"});
  t.add_row({"1"});
  EXPECT_EQ(t.to_json(), "{\"title\":\"T\",\"rows\":[{\"a\":1}]}");
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-7)), "-7");
  EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(TableTest, RaggedRowsDoNotCrash) {
  Table t("Ragged");
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3", "4"});  // extra cell widens the table
  const std::string s = t.to_string();
  EXPECT_NE(s.find('4'), std::string::npos);
}

TEST(ResultTest, ToStringIsInformative) {
  ExperimentResult r;
  r.sim_seconds = 1.5;
  r.committed_events = 42;
  r.completed = true;
  const std::string s = r.to_string();
  EXPECT_NE(s.find("sim_seconds=1.5"), std::string::npos);
  EXPECT_NE(s.find("committed=42"), std::string::npos);
  EXPECT_NE(s.find("completed=1"), std::string::npos);
}

TEST(ConfigTest, DefaultsMatchThePaperTestbed) {
  ExperimentConfig cfg;
  EXPECT_EQ(cfg.nodes, 8u);  // the paper's 8-node cluster
  EXPECT_EQ(cfg.rollback_scope, warped::RollbackScope::kLp);
  EXPECT_TRUE(cfg.credit_repair);
  EXPECT_TRUE(cfg.piggyback);
  // Cost model: LANai4-era NIC is the bottleneck.
  EXPECT_GT(cfg.cost.nic_per_packet_us, 5.0);
}

TEST(BuildTestbedTest, WiringIsComplete) {
  ExperimentConfig cfg;
  cfg.model = ModelKind::kPhold;
  cfg.phold.objects = 8;
  cfg.nodes = 4;
  Testbed tb = build_testbed(cfg);
  ASSERT_EQ(tb.kernels.size(), 4u);
  ASSERT_EQ(tb.comms.size(), 4u);
  EXPECT_EQ(tb.cluster->size(), 4u);
  // Objects distributed round-robin.
  std::size_t total = 0;
  for (const auto& k : tb.kernels) total += k->lp().object_ids().size();
  EXPECT_EQ(total, 8u);
  EXPECT_FALSE(tb.all_stopped());
}

}  // namespace
}  // namespace nicwarp::harness
