#!/usr/bin/env python3
"""Compare two BENCH_<n>.json documents and fail on regression.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json \
        [--tolerance=0.0] [--wall-tolerance=3.0] [--filter=SUBSTR]

Scenarios are matched by name; only the intersection is compared, so a
candidate produced with `bench_runner --filter=smoke` can be gated against
the full checked-in baseline. Metrics under "deterministic" must agree to
--tolerance (relative; default 0 = bit-exact, which holds for a fixed seed).
"wall_seconds" under "noisy" is machine-dependent: it only fails when the
candidate is slower than baseline * (1 + --wall-tolerance).

Exit status: 0 = no regression, 1 = regression or schema mismatch,
2 = usage / unreadable input.
"""

import json
import sys

EXPECTED_TYPE = "nicwarp-bench"
EXPECTED_SCHEMA = 2


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("type") != EXPECTED_TYPE or doc.get("schema_version") != EXPECTED_SCHEMA:
        print(
            f"error: {path} is not a {EXPECTED_TYPE} schema_version "
            f"{EXPECTED_SCHEMA} document",
            file=sys.stderr,
        )
        sys.exit(1)
    return {s["name"]: s for s in doc.get("scenarios", [])}


def rel_diff(base, cand):
    if base == cand:
        return 0.0
    denom = max(abs(base), abs(cand))
    return abs(cand - base) / denom if denom else 0.0


def flatten(value, prefix=""):
    """Flattens nested dicts/lists into dotted scalar keys.

    Schema v2 deterministic blocks nest latency summaries
    ({"lat_delivery_us": {"p99": ..., "buckets": [[i, n], ...]}, ...});
    flattening lets the exact-compare loop gate every leaf individually and
    name the precise drifted key ("lat_delivery_us.p99",
    "lat_delivery_us.buckets[3][1]") instead of diffing whole objects.
    """
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            out.update(flatten(v, f"{prefix}.{k}" if prefix else k))
        return out
    if isinstance(value, list):
        out = {}
        for i, v in enumerate(value):
            out.update(flatten(v, f"{prefix}[{i}]"))
        if not value:
            out[prefix] = "[]"
        return out
    return {prefix: value}


def main(argv):
    tolerance = 0.0
    wall_tolerance = 3.0
    name_filter = ""
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--wall-tolerance="):
            wall_tolerance = float(arg.split("=", 1)[1])
        elif arg.startswith("--filter="):
            name_filter = arg.split("=", 1)[1]
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    baseline, candidate = load(paths[0]), load(paths[1])
    common = [
        n for n in candidate if n in baseline and (not name_filter or name_filter in n)
    ]
    if not common:
        print("error: no common scenarios to compare", file=sys.stderr)
        return 1
    only_candidate = sorted(set(candidate) - set(baseline))
    if only_candidate:
        print(f"note: {len(only_candidate)} scenario(s) not in baseline (skipped): "
              + ", ".join(only_candidate))

    failures = 0
    for name in common:
        b, c = baseline[name], candidate[name]
        bdet = flatten(b["deterministic"])
        cdet = flatten(c["deterministic"])
        drifted = []  # (key, expected, actual, detail)
        for key, bval in bdet.items():
            if key not in cdet:
                drifted.append((key, bval, "<missing>", "missing from candidate"))
                continue
            cval = cdet[key]
            if (isinstance(bval, bool) or isinstance(cval, bool)
                    or isinstance(bval, str) or isinstance(cval, str)):
                if bval != cval:
                    drifted.append((key, bval, cval, "exact mismatch"))
                continue
            d = rel_diff(bval, cval)
            if d > tolerance:
                drifted.append(
                    (key, bval, cval, f"rel diff {d:.3g} > tolerance {tolerance:g}"))
        for key in cdet:
            if key not in bdet:
                drifted.append((key, "<missing>", cdet[key], "not in baseline"))
        # Name the scenario's bench group next to every failure so a drifted
        # key can be mapped to its sweep family (smoke/chaos/micro/...)
        # without opening the JSON.
        group = c.get("group", b.get("group", "?"))
        if drifted:
            failures += len(drifted)
            print(f"FAIL {name} [group={group}]: "
                  f"{len(drifted)} deterministic key(s) drifted")
            width = max(len(k) for k, *_ in drifted)
            for key, bval, cval, detail in drifted:
                print(f"  {key:<{width}}  expected {bval!r}  actual {cval!r}  ({detail})")
        bwall = b["noisy"]["wall_seconds"]
        cwall = c["noisy"]["wall_seconds"]
        if cwall > bwall * (1.0 + wall_tolerance):
            print(f"FAIL {name} [group={group}]: wall_seconds {bwall:.3f} -> "
                  f"{cwall:.3f} (slower than {1.0 + wall_tolerance:g}x baseline)")
            failures += 1

    if failures:
        print(f"\n{failures} regression(s) across {len(common)} scenario(s)")
        return 1
    print(f"OK: {len(common)} scenario(s), no regressions "
          f"(tolerance={tolerance:g}, wall-tolerance={wall_tolerance:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
