#!/usr/bin/env python3
"""Summarize nicwarp trace and metrics files on the console.

Accepts any mix of:
  * Chrome trace_event JSON written by --trace-out (one JSON object),
  * trace-record JSONL written by --trace-jsonl (one record per line),
  * metrics sample JSONL written by --metrics-out.

File type is auto-detected from content, so the typical invocation is just:

  $ ./sweep_cli model=raid --trace-out trace.json --metrics-out m.jsonl
  $ python3 tools/trace_summary.py trace.json m.jsonl

For message traces it prints per-hop latency percentiles along the
lifecycle host-enqueue -> nic-stage -> wire-tx -> wire-depart -> nic-rx ->
host-deliver, plus drop/cancel/credit tallies. For metrics files it prints
a per-GVT-round breakdown (events committed, rollbacks, wire packets per
round window). Only the Python standard library is used.
"""

import argparse
import json
import os
import sys
from collections import Counter, defaultdict

# Hop/category constants come from the generated manifest (kept in sync with
# src/core/trace.cpp via `sweep_cli --print-trace-schema`; a ctest checks the
# two agree). The literals below are only the fallback when the manifest is
# not next to this script.
MSG_POINTS = [
    "host-enqueue",
    "nic-stage",
    "wire-tx",
    "wire-depart",
    "nic-rx",
    "host-deliver",
]
TERMINAL_DROPS = {"nic-drop-tx", "nic-drop-ring"}
INSTANT_CATS = ("cancel", "rollback", "credit", "gvt", "fault", "watchdog")

SCHEMA_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "trace_schema.json")


def load_schema(path=SCHEMA_PATH):
    """Replaces the fallback constants with the generated manifest."""
    global MSG_POINTS, TERMINAL_DROPS, INSTANT_CATS
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return False
    # v2 added the informational "sharding" section; the record shapes this
    # tool consumes are identical in v1 and v2.
    if doc.get("type") != "trace_schema" or doc.get("schema_version") not in (1, 2):
        return False
    MSG_POINTS = doc["msg_lifecycle"]
    TERMINAL_DROPS = set(doc["terminal_drops"])
    INSTANT_CATS = tuple(c for c in doc["categories"] if c != "msg")
    return True


def load_any(path):
    """Returns a list of normalized records: dicts with keys
    kind ('trace' | 'sample'), cat, point, ts_us, event_id, negative, args."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    text = text.strip()
    if not text:
        return []
    if text[0] == "{" and "\n" in text and text.splitlines()[0].rstrip().endswith("}"):
        # Could still be a pretty-printed single object; try JSONL first.
        try:
            return [normalize_line(json.loads(ln)) for ln in text.splitlines() if ln.strip()]
        except json.JSONDecodeError:
            pass
    doc = json.loads(text)
    if isinstance(doc, dict) and "traceEvents" in doc:
        return [r for r in (normalize_chrome(e) for e in doc["traceEvents"]) if r]
    if isinstance(doc, dict) and doc.get("type") == "latency_report":
        # Histogram-summary document written by `sweep_cli --latency-out`.
        return [{"kind": "latency", "doc": doc}]
    raise ValueError(f"{path}: unrecognized format")


def normalize_line(obj):
    t = obj.get("type")
    if t == "sample":
        return {"kind": "sample", **obj}
    if t == "trace_record":
        args = obj.get("args", {})
        return {
            "kind": "trace",
            "cat": obj.get("cat"),
            "point": args.get("point"),
            "ts_us": obj.get("sim_us", 0.0),
            "event_id": args.get("event_id"),
            "negative": args.get("negative", False),
            "args": args,
        }
    raise ValueError(f"unknown JSONL record type: {t!r}")


def normalize_chrome(ev):
    if ev.get("ph") not in ("b", "n", "e", "i"):
        return None
    args = ev.get("args", {})
    point = args.get("point")
    if point is None:
        return None
    return {
        "kind": "trace",
        "cat": ev.get("cat"),
        "point": point,
        "ts_us": ev.get("ts", 0.0),
        "event_id": args.get("event_id"),
        "negative": args.get("negative", False),
        "args": args,
    }


def percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * (len(sorted_vals) - 1) + 0.5))
    return sorted_vals[idx]


def summarize_msg(records, out):
    msgs = [r for r in records if r["kind"] == "trace" and r["cat"] == "msg"]
    if not msgs:
        return
    # Group into lifecycles: event ids recur across cancel/re-send
    # incarnations, so a new host-enqueue (or any point at an earlier
    # lifecycle position than the last one seen) starts a fresh incarnation.
    pos = {p: i for i, p in enumerate(MSG_POINTS)}
    lifecycles = defaultdict(list)  # (event_id, negative, incarnation) -> [(pos, ts)]
    incarnation = Counter()
    last_pos = {}
    drops = Counter()
    for r in msgs:
        key = (r["event_id"], r["negative"])
        if r["point"] in TERMINAL_DROPS:
            drops[r["point"]] += 1
            last_pos.pop(key, None)
            continue
        if r["point"] not in pos:
            continue
        p = pos[r["point"]]
        if key not in last_pos or p <= last_pos[key]:
            incarnation[key] += 1
        last_pos[key] = p
        lifecycles[key + (incarnation[key],)].append((p, r["ts_us"]))

    hops = defaultdict(list)  # (from_point, to_point) -> [latency_us]
    e2e = []
    for points in lifecycles.values():
        points.sort()
        for (p0, t0), (p1, t1) in zip(points, points[1:]):
            if p1 == p0:
                continue
            hops[(MSG_POINTS[p0], MSG_POINTS[p1])].append(t1 - t0)
        if points[0][0] == 0 and points[-1][0] == len(MSG_POINTS) - 1:
            e2e.append(points[-1][1] - points[0][1])

    print("== message lifecycle hops ==", file=out)
    print(f"{'hop':34s} {'count':>8s} {'p50us':>9s} {'p90us':>9s} {'p99us':>9s} {'maxus':>9s}",
          file=out)
    ordered = sorted(hops.items(), key=lambda kv: (pos[kv[0][0]], pos[kv[0][1]]))
    for (a, b), vals in ordered:
        vals.sort()
        print(f"{a + ' -> ' + b:34s} {len(vals):8d} "
              f"{percentile(vals, 0.5):9.2f} {percentile(vals, 0.9):9.2f} "
              f"{percentile(vals, 0.99):9.2f} {vals[-1]:9.2f}", file=out)
    if e2e:
        e2e.sort()
        print(f"{'host-enqueue -> host-deliver (e2e)':34s} {len(e2e):8d} "
              f"{percentile(e2e, 0.5):9.2f} {percentile(e2e, 0.9):9.2f} "
              f"{percentile(e2e, 0.99):9.2f} {e2e[-1]:9.2f}", file=out)
    for point, n in sorted(drops.items()):
        print(f"  dropped in NIC ({point}): {n}", file=out)
    print(file=out)


def summarize_instants(records, out):
    """Per-category instant-point tallies for every non-msg category the
    schema manifest declares — new categories show up with no code change."""
    inst = Counter()
    for r in records:
        if r["kind"] == "trace" and r["cat"] in INSTANT_CATS:
            inst[(r["cat"], r["point"])] += 1
    if not inst:
        return
    print("== " + " / ".join(INSTANT_CATS) + " points ==", file=out)
    cat_w = max(9, max(len(c) for c in INSTANT_CATS))
    for (cat, point), n in sorted(inst.items()):
        print(f"  {cat:{cat_w}s} {point:24s} {n:8d}", file=out)
    print(file=out)


LATENCY_METRICS = [
    ("delivery_vt", "msg delivery (virtual ticks)"),
    ("delivery_us", "msg delivery (modeled us)"),
    ("nic_wire_us", "msg NIC/wire leg (modeled us)"),
    ("commit_vt", "event commit (virtual ticks)"),
    ("commit_us", "event commit (modeled us)"),
]


def summarize_latency(records, out):
    """Percentile table from latency_report documents (--latency-out)."""
    docs = [r["doc"] for r in records if r["kind"] == "latency"]
    for doc in docs:
        print("== latency percentiles (deterministic histogram summary) ==", file=out)
        print(f"{'metric':30s} {'count':>9s} {'min':>10s} {'p50':>10s} "
              f"{'p99':>10s} {'p99.9':>10s} {'max':>10s} {'mean':>10s}", file=out)
        metrics = doc.get("metrics")
        names = metrics if metrics else [m for m, _ in LATENCY_METRICS]
        labels = dict(LATENCY_METRICS)
        for name in names:
            m = doc.get(name)
            if not isinstance(m, dict):
                continue
            print(f"{labels.get(name, name):30s} {m.get('count', 0):9d} "
                  f"{m.get('min', 0.0):10.2f} {m.get('p50', 0.0):10.2f} "
                  f"{m.get('p99', 0.0):10.2f} {m.get('p999', 0.0):10.2f} "
                  f"{m.get('max', 0.0):10.2f} {m.get('mean', 0.0):10.2f}", file=out)
        nonzero = sum(1 for name in names
                      if isinstance(doc.get(name), dict)
                      and doc[name].get("buckets"))
        if not doc.get("enabled", True):
            print("  (recorder was disabled; all counts are zero)", file=out)
        else:
            print(f"  {nonzero} metric(s) with samples; bucket counts are "
                  "byte-identical across reruns of the same seed", file=out)
        print(file=out)


def summarize_gvt_rounds(records, out):
    samples = [r for r in records if r["kind"] == "sample"]
    if not samples:
        return
    samples.sort(key=lambda s: s.get("round", 0))
    print("== GVT-round breakdown (per sample window) ==", file=out)
    cols = ["tw.events_processed", "tw.events_rolled_back", "tw.rollbacks", "net.packets"]
    print(f"{'round':>6s} {'sim_us':>12s} {'gvt':>12s} "
          + " ".join(f"{'d ' + c.split('.')[-1]:>16s}" for c in cols), file=out)
    prev = None
    for s in samples:
        c = s.get("counters", {})
        deltas = []
        for col in cols:
            cur = c.get(col, 0)
            deltas.append(cur - (prev.get("counters", {}).get(col, 0) if prev else 0))
        gvt = s.get("gvt")
        gvt_s = "inf" if gvt is None else str(gvt)
        print(f"{s.get('round', 0):6d} {s.get('sim_us', 0):12.1f} {gvt_s:>12s} "
              + " ".join(f"{d:16d}" for d in deltas), file=out)
        prev = s
    n = len(samples)
    print(f"  {n} samples; final counters are cumulative over the whole run", file=out)
    print(file=out)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="+", help="trace.json / trace.jsonl / metrics.jsonl")
    ap.add_argument("--max-rounds", type=int, default=20,
                    help="print at most N GVT-round rows (default 20; 0 = all)")
    ap.add_argument("--schema", default=SCHEMA_PATH,
                    help="trace_schema.json manifest (default: next to this script)")
    args = ap.parse_args()
    load_schema(args.schema)

    records = []
    for path in args.files:
        try:
            records.extend(load_any(path))
        except (ValueError, OSError) as e:
            print(f"{path}: not a nicwarp trace/metrics file ({e})", file=sys.stderr)
            return 1
    if not records:
        print("no records found", file=sys.stderr)
        return 1

    samples = [r for r in records if r["kind"] == "sample"]
    if args.max_rounds and len(samples) > args.max_rounds:
        keep = set(id(s) for s in samples[-args.max_rounds:])
        records = [r for r in records if r["kind"] != "sample" or id(r) in keep]

    summarize_msg(records, sys.stdout)
    summarize_instants(records, sys.stdout)
    summarize_latency(records, sys.stdout)
    summarize_gvt_rounds(records, sys.stdout)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
