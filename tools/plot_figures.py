#!/usr/bin/env python3
"""Render the paper-reproduction figures as SVG.

Pure standard library — no matplotlib required. Accepts either input format
(auto-detected from content):

  * bench_output.txt — concatenated stdout of the google-benchmark figure
    binaries; each prints a CSV block after its aligned table;
  * BENCH_<n>.json — the bench_runner regression document, whose fig4/fig5/
    fig6/fig7 scenario groups carry the same data points.

Usage:
    for b in build/bench/bench_fig*; do $b; done > bench_output.txt
    python3 tools/plot_figures.py bench_output.txt --outdir figures
    # or, from the regression runner:
    build/bench/bench_runner --filter=fig --out=BENCH_0002.json
    python3 tools/plot_figures.py BENCH_0002.json --outdir figures
"""

from __future__ import annotations

import argparse
import html
import json
import math
import os
import re
import sys
from collections import defaultdict

# ----------------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------------


def parse_blocks(text: str) -> dict[str, list[list[str]]]:
    """Returns {table title: rows (first row = header)} from bench output."""
    blocks: dict[str, list[list[str]]] = {}
    title = None
    lines = text.splitlines()
    for i, line in enumerate(lines):
        m = re.match(r"^== (.+) ==$", line)
        if m:
            title = m.group(1)
            continue
        if line.strip() == "CSV:" and title is not None:
            rows = []
            for j in range(i + 1, len(lines)):
                if "," not in lines[j]:
                    break
                rows.append([c.strip() for c in lines[j].split(",")])
            if rows:
                blocks[title] = rows
            title = None
    return blocks


def numeric(cell: str) -> float:
    return float(cell.rstrip("%"))


def blocks_from_bench(doc: dict) -> dict[str, list[list[str]]]:
    """Builds the same {title: CSV rows} dict from a BENCH_<n>.json document,
    using its fig4/fig5/fig6/fig7 scenario groups. Titles and column layouts
    mirror the figure binaries so the FIGURES specs below apply unchanged."""
    # group -> x value -> variant -> deterministic metrics
    points: dict[str, dict[float, dict[str, dict]]] = defaultdict(
        lambda: defaultdict(dict))
    # fig_tail is keyed variant-first: variant -> loss% -> deterministic
    tail: dict[str, dict[float, dict]] = defaultdict(dict)
    for s in doc.get("scenarios", []):
        parts = s["name"].split("/")
        if len(parts) != 3:
            continue
        group, variant, axis = parts
        if group == "fig_tail":
            # axis is "loss:0.5%" — a percentage label, not a bare float
            tail[variant][numeric(axis.split(":", 1)[1])] = s["deterministic"]
            continue
        if group not in ("fig4", "fig5", "fig6", "fig7"):
            continue
        x = float(axis.split(":", 1)[1])
        points[group][x][variant] = s["deterministic"]

    def rows(group, header, make_row, need=("warped",)):
        out = [header]
        for x in sorted(points.get(group, {})):
            variants = points[group][x]
            if any(v not in variants for v in need):
                continue
            out.append([f"{c:g}" if isinstance(c, float) else str(c)
                        for c in make_row(x, variants)])
        return out if len(out) > 1 else None

    def improvement(base_s, cancel_s):
        return 100.0 * (base_s - cancel_s) / base_s if base_s > 0 else 0.0

    blocks = {}

    def put(title, block):
        if block:
            blocks[title] = block

    for group, fig in (("fig4", "Fig. 4 — RAID"), ("fig5", "Fig. 5a — POLICE")):
        put(f"{fig} execution time vs GVT period",
            rows(group, ["period", "warped_s", "nicgvt_s"],
                 lambda x, v: [x, v["warped"]["sim_seconds"],
                               v["nicgvt"]["sim_seconds"]],
                 need=("warped", "nicgvt")))
    put("Fig. 5b — GVT rounds vs GVT period",
        rows("fig5", ["period", "warped_rounds", "nicgvt_rounds"],
             lambda x, v: [x, v["warped"]["gvt_rounds"],
                           v["nicgvt"]["gvt_rounds"]],
             need=("warped", "nicgvt")))
    for group, x_name, fig_a, fig_b in (
            ("fig6", "requests", "Fig. 6a — RAID improvement",
             "Fig. 6b — RAID messages sent"),
            ("fig7", "stations", "Fig. 7a — POLICE improvement", None)):
        put(fig_a,
            rows(group, [x_name, "baseline_s", "cancel_s", "improvement"],
                 lambda x, v: [x, v["warped"]["sim_seconds"],
                               v["cancel"]["sim_seconds"],
                               improvement(v["warped"]["sim_seconds"],
                                           v["cancel"]["sim_seconds"])],
                 need=("warped", "cancel")))
        if fig_b:
            put(fig_b,
                rows(group, [x_name, "warped_msgs", "cancel_msgs"],
                     lambda x, v: [x, v["warped"]["wire_packets"],
                                   v["cancel"]["wire_packets"]],
                     need=("warped", "cancel")))
    put("Fig. 7b — percentage of cancelled messages dropped by the NIC",
        rows("fig7", ["stations", "antis", "dropped", "filtered", "pct"],
             lambda x, v: [x, v["cancel"]["antis_generated"],
                           v["cancel"]["nic_drops"],
                           v["cancel"]["filtered_antis"],
                           (100.0 * v["cancel"]["nic_drops"] /
                            v["cancel"]["antis_generated"])
                           if v["cancel"]["antis_generated"] else 0.0],
             need=("cancel",)))
    put("Fig. 8 — POLICE overall messages generated",
        rows("fig7", ["stations", "warped_msgs", "cancel_msgs"],
             lambda x, v: [x, v["warped"]["event_msgs_generated"],
                           v["cancel"]["event_msgs_generated"]],
             need=("warped", "cancel")))
    if tail:
        # Same column layout as bench_fig_tail's own CSV block, so the
        # fig_tail FIGURES spec applies to either input format unchanged.
        trows = [["variant", "loss", "msg_p50", "msg_p999", "msg_amp",
                  "commit_p999", "commit_amp", "retransmits"]]
        for variant in sorted(tail):
            series = tail[variant]
            base = series.get(0.0, {}).get("lat_delivery_us", {}).get("p999", 0.0)
            cbase = series.get(0.0, {}).get("lat_commit_us", {}).get("p999", 0.0)
            for x in sorted(series):
                d = series[x].get("lat_delivery_us", {})
                c = series[x].get("lat_commit_us", {})
                trows.append([str(cell) for cell in [
                    variant, f"{x:g}%",
                    f"{d.get('p50', 0.0):g}", f"{d.get('p999', 0.0):g}",
                    f"{d.get('p999', 0.0) / base if base else 0.0:g}",
                    f"{c.get('p999', 0.0):g}",
                    f"{c.get('p999', 0.0) / cbase if cbase else 0.0:g}",
                    series[x].get("retransmits", 0)]])
        if len(trows) > 1:
            blocks["fig_tail — p99.9 amplification vs fault rate (modeled us)"] = trows
    return blocks


# ----------------------------------------------------------------------------
# Tiny SVG chart writer
# ----------------------------------------------------------------------------

PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"]
W, H = 640, 420
ML, MR, MT, MB = 80, 20, 50, 60  # margins


def nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi <= lo:
        hi = lo + 1
    raw = (hi - lo) / n
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        if raw <= mult * mag:
            step = mult * mag
            break
    start = math.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        ticks.append(round(t, 10))
        t += step
    return ticks


class Chart:
    """A log-x / linear-y (or linear-x) line chart with markers."""

    def __init__(self, title: str, xlabel: str, ylabel: str, logx: bool = False):
        self.title, self.xlabel, self.ylabel, self.logx = title, xlabel, ylabel, logx
        self.series: list[tuple[str, list[tuple[float, float]]]] = []

    def add(self, name: str, points: list[tuple[float, float]]):
        self.series.append((name, sorted(points)))

    def _xt(self, x: float) -> float:
        return math.log10(x) if self.logx else x

    def render(self) -> str:
        xs = [self._xt(x) for _, pts in self.series for x, _ in pts]
        ys = [y for _, pts in self.series for _, y in pts]
        xlo, xhi = min(xs), max(xs)
        ylo, yhi = min(0.0, min(ys)), max(ys) * 1.08 + 1e-12
        if xhi == xlo:
            xhi = xlo + 1

        def px(x: float) -> float:
            return ML + (self._xt(x) - xlo) / (xhi - xlo) * (W - ML - MR)

        def py(y: float) -> float:
            return H - MB - (y - ylo) / (yhi - ylo) * (H - MT - MB)

        out = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" '
            f'viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="12">',
            f'<rect width="{W}" height="{H}" fill="white"/>',
            f'<text x="{W / 2}" y="24" text-anchor="middle" font-size="14" '
            f'font-weight="bold">{html.escape(self.title)}</text>',
        ]
        # Axes frame.
        out.append(
            f'<rect x="{ML}" y="{MT}" width="{W - ML - MR}" height="{H - MT - MB}" '
            f'fill="none" stroke="#888"/>'
        )
        # Y ticks + gridlines.
        for t in nice_ticks(ylo, yhi):
            if not (ylo <= t <= yhi):
                continue
            y = py(t)
            out.append(f'<line x1="{ML}" y1="{y}" x2="{W - MR}" y2="{y}" '
                       f'stroke="#ddd" stroke-dasharray="3,3"/>')
            label = f"{t:g}"
            out.append(f'<text x="{ML - 6}" y="{y + 4}" text-anchor="end">{label}</text>')
        # X ticks.
        xticks = (
            [10 ** e for e in range(math.floor(xlo), math.ceil(xhi) + 1)]
            if self.logx
            else nice_ticks(xlo, xhi)
        )
        for t in xticks:
            xt = self._xt(t) if self.logx else t
            if not (xlo - 1e-9 <= xt <= xhi + 1e-9):
                continue
            x = ML + (xt - xlo) / (xhi - xlo) * (W - ML - MR)
            out.append(f'<line x1="{x}" y1="{H - MB}" x2="{x}" y2="{H - MB + 4}" '
                       f'stroke="#888"/>')
            out.append(f'<text x="{x}" y="{H - MB + 18}" text-anchor="middle">{t:g}</text>')
        # Axis labels.
        out.append(f'<text x="{W / 2}" y="{H - 14}" text-anchor="middle">'
                   f'{html.escape(self.xlabel)}</text>')
        out.append(f'<text x="18" y="{H / 2}" text-anchor="middle" '
                   f'transform="rotate(-90 18 {H / 2})">{html.escape(self.ylabel)}</text>')
        # Series.
        for i, (name, pts) in enumerate(self.series):
            color = PALETTE[i % len(PALETTE)]
            path = " ".join(f"{'M' if j == 0 else 'L'}{px(x):.1f},{py(y):.1f}"
                            for j, (x, y) in enumerate(pts))
            out.append(f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>')
            for x, y in pts:
                out.append(f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3.5" '
                           f'fill="{color}"/>')
            # Legend.
            lx, ly = ML + 12, MT + 16 + 18 * i
            out.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 22}" y2="{ly}" '
                       f'stroke="{color}" stroke-width="2"/>')
            out.append(f'<text x="{lx + 28}" y="{ly + 4}">{html.escape(name)}</text>')
        out.append("</svg>")
        return "\n".join(out)


# ----------------------------------------------------------------------------
# Figure specifications: (title regex, output file, builder)
# ----------------------------------------------------------------------------


def two_series(rows, ycol_a, ycol_b, name_a, name_b, **kw):
    chart = Chart(**kw)
    header, data = rows[0], rows[1:]
    chart.add(name_a, [(numeric(r[0]), numeric(r[ycol_a])) for r in data])
    chart.add(name_b, [(numeric(r[0]), numeric(r[ycol_b])) for r in data])
    return chart


def one_series(rows, ycol, name, **kw):
    chart = Chart(**kw)
    chart.add(name, [(numeric(r[0]), numeric(r[ycol])) for r in rows[1:]])
    return chart


def tail_chart(rows):
    """fig_tail rows are variant-keyed: one amplification series per variant,
    x = injected loss %, y = p99.9 delivery-latency amplification (x1 at 0%)."""
    chart = Chart(title="fig_tail — p99.9 delivery-latency amplification vs fault rate",
                  xlabel="injected packet loss (%)",
                  ylabel="p99.9 amplification (relative to 0% loss)")
    per_variant: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for r in rows[1:]:
        per_variant[r[0]].append((numeric(r[1]), numeric(r[4])))
    for variant in sorted(per_variant):
        chart.add(variant, per_variant[variant])
    return chart


FIGURES = [
    (r"Fig\. 4", "fig4_raid_gvt.svg",
     lambda rows: two_series(rows, 1, 2, "WARPED", "NIC GVT", logx=True,
                             title="Fig. 4 — RAID execution time vs GVT period",
                             xlabel="GVT period (events)", ylabel="simulated seconds")),
    (r"Fig\. 5a", "fig5a_police_gvt.svg",
     lambda rows: two_series(rows, 1, 2, "WARPED", "NIC GVT", logx=True,
                             title="Fig. 5a — POLICE execution time vs GVT period",
                             xlabel="GVT period (events)", ylabel="simulated seconds")),
    (r"Fig\. 5b", "fig5b_police_rounds.svg",
     lambda rows: two_series(rows, 1, 2, "WARPED", "NIC GVT", logx=True,
                             title="Fig. 5b — GVT rounds vs GVT period",
                             xlabel="GVT period (events)", ylabel="rounds")),
    (r"Fig\. 6a", "fig6a_raid_cancel.svg",
     lambda rows: one_series(rows, 3, "% improvement",
                             title="Fig. 6a — RAID improvement from cancellation",
                             xlabel="disk requests", ylabel="% improvement")),
    (r"Fig\. 6b", "fig6b_raid_msgs.svg",
     lambda rows: two_series(rows, 1, 2, "WARPED", "Direct cancellation",
                             title="Fig. 6b — RAID messages sent",
                             xlabel="disk requests", ylabel="messages")),
    (r"Fig\. 7a", "fig7a_police_cancel.svg",
     lambda rows: one_series(rows, 3, "% improvement",
                             title="Fig. 7a — POLICE improvement from cancellation",
                             xlabel="police stations", ylabel="% improvement")),
    (r"Fig\. 7b", "fig7b_police_dropped.svg",
     lambda rows: one_series(rows, 4, "% dropped by NIC",
                             title="Fig. 7b — cancelled messages dropped by NIC",
                             xlabel="police stations", ylabel="% dropped")),
    (r"Fig\. 8", "fig8_police_msgcount.svg",
     lambda rows: two_series(rows, 1, 2, "WARPED", "Direct cancellation",
                             title="Fig. 8 — POLICE overall messages generated",
                             xlabel="police stations", ylabel="messages")),
    (r"fig_tail", "fig_tail_amplification.svg", tail_chart),
]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("input", help="bench_output.txt (concatenated bench stdout)")
    ap.add_argument("--outdir", default="figures")
    args = ap.parse_args()

    with open(args.input, encoding="utf-8") as f:
        text = f.read()
    doc = None
    if text.lstrip().startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
    if isinstance(doc, dict) and doc.get("type") == "nicwarp-bench":
        blocks = blocks_from_bench(doc)
        if not blocks:
            print("no fig4/fig5/fig6/fig7 scenarios in this BENCH document",
                  file=sys.stderr)
            return 1
    else:
        blocks = parse_blocks(text)
    if not blocks:
        print("no CSV blocks found — is this really bench output?", file=sys.stderr)
        return 1

    os.makedirs(args.outdir, exist_ok=True)
    written = 0
    for pattern, fname, build in FIGURES:
        for title, rows in blocks.items():
            if re.search(pattern, title):
                svg = build(rows).render()
                path = os.path.join(args.outdir, fname)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(svg)
                print(f"wrote {path}")
                written += 1
                break
    print(f"{written}/{len(FIGURES)} figures rendered")
    return 0 if written else 1


if __name__ == "__main__":
    raise SystemExit(main())
