#!/usr/bin/env python3
"""Summarize a nicwarp per-entity heatmap JSON on the console.

Reads the {"type": "heatmap"} document written by `sweep_cli --heatmap-out`
(or ExperimentResult.heatmap_json) and prints the hottest entities:

  $ ./sweep_cli model=phold --heatmap-out heat.json
  $ python3 tools/heatmap_summary.py heat.json [--top=N]

Three tables come out:
  * LPs ranked by events rolled back (the rollback-waste hotspots), with
    commit efficiency, max rollback depth, coast-forward replays, and
    state-save volume per rank;
  * nodes ranked by NIC send-ring high-water, with credit stalls and GVT
    token custody time (total and max, simulated ns);
  * links ranked by retransmits + faults, with packet/byte volume and the
    credit-queue high-water mark.

Every value in the document is a count or simulated nanoseconds, so the
output is byte-identical across reruns of the same seed. Only the Python
standard library is used. The field lists live in tools/trace_schema.json
(`heatmap` block); a ctest keeps that manifest in sync with the C++ emitter.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("type") != "heatmap" or doc.get("schema_version") != 1:
        raise ValueError(f"{path}: not a heatmap schema_version 1 document")
    return doc


def fmt_row(cols, widths):
    return "  ".join(f"{c:>{w}}" for c, w in zip(cols, widths))


def print_table(title, header, rows, out):
    if not rows:
        return
    widths = [max(len(str(h)), max(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)]
    print(f"== {title} ==", file=out)
    print(fmt_row(header, widths), file=out)
    for r in rows:
        print(fmt_row([str(c) for c in r], widths), file=out)
    print(file=out)


def summarize(doc, top, out):
    lps = sorted(doc.get("lps", []), key=lambda l: (-l["rolled_back"], l["rank"]))
    rows = []
    for l in lps[:top]:
        eff = (l["committed"] / l["processed"]) if l["processed"] else 0.0
        rows.append([l["rank"], l["committed"], l["processed"], l["rolled_back"],
                     l["rollbacks"], l["max_rollback_depth"], l["replayed"],
                     l["state_saves"], l["state_save_bytes"], f"{eff:.3f}"])
    print_table(
        "LP heat (by events rolled back)",
        ["rank", "committed", "processed", "rolled_back", "rollbacks",
         "max_depth", "replayed", "saves", "save_bytes", "efficiency"],
        rows, out)

    nodes = sorted(doc.get("node_heat", []),
                   key=lambda n: (-n["ring_occupancy_hw"], n["rank"]))
    rows = [[n["rank"], n["ring_occupancy_hw"], n["credit_stalls"],
             n["gvt_tokens"], n["gvt_token_hold_ns"], n["gvt_token_hold_max_ns"]]
            for n in nodes[:top]]
    print_table(
        "node heat (by NIC ring high-water)",
        ["rank", "ring_hw", "credit_stalls", "gvt_tokens",
         "token_hold_ns", "token_hold_max_ns"],
        rows, out)

    links = sorted(doc.get("links", []),
                   key=lambda l: (-(l["retransmits"] + l["faults"]),
                                  -l["packets"], l["src"], l["dst"]))
    rows = [[f"{l['src']}->{l['dst']}", l["packets"], l["bytes"],
             l["retransmits"], l["faults"], l["queue_depth_hw"]]
            for l in links[:top]]
    print_table(
        "link heat (by retransmits + faults)",
        ["link", "packets", "bytes", "retransmits", "faults", "queue_hw"],
        rows, out)

    total_rb = sum(l["rolled_back"] for l in doc.get("lps", []))
    total_proc = sum(l["processed"] for l in doc.get("lps", []))
    eff = (1.0 - total_rb / total_proc) if total_proc else 0.0
    print(f"{doc.get('nodes', 0)} nodes, {len(doc.get('links', []))} active "
          f"links; cluster efficiency {eff:.3f} "
          f"({total_rb} of {total_proc} executions rolled back)", file=out)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="+", help="heatmap JSON file(s)")
    ap.add_argument("--top", type=int, default=10,
                    help="rows per table (default 10)")
    args = ap.parse_args()
    for path in args.files:
        try:
            doc = load(path)
        except (OSError, ValueError) as e:
            print(f"{path}: {e}", file=sys.stderr)
            return 1
        if len(args.files) > 1:
            print(f"--- {path} ---")
        summarize(doc, args.top, sys.stdout)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
