#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Verifies, using only the standard library, that every relative link in the
checked Markdown files points at a file that exists, and that every anchor
(`#fragment`, standalone or after a path) resolves to a heading in the
target file. External links (http/https/mailto) are not fetched.

Usage:
    python3 tools/check_links.py [FILE_OR_DIR ...]

With no arguments, checks the default documentation set: `docs/`,
`README.md`, and `ROADMAP.md` relative to the repo root (the directory
containing this script's parent). Exits 1 with one line per dead link.
"""

import os
import re
import sys

# Inline links [text](target) — excludes images' leading '!' capture-wise
# (an image's target is checked the same way, which is what we want).
LINK_RE = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")
CODESPAN_RE = re.compile(r"`[^`]*`")


def strip_fenced_blocks(lines):
    """Yields (lineno, line) for lines outside fenced code blocks."""
    in_fence = False
    fence = None
    for i, line in enumerate(lines, 1):
        m = FENCE_RE.match(line.strip())
        if m:
            if not in_fence:
                in_fence, fence = True, m.group(1)
            elif line.strip().startswith(fence):
                in_fence, fence = False, None
            continue
        if not in_fence:
            yield i, line


def github_slug(heading, seen):
    """GitHub-style anchor slug, with -N suffixes for duplicates."""
    # Drop inline code/link markup, then non-word chars (keep spaces/hyphens).
    text = CODESPAN_RE.sub(lambda m: m.group(0)[1:-1], heading)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
    slug = slug.replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def anchors_of(path, cache):
    if path in cache:
        return cache[path]
    anchors = set()
    seen = {}
    try:
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError:
        cache[path] = anchors
        return anchors
    for _, line in strip_fenced_blocks(lines):
        m = HEADING_RE.match(line)
        if m:
            anchors.add(github_slug(m.group(2), seen))
        # Explicit HTML anchors also count.
        for am in re.finditer(r"<a\s+(?:name|id)=\"([^\"]+)\"", line):
            anchors.add(am.group(1))
    cache[path] = anchors
    return anchors


def check_file(path, anchor_cache):
    errors = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    base = os.path.dirname(os.path.abspath(path))
    for lineno, line in strip_fenced_blocks(lines):
        # Links inside inline code spans are examples, not references.
        scrubbed = CODESPAN_RE.sub("", line)
        for m in LINK_RE.finditer(scrubbed):
            target = m.group(1)
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, chrome:, ...
            ref, _, frag = target.partition("#")
            if ref:
                dest = os.path.normpath(os.path.join(base, ref))
                if not os.path.exists(dest):
                    errors.append(f"{path}:{lineno}: dead link: {target}")
                    continue
            else:
                dest = os.path.abspath(path)
            if frag and dest.endswith(".md"):
                if frag not in anchors_of(dest, anchor_cache):
                    errors.append(f"{path}:{lineno}: dangling anchor: {target}")
    return errors


def collect(arg):
    if os.path.isdir(arg):
        out = []
        for root, _, names in os.walk(arg):
            out.extend(os.path.join(root, n) for n in names if n.endswith(".md"))
        return sorted(out)
    return [arg]


def main(argv):
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    targets = argv[1:] or [
        os.path.join(repo_root, "docs"),
        os.path.join(repo_root, "README.md"),
        os.path.join(repo_root, "ROADMAP.md"),
    ]
    files = [f for t in targets for f in collect(t)]
    if not files:
        print("check_links: no markdown files found", file=sys.stderr)
        return 1
    anchor_cache = {}
    errors = []
    for f in files:
        errors.extend(check_file(f, anchor_cache))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_links: {len(files)} file(s), {len(errors)} problem(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
