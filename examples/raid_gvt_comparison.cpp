// RAID with host-resident vs NIC-resident GVT, side by side at one
// aggressive GVT period — a miniature of the paper's Figure 4 experiment.
//
//   $ ./raid_gvt_comparison [gvt_period]
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;

  const std::int64_t period = argc > 1 ? std::atoll(argv[1]) : 1;

  harness::ExperimentConfig base;
  base.model = harness::ModelKind::kRaid;
  base.raid.sources = 10;
  base.raid.forks = 8;
  base.raid.disks = 8;
  base.raid.total_requests = 8000;
  base.nodes = 8;
  base.gvt_period = period;
  base.seed = 11;

  harness::ExperimentConfig host_cfg = base;
  host_cfg.gvt_mode = warped::GvtMode::kHostMattern;
  harness::ExperimentConfig nic_cfg = base;
  nic_cfg.gvt_mode = warped::GvtMode::kNic;

  std::printf("RAID, 8 LPs, GVT period %lld events — WARPED vs NIC-GVT\n",
              static_cast<long long>(period));
  const auto results = harness::run_parallel({host_cfg, nic_cfg});
  const harness::ExperimentResult& host = results[0];
  const harness::ExperimentResult& nic = results[1];

  harness::Table t("RAID GVT comparison (period " + std::to_string(period) + ")");
  t.set_header({"variant", "sim time (s)", "committed", "rollbacks", "wire pkts",
                "GVT rounds", "signature"});
  auto row = [&t](const char* name, const harness::ExperimentResult& r) {
    t.add_row({name, harness::Table::num(r.sim_seconds, 4),
               harness::Table::num(r.committed_events), harness::Table::num(r.rollbacks),
               harness::Table::num(r.wire_packets), harness::Table::num(r.gvt_rounds),
               harness::Table::num(r.signature)});
  };
  row("WARPED (host Mattern)", host);
  row("NIC-GVT", nic);
  t.print();

  if (host.signature != nic.signature) {
    std::printf("ERROR: signatures differ — the optimization changed results!\n");
    return 1;
  }
  std::printf("signatures match: NIC offload preserved the simulation's results.\n");
  std::printf("speedup at this period: %.2f%%\n",
              100.0 * (host.sim_seconds - nic.sim_seconds) / host.sim_seconds);
  return (host.completed && nic.completed) ? 0 : 1;
}
