// sweep_cli — run any experiment from the command line.
//
// Every knob of an ExperimentConfig (and every cost-model parameter via the
// "cm." prefix) is settable as key=value arguments, so ad-hoc exploration
// needs no recompilation:
//
//   $ ./sweep_cli model=police stations=900 gvt=nic period=100 cancel=1
//   $ ./sweep_cli model=raid requests=20000 gvt=mattern period=1 seed=7
//   $ ./sweep_cli model=phold objects=64 horizon=5000 cm.nic_per_packet_us=4
//
// GNU-style flags are accepted too (`--key value` and `--key=value` both
// become key=value, with '-' mapped to '_'), mainly for the observability
// outputs:
//
//   $ ./sweep_cli model=raid --trace-out trace.json --metrics-out m.jsonl
//
// `--trace-out FILE` writes a Chrome trace_event file (enables trace=all
// unless an explicit trace= list is given); `--trace-jsonl FILE` writes the
// raw records as JSONL; `--metrics-out FILE` samples all counters every GVT
// adoption and writes one JSON object per sample. `trace=msg,gvt` and
// `metrics_every=N` tune both without recompiling.
//
// `--profile-out FILE` (or `profile=1`) attaches the cascade/critical-path
// profiler and writes its JSON report; `--print-trace-schema` dumps the
// trace-schema manifest (the source of tools/trace_schema.json) and exits.
//
// `--heatmap-out FILE` (or `heatmap=1`) records the per-entity hotspot
// heatmap (deterministic JSON); `phase=1` turns on the wall-clock phase
// profiler (noisy, printed only next to wall time); `--watchdog-seconds S`
// arms the GVT-progress watchdog with `--watchdog-out FILE` as its snapshot;
// `--fault-token-drop-rate R` drops GVT tokens (1.0 = the stall recipe).
//
// Prints the full metric set plus the canonical one-line summary.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/trace.hpp"
#include "harness/experiment.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;

  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--print-trace-schema") {
      export_trace_schema(std::cout);
      return 0;
    }
  }

  // Normalize argv: "--trace-out x" / "--trace-out=x" -> "trace_out=x".
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) {
    std::string w = argv[i];
    if (w.rfind("--", 0) == 0) {
      w = w.substr(2);
      for (char& c : w) {
        if (c == '-') c = '_';
      }
      if (w.find('=') == std::string::npos && i + 1 < argc) {
        w += '=';
        w += argv[++i];
      }
    }
    words.push_back(std::move(w));
  }
  std::string joined;
  for (const std::string& w : words) {
    joined += w;
    joined += ' ';
  }
  const ParamSet p = ParamSet::parse(joined);

  harness::ExperimentConfig cfg;
  const std::string model = p.get_str("model", "phold");
  if (model == "raid") {
    cfg.model = harness::ModelKind::kRaid;
  } else if (model == "police") {
    cfg.model = harness::ModelKind::kPolice;
    cfg.cost.host_event_exec_us = 8.0;
  } else if (model == "phold") {
    cfg.model = harness::ModelKind::kPhold;
  } else {
    std::fprintf(stderr, "unknown model '%s' (raid|police|phold)\n", model.c_str());
    return 2;
  }

  cfg.raid.total_requests = p.get_i64("requests", cfg.raid.total_requests);
  cfg.raid.sources = p.get_i64("sources", cfg.raid.sources);
  cfg.police.stations = p.get_i64("stations", cfg.police.stations);
  cfg.police.hops_per_call = p.get_i64("hops", cfg.police.hops_per_call);
  cfg.phold.objects = p.get_i64("objects", cfg.phold.objects);
  cfg.phold.horizon = p.get_i64("horizon", cfg.phold.horizon);

  cfg.nodes = static_cast<std::uint32_t>(p.get_i64("nodes", cfg.nodes));
  // shards=N partitions the testbed across N worker threads (conservative
  // windows, docs/SHARDING.md); pin=1 pins shard s to CPU s (Linux only).
  cfg.shards = static_cast<std::uint32_t>(p.get_i64("shards", cfg.shards));
  cfg.pin_threads = p.get_bool("pin", cfg.pin_threads);
  cfg.gvt_period = p.get_i64("period", cfg.gvt_period);
  const std::string gvt = p.get_str("gvt", "nic");
  if (gvt == "mattern") {
    cfg.gvt_mode = warped::GvtMode::kHostMattern;
  } else if (gvt == "nic") {
    cfg.gvt_mode = warped::GvtMode::kNic;
  } else if (gvt == "pgvt") {
    cfg.gvt_mode = warped::GvtMode::kPGvt;
  } else {
    std::fprintf(stderr, "unknown gvt '%s' (mattern|nic|pgvt)\n", gvt.c_str());
    return 2;
  }
  cfg.early_cancel = p.get_bool("cancel", cfg.early_cancel);
  cfg.piggyback = p.get_bool("piggyback", cfg.piggyback);
  cfg.credit_repair = p.get_bool("credit_repair", cfg.credit_repair);
  cfg.rollback_scope = p.get_str("scope", "lp") == "lp" ? warped::RollbackScope::kLp
                                                        : warped::RollbackScope::kObject;
  cfg.cancellation = p.get_str("cancellation", "aggressive") == "lazy"
                         ? warped::CancellationMode::kLazy
                         : warped::CancellationMode::kAggressive;
  // state_period=N fixes the snapshot cadence; state_period=0 selects the
  // adaptive interval. state_mode=incremental turns on undo-log saving.
  cfg.state_save_period = p.get_i64("state_period", cfg.state_save_period);
  const std::string state_mode = p.get_str("state_mode", "copy");
  if (state_mode == "incremental") {
    cfg.state_mode = warped::StateSaveMode::kIncremental;
  } else if (state_mode == "copy") {
    cfg.state_mode = warped::StateSaveMode::kCopy;
  } else {
    std::fprintf(stderr, "unknown state_mode '%s' (copy|incremental)\n",
                 state_mode.c_str());
    return 2;
  }
  cfg.seed = static_cast<std::uint64_t>(p.get_i64("seed", 42));
  cfg.max_sim_seconds = p.get_f64("cap", cfg.max_sim_seconds);

  // Fault injection (--fault-drop-rate 0.01 --fault-seed 3 ...). Any nonzero
  // rate arms the fabric chaos layer; the harness then force-enables the NIC
  // reliability sublayer, since Time-Warp deadlocks on a lossy fabric.
  cfg.fault.drop_rate = p.get_f64("fault_drop_rate", 0.0);
  cfg.fault.dup_rate = p.get_f64("fault_dup_rate", 0.0);
  cfg.fault.corrupt_rate = p.get_f64("fault_corrupt_rate", 0.0);
  cfg.fault.delay_rate = p.get_f64("fault_delay_rate", 0.0);
  cfg.fault.delay_max_us = p.get_f64("fault_delay_max_us", cfg.fault.delay_max_us);
  cfg.fault.token_drop_rate = p.get_f64("fault_token_drop_rate", 0.0);
  cfg.fault.seed = static_cast<std::uint64_t>(p.get_i64("fault_seed", 1));
  // cm.* overrides apply on top of the model's granularity default.
  cfg.cost = hw::CostModel::from_params(p);
  if (model == "police" && !p.contains("cm.host_event_exec_us")) {
    cfg.cost.host_event_exec_us = 8.0;  // POLICE is fine-grained
  }

  // Observability: any output path switches the corresponding layer on.
  cfg.trace.chrome_out = p.get_str("trace_out", "");
  cfg.trace.jsonl_out = p.get_str("trace_jsonl", "");
  cfg.trace.categories = p.get_str("trace", "");
  if (cfg.trace.categories.empty() &&
      (!cfg.trace.chrome_out.empty() || !cfg.trace.jsonl_out.empty())) {
    cfg.trace.categories = "all";
  }
  cfg.trace.capacity =
      static_cast<std::size_t>(p.get_i64("trace_capacity", 1 << 16));
  cfg.metrics.out_path = p.get_str("metrics_out", "");
  cfg.metrics.sample_every_gvt_rounds =
      p.get_i64("metrics_every", cfg.metrics.out_path.empty() ? 0 : 1);
  cfg.metrics.sample_virtual_dt = p.get_i64("metrics_vdt", 0);
  cfg.profile.json_out = p.get_str("profile_out", "");
  cfg.profile.enabled = p.get_bool("profile", false);
  cfg.latency.json_out = p.get_str("latency_out", "");
  cfg.latency.enabled = p.get_bool("latency", false);
  cfg.heatmap.json_out = p.get_str("heatmap_out", "");
  cfg.heatmap.enabled = p.get_bool("heatmap", false);
  cfg.phase.enabled = p.get_bool("phase", false);
  cfg.watchdog.stall_wall_seconds = p.get_f64("watchdog_seconds", 0.0);
  cfg.watchdog.snapshot_out = p.get_str("watchdog_out", "");

  std::printf("config: %s\n", joined.c_str());
  harness::ExperimentResult r;
  try {
    r = harness::run_experiment(cfg);
  } catch (const std::exception& e) {
    r.error = e.what();
  } catch (...) {
    r.error = "unknown exception";
  }
  if (r.failed()) {
    // Same contract as the sweep tables: a failed run reports its reason
    // instead of zero-valued metrics that look like a (very wrong) result.
    std::printf("%s\n", r.to_string().c_str());
    std::printf("  error          : %s\n", r.error.c_str());
    return 1;
  }
  std::printf("%s\n", r.to_string().c_str());
  std::printf("  sim time       : %.6f s%s\n", r.sim_seconds,
              r.completed ? "" : "  (HIT CAP — incomplete)");
  std::printf("  committed      : %lld (processed %lld, rolled back %lld in %lld rollbacks)\n",
              (long long)r.committed_events, (long long)r.events_processed,
              (long long)r.events_rolled_back, (long long)r.rollbacks);
  std::printf("  messages       : %lld events + %lld antis generated; %lld wire packets\n",
              (long long)r.event_msgs_generated, (long long)r.antis_generated,
              (long long)r.wire_packets);
  std::printf("  cancellation   : %lld dropped in place, %lld antis filtered, %lld lazy-matched\n",
              (long long)r.dropped_by_nic, (long long)r.filtered_antis,
              (long long)r.lazy_matched);
  std::printf("  GVT            : %lld estimations, %lld ring rounds\n",
              (long long)r.gvt_estimations, (long long)r.gvt_rounds);
  if (cfg.fault.enabled()) {
    std::printf("  faults injected: %lld dropped, %lld duplicated, %lld corrupted, %lld delayed\n",
                (long long)r.fault_drops, (long long)r.fault_dups,
                (long long)r.fault_corrupts, (long long)r.fault_delays);
    std::printf("  recovery       : %lld retransmits (%lld timeouts, %lld evicted), %lld NAKs\n",
                (long long)r.retransmits, (long long)r.retx_timeouts,
                (long long)r.retx_evicted, (long long)r.naks_sent);
    std::printf("  rx filter      : %lld bad-CRC, %lld duplicate, %lld gap discards\n",
                (long long)r.rel_crc_discards, (long long)r.rel_dup_discards,
                (long long)r.rel_gap_discards);
    std::printf("  GVT recovery   : %lld token regens, %lld stale tokens, %lld credit resyncs\n",
                (long long)r.gvt_token_regens, (long long)r.gvt_tokens_stale,
                (long long)r.credit_resyncs);
  }
  std::printf("  state saving   : %lld snapshots (%lld bytes), %lld undo bytes, %lld undo rewinds\n",
              (long long)r.state_saves, (long long)r.state_save_bytes,
              (long long)r.undo_bytes_logged, (long long)r.undo_rewinds);
  std::printf("  signature      : %lld\n", (long long)r.signature);
  if (cfg.shards > 1) {
    // Only printed when sharded, so shards=1 stdout stays byte-identical to
    // pre-sharding builds (the CI determinism checks diff it verbatim).
    std::printf("  sharding       : %u shards, %lld LBTS rounds\n", cfg.shards,
                (long long)r.shard_rounds);
  }
  if (!cfg.trace.categories.empty()) {
    std::printf("  trace          : %llu records (%llu overwritten)",
                (unsigned long long)r.trace_records,
                (unsigned long long)r.trace_overwritten);
    if (!cfg.trace.chrome_out.empty())
      std::printf(" -> %s", cfg.trace.chrome_out.c_str());
    if (!cfg.trace.jsonl_out.empty())
      std::printf(" -> %s", cfg.trace.jsonl_out.c_str());
    std::printf("\n");
  }
  if (cfg.metrics.enabled()) {
    std::printf("  metrics        : %zu samples", r.series.size());
    if (!cfg.metrics.out_path.empty())
      std::printf(" -> %s", cfg.metrics.out_path.c_str());
    std::printf("\n");
  }
  if (r.profile != nullptr) {
    std::printf("  profile        : %s", r.profile->summary().c_str());
    if (!cfg.profile.json_out.empty())
      std::printf(" -> %s", cfg.profile.json_out.c_str());
    std::printf("\n");
  }
  if (cfg.heatmap.on()) {
    std::printf("  heatmap        : %u nodes", cfg.nodes);
    if (!cfg.heatmap.json_out.empty())
      std::printf(" -> %s", cfg.heatmap.json_out.c_str());
    std::printf("\n");
  }
  if (r.phase_enabled) {
    std::printf("  phases (noisy) :");
    for (std::size_t i = 0; i < nicwarp::kPhaseCount; ++i) {
      std::printf(" %s=%.3fs", phase_name(static_cast<Phase>(i)),
                  r.phase_seconds[i]);
    }
    std::printf("\n");
  }
  if (cfg.latency.on()) {
    std::printf("  msg latency    : n=%lld p50=%.2f p99=%.2f p99.9=%.2f us",
                (long long)r.latency.delivery_us.count, r.latency.delivery_us.p50,
                r.latency.delivery_us.p99, r.latency.delivery_us.p999);
    if (!cfg.latency.json_out.empty())
      std::printf(" -> %s", cfg.latency.json_out.c_str());
    std::printf("\n");
    std::printf("  commit latency : n=%lld p50=%.2f p99=%.2f p99.9=%.2f us\n",
                (long long)r.latency.commit_us.count, r.latency.commit_us.p50,
                r.latency.commit_us.p99, r.latency.commit_us.p999);
  }
  return r.completed ? 0 : 1;
}
