// Writing your own NIC firmware.
//
// The paper's point (i) is that the NIC becomes a place to put
// *application-specific* logic. This example implements a small custom
// firmware — a per-destination traffic profiler with a cheap high-water-mark
// alarm — installs it on every NIC of a cluster running PHOLD, and reads the
// profile back out. It exercises the same Firmware interface the GVT and
// cancellation firmwares use, beneath an unmodified Time-Warp stack.
//
//   $ ./custom_firmware_tour
#include <cstdio>
#include <map>

#include "harness/experiment.hpp"
#include "warped/gvt_mattern.hpp"

namespace {

using namespace nicwarp;

// Counts event packets per destination at the wire and tracks the send-ring
// high-water mark — the kind of "communication monitoring and profiling at a
// low level not available to applications" the paper lists as use (iv).
class ProfilerFirmware final : public hw::Firmware {
 public:
  HookResult on_host_tx(hw::Packet&) override {
    return {Action::kForward, ctx_->cost().us(ctx_->cost().nic_per_packet_us)};
  }
  SimTime on_wire_tx(hw::Packet& pkt) override {
    if (pkt.hdr.kind == hw::PacketKind::kEvent) {
      ctx_->stats().counter("profile.to_node" + std::to_string(pkt.hdr.dst)).add(1);
    }
    const std::size_t depth = ctx_->send_ring_size();
    if (depth > high_water_) {
      high_water_ = depth;
      ctx_->stats().counter("profile.ring_high_water_node" +
                            std::to_string(ctx_->node_id()))
          .add(static_cast<std::int64_t>(depth) -
               ctx_->stats().value("profile.ring_high_water_node" +
                                   std::to_string(ctx_->node_id())));
    }
    return ctx_->cost().us(0.2);  // two counter updates on the NIC CPU
  }
  HookResult on_net_rx(hw::Packet&) override {
    return {Action::kForward, ctx_->cost().us(ctx_->cost().nic_per_packet_us)};
  }

 private:
  std::size_t high_water_{0};
};

}  // namespace

int main() {
  // Assemble a testbed by hand (instead of run_experiment) so we can install
  // the custom firmware.
  hw::CostModel cost;
  const std::uint32_t nodes = 4;
  hw::Cluster cluster(cost, nodes,
                      [](NodeId) { return std::make_unique<ProfilerFirmware>(); },
                      /*seed=*/99);

  models::PholdParams pp;
  pp.objects = 48;
  pp.horizon = 2000;
  models::BuiltModel model = models::build_phold(pp, nodes);

  std::vector<std::unique_ptr<comm::HostComm>> comms;
  std::vector<std::unique_ptr<warped::Kernel>> kernels;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    comms.push_back(std::make_unique<comm::HostComm>(cluster.node(n)));
  }
  for (std::uint32_t n = 0; n < nodes; ++n) {
    warped::MatternOptions mo;
    mo.period = 200;
    auto kernel = std::make_unique<warped::Kernel>(
        cluster.node(n), *comms[n], model.partition,
        std::make_unique<warped::MatternGvtManager>(mo), warped::KernelOptions{}, 99);
    for (auto& obj : model.per_node[n]) kernel->add_object(std::move(obj));
    kernels.push_back(std::move(kernel));
  }
  for (auto& k : kernels) k->start();

  sim::Engine& eng = cluster.engine();
  while (eng.pending() > 0) {
    bool all = true;
    for (const auto& k : kernels) all &= k->stopped();
    if (all) break;
    eng.run_until(eng.now() + SimTime::from_us(50000));
  }

  std::printf("PHOLD finished at simulated t=%.4f s; firmware profile:\n",
              eng.now().seconds());
  for (const auto& [name, v] : cluster.stats().all_counters()) {
    if (name.rfind("profile.", 0) == 0) {
      std::printf("  %-32s %lld\n", name.c_str(), static_cast<long long>(v));
    }
  }
  return 0;
}
