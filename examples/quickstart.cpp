// Quickstart: run a small PHOLD workload on a simulated 4-node cluster with
// the NIC-resident GVT firmware, and print the headline metrics.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: fill an
// ExperimentConfig, call run_experiment(), read the result.
#include <cstdio>

#include "harness/experiment.hpp"

int main() {
  using namespace nicwarp;

  harness::ExperimentConfig cfg;
  cfg.model = harness::ModelKind::kPhold;
  cfg.phold.objects = 64;
  cfg.phold.population = 2;
  cfg.phold.horizon = 3000;
  cfg.nodes = 4;
  cfg.gvt_mode = warped::GvtMode::kNic;  // Mattern's algorithm, on the NIC
  cfg.gvt_period = 100;
  cfg.seed = 7;

  std::printf("running PHOLD (%lld objects, horizon %lld) on %u simulated nodes...\n",
              static_cast<long long>(cfg.phold.objects),
              static_cast<long long>(cfg.phold.horizon), cfg.nodes);

  const harness::ExperimentResult r = harness::run_experiment(cfg);

  std::printf("completed           : %s\n", r.completed ? "yes" : "NO (hit cap)");
  std::printf("simulated time      : %.4f s\n", r.sim_seconds);
  std::printf("committed events    : %lld\n", static_cast<long long>(r.committed_events));
  std::printf("events processed    : %lld (%lld rolled back in %lld rollbacks)\n",
              static_cast<long long>(r.events_processed),
              static_cast<long long>(r.events_rolled_back),
              static_cast<long long>(r.rollbacks));
  std::printf("wire packets        : %lld\n", static_cast<long long>(r.wire_packets));
  std::printf("GVT estimations     : %lld (%lld ring circulations)\n",
              static_cast<long long>(r.gvt_estimations),
              static_cast<long long>(r.gvt_rounds));
  std::printf("result signature    : %lld\n", static_cast<long long>(r.signature));
  return r.completed ? 0 : 1;
}
