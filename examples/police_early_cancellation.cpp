// POLICE with and without NIC early message cancellation — a miniature of
// the paper's Figure 7 experiment, showing messages dying in the NIC send
// ring before they waste wire, bus, and host resources.
//
//   $ ./police_early_cancellation [stations]
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace nicwarp;

  const std::int64_t stations = argc > 1 ? std::atoll(argv[1]) : 900;

  harness::ExperimentConfig base;
  base.model = harness::ModelKind::kPolice;
  base.police.stations = stations;
  base.nodes = 8;
  base.gvt_mode = warped::GvtMode::kNic;
  base.gvt_period = 200;
  base.seed = 23;
  base.cost.host_event_exec_us = 8.0;  // POLICE is fine-grained (paper §2)
  // Operate at the testbed's congestion point, where the paper's system
  // demonstrably lived (see EXPERIMENTS.md): the LANai-class NIC is the
  // saturated bottleneck, so doomed messages pile up in its send ring.
  base.cost.nic_per_packet_us = 11.25;

  harness::ExperimentConfig off = base;
  off.early_cancel = false;
  harness::ExperimentConfig on = base;
  on.early_cancel = true;

  std::printf("POLICE, %lld stations on 8 LPs — early cancellation off vs on\n",
              static_cast<long long>(stations));
  const auto results = harness::run_parallel({off, on});
  const harness::ExperimentResult& a = results[0];
  const harness::ExperimentResult& b = results[1];

  harness::Table t("POLICE early cancellation (" + std::to_string(stations) + " stations)");
  t.set_header({"variant", "sim time (s)", "committed", "rollbacks", "msgs generated",
                "wire pkts", "NIC drops", "antis filtered", "antis suppressed"});
  auto row = [&t](const char* name, const harness::ExperimentResult& r) {
    t.add_row({name, harness::Table::num(r.sim_seconds, 4),
               harness::Table::num(r.committed_events), harness::Table::num(r.rollbacks),
               harness::Table::num(r.event_msgs_generated + r.antis_generated),
               harness::Table::num(r.wire_packets), harness::Table::num(r.dropped_by_nic),
               harness::Table::num(r.filtered_antis),
               harness::Table::num(r.antis_suppressed)});
  };
  row("no cancellation", a);
  row("NIC early cancel", b);
  t.print();

  if (a.signature != b.signature) {
    std::printf("ERROR: signatures differ — cancellation corrupted the simulation!\n");
    return 1;
  }
  std::printf("signatures match; improvement: %.2f%%\n",
              100.0 * (a.sim_seconds - b.sim_seconds) / a.sim_seconds);
  return (a.completed && b.completed) ? 0 : 1;
}
