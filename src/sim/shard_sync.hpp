// Barrier-free lower-bound-time-stamp (LBTS) exchange between shard threads.
//
// When the testbed is partitioned across `shards=N` worker threads (see
// docs/SHARDING.md), each shard runs its own sim::Engine and advances in
// conservative windows: in round r a shard may execute every event strictly
// below `min over shards of next_time() + lookahead`, because any cross-shard
// packet sent while executing events at time >= floor arrives at
// `send time + lookahead >= floor + lookahead` — outside the window.
//
// The exchange is a two-phase round protocol over one cache-line-padded cell
// of atomics per shard; no mutex, no condition variable, no central barrier
// object. Per shard s, round r (rounds start at 1):
//
//   Phase A:  wait until fence[p] >= r-1 for every peer p (all round-(r-1)
//             mailbox traffic is then visible), drain inbound entries with
//             stamp <= r-1, publish (h = next_time, done, best_gvt) tagged
//             h_round = r.
//   Phase B:  wait until h_round[p] >= r for every shard p, compute
//             floor = min h and all_done = AND done — every shard reads the
//             SAME round-r values, so termination and window bounds are
//             decided identically everywhere — run the window, then publish
//             fence = r.
//
// Why a reader in round r can never see a round-(r+1) value: shard p only
// overwrites its h after seeing fence[q] >= r from every q (Phase A of round
// r+1), and q publishes fence = r only after its round-r decide() read. The
// release store on h_round / fence pairs with the acquire load in the waits,
// which also makes all SPSC-ring pushes from the sender's round visible
// before the consumer drains them.
//
// Waits spin and call the caller's idle hook (which stages inbound mailbox
// traffic — the deadlock-freedom half of the design, see shard_mailbox.hpp)
// plus std::this_thread::yield(), so a run degrades gracefully when shards
// outnumber cores. abort() (watchdog / exception paths) unblocks every wait.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>

#include "core/assert.hpp"

namespace nicwarp::sim {

class ShardSync {
 public:
  // `h` values are engine next_time() in nanoseconds; an empty engine
  // publishes kInfNs.
  static constexpr std::int64_t kInfNs = std::numeric_limits<std::int64_t>::max();

  explicit ShardSync(std::uint32_t shards)
      : n_(shards), cells_(std::make_unique<Cell[]>(shards)) {
    NW_CHECK(shards >= 1);
  }

  struct Decision {
    std::int64_t floor_ns;  // min next_time across shards (kInfNs: all empty)
    bool all_done;          // every shard's kernels have stopped
  };

  // Phase A wait: every peer has finished round `r` (fence >= r). `idle` is
  // polled while spinning; returns false if the exchange was aborted.
  template <typename IdleFn>
  bool await_fences(std::uint32_t self, std::uint64_t r, IdleFn&& idle) {
    for (std::uint32_t p = 0; p < n_; ++p) {
      if (p == self) continue;
      while (cells_[p].fence.load(std::memory_order_acquire) < r) {
        if (aborted()) return false;
        idle();
        std::this_thread::yield();
      }
    }
    return true;
  }

  // Publishes this shard's round-`round` snapshot. The release store on
  // h_round is what readers synchronize on.
  void publish(std::uint32_t self, std::uint64_t round, std::int64_t h_ns,
               bool done, std::int64_t best_gvt) {
    Cell& c = cells_[self];
    c.h.store(h_ns, std::memory_order_relaxed);
    c.done.store(done ? 1 : 0, std::memory_order_relaxed);
    c.best_gvt.store(best_gvt, std::memory_order_relaxed);
    c.h_round.store(round, std::memory_order_release);
  }

  // Phase B wait: every shard (self included, trivially) has published its
  // round-`r` snapshot. Returns false if aborted.
  template <typename IdleFn>
  bool await_rounds(std::uint64_t r, IdleFn&& idle) {
    for (std::uint32_t p = 0; p < n_; ++p) {
      while (cells_[p].h_round.load(std::memory_order_acquire) < r) {
        if (aborted()) return false;
        idle();
        std::this_thread::yield();
      }
    }
    return true;
  }

  // Only valid between a successful await_rounds(r) and set_fence(r): every
  // cell then holds exactly its round-r snapshot (see the overwrite argument
  // in the header comment), so all shards decide identically.
  Decision decide() const {
    Decision d{kInfNs, true};
    for (std::uint32_t p = 0; p < n_; ++p) {
      const std::int64_t h = cells_[p].h.load(std::memory_order_relaxed);
      if (h < d.floor_ns) d.floor_ns = h;
      if (cells_[p].done.load(std::memory_order_relaxed) == 0) d.all_done = false;
    }
    return d;
  }

  // End of round `r`: this shard's window ran; its round-r mailbox pushes are
  // visible to anyone who observes the fence.
  void set_fence(std::uint32_t self, std::uint64_t r) {
    cells_[self].fence.store(r, std::memory_order_release);
  }

  std::uint64_t fence(std::uint32_t shard) const {
    return cells_[shard].fence.load(std::memory_order_acquire);
  }

  // Best GVT any shard has published — the watchdog's liveness signal (the
  // LBTS floor always advances even when GVT is wedged, because the kernels'
  // idle-poll timers keep every engine non-empty).
  std::int64_t global_best_gvt() const {
    std::int64_t g = std::numeric_limits<std::int64_t>::min();
    for (std::uint32_t p = 0; p < n_; ++p) {
      const std::int64_t v = cells_[p].best_gvt.load(std::memory_order_relaxed);
      if (v > g) g = v;
    }
    return g;
  }

  void abort() { abort_.store(true, std::memory_order_relaxed); }
  bool aborted() const { return abort_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> fence{0};
    std::atomic<std::uint64_t> h_round{0};
    std::atomic<std::int64_t> h{0};
    std::atomic<std::uint8_t> done{0};
    std::atomic<std::int64_t> best_gvt{std::numeric_limits<std::int64_t>::min()};
  };

  std::uint32_t n_;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<bool> abort_{false};
};

}  // namespace nicwarp::sim
