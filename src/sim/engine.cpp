#include "sim/engine.hpp"

#include "core/assert.hpp"

namespace nicwarp::sim {

TaskHandle Engine::schedule(SimTime delay, Callback fn) {
  NW_CHECK_MSG(delay.ns >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

TaskHandle Engine::schedule_at(SimTime when, Callback fn) {
  NW_CHECK_MSG(when >= now_, "scheduling into the past");
  NW_CHECK(fn != nullptr);
  const std::uint64_t id = next_seq_++;
  heap_.push(HeapEntry{when, id});
  tasks_.emplace(id, std::move(fn));
  return TaskHandle{id};
}

bool Engine::cancel(TaskHandle h) {
  return tasks_.erase(h.id) > 0;  // heap entry becomes a lazy tombstone
}

std::uint64_t Engine::run() { return run_until(SimTime::max()); }

std::uint64_t Engine::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    const HeapEntry top = heap_.top();
    auto it = tasks_.find(top.seq);
    if (it == tasks_.end()) {  // cancelled
      heap_.pop();
      continue;
    }
    if (top.when > deadline) break;
    heap_.pop();
    Callback fn = std::move(it->second);
    tasks_.erase(it);
    now_ = top.when;
    fn();
    ++ran;
    ++executed_;
  }
  return ran;
}

}  // namespace nicwarp::sim
