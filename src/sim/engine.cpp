#include "sim/engine.hpp"

#include "core/assert.hpp"

namespace nicwarp::sim {

TaskHandle Engine::schedule(SimTime delay, Callback fn) {
  NW_CHECK_MSG(delay.ns >= 0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint32_t Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t idx = free_slots_.back();
    free_slots_.pop_back();
    return idx;
  }
  NW_CHECK_MSG(slots_.size() < static_cast<std::size_t>(UINT32_MAX), "slot pool overflow");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.seq = 0;  // invalidates every outstanding handle to this slot
  s.fn.reset();
  free_slots_.push_back(idx);
}

TaskHandle Engine::schedule_at(SimTime when, Callback fn) {
  NW_CHECK_MSG(when >= now_, "scheduling into the past");
  NW_CHECK(static_cast<bool>(fn));
  const std::uint64_t id = next_seq_++;
  // Handle validity relies on sequence numbers being unique forever; at one
  // task per simulated nanosecond this would take ~585 years to trip, but a
  // wrap must never silently resurrect a stale handle.
  NW_CHECK_MSG(next_seq_ != 0, "sequence counter wrapped — handles would be reused");
  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.seq = id;
  s.fn = std::move(fn);
  s.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapNode{when, id, slot});
  sift_up(heap_.size() - 1);
  return TaskHandle{id, slot};
}

void Engine::sift_up(std::size_t i) {
  HeapNode node = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!node_before(node, heap_[parent])) break;
    heap_[i] = heap_[parent];
    slots_[heap_[i].slot].heap_pos = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = node;
  slots_[node.slot].heap_pos = static_cast<std::uint32_t>(i);
}

void Engine::sift_down(std::size_t i) {
  HeapNode node = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && node_before(heap_[child + 1], heap_[child])) ++child;
    if (!node_before(heap_[child], node)) break;
    heap_[i] = heap_[child];
    slots_[heap_[i].slot].heap_pos = static_cast<std::uint32_t>(i);
    i = child;
  }
  heap_[i] = node;
  slots_[node.slot].heap_pos = static_cast<std::uint32_t>(i);
}

void Engine::heap_erase(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
  heap_.pop_back();
  if (pos > 0 && node_before(heap_[pos], heap_[(pos - 1) / 2])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

bool Engine::cancel(TaskHandle h) {
  if (h.id == 0 || h.slot >= slots_.size()) return false;
  Slot& s = slots_[h.slot];
  if (s.seq != h.id) return false;  // already ran, cancelled, or slot recycled
  heap_erase(s.heap_pos);
  release_slot(h.slot);
  return true;
}

std::uint64_t Engine::run() { return run_until(SimTime::max()); }

std::uint64_t Engine::run_until(SimTime deadline) {
  std::uint64_t ran = 0;
  while (!heap_.empty()) {
    if (stop_requested_) break;
    const HeapNode top = heap_[0];
    if (top.when > deadline) break;
    Callback fn = std::move(slots_[top.slot].fn);
    heap_erase(0);
    // Free the slot before invoking: a handle to the running task must
    // already fail to cancel, exactly as if the task had completed.
    release_slot(top.slot);
    now_ = top.when;
    fn();
    ++ran;
    ++executed_;
  }
  // Any latched stop() — from inside a callback or between runs — has now
  // been observed by this run; consume it so the next run proceeds.
  stop_requested_ = false;
  return ran;
}

}  // namespace nicwarp::sim
