// FIFO work server: the shared model for every serially-occupied hardware
// resource in the cluster — a host CPU, a NIC processor, an I/O bus, a
// network link. Jobs occupy the resource for their cost and complete in
// submission order; contention and queueing delay emerge from the engine
// clock rather than being modelled analytically.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "core/small_fn.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "sim/engine.hpp"

namespace nicwarp::sim {

class Server {
 public:
  // Jobs are SmallFn so enqueueing a lambda that captures a few words (the
  // overwhelmingly common case) never heap-allocates.
  using WorkFn = SmallFn<SimTime(), 64>;
  using CompletionFn = SmallFn<void(), 64>;

  // `name` keys the utilization counters in `stats` (may be null for tests).
  Server(Engine& engine, std::string name, StatsRegistry* stats = nullptr);

  // Enqueues a job that holds the server for `cost`, then runs on_complete.
  void submit(SimTime cost, CompletionFn on_complete);

  // Enqueues a job whose cost is only known once it starts executing (e.g. a
  // firmware hook whose work depends on queue state at service time): `work`
  // runs when the server picks the job up and returns the time to occupy it;
  // `on_complete` runs when that time has elapsed.
  void submit_dynamic(WorkFn work, CompletionFn on_complete);

  bool idle() const { return !busy_; }
  std::size_t queue_length() const { return queue_.size(); }

  // Total time the server has been occupied (updated at job completion).
  SimTime busy_time() const { return busy_time_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }

  const std::string& name() const { return name_; }

 private:
  void start_next();

  Engine& engine_;
  std::string name_;
  StatsRegistry* stats_;

  struct Job {
    WorkFn work;  // returns occupancy; runs at service start
    CompletionFn on_complete;
  };
  std::deque<Job> queue_;
  bool busy_{false};
  SimTime busy_time_{SimTime::zero()};
  std::uint64_t jobs_completed_{0};
};

}  // namespace nicwarp::sim
