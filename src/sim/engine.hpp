// Discrete-event engine for the *hardware* level of the testbed.
//
// This engine simulates the cluster itself — host CPUs, I/O buses, NIC
// processors and the network — in simulated nanoseconds (SimTime). The
// Time-Warp application under study runs "inside" it: TW kernel work items
// are scheduled here with their modelled CPU costs, so the engine clock at
// termination is the paper's "Simulation Time (sec)" metric.
//
// Single-threaded and deterministic: events at equal times fire in schedule
// order (a monotonically increasing sequence number breaks ties).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace nicwarp::sim {

// Opaque handle for cancelling a scheduled callback.
struct TaskHandle {
  std::uint64_t id{0};
  bool valid() const { return id != 0; }
};

class Engine {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  TaskHandle schedule(SimTime delay, Callback fn);

  // Schedules at an absolute time (>= now()).
  TaskHandle schedule_at(SimTime when, Callback fn);

  // Cancels a pending task; returns false if it already ran or was cancelled.
  bool cancel(TaskHandle h);

  // Runs until no events remain. Returns the number of callbacks executed.
  std::uint64_t run();

  // Runs until the clock would pass `deadline` (events at exactly `deadline`
  // still run) or the queue drains. Returns callbacks executed.
  std::uint64_t run_until(SimTime deadline);

  // Requests that run()/run_until() return after the current callback.
  void stop() { stop_requested_ = true; }
  bool stopped() const { return stop_requested_; }

  std::size_t pending() const { return tasks_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    bool operator>(const HeapEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  bool stop_requested_{false};
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> tasks_;  // absent == cancelled
};

}  // namespace nicwarp::sim
