// Discrete-event engine for the *hardware* level of the testbed.
//
// This engine simulates the cluster itself — host CPUs, I/O buses, NIC
// processors and the network — in simulated nanoseconds (SimTime). The
// Time-Warp application under study runs "inside" it: TW kernel work items
// are scheduled here with their modelled CPU costs, so the engine clock at
// termination is the paper's "Simulation Time (sec)" metric.
//
// Single-threaded and deterministic: events at equal times fire in schedule
// order (a monotonically increasing sequence number breaks ties).
//
// Hot-path design (see docs/PERF.md): tasks live in a pooled slot array and
// an explicit slot-indexed binary heap. schedule() never heap-allocates on
// the common path (callbacks are SmallFn with inline storage; slots and heap
// nodes are recycled vector entries), cancel() removes the heap entry
// immediately via the slot's stored heap position (no lazy tombstones), and
// pop-min touches no hash table.
#pragma once

#include <cstdint>
#include <vector>

#include "core/small_fn.hpp"
#include "core/types.hpp"

namespace nicwarp::sim {

// Opaque handle for cancelling a scheduled callback. `id` is the task's
// unique sequence number (never reused — the engine asserts the 64-bit
// counter cannot wrap); `slot` locates the task's pooled storage. A handle
// whose task already ran or was cancelled simply fails to validate against
// the slot's current sequence number, even after the slot is recycled.
struct TaskHandle {
  std::uint64_t id{0};
  std::uint32_t slot{0};
  bool valid() const { return id != 0; }
};

class Engine {
 public:
  // 96 inline bytes cover every scheduling site on the hot path (the largest
  // is Server's completion closure: this + cost + a 72-byte SmallFn).
  using Callback = SmallFn<void(), 96>;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` from now (delay >= 0).
  TaskHandle schedule(SimTime delay, Callback fn);

  // Schedules at an absolute time (>= now()).
  TaskHandle schedule_at(SimTime when, Callback fn);

  // Cancels a pending task; returns false if it already ran or was cancelled.
  bool cancel(TaskHandle h);

  // Runs until no events remain. Returns the number of callbacks executed.
  std::uint64_t run();

  // Runs until the clock would pass `deadline` (events at exactly `deadline`
  // still run) or the queue drains. Returns callbacks executed.
  std::uint64_t run_until(SimTime deadline);

  // Requests that run()/run_until() return after the current callback. The
  // request is latched: a stop() issued while no run is active halts the
  // next run_until() before it executes anything, and is only cleared once
  // a run has observed it.
  void stop() { stop_requested_ = true; }
  bool stopped() const { return stop_requested_; }

  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

  // Earliest pending task's time, or SimTime::max() when the queue is empty.
  // This is the `h` each shard advertises in the LBTS exchange
  // (sim/shard_sync.hpp); it never runs anything and never consumes a
  // latched stop().
  SimTime next_time() const {
    return heap_.empty() ? SimTime::max() : heap_[0].when;
  }

 private:
  struct HeapNode {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    Callback fn;
    std::uint64_t seq{0};  // 0 == free; equals the TaskHandle id while live
    std::uint32_t heap_pos{0};
  };

  static bool node_before(const HeapNode& a, const HeapNode& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  // Removes the heap node at `pos` (swap-with-last + sift), keeping every
  // slot's heap_pos in sync.
  void heap_erase(std::size_t pos);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t idx);

  SimTime now_{SimTime::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  bool stop_requested_{false};
  std::vector<HeapNode> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace nicwarp::sim
