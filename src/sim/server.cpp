#include "sim/server.hpp"

#include "core/assert.hpp"

namespace nicwarp::sim {

Server::Server(Engine& engine, std::string name, StatsRegistry* stats)
    : engine_(engine), name_(std::move(name)), stats_(stats) {}

void Server::submit(SimTime cost, CompletionFn on_complete) {
  NW_CHECK_MSG(cost.ns >= 0, "negative job cost");
  submit_dynamic([cost] { return cost; }, std::move(on_complete));
}

void Server::submit_dynamic(WorkFn work, CompletionFn on_complete) {
  NW_CHECK(static_cast<bool>(work));
  queue_.push_back(Job{std::move(work), std::move(on_complete)});
  if (!busy_) start_next();
}

void Server::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Job job = std::move(queue_.front());
  queue_.pop_front();
  const SimTime cost = job.work();
  NW_CHECK_MSG(cost.ns >= 0, "job returned negative cost");
  engine_.schedule(cost, [this, cost, fn = std::move(job.on_complete)]() mutable {
    busy_time_ += cost;
    ++jobs_completed_;
    if (stats_ != nullptr) {
      stats_->counter(name_ + ".jobs").add(1);
      stats_->counter(name_ + ".busy_ns").add(cost.ns);
    }
    // The completion callback may submit follow-on work; run it before
    // starting the next queued job so submission order within a completion
    // is preserved deterministically.
    if (fn) fn();
    start_next();
  });
}

}  // namespace nicwarp::sim
