#include "models/phold.hpp"

#include <cmath>

#include "core/assert.hpp"

namespace nicwarp::models {

namespace {

using warped::CloneableState;
using warped::EventMsg;
using warped::ObjectContext;
using warped::SimulationObject;

struct PholdState : CloneableState<PholdState> {
  std::int64_t handled{0};
};

class PholdObject final : public SimulationObject {
 public:
  PholdObject(ObjectId id, const PholdParams& p)
      : SimulationObject(id, "phold" + std::to_string(id),
                         std::make_unique<PholdState>()),
        p_(p) {}

  void initialize(ObjectContext& ctx) override {
    for (std::int64_t i = 0; i < p_.population; ++i) {
      ctx.send(id(), VirtualTime{1 + delay(ctx)}, {});
    }
  }

  void execute(ObjectContext& ctx, const EventMsg& ev) override {
    auto& st = state_as<PholdState>();
    st.mut(st.handled) += 1;
    ctx.fold_signature(static_cast<std::int64_t>(ev.id) + ctx.now().t);
    const VirtualTime next = ctx.now() + delay(ctx);
    if (next.t >= p_.horizon) return;
    const auto dst = static_cast<ObjectId>(ctx.rng().uniform(0, p_.objects - 1));
    ctx.send(dst, next, {});
  }

 private:
  std::int64_t delay(ObjectContext& ctx) const {
    const double d = ctx.rng().exponential(static_cast<double>(p_.mean_delay));
    return 1 + static_cast<std::int64_t>(d);
  }

  PholdParams p_;
};

}  // namespace

BuiltModel build_phold(const PholdParams& p, std::uint32_t num_nodes) {
  NW_CHECK(p.objects >= 1);
  BuiltModel m;
  m.partition = std::make_shared<warped::Partition>();
  m.per_node.resize(num_nodes);
  for (std::int64_t i = 0; i < p.objects; ++i) {
    const auto id = static_cast<ObjectId>(i);
    const auto node = static_cast<NodeId>(id % num_nodes);
    m.partition->place(id, node);
    m.per_node[node].push_back(std::make_unique<PholdObject>(id, p));
  }
  return m;
}

}  // namespace nicwarp::models
