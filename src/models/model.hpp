// Common shape of a built workload: a partition plus the per-node object
// lists ready to hand to each node's Kernel.
#pragma once

#include <memory>
#include <vector>

#include "warped/object.hpp"
#include "warped/partition.hpp"

namespace nicwarp::models {

struct BuiltModel {
  std::shared_ptr<warped::Partition> partition;
  std::vector<std::vector<std::unique_ptr<warped::SimulationObject>>> per_node;
};

}  // namespace nicwarp::models
