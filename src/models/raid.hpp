// RAID-5 disk-array model (the paper's first workload, §4).
//
// Request sources issue disk I/O requests to fork processes, which route
// each request to one of the disks by stripe; disks are virtual-time queueing
// servers that reply to the originating source. The paper simulates "10
// processes sending disk I/O requests to 8 forks which in turn forward the
// requests to one of the 8 disks", on 8 LPs (16 sources for the early-
// cancellation experiments).
#pragma once

#include <cstdint>

#include "models/model.hpp"

namespace nicwarp::models {

struct RaidParams {
  std::int64_t sources = 10;
  std::int64_t forks = 8;
  std::int64_t disks = 8;
  std::int64_t total_requests = 10000;  // across all sources
  std::int64_t think_min = 5, think_max = 15;       // virtual time between issues
  std::int64_t fork_delay_min = 1, fork_delay_max = 3;
  std::int64_t service_min = 10, service_max = 30;  // disk service time
};

BuiltModel build_raid(const RaidParams& p, std::uint32_t num_nodes);

}  // namespace nicwarp::models
