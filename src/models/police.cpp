#include "models/police.hpp"

#include "core/assert.hpp"

namespace nicwarp::models {

namespace {

using warped::CloneableState;
using warped::EventMsg;
using warped::ObjectContext;
using warped::SimulationObject;

enum PoliceMsg : std::int64_t { kCall = 1, kNotify = 2 };

struct StationState : CloneableState<StationState> {
  std::int64_t calls_handled{0};
  std::int64_t notifications{0};
};

class Station final : public SimulationObject {
 public:
  Station(ObjectId id, const PoliceParams& p)
      : SimulationObject(id, "police.station" + std::to_string(id),
                         std::make_unique<StationState>()),
        p_(p) {}

  void initialize(ObjectContext& ctx) override {
    if (!ctx.rng().chance(p_.seed_fraction)) return;
    const VirtualTime start{1 + static_cast<std::int64_t>(
                                    ctx.rng().uniform(0, p_.effective_seed_window() - 1))};
    ctx.send(id(), start, {kCall, p_.hops_per_call});
  }

  void execute(ObjectContext& ctx, const EventMsg& ev) override {
    auto& st = state_as<StationState>();
    switch (ev.data.at(0)) {
      case kCall: {
        st.mut(st.calls_handled) += 1;
        ctx.fold_signature(static_cast<std::int64_t>(ev.id) ^ (ctx.now().t * 7919));
        const std::int64_t ttl = ev.data.at(1);
        // Radio fan-out: tight-deadline leaf notifications. They are
        // processed almost immediately at their destinations, so when this
        // hop turns out to be erroneous the fan-out is exactly the traffic
        // an anti-message storm has to chase — unless the NIC kills it in
        // the send ring first.
        const std::int64_t burst = ctx.rng().uniform(p_.burst_min, p_.burst_max);
        for (std::int64_t b = 0; b < burst; ++b) {
          ctx.send(route(ctx), ctx.now() + ctx.rng().uniform(p_.notify_delay_min,
                                                             p_.notify_delay_max),
                   {kNotify, ctx.now().t});
        }
        // Dispatch continuation, occasionally over a slow path (the source
        // of timestamp disorder across LPs).
        if (ttl > 0) {
          const std::int64_t d =
              ctx.rng().chance(p_.long_delay_prob)
                  ? ctx.rng().uniform(p_.long_delay_min, p_.long_delay_max)
                  : ctx.rng().uniform(p_.hop_delay_min, p_.hop_delay_max);
          ctx.send(route(ctx), ctx.now() + d, {kCall, ttl - 1});
        }
        return;
      }
      case kNotify:
        st.mut(st.notifications) += 1;
        ctx.fold_signature(ev.data.at(1) * 1000003LL + static_cast<std::int64_t>(id()));
        return;
      default:
        NW_UNREACHABLE("bad POLICE message");
    }
  }

 private:
  // Hub-biased routing: a handful of dispatch hubs absorb a large share of
  // the traffic, so the LPs hosting them lag while the rest race ahead.
  ObjectId route(ObjectContext& ctx) const {
    if (ctx.rng().chance(p_.hub_bias)) {
      auto hub = static_cast<ObjectId>(
          ctx.rng().uniform(0, std::min(p_.effective_hubs(), p_.stations) - 1));
      if (hub == id()) hub = static_cast<ObjectId>((hub + 1) % p_.stations);
      return hub;
    }
    auto pick = static_cast<ObjectId>(ctx.rng().uniform(0, p_.stations - 2));
    if (pick >= id()) pick += 1;
    return pick;
  }

  PoliceParams p_;
};

}  // namespace

BuiltModel build_police(const PoliceParams& p, std::uint32_t num_nodes) {
  NW_CHECK(p.stations >= 2);
  BuiltModel m;
  m.partition = std::make_shared<warped::Partition>();
  m.per_node.resize(num_nodes);
  for (std::int64_t i = 0; i < p.stations; ++i) {
    const auto id = static_cast<ObjectId>(i);
    const auto node = static_cast<NodeId>(id % num_nodes);
    m.partition->place(id, node);
    m.per_node[node].push_back(std::make_unique<Station>(id, p));
  }
  return m;
}

}  // namespace nicwarp::models
