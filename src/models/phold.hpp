// PHOLD: the classic synthetic PDES benchmark (extra workload, not in the
// paper's evaluation; used by the examples and as a stress model in tests).
// N objects each start with `population` events; processing an event sends a
// new one to a uniformly random object with an exponential-ish increment,
// until the virtual-time horizon is reached.
#pragma once

#include <cstdint>

#include "models/model.hpp"

namespace nicwarp::models {

struct PholdParams {
  std::int64_t objects = 64;
  std::int64_t population = 2;   // initial events per object
  std::int64_t mean_delay = 10;  // mean timestamp increment
  std::int64_t horizon = 5000;   // no sends at/after this virtual time
};

BuiltModel build_phold(const PholdParams& p, std::uint32_t num_nodes);

}  // namespace nicwarp::models
