// POLICE: traffic-police telecommunications network (the paper's second
// workload, §4).
//
// A fraction of stations seed incident calls. A call hops from station to
// station (dispatch routing) for a bounded number of hops; every hop also
// emits a burst of short "notification" messages (radio fan-out). Routing is
// biased toward a few dispatch hubs and hop delays are bimodal, so LPs
// repeatedly race ahead of the hubs and get straggled — producing the
// rollback cascades that make early cancellation shine in the paper: POLICE
// shows up to ~27% gains (Fig. 7) versus RAID's <5% (Fig. 6), with 52–62%
// of canceled messages dying in the NIC send ring.
#pragma once

#include <algorithm>
#include <cstdint>

#include "models/model.hpp"

namespace nicwarp::models {

struct PoliceParams {
  std::int64_t stations = 900;
  double seed_fraction = 0.5;           // stations that start an incident
  std::int64_t hops_per_call = 30;      // call TTL
  std::int64_t burst_min = 2, burst_max = 5;  // notifications per hop
  std::int64_t hop_delay_min = 2, hop_delay_max = 6;
  double long_delay_prob = 0.04;        // occasional slow dispatch path
  std::int64_t long_delay_min = 10, long_delay_max = 25;
  std::int64_t notify_delay_min = 1, notify_delay_max = 3;
  double hub_bias = 0.10;               // fraction of routing aimed at hubs
  // 0 = auto: hubs scale with the station count and the seeding window keeps
  // the virtual call density constant, so sweeping `stations` (the paper's
  // Fig. 7/8 x-axis) changes total work, not the congestion regime.
  std::int64_t hubs = 0;                // dispatch-hub stations (ids 0..hubs-1)
  std::int64_t seed_window = 0;         // incidents start in [1, window]

  // Effective values after auto-scaling.
  std::int64_t effective_hubs() const {
    return hubs > 0 ? hubs : std::max<std::int64_t>(8, stations / 50);
  }
  std::int64_t effective_seed_window() const {
    return seed_window > 0 ? seed_window : std::max<std::int64_t>(50, stations / 3);
  }
};

BuiltModel build_police(const PoliceParams& p, std::uint32_t num_nodes);

}  // namespace nicwarp::models
