#include "models/raid.hpp"

#include "core/assert.hpp"

namespace nicwarp::models {

namespace {

using warped::CloneableState;
using warped::EventMsg;
using warped::ObjectContext;
using warped::SimulationObject;

// Message kinds carried in data[0].
enum RaidMsg : std::int64_t { kIssue = 1, kRequest = 2, kForwarded = 3, kReply = 4 };

// ---------------------------------------------------------------------------
// Source: issues requests, collects replies.
// ---------------------------------------------------------------------------
struct SourceState : CloneableState<SourceState> {
  std::int64_t issued{0};
  std::int64_t replies{0};
};

class Source final : public SimulationObject {
 public:
  Source(ObjectId id, const RaidParams& p, std::int64_t quota, ObjectId first_fork)
      : SimulationObject(id, "raid.source" + std::to_string(id),
                         std::make_unique<SourceState>()),
        p_(p),
        quota_(quota),
        first_fork_(first_fork) {}

  void initialize(ObjectContext& ctx) override {
    if (quota_ > 0) {
      ctx.send(id(), VirtualTime{1 + static_cast<std::int64_t>(ctx.rng().uniform(0, 9))},
               {kIssue});
    }
  }

  void execute(ObjectContext& ctx, const EventMsg& ev) override {
    auto& st = state_as<SourceState>();
    switch (ev.data.at(0)) {
      case kIssue: {
        if (st.issued >= quota_) return;
        st.mut(st.issued) += 1;
        const std::int64_t block = ctx.rng().uniform(0, 1 << 20);
        const ObjectId fork =
            first_fork_ + static_cast<ObjectId>(ctx.rng().uniform(0, p_.forks - 1));
        ctx.send(fork, ctx.now() + ctx.rng().uniform(p_.fork_delay_min, p_.fork_delay_max),
                 {kRequest, static_cast<std::int64_t>(id()), st.issued, block});
        if (st.issued < quota_) {
          ctx.send(id(), ctx.now() + ctx.rng().uniform(p_.think_min, p_.think_max),
                   {kIssue});
        }
        ctx.fold_signature(static_cast<std::int64_t>(ev.id) ^ ctx.now().t);
        return;
      }
      case kReply: {
        st.mut(st.replies) += 1;
        // Reply payload: [kReply, source, seq, completion_ts]
        ctx.fold_signature(ev.data.at(2) * 1315423911LL + ev.data.at(3));
        return;
      }
      default:
        NW_UNREACHABLE("bad RAID message at source");
    }
  }

 private:
  RaidParams p_;
  std::int64_t quota_;
  ObjectId first_fork_;
};

// ---------------------------------------------------------------------------
// Fork: stripes requests across disks.
// ---------------------------------------------------------------------------
struct ForkState : CloneableState<ForkState> {
  std::int64_t routed{0};
};

class Fork final : public SimulationObject {
 public:
  Fork(ObjectId id, const RaidParams& p, ObjectId first_disk)
      : SimulationObject(id, "raid.fork" + std::to_string(id),
                         std::make_unique<ForkState>()),
        p_(p),
        first_disk_(first_disk) {}

  void initialize(ObjectContext&) override {}

  void execute(ObjectContext& ctx, const EventMsg& ev) override {
    NW_CHECK(ev.data.at(0) == kRequest);
    auto& st = state_as<ForkState>();
    st.mut(st.routed) += 1;
    const std::int64_t block = ev.data.at(3);
    const ObjectId disk = first_disk_ + static_cast<ObjectId>(block % p_.disks);
    ctx.send(disk, ctx.now() + ctx.rng().uniform(p_.fork_delay_min, p_.fork_delay_max),
             {kForwarded, ev.data.at(1), ev.data.at(2), block});
    ctx.fold_signature(static_cast<std::int64_t>(ev.id) * 31 + block);
  }

 private:
  RaidParams p_;
  ObjectId first_disk_;
};

// ---------------------------------------------------------------------------
// Disk: a virtual-time FIFO server.
// ---------------------------------------------------------------------------
struct DiskState : CloneableState<DiskState> {
  std::int64_t served{0};
  VirtualTime free_at{VirtualTime::zero()};
};

class Disk final : public SimulationObject {
 public:
  Disk(ObjectId id, const RaidParams& p)
      : SimulationObject(id, "raid.disk" + std::to_string(id),
                         std::make_unique<DiskState>()),
        p_(p) {}

  void initialize(ObjectContext&) override {}

  void execute(ObjectContext& ctx, const EventMsg& ev) override {
    NW_CHECK(ev.data.at(0) == kForwarded);
    auto& st = state_as<DiskState>();
    st.mut(st.served) += 1;
    const std::int64_t service = ctx.rng().uniform(p_.service_min, p_.service_max);
    const VirtualTime start = VirtualTime::max(ctx.now(), st.free_at);
    const VirtualTime done = start + service;
    st.mut(st.free_at) = done;
    const auto source = static_cast<ObjectId>(ev.data.at(1));
    // Completion must be strictly after now even under zero queueing.
    const VirtualTime reply_at = VirtualTime::max(done, ctx.now() + 1);
    ctx.send(source, reply_at, {kReply, ev.data.at(1), ev.data.at(2), reply_at.t});
    ctx.fold_signature(ev.data.at(2) * 2654435761LL + done.t);
  }

 private:
  RaidParams p_;
};

}  // namespace

BuiltModel build_raid(const RaidParams& p, std::uint32_t num_nodes) {
  NW_CHECK(num_nodes >= 1);
  NW_CHECK(p.sources >= 1 && p.forks >= 1 && p.disks >= 1);
  BuiltModel m;
  m.partition = std::make_shared<warped::Partition>();
  m.per_node.resize(num_nodes);

  const auto first_fork = static_cast<ObjectId>(p.sources);
  const auto first_disk = static_cast<ObjectId>(p.sources + p.forks);
  const std::int64_t total_objs = p.sources + p.forks + p.disks;

  auto node_of = [num_nodes](ObjectId id) { return static_cast<NodeId>(id % num_nodes); };

  const std::int64_t per_source = p.total_requests / p.sources;
  const std::int64_t leftover = p.total_requests % p.sources;

  for (std::int64_t i = 0; i < total_objs; ++i) {
    const auto id = static_cast<ObjectId>(i);
    const NodeId node = node_of(id);
    m.partition->place(id, node);
    std::unique_ptr<warped::SimulationObject> obj;
    if (id < first_fork) {
      const std::int64_t quota = per_source + (id < leftover ? 1 : 0);
      obj = std::make_unique<Source>(id, p, quota, first_fork);
    } else if (id < first_disk) {
      obj = std::make_unique<Fork>(id, p, first_disk);
    } else {
      obj = std::make_unique<Disk>(id, p);
    }
    m.per_node[node].push_back(std::move(obj));
  }
  return m;
}

}  // namespace nicwarp::models
