#include "profile/cascade.hpp"

#include <algorithm>

#include "core/assert.hpp"

namespace nicwarp::profile {

namespace {

void bump(std::vector<std::uint64_t>& hist, std::uint64_t value) {
  const std::size_t i =
      std::min<std::uint64_t>(value, CascadeBuilder::kMaxBucket);
  if (hist.size() <= i) hist.resize(i + 1, 0);
  hist[i] += 1;
}

}  // namespace

std::size_t CascadeBuilder::add_rollback(CascadeRollback rb) {
  Entry e;
  e.parent = CascadeRollback::kNoParent;
  if (rb.parent >= 0) {
    NW_CHECK_MSG(static_cast<std::size_t>(rb.parent) < entries_.size(),
                 "cascade parent index out of range");
    e.parent = rb.parent;
  } else if (rb.parent == CascadeRollback::kAutoParent && rb.cause_negative) {
    auto it = anti_origin_.find(rb.cause_id);
    if (it != anti_origin_.end()) {
      e.parent = static_cast<std::int64_t>(it->second);
    } else {
      e.unlinked = true;
    }
  } else if (rb.parent == CascadeRollback::kNoParent && rb.cause_negative) {
    e.unlinked = true;
  }

  const std::size_t idx = entries_.size();
  if (e.parent >= 0) {
    Entry& p = entries_[static_cast<std::size_t>(e.parent)];
    e.depth = p.depth + 1;
    e.root = p.root;
    p.children += 1;
  } else {
    e.depth = 0;
    e.root = idx;
  }
  e.rb = std::move(rb);
  entries_.push_back(std::move(e));

  const Entry& added = entries_.back();
  for (EventId anti : added.rb.antis) anti_origin_[anti] = idx;
  if (added.rb.cause_negative) caused_by_anti_[added.rb.cause_id] = idx;
  return idx;
}

void CascadeBuilder::attribute_anti(std::size_t rollback_index, EventId anti_id) {
  NW_CHECK(rollback_index < entries_.size());
  entries_[rollback_index].rb.antis.push_back(anti_id);
  anti_origin_[anti_id] = rollback_index;
}

void CascadeBuilder::add_nic_drop(NodeId node, EventId id, bool negative,
                                  EventId cause_anti) {
  drops_.push_back(Drop{node, id, negative, cause_anti});
}

CascadeStats CascadeBuilder::build() const {
  CascadeStats s;
  s.rollbacks = entries_.size();

  // Per-tree accumulators, keyed by root index.
  std::unordered_map<std::size_t, std::pair<std::uint64_t, std::uint64_t>>
      trees;  // root -> {rollbacks, wasted events}

  std::uint64_t depth_sum = 0;
  for (const Entry& e : entries_) {
    if (e.parent < 0) {
      s.roots += 1;
    }
    if (e.rb.cause_negative) s.secondary += 1;
    if (e.unlinked) s.unlinked_secondary += 1;
    s.max_depth = std::max(s.max_depth, e.depth);
    depth_sum += e.depth;
    s.wasted_events += e.rb.events_undone;
    s.wasted_msgs += e.rb.antis.size();
    s.replayed_events += e.rb.events_replayed;
    bump(s.depth_hist, e.depth);
    bump(s.fanout_hist, e.children);
    auto& tree = trees[e.root];
    tree.first += 1;
    tree.second += e.rb.events_undone;

    PerNodeWaste& w = s.per_node[e.rb.node];
    w.rollbacks += 1;
    if (e.rb.cause_negative) w.secondary_rollbacks += 1;
    w.wasted_events += e.rb.events_undone;
    w.wasted_msgs += e.rb.antis.size();
    w.replayed_events += e.rb.events_replayed;
  }
  if (!entries_.empty()) {
    s.mean_depth =
        static_cast<double>(depth_sum) / static_cast<double>(entries_.size());
  }
  for (const auto& [root, tree] : trees) {
    s.max_tree_rollbacks = std::max(s.max_tree_rollbacks, tree.first);
    s.max_tree_wasted_events = std::max(s.max_tree_wasted_events, tree.second);
    bump(s.tree_size_hist, tree.first);
  }

  for (const Drop& d : drops_) {
    // The rollback that owns this saving: the one the dooming anti caused
    // (it emits the anti for the dropped positive), or — when the firmware
    // did not know the cause — the latest rollback that emitted an anti
    // with the dropped packet's id.
    const Entry* owner = nullptr;
    if (d.cause_anti != kInvalidEvent) {
      auto it = caused_by_anti_.find(d.cause_anti);
      if (it != caused_by_anti_.end()) owner = &entries_[it->second];
    }
    if (owner == nullptr) {
      auto it = anti_origin_.find(d.id);
      if (it != anti_origin_.end()) owner = &entries_[it->second];
    }
    if (d.negative) s.antis_filtered += 1;
    if (owner != nullptr) {
      s.nic_drops_attributed += 1;
      PerNodeWaste& w = s.per_node[owner->rb.node];
      if (d.negative) {
        w.nic_filtered += 1;
      } else {
        w.nic_drops += 1;
      }
    } else {
      s.nic_drops_unattributed += 1;
    }
  }
  return s;
}

}  // namespace nicwarp::profile
