// Critical-path lower bound over the committed-event dependency DAG.
//
// The committed trajectory of a Time-Warp run is schedule-independent (the
// canonical EventOrder makes it unique), so its dependency structure gives a
// lower bound on achievable execution time that no optimism tuning, GVT
// cadence, or cancellation policy can beat: an event cannot execute before
// (a) the previous committed event of the same object finished — objects
// are sequential state machines — and (b) the execution that *generated*
// it finished — causality. The classic Berry/Jefferson critical-path
// argument, applied to the reproduction's event DAG.
//
// finish(e) = cost(e) + max(finish(prev committed event on e.obj),
//                           finish(generator of e))
//
// The bound assumes infinite parallelism, free messages, and zero rollback —
// deliberately unreachable; its value is the denominator of the optimism
// efficiency score: actual_time / critical_path >= 1 always, and how far
// above 1 a run sits is exactly the cost of Time-Warp overheads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace nicwarp::profile {

// One committed event. `parent` is the execution that generated it
// (kInvalidEvent for roots: initial self-scheduled events).
struct CpEvent {
  EventId id{kInvalidEvent};
  ObjectId obj{kInvalidObject};
  VirtualTime recv_ts{VirtualTime::zero()};
  EventId parent{kInvalidEvent};
  double cost_us{0.0};
};

struct CriticalPathResult {
  std::uint64_t committed_events{0};
  double total_work_us{0.0};      // sum of costs (serial lower bound)
  double critical_path_us{0.0};   // the parallel lower bound
  std::uint64_t critical_path_events{0};  // chain length along the path
  // Edges whose parent was not in the committed set (e.g. the generator's
  // node left the profiled window). Each such edge only weakens the bound.
  std::uint64_t missing_parents{0};

  double critical_path_seconds() const { return critical_path_us * 1e-6; }
  // Upper bound on speedup over serial execution implied by the DAG.
  double parallelism() const {
    return critical_path_us > 0.0 ? total_work_us / critical_path_us : 0.0;
  }
};

// Events may arrive in any order; they are processed in the canonical
// (recv_ts, obj, id) order, under which a generator precedes its children
// for any model with positive lookahead. A parent that has not finished by
// the time a child is processed (zero-lookahead tie) contributes 0 —
// weakening, never breaking, the lower bound.
CriticalPathResult critical_path(std::vector<CpEvent> events);

}  // namespace nicwarp::profile
