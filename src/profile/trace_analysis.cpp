#include "profile/trace_analysis.hpp"

#include <unordered_map>

#include "core/trace.hpp"

namespace nicwarp::profile {

namespace {

TraceAnalysis analyze_impl(const TraceRecorder* rec,
                           const std::vector<TraceRecord>* vec) {
  const std::size_t n = rec ? rec->size() : vec->size();
  auto record_at = [&](std::size_t i) -> const TraceRecord& {
    return rec ? rec->at(i) : (*vec)[i];
  };

  TraceAnalysis out;
  CascadeBuilder builder;
  // node -> index (into builder) of the most recent rollback on that node.
  std::unordered_map<NodeId, std::size_t> last_rollback;

  for (std::size_t i = 0; i < n; ++i) {
    const TraceRecord& r = record_at(i);
    out.records_seen += 1;
    switch (r.point) {
      case TracePoint::kRollback: {
        CascadeRollback rb;
        rb.node = r.node;
        rb.at = r.at;
        rb.cause_id = r.event_id;
        rb.cause_negative = r.negative;
        rb.cause_src = r.peer;
        rb.events_undone = r.a;
        rb.events_replayed = r.b;
        const std::size_t idx = builder.add_rollback(std::move(rb));
        last_rollback[r.node] = idx;
        out.rollback_records += 1;
        break;
      }
      case TracePoint::kHostEnqueue: {
        if (!r.negative) break;
        if (auto it = last_rollback.find(r.node); it != last_rollback.end()) {
          builder.attribute_anti(it->second, r.event_id);
          out.anti_enqueues += 1;
        } else {
          out.orphan_antis += 1;
        }
        break;
      }
      case TracePoint::kCancelDropPositive: {
        // `b` carries the dooming anti's id; 0 means an old trace that
        // predates the convention.
        const EventId cause = r.b != 0 ? static_cast<EventId>(r.b)
                                       : kInvalidEvent;
        builder.add_nic_drop(r.node, r.event_id, /*negative=*/false, cause);
        break;
      }
      case TracePoint::kCancelFilterAnti:
        builder.add_nic_drop(r.node, r.event_id, /*negative=*/true,
                             kInvalidEvent);
        break;
      default:
        break;
    }
  }
  out.cascades = builder.build();
  return out;
}

}  // namespace

TraceAnalysis analyze_cascades(const std::vector<TraceRecord>& records) {
  return analyze_impl(nullptr, &records);
}

TraceAnalysis analyze_cascades(const TraceRecorder& rec) {
  return analyze_impl(&rec, nullptr);
}

}  // namespace nicwarp::profile
