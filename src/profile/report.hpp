// The profiler's end product: one deterministic, schema-versioned JSON
// document per run, combining cascade causality and the critical-path
// lower bound into the two optimism-efficiency scores.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "profile/cascade.hpp"
#include "profile/critical_path.hpp"

namespace nicwarp::profile {

inline constexpr int kProfileSchemaVersion = 1;

struct ProfileReport {
  // Run frame (copied in by whoever finishes the collector).
  double sim_seconds{0.0};
  double event_cost_us{0.0};  // per-event host cost used as the CP weight

  std::uint64_t executions{0};       // optimistic executions observed
  std::uint64_t distinct_events{0};  // unique event ids executed
  std::uint64_t committed{0};

  CascadeStats cascades;
  CriticalPathResult critical_path;

  // Optimism-efficiency scores.
  //  * work_efficiency     = committed / executions   (1.0 = no waste)
  //  * time_vs_lower_bound = sim_seconds / critical-path seconds
  //                          (>= 1.0; 1.0 = the run was provably optimal)
  double work_efficiency{0.0};
  double time_vs_lower_bound{0.0};

  // {"type":"profile_report","schema_version":1,...} — key order fixed,
  // doubles printed with stable precision, histograms as arrays: the same
  // run always serializes to the same bytes.
  void to_json(std::ostream& os) const;
  std::string to_json_string() const;
  std::string summary() const;  // one console line
};

// Shared by ProfileReport and the offline trace analysis.
void cascade_stats_to_json(std::ostream& os, const CascadeStats& s);

}  // namespace nicwarp::profile
