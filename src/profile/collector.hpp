// The online profiler: a ProfileHook implementation that watches a run
// through the kernel/firmware hooks and turns it into a ProfileReport.
//
// One collector serves a whole testbed (the engine is single-threaded, so
// hooks arrive in system order — exactly what the cascade builder needs).
// Memory: one ~40-byte record per distinct event id plus one per rollback;
// profiling a million-event run costs tens of megabytes, not the run's
// timing — all collection happens outside the simulated cost model.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/profile_hook.hpp"
#include "profile/cascade.hpp"
#include "profile/report.hpp"

namespace nicwarp::profile {

class ProfileCollector final : public ProfileHook {
 public:
  void on_execute(NodeId node, ObjectId obj, EventId id,
                  VirtualTime recv_ts) override;
  void on_send(NodeId node, EventId parent, EventId child, ObjectId dst_obj,
               VirtualTime recv_ts) override;
  void on_rollback(const RollbackProfile& rb) override;
  void on_nic_drop(NodeId node, EventId id, bool negative,
                   EventId cause_anti) override;

  struct FinishParams {
    double sim_seconds{0.0};
    double event_cost_us{0.0};  // critical-path weight per committed event
  };
  // Builds the report from everything observed so far. The committed set is
  // every event id whose executions outnumber its undo's — i.e. whose final
  // incarnation survived.
  ProfileReport finish(const FinishParams& p) const;

  const CascadeBuilder& cascades() const { return cascades_; }
  std::uint64_t executions() const { return executions_; }

 private:
  struct ExecInfo {
    ObjectId obj{kInvalidObject};
    NodeId node{kInvalidNode};
    VirtualTime recv_ts{VirtualTime::zero()};
    std::uint32_t execs{0};
    std::uint32_t undone{0};
  };
  std::unordered_map<EventId, ExecInfo> execs_;
  // child event id -> generating execution id. Deterministic ids make
  // re-executions rewrite the identical edge.
  std::unordered_map<EventId, EventId> parent_;
  CascadeBuilder cascades_;
  std::uint64_t executions_{0};
};

}  // namespace nicwarp::profile
