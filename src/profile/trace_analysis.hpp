// Offline cascade reconstruction from a TraceRecorder stream.
//
// The online collector (collector.hpp) sees rollbacks through kernel hooks;
// this module recovers the same cascade forest from the trace ring after the
// fact, so post-mortems work on any run that had rollback+msg+cancel tracing
// enabled — no profiler attached at run time.
//
// It leans on three trace conventions the kernel/firmware guarantee:
//  * kRollback records carry the cause in (event_id, negative, peer) and the
//    damage in (a = events undone, b = events replayed).
//  * The kernel records a rollback BEFORE enqueueing the anti-messages it
//    emits, so a negative kHostEnqueue on a node belongs to the latest
//    kRollback on that node (within one do_step, in ring order).
//  * kCancelDropPositive stamps the dooming anti's id into `b`.
//
// Accuracy caveat, by construction: the ring overwrites its oldest records,
// so cascades whose roots scrolled out reappear as unlinked secondaries —
// build() counts them separately rather than guessing.
#pragma once

#include <cstdint>
#include <vector>

#include "profile/cascade.hpp"

namespace nicwarp {
struct TraceRecord;
class TraceRecorder;
}  // namespace nicwarp

namespace nicwarp::profile {

struct TraceAnalysis {
  CascadeStats cascades;
  std::uint64_t records_seen{0};
  std::uint64_t rollback_records{0};
  std::uint64_t anti_enqueues{0};   // negative kHostEnqueue records linked
  std::uint64_t orphan_antis{0};    // negative enqueues with no prior rollback
};

TraceAnalysis analyze_cascades(const std::vector<TraceRecord>& records);
TraceAnalysis analyze_cascades(const TraceRecorder& rec);

}  // namespace nicwarp::profile
