#include "profile/critical_path.hpp"

#include <algorithm>
#include <unordered_map>

namespace nicwarp::profile {

CriticalPathResult critical_path(std::vector<CpEvent> events) {
  std::sort(events.begin(), events.end(), [](const CpEvent& a, const CpEvent& b) {
    if (a.recv_ts != b.recv_ts) return a.recv_ts < b.recv_ts;
    if (a.obj != b.obj) return a.obj < b.obj;
    return a.id < b.id;
  });

  struct Path {
    double finish_us{0.0};
    std::uint64_t length{0};
  };
  auto longer = [](const Path& a, const Path& b) {
    if (a.finish_us != b.finish_us) return a.finish_us > b.finish_us;
    return a.length > b.length;
  };

  std::unordered_map<EventId, Path> by_event;
  by_event.reserve(events.size());
  std::unordered_map<ObjectId, Path> by_object;

  CriticalPathResult r;
  r.committed_events = events.size();
  Path best;
  for (const CpEvent& ev : events) {
    Path start;  // {0, 0}: a root can start immediately
    if (auto it = by_object.find(ev.obj); it != by_object.end()) {
      if (longer(it->second, start)) start = it->second;
    }
    if (ev.parent != kInvalidEvent) {
      if (auto it = by_event.find(ev.parent); it != by_event.end()) {
        if (longer(it->second, start)) start = it->second;
      } else {
        r.missing_parents += 1;
      }
    }
    const Path done{start.finish_us + ev.cost_us, start.length + 1};
    by_event[ev.id] = done;
    by_object[ev.obj] = done;
    if (longer(done, best)) best = done;
    r.total_work_us += ev.cost_us;
  }
  r.critical_path_us = best.finish_us;
  r.critical_path_events = best.length;
  return r;
}

}  // namespace nicwarp::profile
