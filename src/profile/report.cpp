#include "profile/report.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace nicwarp::profile {

namespace {

// %.9g keeps integers exact, round-trips every value we emit, and is
// locale-independent — the JSON stays byte-stable across runs and machines.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void hist_to_json(std::ostream& os, const std::vector<std::uint64_t>& h) {
  os << "[";
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (i) os << ",";
    os << h[i];
  }
  os << "]";
}

}  // namespace

void cascade_stats_to_json(std::ostream& os, const CascadeStats& s) {
  os << "{\"rollbacks\":" << s.rollbacks << ",\"roots\":" << s.roots
     << ",\"secondary\":" << s.secondary
     << ",\"unlinked_secondary\":" << s.unlinked_secondary
     << ",\"max_depth\":" << s.max_depth
     << ",\"mean_depth\":" << fmt(s.mean_depth)
     << ",\"max_tree_rollbacks\":" << s.max_tree_rollbacks
     << ",\"max_tree_wasted_events\":" << s.max_tree_wasted_events
     << ",\"wasted_events\":" << s.wasted_events
     << ",\"wasted_msgs\":" << s.wasted_msgs
     << ",\"replayed_events\":" << s.replayed_events
     << ",\"nic_drops_attributed\":" << s.nic_drops_attributed
     << ",\"nic_drops_unattributed\":" << s.nic_drops_unattributed
     << ",\"antis_filtered\":" << s.antis_filtered << ",\"depth_hist\":";
  hist_to_json(os, s.depth_hist);
  os << ",\"fanout_hist\":";
  hist_to_json(os, s.fanout_hist);
  os << ",\"tree_size_hist\":";
  hist_to_json(os, s.tree_size_hist);
  os << ",\"per_node\":[";
  bool first = true;
  for (const auto& [node, w] : s.per_node) {
    if (!first) os << ",";
    first = false;
    os << "{\"node\":" << node << ",\"rollbacks\":" << w.rollbacks
       << ",\"secondary_rollbacks\":" << w.secondary_rollbacks
       << ",\"wasted_events\":" << w.wasted_events
       << ",\"wasted_msgs\":" << w.wasted_msgs
       << ",\"replayed_events\":" << w.replayed_events
       << ",\"nic_drops\":" << w.nic_drops
       << ",\"nic_filtered\":" << w.nic_filtered << "}";
  }
  os << "]}";
}

void ProfileReport::to_json(std::ostream& os) const {
  os << "{\"type\":\"profile_report\",\"schema_version\":" << kProfileSchemaVersion
     << ",\"sim_seconds\":" << fmt(sim_seconds)
     << ",\"event_cost_us\":" << fmt(event_cost_us)
     << ",\"executions\":" << executions
     << ",\"distinct_events\":" << distinct_events
     << ",\"committed\":" << committed
     << ",\"work_efficiency\":" << fmt(work_efficiency)
     << ",\"time_vs_lower_bound\":" << fmt(time_vs_lower_bound)
     << ",\"critical_path\":{\"committed_events\":" << critical_path.committed_events
     << ",\"total_work_us\":" << fmt(critical_path.total_work_us)
     << ",\"critical_path_us\":" << fmt(critical_path.critical_path_us)
     << ",\"critical_path_events\":" << critical_path.critical_path_events
     << ",\"missing_parents\":" << critical_path.missing_parents
     << ",\"parallelism\":" << fmt(critical_path.parallelism()) << "}"
     << ",\"cascades\":";
  cascade_stats_to_json(os, cascades);
  os << "}\n";
}

std::string ProfileReport::to_json_string() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

std::string ProfileReport::summary() const {
  std::ostringstream os;
  os << "committed " << committed << "/" << executions << " (work-eff "
     << fmt(work_efficiency) << "), critical path "
     << fmt(critical_path.critical_path_seconds()) << " s over "
     << critical_path.critical_path_events << " events (actual/lower-bound "
     << fmt(time_vs_lower_bound) << "), " << cascades.rollbacks
     << " rollbacks in " << cascades.roots << " cascades (max depth "
     << cascades.max_depth << ")";
  return os.str();
}

}  // namespace nicwarp::profile
