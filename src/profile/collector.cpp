#include "profile/collector.hpp"

#include <vector>

namespace nicwarp::profile {

void ProfileCollector::on_execute(NodeId node, ObjectId obj, EventId id,
                                  VirtualTime recv_ts) {
  ExecInfo& e = execs_[id];
  e.obj = obj;
  e.node = node;
  e.recv_ts = recv_ts;
  e.execs += 1;
  executions_ += 1;
}

void ProfileCollector::on_send(NodeId /*node*/, EventId parent, EventId child,
                               ObjectId /*dst_obj*/, VirtualTime /*recv_ts*/) {
  parent_[child] = parent;
}

void ProfileCollector::on_rollback(const RollbackProfile& rb) {
  for (EventId id : rb.undone) {
    auto it = execs_.find(id);
    if (it != execs_.end()) it->second.undone += 1;
  }
  CascadeRollback cr;
  cr.node = rb.node;
  cr.at = rb.at;
  cr.cause_id = rb.cause_id;
  cr.cause_negative = rb.cause_negative;
  cr.cause_src = rb.cause_src;
  cr.events_undone = rb.events_undone;
  cr.events_replayed = rb.events_replayed;
  cr.antis = rb.antis;
  cascades_.add_rollback(std::move(cr));
}

void ProfileCollector::on_nic_drop(NodeId node, EventId id, bool negative,
                                   EventId cause_anti) {
  cascades_.add_nic_drop(node, id, negative, cause_anti);
}

ProfileReport ProfileCollector::finish(const FinishParams& p) const {
  ProfileReport r;
  r.sim_seconds = p.sim_seconds;
  r.event_cost_us = p.event_cost_us;
  r.executions = executions_;
  r.distinct_events = execs_.size();

  std::vector<CpEvent> committed;
  committed.reserve(execs_.size());
  for (const auto& [id, e] : execs_) {
    if (e.execs <= e.undone) continue;  // final incarnation was undone
    CpEvent ev;
    ev.id = id;
    ev.obj = e.obj;
    ev.recv_ts = e.recv_ts;
    ev.cost_us = p.event_cost_us;
    auto pit = parent_.find(id);
    ev.parent = pit != parent_.end() ? pit->second : kInvalidEvent;
    committed.push_back(ev);
  }
  r.committed = committed.size();
  r.critical_path = critical_path(std::move(committed));
  r.cascades = cascades_.build();

  r.work_efficiency = r.executions > 0
                          ? static_cast<double>(r.committed) /
                                static_cast<double>(r.executions)
                          : 0.0;
  const double cp_s = r.critical_path.critical_path_seconds();
  r.time_vs_lower_bound = cp_s > 0.0 ? r.sim_seconds / cp_s : 0.0;
  return r;
}

}  // namespace nicwarp::profile
