// Rollback-cascade causality analysis.
//
// A Time-Warp rollback has exactly one trigger: a straggler positive (the
// timestamp order was violated by plain optimism — a cascade *root*) or an
// anti-message (the rollback is collateral damage of an earlier rollback
// somewhere else — a cascade *interior node*). Every anti-message carries
// the id of the positive it cancels, and every rollback reports the antis
// it emits, so the rollbacks of a run link into a forest: each tree is one
// causal avalanche, the pathology behind the paper's ~350 messages per RAID
// request (Fig. 6b).
//
// CascadeBuilder consumes rollbacks in system (simulated-time) order — the
// order the single-threaded engine produces them, which guarantees a parent
// is registered before any child it causes — plus NIC early-cancellation
// decisions, and aggregates the forest into depth / fan-out / waste
// statistics per tree and per node (node == LP in this system).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"

namespace nicwarp::profile {

// One rollback, as reported by the kernel hook (online) or reconstructed
// from a trace stream (offline; see trace_analysis.hpp).
struct CascadeRollback {
  NodeId node{kInvalidNode};
  SimTime at{SimTime::zero()};
  EventId cause_id{kInvalidEvent};  // straggler / anti that triggered it
  bool cause_negative{false};
  NodeId cause_src{kInvalidNode};  // sender node; kInvalidNode = local
  std::uint64_t events_undone{0};
  std::uint64_t events_replayed{0};
  std::vector<EventId> antis;  // anti-messages this rollback emitted

  // Cascade parent. kAutoParent lets the builder link via its anti-origin
  // maps (the online path); offline analyses that resolved the parent
  // themselves pass the index returned by add_rollback(), or kNoParent.
  static constexpr std::int64_t kAutoParent = -2;
  static constexpr std::int64_t kNoParent = -1;
  std::int64_t parent{kAutoParent};
};

struct PerNodeWaste {
  std::uint64_t rollbacks{0};
  std::uint64_t secondary_rollbacks{0};  // anti-caused
  std::uint64_t wasted_events{0};        // executions undone
  std::uint64_t wasted_msgs{0};          // anti-messages emitted
  std::uint64_t replayed_events{0};      // coast-forward re-executions
  std::uint64_t nic_drops{0};            // early drops attributed here
  std::uint64_t nic_filtered{0};         // antis filtered on the NIC
};

struct CascadeStats {
  std::uint64_t rollbacks{0};
  std::uint64_t roots{0};      // trees (straggler-caused rollbacks)
  std::uint64_t secondary{0};  // anti-caused rollbacks
  // Anti-caused rollbacks whose triggering anti could not be mapped to an
  // earlier rollback (ring overwrite, pre-history, …); counted as roots.
  std::uint64_t unlinked_secondary{0};

  std::uint64_t max_depth{0};           // deepest chain (root = depth 0)
  double mean_depth{0.0};               // over all rollbacks
  std::uint64_t max_tree_rollbacks{0};  // largest avalanche
  std::uint64_t max_tree_wasted_events{0};

  std::uint64_t wasted_events{0};
  std::uint64_t wasted_msgs{0};
  std::uint64_t replayed_events{0};
  std::uint64_t nic_drops_attributed{0};
  std::uint64_t nic_drops_unattributed{0};
  std::uint64_t antis_filtered{0};

  // hist[i] = count at value i; the last bucket absorbs values beyond
  // CascadeBuilder::kMaxBucket. Trailing zero buckets are trimmed.
  std::vector<std::uint64_t> depth_hist;      // rollbacks per cascade depth
  std::vector<std::uint64_t> fanout_hist;     // rollbacks per child count
  std::vector<std::uint64_t> tree_size_hist;  // trees per rollback count

  std::map<NodeId, PerNodeWaste> per_node;  // ordered: deterministic export
};

class CascadeBuilder {
 public:
  static constexpr std::size_t kMaxBucket = 64;

  // Rollbacks MUST arrive in system order. Returns the rollback's index
  // (usable as an explicit parent for later calls).
  std::size_t add_rollback(CascadeRollback rb);
  // Offline streams discover a rollback's emitted antis after the fact;
  // this attributes one emission to an already-added rollback.
  void attribute_anti(std::size_t rollback_index, EventId anti_id);
  // A NIC early-cancellation decision: a dropped doomed positive
  // (negative=false) or a filtered anti (negative=true). `cause_anti` is the
  // anti that doomed it when known, kInvalidEvent otherwise.
  void add_nic_drop(NodeId node, EventId id, bool negative, EventId cause_anti);

  std::size_t size() const { return entries_.size(); }
  CascadeStats build() const;

 private:
  struct Entry {
    CascadeRollback rb;
    std::int64_t parent{CascadeRollback::kNoParent};
    std::size_t root{0};
    std::uint64_t depth{0};
    std::uint64_t children{0};
    bool unlinked{false};  // anti-caused but parent unknown
  };
  struct Drop {
    NodeId node{kInvalidNode};
    EventId id{kInvalidEvent};
    bool negative{false};
    EventId cause_anti{kInvalidEvent};
  };

  std::vector<Entry> entries_;
  std::vector<Drop> drops_;
  // anti id -> index of the latest rollback that emitted it (ids recur
  // across cancel/re-send incarnations; system order makes "latest" right).
  std::unordered_map<EventId, std::size_t> anti_origin_;
  // anti id -> index of the latest rollback *caused by* that anti (the
  // rollback that will emit antis for the positives the NIC drops).
  std::unordered_map<EventId, std::size_t> caused_by_anti_;
};

}  // namespace nicwarp::profile
