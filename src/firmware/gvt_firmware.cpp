#include "firmware/gvt_firmware.hpp"

#include "core/assert.hpp"
#include "core/log.hpp"

namespace nicwarp::firmware {

namespace {
VirtualTime map_min(const std::map<std::uint32_t, VirtualTime>& m, std::uint32_t k) {
  auto it = m.find(k);
  return it == m.end() ? VirtualTime::inf() : it->second;
}
}  // namespace

void GvtFirmware::attach(hw::NicContext& ctx) {
  Firmware::attach(ctx);
  last_completion_ = ctx.now();
  // Housekeeping timer: handshake watch, piggyback deadline, root initiation.
  ctx.schedule(SimTime::from_us(opts_.poll_interval_us), [this] { return poll(); });
}

SimTime GvtFirmware::poll() {
  SimTime cost = ctx_->cost().us(opts_.poll_cost_us);

  // 1. Host replied through the mailbox?
  hw::Mailbox& mb = ctx_->mailbox();
  if (held_token_ && mb.host_values.valid && mb.host_values.epoch == held_token_->epoch) {
    const VirtualTime t = mb.host_values.lvt;
    mb.host_values.valid = false;
    cost += resolve_handshake(held_token_->epoch, t);
  }

  // 2. Piggyback window expired: pay for a dedicated wire token.
  if (out_token_ && ctx_->now() >= out_deadline_) cost += emit_wire_token();

  // 3. Unreliable fabric only: lost-token / lost-broadcast recovery (root).
  cost += maybe_regenerate();
  cost += maybe_rebroadcast();

  // 4. Root: time to start a new estimation?
  cost += maybe_initiate();

  ctx_->schedule(SimTime::from_us(opts_.poll_interval_us), [this] { return poll(); });
  return cost;
}

SimTime GvtFirmware::maybe_initiate() {
  if (!is_root() || estimating_ || held_token_ || out_token_) return SimTime::zero();
  const hw::Mailbox& mb = ctx_->mailbox();
  if (!mb.timewarp_initialised) return SimTime::zero();
  const bool period_hit = mb.events_processed - events_base_ >= opts_.period;
  const bool autonomy_hit =
      ctx_->now() - last_completion_ >= SimTime::from_us(opts_.autonomy_us);
  if (!period_hit && !autonomy_hit) return SimTime::zero();
  return initiate();
}

SimTime GvtFirmware::initiate() {
  estimating_ = true;
  events_base_ = ctx_->mailbox().events_processed;
  last_est_activity_ = ctx_->now();
  ctx_->stats().counter("gvt.estimations").add(1);
  if (ctx_->trace().enabled(TraceCat::kGvt)) {
    ctx_->trace().record({ctx_->now(), VirtualTime::zero(), TraceCat::kGvt,
                          TracePoint::kGvtInitiate, false, ctx_->node_id(),
                          kInvalidNode, kInvalidEvent, epoch_ + 1, 0});
  }

  hw::GvtFields token;
  token.epoch = epoch_ + 1;
  token.round = 0;
  token.phase = 0;
  token.white_count = 0;
  token.t = VirtualTime::inf();
  token.tmin = VirtualTime::inf();
  // Whites of every epoch in [floor, epoch) count toward this estimation.
  // Fault-free, floor is always epoch - 1; after an abandoned epoch the range
  // widens so a zombie epoch's in-flight messages cannot escape the count.
  token.floor = last_completed_epoch_;
  return handle_token(token);
}

SimTime GvtFirmware::maybe_regenerate() {
  if (!is_root() || !estimating_ || !ctx_->cost().rel_enabled) return SimTime::zero();
  const SimTime timeout = ctx_->cost().us(ctx_->cost().gvt_token_timeout_us);
  if (ctx_->now() - last_est_activity_ < timeout) return SimTime::zero();

  // The token of the current epoch is presumed lost (dropped or corrupted on
  // the wire). Abandon the epoch and start over: the abandoned colors remain
  // inside the next token's [floor, epoch) counting range, so a regenerated
  // estimate can only be delayed, never unsafely high. The root initiates
  // every epoch, so epoch_ + 1 is globally fresh and any straggler copy of
  // the old token dies at the first NIC that has seen the new one.
  ctx_->stats().counter("gvt.token_regens").add(1);
  if (ctx_->trace().enabled(TraceCat::kGvt)) {
    ctx_->trace().record({ctx_->now(), VirtualTime::zero(), TraceCat::kGvt,
                          TracePoint::kGvtTokenRegen, false, ctx_->node_id(),
                          kInvalidNode, kInvalidEvent, epoch_,
                          static_cast<std::uint64_t>(last_handled_round_)});
  }
  held_token_.reset();
  out_token_.reset();
  estimating_ = false;
  return initiate();
}

SimTime GvtFirmware::maybe_rebroadcast() {
  if (!is_root() || !ctx_->cost().rel_enabled) return SimTime::zero();
  hw::Mailbox& mb = ctx_->mailbox();
  if (mb.gvt_epoch == 0) return SimTime::zero();  // nothing published yet
  const SimTime interval = ctx_->cost().us(ctx_->cost().gvt_rebroadcast_us);
  if (ctx_->now() - last_rebroadcast_ < interval) return SimTime::zero();
  last_rebroadcast_ = ctx_->now();
  ctx_->stats().counter("gvt.rebroadcasts").add(1);
  for (NodeId n = 0; n < ctx_->world_size(); ++n) {
    if (n == ctx_->node_id()) continue;
    hw::Packet pkt;
    pkt.hdr.kind = hw::PacketKind::kGvtBroadcast;
    pkt.hdr.dst = n;
    pkt.hdr.size_bytes = static_cast<std::uint32_t>(ctx_->cost().gvt_ctrl_bytes);
    pkt.hdr.gvt.gvt = mb.gvt;
    pkt.hdr.gvt.epoch = mb.gvt_epoch;
    ctx_->emit(std::move(pkt));
  }
  return ctx_->cost().us(ctx_->cost().nic_token_handle_us);
}

SimTime GvtFirmware::handle_token(const hw::GvtFields& token) {
  // Fabric duplicates and zombie tokens from abandoned epochs arrive here
  // under fault injection. (epoch, round) strictly increases at every NIC of
  // a healthy ring, so anything not above the last handled pair is discarded
  // — dropping a token is always safe (GVT is merely delayed, and the root
  // regenerates if the live token was the casualty).
  const bool fresh =
      token.epoch > last_handled_epoch_ ||
      (token.epoch == last_handled_epoch_ &&
       static_cast<std::int64_t>(token.round) > last_handled_round_);
  if (!fresh) {
    ctx_->stats().counter("gvt.tokens_stale").add(1);
    if (ctx_->trace().enabled(TraceCat::kGvt)) {
      ctx_->trace().record({ctx_->now(), token.t, TraceCat::kGvt,
                            TracePoint::kGvtTokenStale, false, ctx_->node_id(),
                            kInvalidNode, kInvalidEvent, token.epoch,
                            static_cast<std::uint64_t>(token.round)});
    }
    return ctx_->cost().us(ctx_->cost().nic_token_handle_us);
  }
  // A newer epoch supersedes whatever older token this NIC still holds or
  // has queued for forwarding (the root abandoned that estimation).
  if (held_token_ && held_token_->epoch < token.epoch) {
    ctx_->stats().counter("gvt.tokens_stale").add(1);
    held_token_.reset();
  }
  if (out_token_ && out_token_->epoch < token.epoch) {
    ctx_->stats().counter("gvt.tokens_stale").add(1);
    out_token_.reset();
  }
  NW_CHECK_MSG(!held_token_, "second GVT token while one is held (ring protocol broken)");
  last_handled_epoch_ = token.epoch;
  last_handled_round_ = static_cast<std::int64_t>(token.round);
  if (is_root()) last_est_activity_ = ctx_->now();
  if (epoch_ < token.epoch) {
    // The cut passes this NIC now: later wire exits are colored `epoch`.
    epoch_ = token.epoch;
  }
  if (reporting_epoch_ != token.epoch) {
    reporting_epoch_ = token.epoch;
    reported_sent_ = 0;
    reported_recv_ = 0;
  }
  held_token_ = token;
  hold_start_ = ctx_->now();
  if (ctx_->trace().enabled(TraceCat::kGvt)) {
    ctx_->trace().record({ctx_->now(), token.t, TraceCat::kGvt,
                          TracePoint::kGvtTokenHandle, false, ctx_->node_id(),
                          kInvalidNode, kInvalidEvent, token.epoch,
                          static_cast<std::uint64_t>(token.round)});
  }

  // Ask the host for T. The notification goes up the same FIFO path as
  // event traffic, which is the consistency barrier (see warped/gvt_nic.hpp).
  hw::Mailbox& mb = ctx_->mailbox();
  mb.handshake_requested = true;
  mb.handshake_epoch = token.epoch;
  hw::Packet notify;
  notify.hdr.kind = hw::PacketKind::kNicGvtToken;
  notify.hdr.src = ctx_->node_id();
  notify.hdr.dst = ctx_->node_id();
  notify.hdr.size_bytes = static_cast<std::uint32_t>(ctx_->cost().gvt_ctrl_bytes);
  notify.hdr.gvt.epoch = token.epoch;
  ctx_->deliver_to_host(std::move(notify));
  return ctx_->cost().us(ctx_->cost().nic_token_handle_us);
}

SimTime GvtFirmware::resolve_handshake(std::uint64_t epoch, VirtualTime host_t) {
  if (!held_token_ || held_token_->epoch != epoch) return SimTime::zero();
  hw::GvtFields token = *held_token_;
  held_token_.reset();
  if (ctx_->trace().enabled(TraceCat::kGvt)) {
    ctx_->trace().record({ctx_->now(), host_t, TraceCat::kGvt,
                          TracePoint::kGvtHandshake, false, ctx_->node_id(),
                          kInvalidNode, kInvalidEvent, epoch, 0});
  }

  const std::uint32_t e = token.epoch;
  if (token.phase == 0) {
    // Whites are every color in [floor, e). Fault-free the floor is always
    // e - 1, which reduces to the classic single-epoch count; after a token
    // regeneration the range also covers the abandoned epochs, whose
    // in-flight messages must still be proven drained before completion.
    const std::uint32_t f = static_cast<std::uint32_t>(token.floor);
    std::int64_t s = 0;
    std::int64_t r = 0;
    for (auto it = sent_.lower_bound(f); it != sent_.end() && it->first < e; ++it)
      s += it->second;
    for (auto it = received_.lower_bound(f); it != received_.end() && it->first < e; ++it)
      r += it->second;
    token.white_count += (s - reported_sent_) - (r - reported_recv_);
    reported_sent_ = s;
    reported_recv_ = r;
  }
  token.t = VirtualTime::min(token.t, host_t);
  token.tmin = VirtualTime::min(token.tmin, map_min(tmin_sent_, e));

  return dispatch_token(token);
}

void GvtFirmware::note_token_release() {
  if (ctx_->entity().enabled()) {
    ctx_->entity().record_gvt_token_hold(
        ctx_->node_id(),
        static_cast<std::uint64_t>((ctx_->now() - hold_start_).ns));
  }
}

SimTime GvtFirmware::dispatch_token(hw::GvtFields token) {
  if (!is_root()) {
    queue_outgoing(token);
    return SimTime::zero();
  }

  // Root sighting. Convention: the root forwards with round >= 1, so a
  // round-0 token here is the initiation visit (no circulation happened yet).
  if (token.round == 0) {
    token.round = 1;
    queue_outgoing(token);
    return SimTime::zero();
  }

  // A circulation completed (the root's own contribution was folded in by
  // resolve_handshake — a root sighting is both a return and a visit).
  ctx_->stats().counter("gvt.rounds").add(1);
  if (token.white_count != 0) {
    token.round += 1;
    NW_CHECK_MSG(token.round < 1000000, "NIC GVT counting never converges");
    queue_outgoing(token);
    return SimTime::zero();
  }
  // All whites received; every receipt was reported at a visit whose
  // handshake followed it through the FIFO rx barrier, so the accumulated
  // minima are a sound bound.
  note_token_release();
  return complete(VirtualTime::min(token.t, token.tmin), token.epoch);
}

void GvtFirmware::queue_outgoing(hw::GvtFields token) {
  if (out_token_) {
    // Only a newer epoch may displace a queued token (its epoch was
    // abandoned); within an epoch an overwrite is a protocol bug.
    NW_CHECK_MSG(out_token_->epoch < token.epoch, "outgoing token overwrite");
    ctx_->stats().counter("gvt.tokens_stale").add(1);
    out_token_.reset();
  }
  out_token_ = token;
  out_dst_ = next_rank();
  out_deadline_ = ctx_->now() + SimTime::from_us(opts_.piggyback_window_us);
  if (!opts_.piggyback_tokens) {
    // Ablation A1: no piggybacking — always a dedicated wire token. Emission
    // is deferred to the poll tick closest to "now" by zeroing the deadline.
    out_deadline_ = ctx_->now();
  }
}

SimTime GvtFirmware::emit_wire_token() {
  NW_CHECK(out_token_);
  note_token_release();
  if (out_dst_ == ctx_->node_id()) {
    // Degenerate 1-node ring: the token "circulates" back to us instantly.
    const hw::GvtFields token = *out_token_;
    out_token_.reset();
    return handle_token(token) + ctx_->cost().us(ctx_->cost().nic_token_handle_us);
  }
  hw::Packet pkt;
  pkt.hdr.kind = hw::PacketKind::kNicGvtToken;
  pkt.hdr.dst = out_dst_;
  pkt.hdr.size_bytes = static_cast<std::uint32_t>(ctx_->cost().gvt_ctrl_bytes);
  pkt.hdr.gvt = *out_token_;
  if (ctx_->trace().enabled(TraceCat::kGvt)) {
    ctx_->trace().record({ctx_->now(), out_token_->t, TraceCat::kGvt,
                          TracePoint::kGvtTokenEmit, false, ctx_->node_id(),
                          out_dst_, kInvalidEvent, out_token_->epoch,
                          static_cast<std::uint64_t>(out_token_->round)});
  }
  out_token_.reset();
  ctx_->stats().counter("gvt.wire_tokens").add(1);
  ctx_->emit(std::move(pkt));
  return ctx_->cost().us(ctx_->cost().nic_token_handle_us);
}

SimTime GvtFirmware::complete(VirtualTime gvt_value, std::uint32_t epoch) {
  estimating_ = false;
  last_completion_ = ctx_->now();
  last_completed_epoch_ = epoch;   // next token's floor
  last_rebroadcast_ = ctx_->now();  // a fresh broadcast is going out right now
  events_base_ = ctx_->mailbox().events_processed;
  if (ctx_->trace().enabled(TraceCat::kGvt)) {
    ctx_->trace().record({ctx_->now(), gvt_value, TraceCat::kGvt,
                          TracePoint::kGvtComplete, false, ctx_->node_id(),
                          kInvalidNode, kInvalidEvent, epoch, 0});
  }

  // Tell every other NIC (wire broadcast, no host involvement there either).
  for (NodeId n = 0; n < ctx_->world_size(); ++n) {
    if (n == ctx_->node_id()) continue;
    hw::Packet pkt;
    pkt.hdr.kind = hw::PacketKind::kGvtBroadcast;
    pkt.hdr.dst = n;
    pkt.hdr.size_bytes = static_cast<std::uint32_t>(ctx_->cost().gvt_ctrl_bytes);
    pkt.hdr.gvt.gvt = gvt_value;
    pkt.hdr.gvt.epoch = epoch;
    ctx_->emit(std::move(pkt));
  }
  return adopt_gvt(gvt_value, epoch) +
         ctx_->cost().us(ctx_->cost().nic_token_handle_us);
}

SimTime GvtFirmware::adopt_gvt(VirtualTime gvt_value, std::uint32_t epoch) {
  hw::Mailbox& mb = ctx_->mailbox();
  if (mb.gvt < gvt_value) {
    mb.gvt = gvt_value;
    mb.gvt_epoch = epoch;
    if (ctx_->trace().enabled(TraceCat::kGvt)) {
      ctx_->trace().record({ctx_->now(), gvt_value, TraceCat::kGvt,
                            TracePoint::kGvtAdopt, false, ctx_->node_id(),
                            kInvalidNode, kInvalidEvent, epoch, 0});
    }
  }
  // Colors below a completed epoch are proven drained cluster-wide (that is
  // exactly what white_count == 0 established), so all of them can be pruned.
  // Fault-free this removes only epoch - 1; after a token regeneration it
  // also collects the abandoned epochs' counters.
  sent_.erase(sent_.begin(), sent_.lower_bound(epoch));
  received_.erase(received_.begin(), received_.lower_bound(epoch));
  tmin_sent_.erase(tmin_sent_.begin(), tmin_sent_.lower_bound(epoch));
  // Nudge the host so fossil collection (and termination) is timely.
  hw::Packet notify;
  notify.hdr.kind = hw::PacketKind::kGvtBroadcast;
  notify.hdr.src = ctx_->node_id();
  notify.hdr.dst = ctx_->node_id();
  notify.hdr.size_bytes = static_cast<std::uint32_t>(ctx_->cost().gvt_ctrl_bytes);
  notify.hdr.gvt.gvt = gvt_value;
  ctx_->deliver_to_host(std::move(notify));
  return ctx_->cost().us(ctx_->cost().nic_token_handle_us);
}

hw::Firmware::HookResult GvtFirmware::on_host_tx(hw::Packet& pkt) {
  SimTime cost = ctx_->cost().us(ctx_->cost().nic_per_packet_us);
  if (pkt.hdr.gvt_handshake) {
    // Strip the piggybacked host reply.
    const std::uint64_t e = pkt.hdr.gvt.epoch;
    const VirtualTime t = pkt.hdr.gvt.t;
    pkt.hdr.gvt_handshake = false;
    pkt.hdr.gvt = hw::GvtFields{};
    cost += resolve_handshake(e, t);
  }
  return {Action::kForward, cost};
}

SimTime GvtFirmware::on_wire_tx(hw::Packet& pkt) {
  if (pkt.hdr.kind != hw::PacketKind::kEvent) return SimTime::zero();
  SimTime cost = ctx_->cost().us(ctx_->cost().nic_gvt_check_us);
  // Wire-level coloring and white counting.
  pkt.hdr.color_epoch = epoch_;
  sent_[epoch_] += 1;
  auto [it, fresh] = tmin_sent_.try_emplace(epoch_, VirtualTime::inf());
  it->second = VirtualTime::min(it->second, pkt.hdr.recv_ts);

  // Opportunistic token piggybacking onto a message already going our way.
  if (out_token_ && pkt.hdr.dst == out_dst_) {
    note_token_release();
    pkt.hdr.gvt_token_pb = true;
    pkt.hdr.gvt = *out_token_;
    if (ctx_->trace().enabled(TraceCat::kGvt)) {
      ctx_->trace().record({ctx_->now(), out_token_->t, TraceCat::kGvt,
                            TracePoint::kGvtTokenPiggyback, false, ctx_->node_id(),
                            out_dst_, pkt.hdr.event_id, out_token_->epoch,
                            static_cast<std::uint64_t>(out_token_->round)});
    }
    out_token_.reset();
    ctx_->stats().counter("gvt.tokens_piggybacked").add(1);
  }
  return cost;
}

hw::Firmware::HookResult GvtFirmware::on_net_rx(hw::Packet& pkt) {
  switch (pkt.hdr.kind) {
    case hw::PacketKind::kNicGvtToken: {
      const SimTime cost = handle_token(pkt.hdr.gvt);
      return {Action::kConsume, cost};
    }
    case hw::PacketKind::kGvtBroadcast: {
      const SimTime cost = adopt_gvt(pkt.hdr.gvt.gvt, pkt.hdr.gvt.epoch);
      return {Action::kConsume, cost};
    }
    case hw::PacketKind::kEvent: {
      SimTime cost = ctx_->cost().us(ctx_->cost().nic_per_packet_us) +
                     ctx_->cost().us(ctx_->cost().nic_gvt_check_us);
      received_[pkt.hdr.color_epoch] += 1;
      if (pkt.hdr.gvt_token_pb) {
        const hw::GvtFields token = pkt.hdr.gvt;
        pkt.hdr.gvt_token_pb = false;
        pkt.hdr.gvt = hw::GvtFields{};
        cost += handle_token(token);
      }
      return {Action::kForward, cost};
    }
    default:
      return {Action::kForward, ctx_->cost().us(ctx_->cost().nic_per_packet_us)};
  }
}

}  // namespace nicwarp::firmware
