// NIC-resident Mattern GVT (§3.1 of the paper).
//
// The whole token protocol runs on the NIC processor:
//  * message coloring and white counting happen at the *wire* (on_wire_tx /
//    on_net_rx), so NIC queues are accounted exactly;
//  * GVT tokens are NIC-generated: they never cross an I/O bus and never
//    cost host CPU. Where possible the token piggybacks on an outgoing
//    event message already headed for the next LP in the ring
//    ("opportunistically forwards the GVT information");
//  * the only host involvement per hop is the T handshake: the NIC sends a
//    notification up the FIFO rx path, and the host answers by piggybacking
//    T on its next outgoing event (or a cheap dedicated mailbox write).
//
// The price is a per-packet check on every message in both directions —
// the overhead visible on the right side of the paper's Figure 4.
#pragma once

#include <map>
#include <optional>

#include "hw/firmware.hpp"

namespace nicwarp::firmware {

struct GvtFirmwareOptions {
  std::int64_t period = 100;        // host events between initiations (root)
  double autonomy_us = 500.0;       // also initiate at least this often
  double poll_interval_us = 40.0;   // NIC housekeeping timer
  double poll_cost_us = 0.4;
  double piggyback_window_us = 30.0;  // wait for a ride before a wire token
  bool piggyback_tokens = true;       // ablation A1
};

class GvtFirmware : public hw::Firmware {
 public:
  explicit GvtFirmware(GvtFirmwareOptions opts) : opts_(opts) {}

  void attach(hw::NicContext& ctx) override;
  HookResult on_host_tx(hw::Packet& pkt) override;
  SimTime on_wire_tx(hw::Packet& pkt) override;
  HookResult on_net_rx(hw::Packet& pkt) override;

 private:
  bool is_root() const { return ctx_->node_id() == 0; }
  NodeId next_rank() const { return (ctx_->node_id() + 1) % ctx_->world_size(); }

  SimTime poll();
  SimTime maybe_initiate();
  SimTime initiate();  // unconditional part of maybe_initiate
  // Root, unreliable fabric only: abandon an estimation whose token went
  // missing and start a fresh epoch whose floor still covers the abandoned
  // colors (GVT delayed, never unsafe).
  SimTime maybe_regenerate();
  // Root, unreliable fabric only: re-announce the current GVT so a lost
  // broadcast cannot strand a node (matters for termination, when the root
  // stops right after publishing the final value).
  SimTime maybe_rebroadcast();
  // Token arrived (wire, piggybacked, or locally created at the root).
  SimTime handle_token(const hw::GvtFields& token);
  // Host reply (T) available for the held token.
  SimTime resolve_handshake(std::uint64_t epoch, VirtualTime host_t);
  // Contribution applied; move the token along (or judge it at the root).
  SimTime dispatch_token(hw::GvtFields token);
  void queue_outgoing(hw::GvtFields token);
  SimTime emit_wire_token();
  SimTime complete(VirtualTime gvt_value, std::uint32_t epoch);
  SimTime adopt_gvt(VirtualTime gvt_value, std::uint32_t epoch);

  GvtFirmwareOptions opts_;

  // Wire-level coloring state.
  std::uint32_t epoch_{0};
  std::map<std::uint32_t, std::int64_t> sent_;
  std::map<std::uint32_t, std::int64_t> received_;
  std::map<std::uint32_t, VirtualTime> tmin_sent_;
  std::uint32_t reporting_epoch_{0};
  std::int64_t reported_sent_{0};
  std::int64_t reported_recv_{0};

  // Token in flight through this NIC.
  std::optional<hw::GvtFields> held_token_;  // waiting for the host handshake
  std::optional<hw::GvtFields> out_token_;   // waiting for a piggyback ride
  NodeId out_dst_{kInvalidNode};
  SimTime out_deadline_{SimTime::zero()};
  SimTime hold_start_{SimTime::zero()};  // custody start (heatmap attribution)

  // Heatmap: per-node token custody time (handle_token -> emission or
  // completion, simulated ns). No-op unless the EntityStats is enabled.
  void note_token_release();

  // Token-loss tolerance. (epoch, round) strictly increases at every NIC in
  // a healthy ring, so anything at or below the last handled pair is a
  // fabric duplicate or a zombie from an abandoned epoch: discard it.
  std::uint64_t last_handled_epoch_{0};
  std::int64_t last_handled_round_{-1};

  // Root estimation state.
  bool estimating_{false};
  std::int64_t events_base_{0};
  SimTime last_completion_{SimTime::zero()};
  std::uint32_t last_completed_epoch_{0};  // floor carried by the next token
  SimTime last_est_activity_{SimTime::zero()};  // token sightings at the root
  SimTime last_rebroadcast_{SimTime::zero()};
};

}  // namespace nicwarp::firmware
