// Early message cancellation on the NIC (§3.2 of the paper).
//
// When an anti-message for object O (receive timestamp ta) passes through
// the NIC on its way up to the host, any *positive* event message from O
// still sitting in the send ring with send_ts > ta — and generated before
// the host processed that anti (decided by the piggybacked per-object
// anti counter) — is dropped in place: it is doomed to be cancelled anyway,
// so dropping saves its wire/bus/host costs, its eventual anti-message, and
// the rollback it would have caused at the destination.
//
// Bookkeeping shared with the host (the paper's 10-entry per-object rings):
//  * dropped positive ids go into mailbox.dropped_ids[O] so the host
//    suppresses the matching anti-message at rollback time;
//  * anti-messages the host already emitted before noticing are filtered
//    here (on_host_tx / ring scan) — FIFO ordering guarantees such an anti
//    is always behind its positive, never past it;
//  * every drop/filter is also appended to mailbox.drop_notices so the
//    host-side GVT accounting (Mattern's white counts, pGVT's pending acks)
//    stays sound;
//  * per-destination drop counts are stamped into `dropped_pb` on the next
//    departing packet (receivers also detect the BIP sequence gap — §3.2's
//    credit-repair fix).
//
// Safety valves: if a per-object ring or the notice queue is full, or the
// per-object anti-record table overflows, the firmware simply stops dropping
// (correctness never depends on a drop happening).
#pragma once

#include <unordered_map>
#include <vector>

#include "hw/firmware.hpp"

namespace nicwarp::firmware {

struct CancelFirmwareOptions {
  std::size_t max_anti_records_per_object = 32;
  // Match the kernel's rollback scope. When true (LP-wide rollback, the
  // paper's Fig. 3b semantics), an anti's timestamp dooms queued positives
  // from ANY object on this node; when false, only those from the anti's
  // destination object.
  bool lp_scope = true;
};

class CancelFirmware : public hw::Firmware {
 public:
  explicit CancelFirmware(CancelFirmwareOptions opts = {}) : opts_(opts) {}

  HookResult on_host_tx(hw::Packet& pkt) override;
  SimTime on_wire_tx(hw::Packet& pkt) override;
  HookResult on_net_rx(hw::Packet& pkt) override;

 private:
  struct AntiRecord {
    VirtualTime ta;    // the anti's receive timestamp
    std::uint64_t k;   // host anti-counter value once the host processes it
    EventId anti_id{kInvalidEvent};  // the anti itself (drop attribution)
  };

  // Record-table key under the configured scope.
  ObjectId record_key(ObjectId obj) const;
  // True if `hdr` (a positive, not yet on the wire) is doomed; on a match
  // `cause` receives the dooming anti's id.
  bool doomed(const hw::PacketHeader& hdr, EventId* cause) const;
  // Records a drop in the shared structures; returns false (and undoes
  // nothing) when shared space is exhausted — caller must then not drop.
  bool record_drop(const hw::PacketHeader& hdr, EventId cause_anti);
  void prune_records(ObjectId obj, std::uint64_t host_counter);
  SimTime scan_send_ring();

  CancelFirmwareOptions opts_;
  // Destination objects living on this node, with pending anti records.
  std::unordered_map<ObjectId, std::vector<AntiRecord>> records_;
  // Count of antis forwarded to the host per local destination object.
  std::unordered_map<ObjectId, std::uint64_t> antis_delivered_;
  // Per-destination-node drop counts awaiting a dropped_pb ride.
  std::unordered_map<NodeId, std::uint32_t> pending_dropped_pb_;
};

}  // namespace nicwarp::firmware
