// Composition of the two paper optimizations on one NIC: NIC-level GVT plus
// early message cancellation.
//
// Hook ordering matters:
//  * on_host_tx: GVT strips the host's handshake reply FIRST — even from a
//    packet the cancellation logic is about to drop (losing a handshake
//    would deadlock the token);
//  * on_net_rx: GVT counts the arriving event at the wire before the
//    cancellation logic inspects it (counts must be wire-exact);
//  * on_wire_tx: cancellation stamps its drop counters, then GVT colors the
//    packet and may attach a piggybacked token.
// Costs compose additively, minus the base per-packet handling that would
// otherwise be double-charged.
#pragma once

#include "firmware/cancel_firmware.hpp"
#include "firmware/gvt_firmware.hpp"

namespace nicwarp::firmware {

class CombinedFirmware : public hw::Firmware {
 public:
  CombinedFirmware(GvtFirmwareOptions gvt_opts, CancelFirmwareOptions cancel_opts)
      : gvt_(gvt_opts), cancel_(cancel_opts) {}

  void attach(hw::NicContext& ctx) override {
    Firmware::attach(ctx);
    gvt_.attach(ctx);
    cancel_.attach(ctx);
  }

  HookResult on_host_tx(hw::Packet& pkt) override {
    const HookResult g = gvt_.on_host_tx(pkt);
    const HookResult c = cancel_.on_host_tx(pkt);
    return {combine(g.action, c.action), g.cost + c.cost - base_cost()};
  }

  SimTime on_wire_tx(hw::Packet& pkt) override {
    const SimTime c = cancel_.on_wire_tx(pkt);
    const SimTime g = gvt_.on_wire_tx(pkt);
    return c + g;
  }

  HookResult on_net_rx(hw::Packet& pkt) override {
    const HookResult g = gvt_.on_net_rx(pkt);
    if (g.action == Action::kConsume) return g;  // a token/broadcast died here
    const HookResult c = cancel_.on_net_rx(pkt);
    return {combine(g.action, c.action), g.cost + c.cost - base_cost()};
  }

 private:
  SimTime base_cost() const { return ctx_->cost().us(ctx_->cost().nic_per_packet_us); }

  static Action combine(Action a, Action b) {
    if (a == Action::kDrop || b == Action::kDrop) return Action::kDrop;
    if (a == Action::kConsume || b == Action::kConsume) return Action::kConsume;
    return Action::kForward;
  }

  GvtFirmware gvt_;
  CancelFirmware cancel_;
};

}  // namespace nicwarp::firmware
