// CombinedFirmware is header-only; this TU exists so the library has a home
// for it and future out-of-line definitions.
#include "firmware/combined_firmware.hpp"
