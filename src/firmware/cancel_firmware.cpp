#include "firmware/cancel_firmware.hpp"

#include "core/assert.hpp"
#include "core/log.hpp"

namespace nicwarp::firmware {

ObjectId CancelFirmware::record_key(ObjectId obj) const {
  return opts_.lp_scope ? kInvalidObject : obj;
}

bool CancelFirmware::doomed(const hw::PacketHeader& hdr, EventId* cause) const {
  if (hdr.kind != hw::PacketKind::kEvent || hdr.negative) return false;
  auto it = records_.find(record_key(hdr.src_obj));
  if (it == records_.end()) return false;
  for (const AntiRecord& rec : it->second) {
    // Generated before the host processed this anti, and optimistically
    // beyond the rollback point: the host is guaranteed to cancel it.
    if (hdr.send_ts > rec.ta && hdr.anti_counter_pb < rec.k) {
      if (cause != nullptr) *cause = rec.anti_id;
      return true;
    }
  }
  return false;
}

bool CancelFirmware::record_drop(const hw::PacketHeader& hdr, EventId cause_anti) {
  hw::Mailbox& mb = ctx_->mailbox();
  const bool notice_full = mb.drop_notices.size() >= hw::Mailbox::kDropNoticeSoftLimit;
  auto& ring = mb.dropped_ring(hdr.src_obj, ctx_->cost().nic_event_id_ring_slots);
  if (notice_full || !ring.try_push(hdr.event_id)) {
    // The paper's size-10 buffer (or the notice queue) is full: the doomed
    // positive must travel and be cancelled by its anti the slow way.
    if (ctx_->trace().enabled(TraceCat::kCancel)) {
      ctx_->trace().record({ctx_->now(), hdr.recv_ts, TraceCat::kCancel,
                            TracePoint::kCancelOverflow, false, ctx_->node_id(),
                            hdr.dst, hdr.event_id, 0, 0});
    }
    return false;
  }
  mb.drop_notices.push_back(hw::DropNotice{hdr.event_id, hdr.src_obj, hdr.dst,
                                           hdr.color_epoch, hdr.recv_ts,
                                           /*negative=*/false, cause_anti});
  pending_dropped_pb_[hdr.dst] += 1;
  ctx_->stats().counter("cancel.dropped_positive").add(1);
  if (ctx_->trace().enabled(TraceCat::kCancel)) {
    // b = dooming anti (0 = unknown) so offline analysis can attribute the
    // saving to the cascade that earned it.
    ctx_->trace().record({ctx_->now(), hdr.recv_ts, TraceCat::kCancel,
                          TracePoint::kCancelDropPositive, false, ctx_->node_id(),
                          hdr.dst, hdr.event_id, 0,
                          cause_anti != kInvalidEvent ? cause_anti : 0});
  }
  if (hdr.event_id == traced_event()) {
    std::fprintf(stderr, "[trace %llu] DROPPED at nic=%u send_ts=%lld counter=%llu t=%lld\n",
                 (unsigned long long)hdr.event_id, ctx_->node_id(), (long long)hdr.send_ts.t,
                 (unsigned long long)hdr.anti_counter_pb, (long long)ctx_->now().ns);
  }
  return true;
}

void CancelFirmware::prune_records(ObjectId obj, std::uint64_t host_counter) {
  auto it = records_.find(obj);
  if (it == records_.end()) return;
  auto& v = it->second;
  std::erase_if(v, [host_counter](const AntiRecord& r) { return host_counter >= r.k; });
  if (v.empty()) records_.erase(it);
}

hw::Firmware::HookResult CancelFirmware::on_host_tx(hw::Packet& pkt) {
  SimTime cost = ctx_->cost().us(ctx_->cost().nic_per_packet_us);
  if (pkt.hdr.kind != hw::PacketKind::kEvent) return {Action::kForward, cost};
  cost += ctx_->cost().us(ctx_->cost().nic_cancel_base_us);

  if (pkt.hdr.negative) {
    // The host emitted an anti whose positive we already dropped in place:
    // filter it (the pair must vanish together). Consumes the ring entry.
    if (ctx_->mailbox().take_dropped(pkt.hdr.src_obj, pkt.hdr.event_id)) {
      hw::Mailbox& mb = ctx_->mailbox();
      if (mb.drop_notices.size() < hw::Mailbox::kMaxDropNotices) {
        mb.drop_notices.push_back(hw::DropNotice{pkt.hdr.event_id, pkt.hdr.src_obj,
                                                 pkt.hdr.dst, pkt.hdr.color_epoch,
                                                 pkt.hdr.recv_ts, /*negative=*/true});
      }
      pending_dropped_pb_[pkt.hdr.dst] += 1;
      ctx_->stats().counter("cancel.filtered_anti").add(1);
      if (ctx_->trace().enabled(TraceCat::kCancel)) {
        ctx_->trace().record({ctx_->now(), pkt.hdr.recv_ts, TraceCat::kCancel,
                              TracePoint::kCancelFilterAnti, true, ctx_->node_id(),
                              pkt.hdr.dst, pkt.hdr.event_id, /*a=in_ring*/ 0, 0});
      }
      if (pkt.hdr.event_id == traced_event()) {
        std::fprintf(stderr, "[trace %llu] ANTI FILTERED (host_tx) nic=%u t=%lld\n",
                     (unsigned long long)pkt.hdr.event_id, ctx_->node_id(),
                     (long long)ctx_->now().ns);
      }
      return {Action::kDrop, cost};
    }
    return {Action::kForward, cost};
  }

  // Positive from the host: the piggybacked anti counter tells us whether
  // the host has caught up with our records (prune) or this message was
  // generated pre-anti and is doomed (drop).
  prune_records(record_key(pkt.hdr.src_obj), pkt.hdr.anti_counter_pb);
  EventId cause = kInvalidEvent;
  if (doomed(pkt.hdr, &cause) && record_drop(pkt.hdr, cause)) {
    return {Action::kDrop, cost};
  }
  return {Action::kForward, cost};
}

SimTime CancelFirmware::on_wire_tx(hw::Packet& pkt) {
  // Stamp accumulated drop counts for this destination so its comm layer
  // can reconcile credits even before the BIP gap is observed.
  auto it = pending_dropped_pb_.find(pkt.hdr.dst);
  if (it != pending_dropped_pb_.end() && it->second > 0) {
    pkt.hdr.dropped_pb = it->second;
    it->second = 0;
  }
  return SimTime::zero();
}

SimTime CancelFirmware::scan_send_ring() {
  // Single FIFO-order pass: drop doomed positives, and filter an anti ONLY
  // when a positive with the same id was dropped *earlier in this walk*.
  // Event ids recur across cancel/re-send incarnations of the same logical
  // event; an anti positioned BEFORE a doomed positive in the ring pairs
  // with an earlier incarnation that already reached the wire, and filtering
  // it would leave that delivered positive permanently uncancelled.
  const SimTime cost = ctx_->cost().us(ctx_->cost().nic_cancel_scan_per_entry_us *
                                       static_cast<double>(ctx_->send_ring_size()));
  std::unordered_map<EventId, std::uint32_t> unmatched_drops;
  for (std::size_t i = 0; i < ctx_->send_ring_size();) {
    const hw::Packet& p = ctx_->send_ring_at(i);
    if (p.hdr.kind != hw::PacketKind::kEvent) {
      ++i;
      continue;
    }
    if (!p.hdr.negative) {
      EventId cause = kInvalidEvent;
      if (doomed(p.hdr, &cause) && record_drop(p.hdr, cause)) {
        unmatched_drops[p.hdr.event_id] += 1;
        ctx_->drop_from_send_ring(i);
        continue;  // same index now holds the next packet
      }
      ++i;
      continue;
    }
    // Negative: pair it with an earlier in-walk drop if one is waiting.
    auto it = unmatched_drops.find(p.hdr.event_id);
    if (it != unmatched_drops.end() && it->second > 0) {
      it->second -= 1;
      // Both halves die on the NIC; consume the ring entry (the host no
      // longer needs to suppress anything for this pair).
      ctx_->mailbox().take_dropped(p.hdr.src_obj, p.hdr.event_id);
      hw::Mailbox& mb = ctx_->mailbox();
      if (mb.drop_notices.size() < hw::Mailbox::kMaxDropNotices) {
        mb.drop_notices.push_back(hw::DropNotice{p.hdr.event_id, p.hdr.src_obj,
                                                 p.hdr.dst, p.hdr.color_epoch,
                                                 p.hdr.recv_ts, true});
      }
      pending_dropped_pb_[p.hdr.dst] += 1;
      ctx_->stats().counter("cancel.filtered_anti").add(1);
      if (ctx_->trace().enabled(TraceCat::kCancel)) {
        ctx_->trace().record({ctx_->now(), p.hdr.recv_ts, TraceCat::kCancel,
                              TracePoint::kCancelFilterAnti, true, ctx_->node_id(),
                              p.hdr.dst, p.hdr.event_id, /*a=in_ring*/ 1, 0});
      }
      if (p.hdr.event_id == traced_event()) {
        std::fprintf(stderr, "[trace %llu] ANTI FILTERED (ring) nic=%u t=%lld\n",
                     (unsigned long long)p.hdr.event_id, ctx_->node_id(),
                     (long long)ctx_->now().ns);
      }
      ctx_->drop_from_send_ring(i);
      continue;
    }
    ++i;
  }
  return cost;
}

hw::Firmware::HookResult CancelFirmware::on_net_rx(hw::Packet& pkt) {
  SimTime cost = ctx_->cost().us(ctx_->cost().nic_per_packet_us);
  if (pkt.hdr.kind != hw::PacketKind::kEvent) return {Action::kForward, cost};

  if (pkt.hdr.negative) {
    cost += ctx_->cost().us(ctx_->cost().nic_cancel_base_us);
    // An incoming anti for local object O: remember it and reap the send
    // ring. k is the host's anti counter *after* it processes this one.
    const ObjectId key = record_key(pkt.hdr.dst_obj);
    const std::uint64_t k = ++antis_delivered_[key];
    auto& recs = records_[key];
    if (recs.size() < opts_.max_anti_records_per_object) {
      recs.push_back(AntiRecord{pkt.hdr.recv_ts, k, pkt.hdr.event_id});
      cost += scan_send_ring();
    } else {
      ctx_->stats().counter("cancel.record_overflow").add(1);
    }
  }
  return {Action::kForward, cost};
}

}  // namespace nicwarp::firmware
