// Growable circular buffer — the unbounded counterpart of RingBuffer.
//
// Replaces std::deque in the comm/NIC datapath queues: one contiguous
// power-of-two array, indices masked, geometric growth, so steady-state
// push/pop touch no allocator at all (deque allocates/frees map nodes as the
// queue breathes). Elements here are 8-byte PacketRefs or sequence numbers,
// so the occasional grow-copy is trivially cheap.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/assert.hpp"

namespace nicwarp {

template <typename T>
class FlatRing {
 public:
  FlatRing() = default;

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  // Pops the oldest element. Precondition: !empty().
  T pop_front() {
    NW_CHECK(size_ > 0);
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) & mask_;
    --size_;
    return v;
  }

  const T& front() const {
    NW_CHECK(size_ > 0);
    return buf_[head_];
  }
  T& front() {
    NW_CHECK(size_ > 0);
    return buf_[head_];
  }

  // Indexed access, 0 == oldest. Precondition: i < size().
  const T& at(std::size_t i) const {
    NW_CHECK(i < size_);
    return buf_[(head_ + i) & mask_];
  }
  T& at(std::size_t i) {
    NW_CHECK(i < size_);
    return buf_[(head_ + i) & mask_];
  }

  // Inserts before logical index i (i == size() appends), preserving order.
  // O(n) shift; used only for the reliability layer's sorted void lists,
  // which are short by construction.
  void insert_at(std::size_t i, T v) {
    NW_CHECK(i <= size_);
    push_back(std::move(v));
    for (std::size_t j = size_ - 1; j > i; --j) {
      std::swap(at(j - 1), at(j));
    }
  }

  // Removes the element at logical index i (0 == oldest), preserving order.
  T remove_at(std::size_t i) {
    NW_CHECK(i < size_);
    T out = std::move(at(i));
    for (std::size_t j = i; j + 1 < size_; ++j) at(j) = std::move(at(j + 1));
    --size_;
    return out;
  }

  void reserve(std::size_t n) {
    if (n > buf_.size()) regrow(round_up(n));
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t c = 8;
    while (c < n) c <<= 1;
    return c;
  }

  void grow() { regrow(buf_.empty() ? 8 : buf_.size() * 2); }

  void regrow(std::size_t new_cap) {
    std::vector<T> nb(new_cap);
    for (std::size_t i = 0; i < size_; ++i) nb[i] = std::move(at(i));
    buf_.swap(nb);
    head_ = 0;
    mask_ = buf_.size() - 1;
  }

  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
  std::size_t mask_{0};
};

}  // namespace nicwarp
