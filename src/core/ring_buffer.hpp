// Fixed-capacity ring buffer.
//
// Models the bounded SRAM structures on the NIC (send/receive rings, the
// 10-entry per-object dropped-event-ID buffers from §3.2 of the paper), where
// overflow is a real protocol condition the firmware must handle — so
// try_push reports failure instead of growing.
#pragma once

#include <cstddef>
#include <vector>

#include "core/assert.hpp"

namespace nicwarp {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    NW_CHECK(capacity > 0);
  }

  bool try_push(T v) {
    if (size_ == buf_.size()) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(v);
    ++size_;
    return true;
  }

  // Pops the oldest element. Precondition: !empty().
  T pop() {
    NW_CHECK(size_ > 0);
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return v;
  }

  const T& front() const {
    NW_CHECK(size_ > 0);
    return buf_[head_];
  }

  // Indexed access, 0 == oldest. Precondition: i < size().
  const T& at(std::size_t i) const {
    NW_CHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }
  T& at(std::size_t i) {
    NW_CHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  // Removes the element at logical index i (0 == oldest), preserving order.
  // O(n); rings here are small by construction (NIC memory limits).
  T remove_at(std::size_t i) {
    NW_CHECK(i < size_);
    T out = std::move(at(i));
    for (std::size_t j = i; j + 1 < size_; ++j) at(j) = std::move(at(j + 1));
    --size_;
    return out;
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buf_.size(); }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  void clear() { head_ = 0; size_ = 0; }

 private:
  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace nicwarp
