#include "core/log.hpp"

#include <cstdarg>
#include <cstdlib>

namespace nicwarp {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}
}  // namespace

std::uint64_t traced_event() {
  static const std::uint64_t id = [] {
    const char* e = std::getenv("NICWARP_TRACE_EVENT");
    return e ? std::strtoull(e, nullptr, 10) : 0ULL;
  }();
  return id;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lvl) { g_level = lvl; }

void log_line(LogLevel lvl, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_tag(lvl));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace nicwarp
