#include "core/log.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace nicwarp {

namespace {
LogLevel g_level = parse_log_level(std::getenv("NICWARP_LOG_LEVEL"), LogLevel::kWarn);
const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    case LogLevel::kTrace: return "T";
  }
  return "?";
}
}  // namespace

std::uint64_t traced_event() {
  static const std::uint64_t id = [] {
    const char* e = std::getenv("NICWARP_TRACE_EVENT");
    return e ? std::strtoull(e, nullptr, 10) : 0ULL;
  }();
  return id;
}

LogLevel parse_log_level(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  std::string lower;
  for (const char* p = text; *p; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "error") return LogLevel::kError;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "trace") return LogLevel::kTrace;
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end != text && *end == '\0' && v >= 0 && v <= 4) {
    return static_cast<LogLevel>(v);
  }
  return fallback;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lvl) { g_level = lvl; }

void log_line(LogLevel lvl, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_tag(lvl));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}

}  // namespace nicwarp
