#include "core/latency.hpp"

#include <cstdio>
#include <ostream>

#include "core/assert.hpp"

namespace nicwarp {

namespace {

// Matches the BENCH writer's number formatting so the same value prints the
// same bytes wherever it appears.
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const std::vector<double>& LatencyRecorder::latency_bounds() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    static constexpr double kMul[] = {1.0, 1.5, 2.0, 3.0, 5.0, 7.5};
    for (double decade = 0.01; decade <= 1e9; decade *= 10.0) {
      for (double m : kMul) b.push_back(decade * m);
    }
    return b;
  }();
  return bounds;
}

LatencyRecorder::LatencyRecorder()
    : delivery_vt_(latency_bounds()),
      delivery_us_(latency_bounds()),
      nic_wire_us_(latency_bounds()),
      commit_vt_(latency_bounds()),
      commit_us_(latency_bounds()) {}

LatencyRecorder& LatencyRecorder::null_recorder() {
  static LatencyRecorder r;
  return r;
}

void LatencyRecorder::clear() {
  delivery_vt_.reset();
  delivery_us_.reset();
  nic_wire_us_.reset();
  commit_vt_.reset();
  commit_us_.reset();
}

void LatencyRecorder::merge_from(const LatencyRecorder& other) {
  delivery_vt_.merge(other.delivery_vt_);
  delivery_us_.merge(other.delivery_us_);
  nic_wire_us_.merge(other.nic_wire_us_);
  commit_vt_.merge(other.commit_vt_);
  commit_us_.merge(other.commit_us_);
}

LatencyStats LatencyStats::from(const Histogram& h) {
  LatencyStats s;
  s.count = h.count();
  s.min = h.min();
  s.mean = h.mean();
  s.max = h.max();
  s.p50 = h.quantile(0.50);
  s.p99 = h.quantile(0.99);
  s.p999 = h.quantile(0.999);
  const auto& buckets = h.buckets();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) s.buckets.emplace_back(static_cast<std::int32_t>(i), buckets[i]);
  }
  return s;
}

LatencyReport LatencyRecorder::report() const {
  LatencyReport r;
  r.enabled = enabled_;
  r.delivery_vt = LatencyStats::from(delivery_vt_);
  r.delivery_us = LatencyStats::from(delivery_us_);
  r.nic_wire_us = LatencyStats::from(nic_wire_us_);
  r.commit_vt = LatencyStats::from(commit_vt_);
  r.commit_us = LatencyStats::from(commit_us_);
  return r;
}

void LatencyStats::to_json(std::ostream& os) const {
  os << "{\"count\": " << count << ", \"min\": " << fmt(min) << ", \"mean\": " << fmt(mean)
     << ", \"max\": " << fmt(max) << ", \"p50\": " << fmt(p50) << ", \"p99\": " << fmt(p99)
     << ", \"p999\": " << fmt(p999) << ", \"buckets\": [";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i) os << ", ";
    os << "[" << buckets[i].first << ", " << buckets[i].second << "]";
  }
  os << "]}";
}

const std::vector<const char*>& LatencyReport::metric_names() {
  static const std::vector<const char*> names = {
      "delivery_vt", "delivery_us", "nic_wire_us", "commit_vt", "commit_us"};
  return names;
}

const LatencyStats& LatencyReport::metric(std::size_t i) const {
  switch (i) {
    case 0: return delivery_vt;
    case 1: return delivery_us;
    case 2: return nic_wire_us;
    case 3: return commit_vt;
    case 4: return commit_us;
    default: break;
  }
  NW_CHECK(false);
  return delivery_vt;
}

void LatencyReport::to_json(std::ostream& os) const {
  os << "{\n"
     << "  \"type\": \"latency_report\",\n"
     << "  \"schema_version\": 1,\n"
     << "  \"enabled\": " << (enabled ? "true" : "false") << ",\n"
     << "  \"bounds\": [";
  const auto& bounds = LatencyRecorder::latency_bounds();
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i) os << ", ";
    os << fmt(bounds[i]);
  }
  os << "],\n";
  const auto& names = metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << "  \"" << names[i] << "\": ";
    metric(i).to_json(os);
    os << (i + 1 < names.size() ? ",\n" : "\n");
  }
  os << "}\n";
}

}  // namespace nicwarp
