// Tail-latency observability: deterministic log-bucketed latency histograms.
//
// A LatencyRecorder is owned by hw::Cluster (like the TraceRecorder) and
// shared by every layer via defaulted constructor pointers.  Hot paths guard
// every sample behind `if (latency.enabled())` — the same predicted-false
// branch idiom as tracing — so a disabled recorder costs one well-predicted
// branch and nothing else.
//
// All recorded times are *simulated* times (virtual-time ticks or modeled
// NIC/link cost microseconds from the DES engine clock), never wall clock,
// so every histogram bucket count, min, max, and interpolated quantile is
// byte-identical across reruns of the same seed.  That is what lets the
// BENCH regression gate diff p99.9 at --tolerance=0.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "core/stats.hpp"

namespace nicwarp {

// Deterministic summary of one latency histogram: exact min/mean/max,
// interpolated p50/p99/p99.9, and the sparse non-zero buckets.
struct LatencyStats {
  std::int64_t count{0};
  double min{0.0};
  double mean{0.0};
  double max{0.0};
  double p50{0.0};
  double p99{0.0};
  double p999{0.0};
  // Sparse (bucket_index, count) pairs over LatencyRecorder::latency_bounds()
  // (index bounds.size() = overflow). Only non-zero buckets are kept.
  std::vector<std::pair<std::int32_t, std::int64_t>> buckets;

  static LatencyStats from(const Histogram& h);

  // One compact {...} object on a single line, doubles formatted %.9g.
  void to_json(std::ostream& os) const;
};

// The five pipeline histograms, summarized. Field order here is the JSON
// field order everywhere (BENCH deterministic block, --latency-out report).
struct LatencyReport {
  bool enabled{false};
  LatencyStats delivery_vt;  // msg: send_ts -> recv_ts, virtual-time ticks
  LatencyStats delivery_us;  // msg: host send -> remote kernel insert, modeled us
  LatencyStats nic_wire_us;  // msg: host send -> remote NIC rx, modeled us
  LatencyStats commit_vt;    // event: recv_ts -> committing GVT, ticks
  LatencyStats commit_us;    // event: execution -> fossil-collected, modeled us

  // Names in field order, shared with the trace-schema manifest and tools.
  static const std::vector<const char*>& metric_names();
  const LatencyStats& metric(std::size_t i) const;

  // Standalone {"type": "latency_report", ...} document (--latency-out).
  void to_json(std::ostream& os) const;
};

class LatencyRecorder {
 public:
  LatencyRecorder();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // Call sites gate on enabled() *before* computing the sample; these only
  // fold it into the histograms.
  void record_delivery(std::int64_t vt_ticks, double us) {
    delivery_vt_.record(static_cast<double>(vt_ticks));
    delivery_us_.record(us);
  }
  void record_nic_wire(double us) { nic_wire_us_.record(us); }
  void record_commit(std::int64_t vt_ticks, double us) {
    commit_vt_.record(static_cast<double>(vt_ticks));
    commit_us_.record(us);
  }

  LatencyReport report() const;

  // Zeroes all histograms in place; enabled flag is kept.
  void clear();

  // Folds another recorder's samples in histogram-by-histogram (per-shard
  // latency merge, docs/SHARDING.md). Deterministic: bucket counts, sums and
  // exact min/max merge exactly as recording the union would have.
  void merge_from(const LatencyRecorder& other);

  // HDR-style bounds: per-decade multipliers {1, 1.5, 2, 3, 5, 7.5} from
  // 0.01 up through 1e9 — fine enough near the median, wide enough that the
  // overflow bucket never fires for modeled times.
  static const std::vector<double>& latency_bounds();

  // Shared disabled instance for construction paths without a cluster.
  static LatencyRecorder& null_recorder();

 private:
  bool enabled_{false};
  Histogram delivery_vt_;
  Histogram delivery_us_;
  Histogram nic_wire_us_;
  Histogram commit_vt_;
  Histogram commit_us_;
};

}  // namespace nicwarp
