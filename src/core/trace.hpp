// Structured virtual-time trace recorder.
//
// Every layer (kernel, comm, NIC, firmware, network) can record fixed-size
// lifecycle points into one ring-buffered recorder owned by the cluster.
// The discipline matches NW_LOG_AT: a site costs exactly one branch (a mask
// test against an inline member) when its category is disabled, so leaving
// the instrumentation compiled in does not perturb benchmark timings.
//
// Records are point samples on the simulated wall clock (SimTime); the
// exporters assemble them into spans. Two output formats:
//
//  * Chrome trace_event JSON (chrome://tracing, Perfetto) — message
//    lifecycles and GVT estimations become async spans, cancellations
//    become instants; every event carries the Time-Warp virtual time in
//    its args.
//  * JSONL — one record per line, for tools/trace_summary.py and ad-hoc
//    scripting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"

namespace nicwarp {

// Trace categories, enabled independently (bitmask).
enum class TraceCat : std::uint8_t {
  kMsg = 0,       // event-message lifecycle: host enqueue ... deliver/drop
  kGvt = 1,       // GVT token hops, handshakes, completions, adoptions
  kCancel = 2,    // early-cancellation decisions on the NIC
  kRollback = 3,  // host rollbacks (count + depth)
  kCredit = 4,    // flow control: stalls, grants, refunds, sequence gaps
  kFault = 5,     // injected fabric faults + reliability-layer recovery
  kWatchdog = 6,  // GVT-progress watchdog diagnostics (stall snapshots)
};
inline constexpr std::uint32_t trace_bit(TraceCat c) {
  return 1u << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kTraceAll = trace_bit(TraceCat::kMsg) |
                                           trace_bit(TraceCat::kGvt) |
                                           trace_bit(TraceCat::kCancel) |
                                           trace_bit(TraceCat::kRollback) |
                                           trace_bit(TraceCat::kCredit) |
                                           trace_bit(TraceCat::kFault) |
                                           trace_bit(TraceCat::kWatchdog);

const char* trace_cat_name(TraceCat c);
// Parses "msg,gvt,cancel" / "all" / "" into a mask; unknown names are
// ignored. Returns 0 for an empty list.
std::uint32_t parse_trace_categories(std::string_view list);

// Where in the system a record was taken. Lifecycle ordering for kMsg:
// kHostEnqueue -> kNicStage -> kWireTx -> kWireDepart -> kNicRx ->
// kHostDeliver, with kNicDropTx / kNicDropRing as early terminals.
enum class TracePoint : std::uint8_t {
  // --- msg lifecycle ---
  kHostEnqueue = 0,  // kernel handed the event to the comm stack
  kNicStage,         // NIC staged it in the SRAM send ring
  kWireTx,           // link began serializing it
  kWireDepart,       // link finished serializing (packet fully on the wire)
  kNicRx,            // destination NIC received it from the wire
  kHostDeliver,      // destination kernel integrated it
  kNicDropTx,        // firmware dropped it at the host-tx hook (terminal)
  kNicDropRing,      // firmware dropped it out of the send ring (terminal)
  // --- gvt ---
  kGvtInitiate,        // root NIC started an estimation (a=epoch)
  kGvtTokenHandle,     // NIC took custody of a token (a=epoch, b=round)
  kGvtHandshake,       // host handshake resolved (a=epoch, vt=host T)
  kGvtTokenEmit,       // dedicated wire token emitted (a=epoch, peer=dst)
  kGvtTokenPiggyback,  // token attached to an outgoing event (a=epoch)
  kGvtComplete,        // estimation converged at the root (vt=GVT, a=epoch)
  kGvtAdopt,           // a NIC adopted a broadcast value (vt=GVT, a=epoch)
  kGvtHostAdopt,       // host kernel observed a new GVT (vt=GVT)
  kGvtTokenStale,      // duplicate/stale token discarded (a=epoch, b=round)
  kGvtTokenRegen,      // root regenerated a lost token (a=new epoch, b=old)
  // --- cancel ---
  kCancelDropPositive,  // doomed positive dropped in place
  kCancelFilterAnti,    // anti filtered against an earlier drop
  kCancelOverflow,      // drop refused: id ring or notice queue full
  // --- rollback ---
  kRollback,  // a=events undone, b=events replayed (coast-forward)
  // --- credit ---
  kCreditStall,       // sender blocked on an empty window (peer=dst)
  kCreditGrant,       // credits returned to us (a=count, peer=src)
  kCreditUpdateSent,  // explicit kCreditUpdate emitted (a=count, peer=dst)
  kCreditRefund,      // NIC-drop refund applied (a=count, peer=dst)
  kCreditResync,      // no-repair timeout path fired (peer=dst)
  kSeqGap,            // BIP gap observed at the receiver (a=gap, peer=src)
  // --- fault (fabric injection + NIC reliability recovery) ---
  kFaultDrop,        // fabric dropped a packet (a=bip_seq, peer=dst)
  kFaultDup,         // fabric duplicated a packet (a=bip_seq, peer=dst)
  kFaultCorrupt,     // fabric corrupted a header CRC (a=bip_seq, peer=dst)
  kFaultDelay,       // fabric added extra delay (a=extra ns, peer=dst)
  kRelCrcDiscard,    // receiver NIC discarded a corrupt packet (peer=src)
  kRelDupDiscard,    // receiver NIC discarded a duplicate seq (a=seq, peer=src)
  kRelGapDiscard,    // receiver NIC held back an out-of-order seq (a=seq)
  kRelNak,           // receiver NIC emitted a NAK (a=expected seq, peer=src)
  kRelRetransmit,    // sender NIC retransmitted (a=seq, b=tx count, peer=dst)
  // --- watchdog ---
  kWatchdogStall,    // GVT watchdog fired (vt=stuck GVT, a=budget ms, b=pending)
};

const char* trace_point_name(TracePoint p);

// Emits the trace-schema manifest: every category and point name, the msg
// lifecycle order, and the terminal drop points, as deterministic JSON.
// tools/trace_schema.json is a checked-in copy of this output (generated via
// `sweep_cli --print-trace-schema`); the Python tools load the file instead
// of duplicating the tables, and a test diffs the two so they cannot drift.
void export_trace_schema(std::ostream& os);

// One fixed-size record; field meaning depends on `point` (see enum docs).
struct TraceRecord {
  SimTime at{SimTime::zero()};        // simulated wall clock
  VirtualTime vt{VirtualTime::zero()};  // relevant virtual time (recv_ts, GVT…)
  TraceCat cat{TraceCat::kMsg};
  TracePoint point{TracePoint::kHostEnqueue};
  bool negative{false};          // anti-message (kMsg/kCancel)
  NodeId node{kInvalidNode};     // node that recorded
  NodeId peer{kInvalidNode};     // counterparty node when relevant
  EventId event_id{kInvalidEvent};
  std::uint64_t a{0};            // point-specific (epoch, counts, …)
  std::uint64_t b{0};
};

class TraceRecorder {
 public:
  TraceRecorder() = default;  // disabled: mask 0, capacity 0

  // (Re)configures categories and ring capacity; clears prior records.
  void configure(std::uint32_t category_mask, std::size_t capacity);
  void clear();

  std::uint32_t mask() const { return mask_; }
  // The one-branch guard every instrumentation site uses.
  bool enabled(TraceCat c) const { return (mask_ & trace_bit(c)) != 0; }

  // Appends a record. When the ring is full the *oldest* record is
  // overwritten (the most recent window is the useful one for post-mortems)
  // and `overwritten()` grows. Callers must check enabled() first.
  void record(const TraceRecord& r);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buf_.size(); }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t overwritten() const { return overwritten_; }
  // After a cross-shard ring merge: overrides the accounting so the merged
  // view reports the sums of the source rings' totals, not the merge's own
  // record() count.
  void set_accounting(std::uint64_t total_recorded, std::uint64_t overwritten) {
    total_ = total_recorded;
    overwritten_ = overwritten;
  }
  // i == 0 is the oldest retained record; records are in SimTime order.
  const TraceRecord& at(std::size_t i) const;

  // Chrome trace_event JSON (the whole file is one JSON object).
  void export_chrome_json(std::ostream& os) const;
  // One JSON object per line: {"type":"trace_record", ...}.
  void export_jsonl(std::ostream& os) const;

  // Shared fallback for hardware built without a recorder (tests). Never
  // enabled; sites guarded by enabled() never record into it.
  static TraceRecorder& null_recorder();

 private:
  std::uint32_t mask_{0};
  std::vector<TraceRecord> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
  std::uint64_t total_{0};
  std::uint64_t overwritten_{0};
};

}  // namespace nicwarp
