#include "core/trace.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "core/assert.hpp"
#include "core/latency.hpp"

namespace nicwarp {

const char* trace_cat_name(TraceCat c) {
  switch (c) {
    case TraceCat::kMsg: return "msg";
    case TraceCat::kGvt: return "gvt";
    case TraceCat::kCancel: return "cancel";
    case TraceCat::kRollback: return "rollback";
    case TraceCat::kCredit: return "credit";
    case TraceCat::kFault: return "fault";
    case TraceCat::kWatchdog: return "watchdog";
  }
  return "?";
}

std::uint32_t parse_trace_categories(std::string_view list) {
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) comma = list.size();
    std::string_view tok = list.substr(pos, comma - pos);
    if (tok == "all") mask |= kTraceAll;
    for (TraceCat c : {TraceCat::kMsg, TraceCat::kGvt, TraceCat::kCancel,
                       TraceCat::kRollback, TraceCat::kCredit, TraceCat::kFault,
                       TraceCat::kWatchdog}) {
      if (tok == trace_cat_name(c)) mask |= trace_bit(c);
    }
    pos = comma + 1;
  }
  return mask;
}

const char* trace_point_name(TracePoint p) {
  switch (p) {
    case TracePoint::kHostEnqueue: return "host-enqueue";
    case TracePoint::kNicStage: return "nic-stage";
    case TracePoint::kWireTx: return "wire-tx";
    case TracePoint::kWireDepart: return "wire-depart";
    case TracePoint::kNicRx: return "nic-rx";
    case TracePoint::kHostDeliver: return "host-deliver";
    case TracePoint::kNicDropTx: return "nic-drop-tx";
    case TracePoint::kNicDropRing: return "nic-drop-ring";
    case TracePoint::kGvtInitiate: return "gvt-initiate";
    case TracePoint::kGvtTokenHandle: return "gvt-token-handle";
    case TracePoint::kGvtHandshake: return "gvt-handshake";
    case TracePoint::kGvtTokenEmit: return "gvt-token-emit";
    case TracePoint::kGvtTokenPiggyback: return "gvt-token-piggyback";
    case TracePoint::kGvtComplete: return "gvt-complete";
    case TracePoint::kGvtAdopt: return "gvt-adopt";
    case TracePoint::kGvtHostAdopt: return "gvt-host-adopt";
    case TracePoint::kGvtTokenStale: return "gvt-token-stale";
    case TracePoint::kGvtTokenRegen: return "gvt-token-regen";
    case TracePoint::kCancelDropPositive: return "cancel-drop-positive";
    case TracePoint::kCancelFilterAnti: return "cancel-filter-anti";
    case TracePoint::kCancelOverflow: return "cancel-overflow";
    case TracePoint::kRollback: return "rollback";
    case TracePoint::kCreditStall: return "credit-stall";
    case TracePoint::kCreditGrant: return "credit-grant";
    case TracePoint::kCreditUpdateSent: return "credit-update-sent";
    case TracePoint::kCreditRefund: return "credit-refund";
    case TracePoint::kCreditResync: return "credit-resync";
    case TracePoint::kSeqGap: return "seq-gap";
    case TracePoint::kFaultDrop: return "fault-drop";
    case TracePoint::kFaultDup: return "fault-dup";
    case TracePoint::kFaultCorrupt: return "fault-corrupt";
    case TracePoint::kFaultDelay: return "fault-delay";
    case TracePoint::kRelCrcDiscard: return "rel-crc-discard";
    case TracePoint::kRelDupDiscard: return "rel-dup-discard";
    case TracePoint::kRelGapDiscard: return "rel-gap-discard";
    case TracePoint::kRelNak: return "rel-nak";
    case TracePoint::kRelRetransmit: return "rel-retransmit";
    case TracePoint::kWatchdogStall: return "watchdog-stall";
  }
  return "?";
}

void export_trace_schema(std::ostream& os) {
  constexpr TraceCat kCats[] = {TraceCat::kMsg, TraceCat::kGvt, TraceCat::kCancel,
                                TraceCat::kRollback, TraceCat::kCredit,
                                TraceCat::kFault, TraceCat::kWatchdog};
  constexpr TracePoint kPoints[] = {
      TracePoint::kHostEnqueue,     TracePoint::kNicStage,
      TracePoint::kWireTx,          TracePoint::kWireDepart,
      TracePoint::kNicRx,           TracePoint::kHostDeliver,
      TracePoint::kNicDropTx,       TracePoint::kNicDropRing,
      TracePoint::kGvtInitiate,     TracePoint::kGvtTokenHandle,
      TracePoint::kGvtHandshake,    TracePoint::kGvtTokenEmit,
      TracePoint::kGvtTokenPiggyback, TracePoint::kGvtComplete,
      TracePoint::kGvtAdopt,        TracePoint::kGvtHostAdopt,
      TracePoint::kGvtTokenStale,   TracePoint::kGvtTokenRegen,
      TracePoint::kCancelDropPositive, TracePoint::kCancelFilterAnti,
      TracePoint::kCancelOverflow,  TracePoint::kRollback,
      TracePoint::kCreditStall,     TracePoint::kCreditGrant,
      TracePoint::kCreditUpdateSent, TracePoint::kCreditRefund,
      TracePoint::kCreditResync,    TracePoint::kSeqGap,
      TracePoint::kFaultDrop,       TracePoint::kFaultDup,
      TracePoint::kFaultCorrupt,    TracePoint::kFaultDelay,
      TracePoint::kRelCrcDiscard,   TracePoint::kRelDupDiscard,
      TracePoint::kRelGapDiscard,   TracePoint::kRelNak,
      TracePoint::kRelRetransmit,   TracePoint::kWatchdogStall};
  auto cat_of = [](TracePoint p) {
    if (p <= TracePoint::kNicDropRing) return TraceCat::kMsg;
    if (p <= TracePoint::kGvtTokenRegen) return TraceCat::kGvt;
    if (p <= TracePoint::kCancelOverflow) return TraceCat::kCancel;
    if (p == TracePoint::kRollback) return TraceCat::kRollback;
    if (p <= TracePoint::kSeqGap) return TraceCat::kCredit;
    if (p <= TracePoint::kRelRetransmit) return TraceCat::kFault;
    return TraceCat::kWatchdog;
  };

  // v2: the `sharding` section — on shards>1 runs every exported document
  // (trace, heatmap, latency, metrics series, BENCH rows) is the merged
  // cluster-wide view described there; record/field shapes are unchanged.
  os << "{\n  \"type\": \"trace_schema\",\n  \"schema_version\": 2,\n";
  os << "  \"categories\": [";
  bool first = true;
  for (TraceCat c : kCats) {
    os << (first ? "" : ", ") << '"' << trace_cat_name(c) << '"';
    first = false;
  }
  os << "],\n  \"points\": [\n";
  first = true;
  for (TracePoint p : kPoints) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << trace_point_name(p) << "\", \"cat\": \""
       << trace_cat_name(cat_of(p)) << "\"}";
  }
  os << "\n  ],\n";
  // The msg-lifecycle hop order trace_summary.py reports latencies over,
  // and the terminal points that end a lifecycle early.
  os << "  \"msg_lifecycle\": [";
  first = true;
  for (TracePoint p : {TracePoint::kHostEnqueue, TracePoint::kNicStage,
                       TracePoint::kWireTx, TracePoint::kWireDepart,
                       TracePoint::kNicRx, TracePoint::kHostDeliver}) {
    os << (first ? "" : ", ") << '"' << trace_point_name(p) << '"';
    first = false;
  }
  os << "],\n  \"terminal_drops\": [\"" << trace_point_name(TracePoint::kNicDropTx)
     << "\", \"" << trace_point_name(TracePoint::kNicDropRing) << "\"],\n";
  // Shape of the {"type": "latency_report"} documents (--latency-out) and of
  // the lat_* objects in BENCH deterministic blocks, kept in sync with
  // core/latency.cpp through LatencyReport itself.
  os << "  \"latency\": {\n    \"report_type\": \"latency_report\",\n"
     << "    \"metrics\": [";
  first = true;
  for (const char* name : LatencyReport::metric_names()) {
    os << (first ? "" : ", ") << '"' << name << '"';
    first = false;
  }
  os << "],\n    \"fields\": [\"count\", \"min\", \"mean\", \"max\", \"p50\", "
        "\"p99\", \"p999\", \"buckets\"]\n  },\n";
  // Shape of the {"type": "heatmap"} documents (--heatmap-out), kept in sync
  // with core/entity_stats.cpp. All-integer values: counts and simulated ns.
  os << "  \"heatmap\": {\n    \"report_type\": \"heatmap\",\n"
     << "    \"sections\": [\"lps\", \"node_heat\", \"links\"],\n"
     << "    \"lp_fields\": [\"rank\", \"committed\", \"processed\", "
        "\"rolled_back\", \"rollbacks\", \"max_rollback_depth\", \"replayed\", "
        "\"state_saves\", \"state_save_bytes\"],\n"
     << "    \"node_fields\": [\"rank\", \"ring_occupancy_hw\", "
        "\"credit_stalls\", \"gvt_tokens\", \"gvt_token_hold_ns\", "
        "\"gvt_token_hold_max_ns\"],\n"
     << "    \"link_fields\": [\"src\", \"dst\", \"packets\", \"bytes\", "
        "\"retransmits\", \"faults\", \"queue_depth_hw\"]\n  },\n";
  // How shards>1 runs (docs/SHARDING.md) assemble the documents above. The
  // shapes are identical to single-threaded runs; only provenance changes:
  // every document is the deterministic merge of the per-shard recorders.
  os << "  \"sharding\": {\n"
     << "    \"trace_merge\": \"k-way by (at, shard index); "
        "total_recorded/overwritten sum the shard rings\",\n"
     << "    \"counter_merge\": \"summed by name across shards\",\n"
     << "    \"histogram_merge\": \"bucket-wise sum, exact min/max\",\n"
     << "    \"heatmap_merge\": \"disjoint union; high-water fields take "
        "max\",\n"
     << "    \"metrics_series\": \"sampled from shard 0 (rank 0's shard) "
        "only\"\n  }\n}\n";
}

void TraceRecorder::configure(std::uint32_t category_mask, std::size_t capacity) {
  mask_ = capacity == 0 ? 0 : category_mask;
  buf_.assign(capacity, TraceRecord{});
  head_ = size_ = 0;
  total_ = overwritten_ = 0;
}

void TraceRecorder::clear() {
  head_ = size_ = 0;
  total_ = overwritten_ = 0;
}

void TraceRecorder::record(const TraceRecord& r) {
  if (buf_.empty()) return;  // enabled() was false; defensive no-op
  if (size_ < buf_.size()) {
    buf_[(head_ + size_) % buf_.size()] = r;
    ++size_;
  } else {
    buf_[head_] = r;
    head_ = (head_ + 1) % buf_.size();
    ++overwritten_;
  }
  ++total_;
}

const TraceRecord& TraceRecorder::at(std::size_t i) const {
  NW_CHECK(i < size_);
  return buf_[(head_ + i) % buf_.size()];
}

TraceRecorder& TraceRecorder::null_recorder() {
  static TraceRecorder r;
  return r;
}

namespace {

double to_us(SimTime t) { return static_cast<double>(t.ns) / 1000.0; }

// Writes the shared args payload for a record.
void write_args(std::ostream& os, const TraceRecord& r) {
  os << "{\"point\":\"" << trace_point_name(r.point) << "\",\"node\":" << r.node;
  if (r.peer != kInvalidNode) os << ",\"peer\":" << r.peer;
  if (r.event_id != kInvalidEvent) os << ",\"event_id\":" << r.event_id;
  if (r.vt.is_inf()) {
    os << ",\"vt\":null";
  } else {
    os << ",\"vt\":" << r.vt.t;
  }
  os << ",\"a\":" << r.a << ",\"b\":" << r.b
     << ",\"negative\":" << (r.negative ? "true" : "false") << "}";
}

bool is_msg_terminal(TracePoint p) {
  return p == TracePoint::kHostDeliver || p == TracePoint::kNicDropTx ||
         p == TracePoint::kNicDropRing;
}

}  // namespace

void TraceRecorder::export_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    os << "\n";
    first = false;
  };

  // Process metadata: one Chrome "process" per cluster node.
  std::set<NodeId> nodes;
  for (std::size_t i = 0; i < size_; ++i) nodes.insert(at(i).node);
  for (NodeId n : nodes) {
    sep();
    os << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << n
       << ",\"tid\":0,\"args\":{\"name\":\"node" << n << "\"}}";
  }

  // Pass 1: the last record index of every GVT epoch, so each estimation
  // becomes one async span closed at its final sighting.
  std::map<std::uint64_t, std::size_t> gvt_last;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = at(i);
    if (r.cat == TraceCat::kGvt) gvt_last[r.a] = i;
  }

  // Pass 2: emit. Message lifecycles are async spans keyed by
  // (event_id, sign); ids recur across cancel/re-send incarnations, so each
  // kHostEnqueue opens a fresh span and mid/terminal points attach to the
  // oldest open one (channel FIFO order).
  std::uint64_t next_async = 1;
  std::map<std::pair<EventId, bool>, std::vector<std::uint64_t>> open_msgs;
  std::set<std::uint64_t> open_gvt;

  auto emit_async = [&](const char* cat, const char* name, const char* ph,
                        std::uint64_t id, const TraceRecord& r) {
    sep();
    os << "{\"ph\":\"" << ph << "\",\"cat\":\"" << cat << "\",\"name\":\"" << name
       << "\",\"id\":\"0x" << std::hex << id << std::dec << "\",\"pid\":" << r.node
       << ",\"tid\":0,\"ts\":" << to_us(r.at) << ",\"args\":";
    write_args(os, r);
    os << "}";
  };
  auto emit_instant = [&](const char* cat, const char* name, const TraceRecord& r) {
    sep();
    os << "{\"ph\":\"i\",\"s\":\"p\",\"cat\":\"" << cat << "\",\"name\":\"" << name
       << "\",\"pid\":" << r.node << ",\"tid\":0,\"ts\":" << to_us(r.at)
       << ",\"args\":";
    write_args(os, r);
    os << "}";
  };

  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = at(i);
    switch (r.cat) {
      case TraceCat::kMsg: {
        const auto key = std::make_pair(r.event_id, r.negative);
        const char* name = r.negative ? "anti" : "msg";
        auto& open = open_msgs[key];
        if (r.point == TracePoint::kHostEnqueue || open.empty()) {
          // Fresh incarnation (or the enqueue was overwritten in the ring).
          open.push_back(next_async++);
          emit_async("msg", name, "b", open.back(), r);
          if (r.point == TracePoint::kHostEnqueue) break;
        }
        if (is_msg_terminal(r.point)) {
          emit_async("msg", name, "e", open.front(), r);
          open.erase(open.begin());
        } else if (r.point != TracePoint::kHostEnqueue) {
          emit_async("msg", name, "n", open.front(), r);
        }
        break;
      }
      case TraceCat::kGvt: {
        const std::uint64_t epoch = r.a;
        if (open_gvt.insert(epoch).second) {
          emit_async("gvt", "gvt-estimation", "b", epoch, r);
          if (gvt_last[epoch] != i) break;
        }
        if (gvt_last[epoch] == i) {
          emit_async("gvt", "gvt-estimation", "e", epoch, r);
        } else {
          emit_async("gvt", "gvt-estimation", "n", epoch, r);
        }
        break;
      }
      case TraceCat::kCancel:
        emit_instant("cancel", trace_point_name(r.point), r);
        break;
      case TraceCat::kRollback:
        emit_instant("rollback", "rollback", r);
        break;
      case TraceCat::kCredit:
        emit_instant("credit", trace_point_name(r.point), r);
        break;
      case TraceCat::kFault:
        emit_instant("fault", trace_point_name(r.point), r);
        break;
      case TraceCat::kWatchdog:
        emit_instant("watchdog", trace_point_name(r.point), r);
        break;
    }
  }

  os << "\n],\"otherData\":{\"clock\":\"simulated-ns\",\"recorded\":" << total_
     << ",\"overwritten\":" << overwritten_ << "}}\n";
}

void TraceRecorder::export_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceRecord& r = at(i);
    os << "{\"type\":\"trace_record\",\"cat\":\"" << trace_cat_name(r.cat)
       << "\",\"sim_us\":" << to_us(r.at) << ",\"args\":";
    write_args(os, r);
    os << "}\n";
  }
}

}  // namespace nicwarp
