// Wall-clock phase attribution: where does the *host* time of a run go?
//
// Everything else in the observability stack records simulated time so it can
// be diffed byte-exactly; this profiler is the deliberate exception.  It
// accumulates real std::chrono::steady_clock nanoseconds per coarse phase of
// the run — event execution, state saving, rollback, GVT work, comm pump —
// and its numbers are therefore machine- and load-dependent noise.  They are
// reported ONLY in noisy output blocks (next to `wall_seconds`), never in a
// deterministic block, so the byte-identity gates stay intact.
//
// Off by default; a disabled profiler costs one predicted-false branch per
// scope (the timer constructor checks enabled() and nulls itself out).
// Phases nest: a state save runs inside event execution and a rollback runs
// inside the comm pump, so the per-phase seconds overlap and do not sum to
// the run's wall time.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

namespace nicwarp {

enum class Phase : std::uint8_t {
  kEventExec = 0,  // LP execute_next: model body + queue work
  kStateSave,      // object snapshot deep-copies (nests inside exec/rollback)
  kRollback,       // undo + anti-send + coast-forward replay
  kGvt,            // GVT manager work: token handling, adoption, fossils
  kCommPump,       // host comm send/receive pump
};
inline constexpr std::size_t kPhaseCount = 5;

inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kEventExec: return "event_exec";
    case Phase::kStateSave: return "state_save";
    case Phase::kRollback: return "rollback";
    case Phase::kGvt: return "gvt";
    case Phase::kCommPump: return "comm_pump";
  }
  return "?";
}

class PhaseProfiler {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  void add(Phase p, std::uint64_t ns) {
    ns_[static_cast<std::size_t>(p)] += ns;
    calls_[static_cast<std::size_t>(p)] += 1;
  }

  std::uint64_t nanos(Phase p) const { return ns_[static_cast<std::size_t>(p)]; }
  std::uint64_t calls(Phase p) const { return calls_[static_cast<std::size_t>(p)]; }
  double seconds(Phase p) const {
    return static_cast<double>(nanos(p)) * 1e-9;
  }

  // Sums another profiler's accumulators in (per-shard merge). The result is
  // total wall nanoseconds across shard threads that ran CONCURRENTLY, so
  // merged phase seconds can exceed the run's wall time — see docs/PERF.md.
  void merge_from(const PhaseProfiler& other) {
    if (other.enabled_) enabled_ = true;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      ns_[i] += other.ns_[i];
      calls_[i] += other.calls_[i];
    }
  }

  // Shared disabled instance for construction paths without a cluster.
  static PhaseProfiler& null_profiler() {
    static PhaseProfiler inst;
    return inst;
  }

 private:
  bool enabled_{false};
  std::array<std::uint64_t, kPhaseCount> ns_{};
  std::array<std::uint64_t, kPhaseCount> calls_{};
};

// RAII scope timer. When the profiler is off (or null) the constructor nulls
// the pointer and the destructor is a no-op — one branch each way.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseProfiler* p, Phase phase) : p_(p), phase_(phase) {
    if (p_ != nullptr && p_->enabled()) {
      t0_ = std::chrono::steady_clock::now();
    } else {
      p_ = nullptr;
    }
  }
  ~ScopedPhaseTimer() {
    if (p_ != nullptr) {
      const auto dt = std::chrono::steady_clock::now() - t0_;
      p_->add(phase_, static_cast<std::uint64_t>(
                          std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                              .count()));
    }
  }
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseProfiler* p_;
  Phase phase_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace nicwarp
