// Minimal leveled logging.
//
// Debug logging of a discrete-event simulation is extremely hot (every packet
// hop is a candidate log line), so the level check is a single branch on an
// inline global and formatting cost is only paid when enabled.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace nicwarp {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

// The initial level comes from the NICWARP_LOG_LEVEL environment variable
// (a name — error/warn/info/debug/trace — or the matching integer 0..4);
// unset or unparsable falls back to kWarn. set_log_level overrides at
// runtime.
LogLevel log_level();
void set_log_level(LogLevel lvl);

// Exposed for tests: parses a NICWARP_LOG_LEVEL value (case-insensitive
// name or integer); nullptr/garbage returns `fallback`.
LogLevel parse_log_level(const char* text, LogLevel fallback);

// Event-id trace hook for debugging message lifecycle: set the
// NICWARP_TRACE_EVENT environment variable to a decimal event id and every
// instrumented site will log when it touches that event.
std::uint64_t traced_event();

// printf-style; callers go through the NW_LOG_* macros below.
void log_line(LogLevel lvl, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace nicwarp

#define NW_LOG_AT(lvl, ...)                                      \
  do {                                                           \
    if (static_cast<int>(lvl) <= static_cast<int>(::nicwarp::log_level())) \
      ::nicwarp::log_line(lvl, __VA_ARGS__);                     \
  } while (0)

#define NW_ERROR(...) NW_LOG_AT(::nicwarp::LogLevel::kError, __VA_ARGS__)
#define NW_WARN(...) NW_LOG_AT(::nicwarp::LogLevel::kWarn, __VA_ARGS__)
#define NW_INFO(...) NW_LOG_AT(::nicwarp::LogLevel::kInfo, __VA_ARGS__)
#define NW_DEBUG(...) NW_LOG_AT(::nicwarp::LogLevel::kDebug, __VA_ARGS__)
#define NW_TRACE(...) NW_LOG_AT(::nicwarp::LogLevel::kTrace, __VA_ARGS__)
