#include "core/undo_log.hpp"

#include <cstring>

#include "core/assert.hpp"

namespace nicwarp::core {

UndoChunkPool::Chunk* UndoChunkPool::try_acquire() {
  if (!free_.empty()) {
    Chunk* c = free_.back();
    free_.pop_back();
    live_ += 1;
    if (live_ > peak_) peak_ = live_;
    return c;
  }
  if (max_chunks_ != 0 && storage_.size() >= max_chunks_) return nullptr;
  storage_.push_back(std::make_unique<Chunk>());
  live_ += 1;
  if (live_ > peak_) peak_ = live_;
  return storage_.back().get();
}

void UndoChunkPool::release(Chunk* c) {
  NW_CHECK(c != nullptr);
  NW_CHECK_MSG(live_ > 0, "undo chunk double-release");
  live_ -= 1;
  free_.push_back(c);
}

UndoLog::~UndoLog() { release_all_chunks(); }

void UndoLog::release_all_chunks() {
  for (UndoChunkPool::Chunk* c : chunks_) pool_.release(c);
  chunks_.clear();
}

UndoChunkPool::Entry& UndoLog::slot(Mark pos) {
  NW_CHECK(pos >= base_ && pos < base_ + chunks_.size() * UndoChunkPool::kChunkSlots);
  const Mark off = pos - base_;
  return chunks_[off / UndoChunkPool::kChunkSlots]
      ->slots[off % UndoChunkPool::kChunkSlots];
}

bool UndoLog::push_entry(const void* addr, std::size_t size) {
  NW_CHECK(size > 0 && size <= UndoChunkPool::kInlineBytes);
  if (end_pos_ == base_ + chunks_.size() * UndoChunkPool::kChunkSlots) {
    UndoChunkPool::Chunk* c = pool_.try_acquire();
    if (c == nullptr) {
      overflow_ = true;
      return false;
    }
    chunks_.push_back(c);
  }
  UndoChunkPool::Entry& e = slot(end_pos_);
  e.addr = const_cast<void*>(addr);
  e.size = static_cast<std::uint32_t>(size);
  std::memcpy(e.bytes, addr, size);
  end_pos_ += 1;
  entries_recorded_ += 1;
  bytes_logged_ += size;
  return true;
}

bool UndoLog::record(const void* addr, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(addr);
  while (size > 0) {
    const std::size_t piece = size < UndoChunkPool::kInlineBytes
                                  ? size
                                  : UndoChunkPool::kInlineBytes;
    if (!push_entry(p, piece)) return false;
    p += piece;
    size -= piece;
  }
  return true;
}

void UndoLog::rewind_to(Mark m) {
  NW_CHECK_MSG(m >= first_pos_ && m <= end_pos_, "rewind to a stale undo mark");
  while (end_pos_ > m) {
    end_pos_ -= 1;
    const UndoChunkPool::Entry& e = slot(end_pos_);
    std::memcpy(e.addr, e.bytes, e.size);
  }
  // Recycle tail chunks that now hold no live positions.
  while (!chunks_.empty() &&
         base_ + (chunks_.size() - 1) * UndoChunkPool::kChunkSlots >= end_pos_) {
    pool_.release(chunks_.back());
    chunks_.pop_back();
  }
  if (chunks_.empty()) {
    NW_CHECK(first_pos_ == end_pos_);
    base_ = end_pos_;
  }
}

void UndoLog::reset() {
  release_all_chunks();
  // Burn a position: every mark taken before this reset is <= the old
  // end_pos_ and therefore strictly below the new first_pos_ — detectably
  // stale, so no caller can rewind through the discarded entries.
  end_pos_ += 1;
  first_pos_ = end_pos_;
  base_ = end_pos_;
}

void UndoLog::release_below(Mark m) {
  NW_CHECK(m <= end_pos_);
  if (m <= first_pos_) return;
  first_pos_ = m;
  while (!chunks_.empty() && base_ + UndoChunkPool::kChunkSlots <= first_pos_) {
    pool_.release(chunks_.front());
    chunks_.pop_front();
    base_ += UndoChunkPool::kChunkSlots;
  }
  if (chunks_.empty()) {
    NW_CHECK(first_pos_ == end_pos_);
    base_ = end_pos_;
  }
}

}  // namespace nicwarp::core
