// Per-entity hotspot attribution: the heatmap registry.
//
// An EntityStats is owned by hw::Cluster (like the TraceRecorder and
// LatencyRecorder) and shared by every layer via defaulted constructor
// pointers.  It rolls the cluster-wide aggregates apart into per-LP, per-link
// (src -> dst ordered pair), and per-node counters, so the sharding and
// adaptive-checkpoint work has a load signal per entity instead of one number
// for the whole cluster.
//
// Hot paths guard every update behind `if (entity.enabled())` — the same
// predicted-false branch idiom as tracing — so a disabled registry costs one
// well-predicted branch and nothing else.  Every recorded quantity is either
// a count or a *simulated* time (SimTime nanoseconds), never wall clock, so
// the heatmap JSON is byte-identical across reruns of the same seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/types.hpp"

namespace nicwarp {

// Per-LP load: harvested from warped::LogicalProcess at end of run.
struct LpHeat {
  std::uint64_t committed{0};          // events fossil-collected
  std::uint64_t processed{0};          // events executed (incl. wasted work)
  std::uint64_t rolled_back{0};        // events undone by rollbacks
  std::uint64_t rollbacks{0};          // rollback episodes
  std::uint64_t max_rollback_depth{0}; // deepest single rollback (events undone)
  std::uint64_t replayed{0};           // events re-executed by coast-forward
  std::uint64_t state_saves{0};        // object snapshots taken
  std::uint64_t state_save_bytes{0};   // bytes deep-copied into snapshots
};

// Per-node pressure: NIC ring, flow control, and GVT token custody.
struct NodeHeat {
  std::uint64_t ring_occupancy_hw{0};     // high-water NIC send-ring slots in use
  std::uint64_t credit_stalls{0};         // sends parked waiting for credit
  std::uint64_t gvt_tokens{0};            // GVT tokens this node held custody of
  std::uint64_t gvt_token_hold_ns{0};     // total custody time, simulated ns
  std::uint64_t gvt_token_hold_max_ns{0}; // worst single custody, simulated ns
};

// Per-directed-link traffic (src -> dst).
struct LinkHeat {
  std::uint64_t packets{0};
  std::uint64_t bytes{0};
  std::uint64_t retransmits{0};    // go-back-N replays onto this link
  std::uint64_t faults{0};         // injected drop/dup/corrupt/delay on this link
  std::uint64_t queue_depth_hw{0}; // high-water staged/credit-waiting depth
};

class EntityStats {
 public:
  // Sizes the vectors for `nodes` ranks and enables recording.  Before
  // configure() the registry is disabled and every record call is a no-op
  // branch.
  void configure(std::uint32_t nodes);

  bool enabled() const { return enabled_; }
  std::uint32_t nodes() const { return nodes_; }

  // --- hot-path recording (call sites gate on enabled() first) ---
  void record_link_packet(NodeId src, NodeId dst, std::uint64_t bytes) {
    LinkHeat& l = link(src, dst);
    l.packets += 1;
    l.bytes += bytes;
  }
  void record_link_retx(NodeId src, NodeId dst) { link(src, dst).retransmits += 1; }
  void record_link_fault(NodeId src, NodeId dst) { link(src, dst).faults += 1; }
  void note_link_queue_depth(NodeId src, NodeId dst, std::uint64_t depth) {
    LinkHeat& l = link(src, dst);
    if (depth > l.queue_depth_hw) l.queue_depth_hw = depth;
  }
  void note_ring_occupancy(NodeId node, std::uint64_t slots) {
    NodeHeat& n = node_heat_[node];
    if (slots > n.ring_occupancy_hw) n.ring_occupancy_hw = slots;
  }
  void record_credit_stall(NodeId node) { node_heat_[node].credit_stalls += 1; }
  void record_gvt_token_hold(NodeId node, std::uint64_t hold_ns) {
    NodeHeat& n = node_heat_[node];
    n.gvt_tokens += 1;
    n.gvt_token_hold_ns += hold_ns;
    if (hold_ns > n.gvt_token_hold_max_ns) n.gvt_token_hold_max_ns = hold_ns;
  }

  // --- end-of-run harvest (per-LP counters live in the LP itself) ---
  void set_lp(NodeId rank, const LpHeat& heat) { lps_[rank] = heat; }

  const LpHeat& lp(NodeId rank) const { return lps_[rank]; }
  const NodeHeat& node(NodeId rank) const { return node_heat_[rank]; }
  const LinkHeat& link(NodeId src, NodeId dst) const {
    return links_[static_cast<std::size_t>(src) * nodes_ + dst];
  }

  // The heatmap document: {"type": "heatmap", "schema_version": 1, ...} with
  // one object per LP/node and one per link with any traffic.  Integer-only
  // values, fixed field order — byte-identical across reruns of a seed.
  void to_json(std::ostream& os) const;

  // Folds another registry (same node count) in: additive fields sum,
  // high-water fields take the max.  Used to merge per-shard registries into
  // the cluster-wide heatmap; each entity is recorded by exactly one shard,
  // so the merge is a disjoint union and order-independent.
  void merge_from(const EntityStats& other);

  // Shared disabled instance for construction paths without a cluster.
  static EntityStats& null_stats();

 private:
  LinkHeat& link(NodeId src, NodeId dst) {
    return links_[static_cast<std::size_t>(src) * nodes_ + dst];
  }

  bool enabled_{false};
  std::uint32_t nodes_{0};
  std::vector<LpHeat> lps_;
  std::vector<NodeHeat> node_heat_;
  std::vector<LinkHeat> links_;  // row-major [src][dst]
};

}  // namespace nicwarp
