// Single-producer / single-consumer ring over a fixed power-of-two buffer.
//
// The cross-shard mailboxes (hw/shard_mailbox.hpp) are built on this: exactly
// one shard thread pushes and exactly one shard thread pops, so the only
// synchronization needed is an acquire/release pair on the head and tail
// indices — no locks, no CAS loops. Unlike core::FlatRing (single-threaded,
// grows on demand), this ring has a FIXED capacity: try_push() fails when the
// consumer has fallen `capacity` entries behind, and the caller decides how
// to wait (the mailbox layer stages its own inbound traffic while blocked so
// two full rings can never deadlock each other).
//
// Indices are free-running 64-bit counters masked on access; at any plausible
// push rate they cannot wrap within a run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/assert.hpp"

namespace nicwarp {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) : buf_(capacity), mask_(capacity - 1) {
    NW_CHECK_MSG(capacity >= 2 && (capacity & mask_) == 0,
                 "SpscRing capacity must be a power of two >= 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return buf_.size(); }

  // Producer side. Returns false (leaving `v` untouched) when the ring is
  // full; the value is moved into the slot only on success.
  bool try_push(T&& v) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) >= buf_.size()) return false;
    buf_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  // Consumer side: pointer to the oldest entry, or nullptr when empty. The
  // entry stays valid until pop(); the consumer may move out of it first.
  T* front() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return nullptr;
    return &buf_[h & mask_];
  }

  // Consumer side; only valid after a non-null front().
  void pop() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
  }

  // Approximate when racing the producer; exact from the consumer thread.
  std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace nicwarp
