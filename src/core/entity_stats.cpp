#include "core/entity_stats.hpp"

#include <ostream>

#include "core/assert.hpp"

namespace nicwarp {

void EntityStats::configure(std::uint32_t nodes) {
  nodes_ = nodes;
  lps_.assign(nodes, LpHeat{});
  node_heat_.assign(nodes, NodeHeat{});
  links_.assign(static_cast<std::size_t>(nodes) * nodes, LinkHeat{});
  enabled_ = true;
}

void EntityStats::to_json(std::ostream& os) const {
  os << "{\n  \"type\": \"heatmap\",\n  \"schema_version\": 1,\n"
     << "  \"nodes\": " << nodes_ << ",\n  \"lps\": [\n";
  for (std::uint32_t r = 0; r < nodes_; ++r) {
    const LpHeat& l = lps_[r];
    os << "    {\"rank\": " << r << ", \"committed\": " << l.committed
       << ", \"processed\": " << l.processed
       << ", \"rolled_back\": " << l.rolled_back
       << ", \"rollbacks\": " << l.rollbacks
       << ", \"max_rollback_depth\": " << l.max_rollback_depth
       << ", \"replayed\": " << l.replayed
       << ", \"state_saves\": " << l.state_saves
       << ", \"state_save_bytes\": " << l.state_save_bytes << "}"
       << (r + 1 < nodes_ ? ",\n" : "\n");
  }
  os << "  ],\n  \"node_heat\": [\n";
  for (std::uint32_t r = 0; r < nodes_; ++r) {
    const NodeHeat& n = node_heat_[r];
    os << "    {\"rank\": " << r
       << ", \"ring_occupancy_hw\": " << n.ring_occupancy_hw
       << ", \"credit_stalls\": " << n.credit_stalls
       << ", \"gvt_tokens\": " << n.gvt_tokens
       << ", \"gvt_token_hold_ns\": " << n.gvt_token_hold_ns
       << ", \"gvt_token_hold_max_ns\": " << n.gvt_token_hold_max_ns << "}"
       << (r + 1 < nodes_ ? ",\n" : "\n");
  }
  // Links: only pairs with any activity, in deterministic row-major order.
  os << "  ],\n  \"links\": [\n";
  bool first = true;
  for (std::uint32_t s = 0; s < nodes_; ++s) {
    for (std::uint32_t d = 0; d < nodes_; ++d) {
      const LinkHeat& l = link(s, d);
      if (l.packets == 0 && l.retransmits == 0 && l.faults == 0 &&
          l.queue_depth_hw == 0) {
        continue;
      }
      if (!first) os << ",\n";
      first = false;
      os << "    {\"src\": " << s << ", \"dst\": " << d
         << ", \"packets\": " << l.packets << ", \"bytes\": " << l.bytes
         << ", \"retransmits\": " << l.retransmits
         << ", \"faults\": " << l.faults
         << ", \"queue_depth_hw\": " << l.queue_depth_hw << "}";
    }
  }
  os << "\n  ]\n}\n";
}

void EntityStats::merge_from(const EntityStats& other) {
  NW_CHECK_MSG(enabled_ && other.enabled_ && nodes_ == other.nodes_,
               "entity-stats merge: registries must be configured alike");
  for (std::uint32_t r = 0; r < nodes_; ++r) {
    LpHeat& a = lps_[r];
    const LpHeat& b = other.lps_[r];
    a.committed += b.committed;
    a.processed += b.processed;
    a.rolled_back += b.rolled_back;
    a.rollbacks += b.rollbacks;
    if (b.max_rollback_depth > a.max_rollback_depth) a.max_rollback_depth = b.max_rollback_depth;
    a.replayed += b.replayed;
    a.state_saves += b.state_saves;
    a.state_save_bytes += b.state_save_bytes;

    NodeHeat& n = node_heat_[r];
    const NodeHeat& m = other.node_heat_[r];
    if (m.ring_occupancy_hw > n.ring_occupancy_hw) n.ring_occupancy_hw = m.ring_occupancy_hw;
    n.credit_stalls += m.credit_stalls;
    n.gvt_tokens += m.gvt_tokens;
    n.gvt_token_hold_ns += m.gvt_token_hold_ns;
    if (m.gvt_token_hold_max_ns > n.gvt_token_hold_max_ns) {
      n.gvt_token_hold_max_ns = m.gvt_token_hold_max_ns;
    }
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkHeat& a = links_[i];
    const LinkHeat& b = other.links_[i];
    a.packets += b.packets;
    a.bytes += b.bytes;
    a.retransmits += b.retransmits;
    a.faults += b.faults;
    if (b.queue_depth_hw > a.queue_depth_hw) a.queue_depth_hw = b.queue_depth_hw;
  }
}

EntityStats& EntityStats::null_stats() {
  static EntityStats inst;  // never configured => never enabled
  return inst;
}

}  // namespace nicwarp
