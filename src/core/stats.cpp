#include "core/stats.hpp"

#include <algorithm>
#include <sstream>

#include "core/assert.hpp"

namespace nicwarp {

std::vector<double> Histogram::default_bounds() {
  // Log-spaced 1..1e9 (covers ns..s when samples are in ns, or counts).
  std::vector<double> b;
  for (double x = 1.0; x <= 1e9; x *= 10.0) {
    b.push_back(x);
    b.push_back(x * 3.0);
  }
  return b;
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), buckets_(bounds_.size() + 1, 0) {
  NW_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::record(double sample) {
  auto it = std::upper_bound(bounds_.begin(), bounds_.end(), sample);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())]++;
  min_ = count_ ? std::min(min_, sample) : sample;
  ++count_;
  sum_ += sample;
  max_ = std::max(max_, sample);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  NW_CHECK(q >= 0.0 && q <= 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Fractional rank over count samples (0-based): rank t sits between the
  // floor(t)-th and floor(t)+1-th order statistics.
  const double t = q * static_cast<double>(count_ - 1);
  std::int64_t before = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::int64_t n = buckets_[i];
    if (n == 0) continue;
    if (static_cast<double>(before + n) > t) {
      // Bucket edges, clamped to the exactly-tracked sample range so an
      // interpolated value never leaves [min, max].
      double lo = i == 0 ? min_ : std::max(bounds_[i - 1], min_);
      double hi = i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
      if (hi < lo) hi = lo;
      const double frac = (t - static_cast<double>(before)) / static_cast<double>(n);
      return lo + (hi - lo) * frac;
    }
    before += n;
  }
  return max_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

void Histogram::merge(const Histogram& other) {
  NW_CHECK_MSG(bounds_ == other.bounds_, "histogram merge: bucket bounds differ");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  min_ = count_ ? std::min(min_, other.min_) : other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& StatsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string(name), Histogram{}).first;
  return it->second;
}

std::int64_t StatsRegistry::value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.get();
}

std::vector<std::pair<std::string, std::int64_t>> StatsRegistry::all_counters() const {
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [k, c] : counters_) out.emplace_back(k, c.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> StatsRegistry::all_histograms() const {
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [k, h] : histograms_) out.emplace_back(k, &h);
  return out;
}

std::string StatsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [k, c] : counters_) os << k << "=" << c.get() << "\n";
  for (const auto& [k, h] : histograms_) {
    os << k << ": n=" << h.count() << " mean=" << h.mean() << " max=" << h.max() << "\n";
  }
  return os.str();
}

void StatsRegistry::reset() {
  // In place, not clear(): references handed out by counter()/histogram()
  // must survive a reset (samplers reset between rounds while hot paths
  // keep recording).
  for (auto& [k, c] : counters_) c.reset();
  for (auto& [k, h] : histograms_) h.reset();
}

void StatsRegistry::merge_from(const StatsRegistry& other) {
  for (const auto& [k, c] : other.counters_) counter(k).add(c.get());
  for (const auto& [k, h] : other.histograms_) histogram(k).merge(h);
}

}  // namespace nicwarp
