// Profiling hook interface: the one-way street from the running system into
// the profiler (src/profile).
//
// The Time-Warp kernel (and, via the drop-notice path, the NIC firmware)
// reports four kinds of facts while a run executes:
//
//  * event executions            — the nodes of the committed-event DAG,
//  * send edges                  — parent execution -> child event, the DAG's
//                                  dependency edges (deterministic ids make
//                                  re-executions idempotent),
//  * rollbacks with their cause  — the straggler or anti-message that
//                                  triggered the undo, the executions undone,
//                                  and the anti-messages emitted,
//  * NIC drops/filters           — early-cancellation decisions, attributed
//                                  to the anti-message that doomed them.
//
// The interface lives in core (primitive types only) so hw/warped can call
// it without depending on the profile library; src/profile implements it.
// A null hook pointer means profiling is off and every call site is one
// predicted-false branch — the same discipline as the trace recorder.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace nicwarp {

// Everything the profiler needs to know about one rollback, captured by the
// kernel at the point the insert result is applied (before the emitted
// anti-messages are dispatched, so cascade parents are always registered
// before the children they cause).
struct RollbackProfile {
  NodeId node{kInvalidNode};   // LP that rolled back
  SimTime at{SimTime::zero()};
  EventId cause_id{kInvalidEvent};  // the straggler / anti that triggered it
  bool cause_negative{false};       // true: anti-message (secondary rollback)
  NodeId cause_src{kInvalidNode};   // sender node; kInvalidNode for local
  std::uint64_t events_undone{0};
  std::uint64_t events_replayed{0};  // coast-forward replays
  std::vector<EventId> undone;       // ids of the undone executions
  std::vector<EventId> antis;        // ids of the anti-messages emitted
};

class ProfileHook {
 public:
  virtual ~ProfileHook() = default;

  // An event executed (optimistically; a later rollback may undo it).
  virtual void on_execute(NodeId node, ObjectId obj, EventId id,
                          VirtualTime recv_ts) = 0;
  // Execution `parent` generated event `child` (a positive send; antis are
  // reported through on_rollback). Re-executions regenerate the same edge.
  virtual void on_send(NodeId node, EventId parent, EventId child,
                       ObjectId dst_obj, VirtualTime recv_ts) = 0;
  virtual void on_rollback(const RollbackProfile& rb) = 0;
  // The NIC dropped a doomed positive (negative=false) or filtered an anti
  // (negative=true). `cause_anti` is the anti-message whose arrival at the
  // NIC doomed the packet, when the firmware knows it (kInvalidEvent else).
  virtual void on_nic_drop(NodeId node, EventId id, bool negative,
                           EventId cause_anti) = 0;
};

}  // namespace nicwarp
