// Experiment statistics: named counters and small histograms.
//
// All layers (hardware, firmware, comm, Time-Warp kernel) record into one
// StatsRegistry owned by the experiment, so a result row can report e.g.
// "messages dropped by NIC" next to "total rollbacks" without plumbing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace nicwarp {

class Counter {
 public:
  void add(std::int64_t v = 1) { value_ += v; }
  void sub(std::int64_t v = 1) { value_ -= v; }
  std::int64_t get() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_{0};
};

// Fixed-bucket histogram over non-negative samples; tracks min/mean/max
// exactly.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds = default_bounds());

  void record(double sample);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  // Approximate quantile: the fractional rank q*(count-1) is located in its
  // bucket and linearly interpolated between the bucket edges, clamped to
  // the exact [min, max] observed. q=0 returns min, q=1 returns max.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::int64_t>& buckets() const { return buckets_; }

  // Zeroes all samples; bucket bounds are kept.
  void reset();

  // Folds another histogram's samples in bucket-wise. Both histograms must
  // have identical bounds (per-shard stats merge, docs/SHARDING.md); the
  // merged count/sum/min/max are exactly what recording the union of both
  // sample sets would have produced.
  void merge(const Histogram& other);

  static std::vector<double> default_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::int64_t> buckets_;  // bounds_.size() + 1 (overflow bucket)
  std::int64_t count_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

class StatsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Value of a counter, 0 if never touched.
  std::int64_t value(std::string_view name) const;

  // Deterministic iteration/export order: both accessors return entries
  // sorted by name (the registry is map-backed), so exports and samples are
  // byte-stable across runs.
  std::vector<std::pair<std::string, std::int64_t>> all_counters() const;
  std::vector<std::pair<std::string, const Histogram*>> all_histograms() const;

  std::string to_string() const;

  // Zeroes every counter and histogram *in place* — registered names (and
  // any Counter&/Histogram& a call site holds) stay valid, which is what
  // per-round sampling and re-used testbeds need.
  void reset();

  // Folds another registry in: counters are summed by name, histograms are
  // bucket-merged by name. Used to build the cluster-wide view from
  // per-shard registries; merging shards in ascending shard order is
  // deterministic because the map is name-sorted regardless.
  void merge_from(const StatsRegistry& other);

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace nicwarp
