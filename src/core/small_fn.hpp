// Small-buffer-optimized move-only callable.
//
// The discrete-event hot path schedules millions of short-lived callbacks;
// std::function heap-allocates for anything beyond a couple of captured
// words, which made every Engine::schedule()/Server::submit() pay a malloc.
// SmallFn stores the callable inline when it fits (and is nothrow-movable)
// and only falls back to the heap for oversized captures, so the common
// scheduling path allocates nothing.
//
// Differences from std::function, on purpose:
//  * move-only (no copy, so move-only captures work and no double-ownership);
//  * no target()/target_type() RTTI;
//  * invoking an empty SmallFn is undefined (callers NW_CHECK or branch, as
//    they already did for std::function).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace nicwarp {

template <typename Signature, std::size_t BufBytes = 64>
class SmallFn;

template <typename R, typename... Args, std::size_t BufBytes>
class SmallFn<R(Args...), BufBytes> {
 public:
  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &InlineOps<D>::vt;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) = new D(std::forward<F>(f));
      vt_ = &HeapOps<D>::vt;
    }
  }

  SmallFn(SmallFn&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(buf_, o.buf_);
      o.vt_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(buf_, o.buf_);
        o.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Moves the callable from src storage into (uninitialized) dst storage
    // and leaves src destroyed/empty.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= BufBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static R invoke(void* p, Args&&... args) {
      return (*static_cast<D*>(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      D* s = static_cast<D*>(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static constexpr VTable vt{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& ptr(void* p) { return *static_cast<D**>(p); }
    static R invoke(void* p, Args&&... args) {
      return (*ptr(p))(std::forward<Args>(args)...);
    }
    static void relocate(void* dst, void* src) noexcept {
      *static_cast<D**>(dst) = *static_cast<D**>(src);
    }
    static void destroy(void* p) noexcept { delete ptr(p); }
    static constexpr VTable vt{&invoke, &relocate, &destroy};
  };

  const VTable* vt_{nullptr};
  alignas(std::max_align_t) unsigned char buf_[BufBytes];
};

template <typename Sig, std::size_t N>
bool operator==(const SmallFn<Sig, N>& f, std::nullptr_t) noexcept {
  return !static_cast<bool>(f);
}
template <typename Sig, std::size_t N>
bool operator!=(const SmallFn<Sig, N>& f, std::nullptr_t) noexcept {
  return static_cast<bool>(f);
}

}  // namespace nicwarp
