// Deterministic random-number streams.
//
// Every source of model randomness draws from a named stream derived from a
// single experiment seed, so any experiment is exactly reproducible from its
// configuration alone and two runs that should be comparable (baseline vs
// NIC-optimized) can share identical workload randomness.
#pragma once

#include <cstdint>
#include <string_view>

namespace nicwarp {

// xoshiro256** — fast, high-quality, tiny state; seeded via SplitMix64.
class Rng {
 public:
  Rng() : Rng(0x9e3779b97f4a7c15ULL) {}
  explicit Rng(std::uint64_t seed);

  // Derives an independent stream for `name` from `seed` (hash-mixed), so
  // adding a new consumer never perturbs existing streams.
  Rng(std::uint64_t seed, std::string_view name);

  std::uint64_t next_u64();

  // Uniform in [0, bound) without modulo bias.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  // Exponential with the given mean (> 0).
  double exponential(double mean);

  // Bernoulli trial.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
};

// SplitMix64 step — also used standalone for stable string hashing.
std::uint64_t splitmix64(std::uint64_t& state);

// Stable 64-bit FNV-1a hash of a string (used to derive stream seeds).
std::uint64_t stable_hash(std::string_view s);

}  // namespace nicwarp
