#include "core/timeseries.hpp"

#include <ostream>

namespace nicwarp {

bool TimeSeriesSampler::captures(const std::string& name) const {
  if (opts_.counter_prefixes.empty()) return true;
  for (const std::string& p : opts_.counter_prefixes) {
    if (name.compare(0, p.size(), p) == 0) return true;
  }
  return false;
}

void TimeSeriesSampler::on_gvt(SimTime at, VirtualTime gvt) {
  ++rounds_;
  bool due = false;
  if (opts_.every_gvt_rounds > 0) {
    due = last_sample_round_ < 0 ||
          rounds_ - last_sample_round_ >= opts_.every_gvt_rounds;
  }
  if (!due && opts_.min_virtual_dt > 0) {
    due = last_sample_gvt_.t < 0 || gvt.is_inf() ||
          gvt.t - last_sample_gvt_.t >= opts_.min_virtual_dt;
  }
  if (due) force_sample(at, gvt);
}

void TimeSeriesSampler::force_sample(SimTime at, VirtualTime gvt) {
  TimeSample s;
  s.at = at;
  s.gvt = gvt;
  s.round = rounds_;
  for (auto& [name, value] : stats_->all_counters()) {
    if (captures(name)) s.counters.emplace_back(name, value);
  }
  last_sample_round_ = rounds_;
  last_sample_gvt_ = gvt;
  samples_.push_back(std::move(s));
}

void TimeSeriesSampler::export_jsonl(std::ostream& os) const {
  for (const TimeSample& s : samples_) {
    os << "{\"type\":\"sample\",\"sim_us\":" << static_cast<double>(s.at.ns) / 1000.0
       << ",\"round\":" << s.round << ",\"gvt\":";
    if (s.gvt.is_inf()) {
      os << "null";
    } else {
      os << s.gvt.t;
    }
    os << ",\"counters\":{";
    bool first = true;
    for (const auto& [name, value] : s.counters) {
      if (!first) os << ",";
      first = false;
      os << "\"" << name << "\":" << value;
    }
    os << "}}\n";
  }
}

}  // namespace nicwarp
