// Lightweight always-on invariant checks.
//
// The simulator is deterministic; when an invariant breaks we want to fail
// loudly at the exact simulated instant rather than produce a silently wrong
// measurement, so these checks stay enabled in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace nicwarp {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace nicwarp

#define NW_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::nicwarp::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define NW_CHECK_MSG(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) ::nicwarp::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

// Documents an unreachable branch (e.g. exhaustive switch over an enum).
#define NW_UNREACHABLE(msg) ::nicwarp::check_failed("unreachable", __FILE__, __LINE__, msg)
