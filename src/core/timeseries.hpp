// Time-series sampling of StatsRegistry counters.
//
// End-of-run counters collapse a whole experiment into one point; the
// sampler turns them into curves by snapshotting the registry at a
// configurable cadence — every N GVT rounds, or whenever GVT advances by a
// minimum virtual-time delta. Figures like "committed events vs GVT period"
// then fall out of one run instead of a sweep.
//
// The sampler is driven from the Time-Warp layer (rank 0's kernel calls
// on_gvt for every adoption) so samples align with the algorithm's own
// progress markers rather than arbitrary wall-clock ticks.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/stats.hpp"
#include "core/types.hpp"

namespace nicwarp {

// One snapshot. Counter values are cumulative (consumers difference
// consecutive samples for per-round rates); order is deterministic
// (sorted by name, see StatsRegistry).
struct TimeSample {
  SimTime at{SimTime::zero()};
  VirtualTime gvt{VirtualTime::zero()};
  std::int64_t round{0};  // GVT adoptions observed when the sample was taken
  std::vector<std::pair<std::string, std::int64_t>> counters;
};

class TimeSeriesSampler {
 public:
  struct Options {
    // Sample every N-th GVT adoption; 0 disables round-cadence sampling.
    std::int64_t every_gvt_rounds = 1;
    // Additionally sample whenever GVT advanced by at least this many
    // virtual-time units since the last sample; 0 disables.
    std::int64_t min_virtual_dt = 0;
    // Only counters whose name starts with one of these prefixes are
    // captured; empty = all counters.
    std::vector<std::string> counter_prefixes;
  };

  TimeSeriesSampler(const StatsRegistry& stats, Options opts)
      : stats_(&stats), opts_(std::move(opts)) {}

  // Called once per GVT adoption (rank 0); samples if the cadence says so.
  void on_gvt(SimTime at, VirtualTime gvt);

  // Unconditional snapshot (e.g. the harness's end-of-run sample).
  void force_sample(SimTime at, VirtualTime gvt);

  std::int64_t rounds_seen() const { return rounds_; }
  const std::vector<TimeSample>& samples() const { return samples_; }

  // One {"type":"sample", ...} JSON object per line. GVT of +inf (the
  // termination round) is emitted as null.
  void export_jsonl(std::ostream& os) const;

 private:
  bool captures(const std::string& name) const;

  const StatsRegistry* stats_;
  Options opts_;
  std::vector<TimeSample> samples_;
  std::int64_t rounds_{0};
  std::int64_t last_sample_round_{-1};
  VirtualTime last_sample_gvt_{VirtualTime{-1}};
};

}  // namespace nicwarp
