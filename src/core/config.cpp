#include "core/config.hpp"

#include <charconv>
#include <sstream>

#include "core/assert.hpp"

namespace nicwarp {

ParamSet ParamSet::parse(std::string_view text) {
  ParamSet out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::string_view tok = text.substr(start, i - start);
    auto eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    out.set(std::string(tok.substr(0, eq)), std::string(tok.substr(eq + 1)));
  }
  return out;
}

void ParamSet::set(std::string key, std::string value) {
  kv_[std::move(key)] = std::move(value);
}

void ParamSet::set_i64(std::string key, std::int64_t v) {
  set(std::move(key), std::to_string(v));
}

void ParamSet::set_f64(std::string key, double v) {
  std::ostringstream os;
  os << v;
  set(std::move(key), os.str());
}

bool ParamSet::contains(std::string_view key) const {
  return kv_.find(key) != kv_.end();
}

std::optional<std::string> ParamSet::get(std::string_view key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::int64_t ParamSet::get_i64(std::string_view key, std::int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  std::int64_t v{};
  auto [p, ec] = std::from_chars(it->second.data(), it->second.data() + it->second.size(), v);
  NW_CHECK_MSG(ec == std::errc{} && p == it->second.data() + it->second.size(),
               "malformed integer parameter");
  return v;
}

double ParamSet::get_f64(std::string_view key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  // std::from_chars for double is not universally available; use strtod.
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  NW_CHECK_MSG(end == it->second.c_str() + it->second.size(), "malformed float parameter");
  return v;
}

bool ParamSet::get_bool(std::string_view key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  const std::string& s = it->second;
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  NW_CHECK_MSG(false, "malformed boolean parameter");
  return def;
}

std::string ParamSet::get_str(std::string_view key, std::string def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::string ParamSet::to_string() const {
  std::string out;
  for (const auto& [k, v] : kv_) {
    if (!out.empty()) out += ' ';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

ParamSet ParamSet::merged_with(const ParamSet& overrides) const {
  ParamSet out = *this;
  for (const auto& [k, v] : overrides.kv_) out.kv_[k] = v;
  return out;
}

}  // namespace nicwarp
