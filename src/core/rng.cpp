#include "core/rng.hpp"

#include <cmath>

#include "core/assert.hpp"

namespace nicwarp {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng::Rng(std::uint64_t seed, std::string_view name) : Rng(seed ^ stable_hash(name)) {}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  NW_CHECK(bound > 0);
  // Lemire's rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  NW_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  NW_CHECK(mean > 0.0);
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return next_double() < p; }

}  // namespace nicwarp
