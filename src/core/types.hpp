// Fundamental identifier and time types shared by every layer.
//
// Two distinct notions of time coexist in this codebase and must never be
// mixed:
//
//  * SimTime   — simulated *wall-clock* time of the hardware simulation
//                (nanoseconds the modelled cluster spends executing). This is
//                the x-axis of "Simulation Time (sec)" in the paper's figures.
//  * VirtualTime — the Time-Warp *virtual* time of the application being
//                simulated (timestamps on PDES events, LVT, GVT).
//
// Both are strong integral types so the compiler rejects accidental mixing.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>

namespace nicwarp {

// ---------------------------------------------------------------------------
// Simulated wall-clock time (hardware level), in nanoseconds.
// ---------------------------------------------------------------------------
struct SimTime {
  std::int64_t ns{0};

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimTime o) const { return SimTime{ns + o.ns}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns - o.ns}; }
  constexpr SimTime& operator+=(SimTime o) { ns += o.ns; return *this; }

  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() { return SimTime{std::numeric_limits<std::int64_t>::max()}; }
  static constexpr SimTime from_us(double us) { return SimTime{static_cast<std::int64_t>(us * 1e3)}; }
  static constexpr SimTime from_ns(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime from_seconds(double s) { return SimTime{static_cast<std::int64_t>(s * 1e9)}; }
};

// ---------------------------------------------------------------------------
// Time-Warp virtual time. Plain signed 64-bit with +infinity sentinel; ticks
// are model-defined (the paper's models use integer virtual time units).
// ---------------------------------------------------------------------------
struct VirtualTime {
  std::int64_t t{0};

  constexpr auto operator<=>(const VirtualTime&) const = default;
  constexpr VirtualTime operator+(std::int64_t d) const { return VirtualTime{t + d}; }

  constexpr bool is_inf() const { return t == std::numeric_limits<std::int64_t>::max(); }

  static constexpr VirtualTime zero() { return VirtualTime{0}; }
  static constexpr VirtualTime inf() { return VirtualTime{std::numeric_limits<std::int64_t>::max()}; }
  static constexpr VirtualTime min(VirtualTime a, VirtualTime b) { return a < b ? a : b; }
  static constexpr VirtualTime max(VirtualTime a, VirtualTime b) { return a < b ? b : a; }
};

// ---------------------------------------------------------------------------
// Identifiers.
// ---------------------------------------------------------------------------
using NodeId = std::uint32_t;    // a workstation in the cluster; also the LP rank
using ObjectId = std::uint32_t;  // globally unique simulation-object id
using EventId = std::uint64_t;   // globally unique Time-Warp event id

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr ObjectId kInvalidObject = static_cast<ObjectId>(-1);
inline constexpr EventId kInvalidEvent = static_cast<EventId>(-1);

}  // namespace nicwarp
