// Pooled record-before-write undo log for incremental state saving.
//
// The Time-Warp kernel's copy state saving clones the whole object state
// every event (or every k-th). The undo log inverts the trade: each state
// mutation first copies the field's OLD bytes into a log entry, and a
// rollback restores by replaying entries in reverse. The common case (no
// rollback) pays a few dozen logged bytes per event instead of a full
// clone.
//
// Storage follows the same slab discipline as hw::PacketPool: entries live
// in fixed-size chunks acquired from a shared UndoChunkPool (LIFO freelist,
// stable addresses, optional cap), so steady-state logging performs zero
// heap allocations. One UndoChunkPool serves every object of a
// LogicalProcess; each object owns one UndoLog view over chunks it borrows
// from that pool.
//
// Positions ("marks") are monotonically increasing u64 entry indices that
// are NEVER reused — reset() burns a position — so a mark taken before any
// destructive operation (reset, release_below past it) compares below
// first_pos() afterwards and is detectably stale. Callers use that to route
// a rollback to the snapshot+coast-forward fallback instead of rewinding
// through discarded or dangling entries.
//
// Threading: none. An UndoLog (and its pool) belongs to one LogicalProcess
// on one simulated node; the whole testbed is single-threaded (see
// docs/ARCHITECTURE.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace nicwarp::core {

class UndoChunkPool {
 public:
  static constexpr std::size_t kInlineBytes = 40;
  // One logged write. Writes wider than kInlineBytes are split across
  // consecutive entries by UndoLog::record().
  struct Entry {
    void* addr{nullptr};
    std::uint32_t size{0};
    unsigned char bytes[kInlineBytes];
  };
  static constexpr std::size_t kChunkSlots = 64;
  struct Chunk {
    Entry slots[kChunkSlots];
  };

  // `max_chunks` caps total chunks ever allocated (0 = unbounded). A capped
  // pool makes logging overflow gracefully: try_acquire returns null and the
  // affected event falls back to snapshot+coast-forward on rollback.
  explicit UndoChunkPool(std::size_t max_chunks = 0) : max_chunks_(max_chunks) {}

  UndoChunkPool(const UndoChunkPool&) = delete;
  UndoChunkPool& operator=(const UndoChunkPool&) = delete;

  // Null when the cap is reached and the freelist is empty.
  Chunk* try_acquire();
  void release(Chunk* c);

  std::size_t live() const { return live_; }
  std::size_t peak() const { return peak_; }
  std::size_t allocated() const { return storage_.size(); }
  std::size_t max_chunks() const { return max_chunks_; }

 private:
  std::vector<std::unique_ptr<Chunk>> storage_;
  std::vector<Chunk*> free_;  // LIFO: the hottest chunk is reused first
  std::size_t live_{0};
  std::size_t peak_{0};
  std::size_t max_chunks_;
};

class UndoLog {
 public:
  using Mark = std::uint64_t;

  explicit UndoLog(UndoChunkPool& pool) : pool_(pool) {}
  ~UndoLog();

  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;

  // Position the next entry will occupy. Take one before executing an event;
  // rewind_to(mark) then undoes exactly that event's writes (and everything
  // after them).
  Mark mark() const { return end_pos_; }
  // Oldest live position. A mark below this is stale: its entries were
  // discarded (reset) or released (fossil collection).
  Mark first_pos() const { return first_pos_; }

  // Copies the current `size` bytes at `addr` into the log. False (and the
  // sticky overflow flag) when the pool cap is hit; already-written partial
  // entries remain valid restores and are reclaimed like any others.
  bool record(const void* addr, std::size_t size);

  bool overflowed() const { return overflow_; }
  void clear_overflow() { overflow_ = false; }

  // Restores logged bytes in reverse order down to (and excluding) entries
  // below `m`, then recycles fully-emptied tail chunks. `m` must be live:
  // first_pos() <= m <= mark().
  void rewind_to(Mark m);

  // Drops every entry WITHOUT applying it and burns one position, so every
  // previously-taken mark becomes stale. Used when the tracked state object
  // is replaced wholesale (entry addresses would dangle).
  void reset();

  // Fossil collection: frees whole chunks strictly below `m` without
  // applying them. Entries in a chunk straddling `m` survive until the chunk
  // empties. No-op when m <= first_pos().
  void release_below(Mark m);

  std::uint64_t entries() const { return end_pos_ - first_pos_; }
  std::uint64_t entries_recorded() const { return entries_recorded_; }
  std::uint64_t bytes_logged() const { return bytes_logged_; }
  std::size_t chunks_held() const { return chunks_.size(); }

 private:
  UndoChunkPool::Entry& slot(Mark pos);
  // Appends one entry covering `size` (<= kInlineBytes) bytes at `addr`.
  bool push_entry(const void* addr, std::size_t size);
  void release_all_chunks();

  UndoChunkPool& pool_;
  std::deque<UndoChunkPool::Chunk*> chunks_;
  Mark base_{0};       // absolute position of chunks_.front() slot 0
  Mark first_pos_{0};  // oldest live entry
  Mark end_pos_{0};    // one past the newest entry (monotone, never reused)
  bool overflow_{false};
  std::uint64_t entries_recorded_{0};
  std::uint64_t bytes_logged_{0};
};

}  // namespace nicwarp::core
