// Flat key=value parameter set used to describe experiments.
//
// Configs are plain data (string map) so a whole experiment — workload,
// GVT mode, cost-model overrides — serializes to one line, which the harness
// prints next to every result row for reproducibility.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace nicwarp {

class ParamSet {
 public:
  ParamSet() = default;

  // Parses "a=1 b=2.5 c=hello" (whitespace separated). Throws nothing; bad
  // tokens (no '=') are ignored.
  static ParamSet parse(std::string_view text);

  void set(std::string key, std::string value);
  void set_i64(std::string key, std::int64_t v);
  void set_f64(std::string key, double v);

  bool contains(std::string_view key) const;

  // Typed getters with defaults. A present-but-malformed value is a
  // programming error and aborts.
  std::int64_t get_i64(std::string_view key, std::int64_t def) const;
  double get_f64(std::string_view key, double def) const;
  bool get_bool(std::string_view key, bool def) const;
  std::string get_str(std::string_view key, std::string def) const;

  std::optional<std::string> get(std::string_view key) const;

  // "a=1 b=2" canonical (sorted) form.
  std::string to_string() const;

  // Right-hand values override left-hand ones.
  ParamSet merged_with(const ParamSet& overrides) const;

  std::size_t size() const { return kv_.size(); }

 private:
  std::map<std::string, std::string, std::less<>> kv_;
};

}  // namespace nicwarp
