// Host-side messaging stack: an MPICH-like eager layer with credit-based
// flow control running over a BIP-like sequenced link layer (§3.2 of the
// paper describes both and the ways NIC-level packet dropping breaks them).
//
// Responsibilities:
//  * per-destination send credits (window `mpi_credit_window`); senders with
//    no credit stage messages until credits return;
//  * credit return, piggybacked on reverse traffic (`credits_pb`) or via an
//    explicit kCreditUpdate when reverse traffic is absent;
//  * per-channel BIP sequence numbers on host-originated packets; the
//    receiver detects gaps (which, on a FIFO fabric, prove intentional NIC
//    drops) and — when credit repair is enabled — returns the dropped
//    packets' credits so the sender's window does not leak shut;
//  * staging for NIC send-ring backpressure.
//
// Channel state is flat per-node vectors (node count is fixed at testbed
// build) and staged packets are PacketRefs into the cluster's shared pool,
// so the send path performs no hashing and no per-packet allocation.
// Channels additionally record first-touch activation order: the periodic
// sweeps (credit-return timer, stall prober) walk it newest-first, which is
// the iteration order the previous unordered_map gave them — credit-update
// emission order, and therefore every downstream byte, is unchanged.
//
// All calls happen in host-CPU task context; the *caller* charges the
// per-message host CPU cost (the kernel's dynamic task costing does this).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/flat_ring.hpp"
#include "core/latency.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "hw/node.hpp"
#include "hw/packet.hpp"
#include "hw/packet_pool.hpp"

namespace nicwarp::comm {

struct CommOptions {
  // §3.2's repair of flow control under NIC drops (ablation A2). When off,
  // dropped packets leak credits until the costly resync timeout fires.
  bool credit_repair = true;
  // Credits owed to a quiet peer are returned by timer after this long even
  // below the batching threshold — without it, a sender whose last packets
  // were NIC-dropped can stall forever once traffic quiesces.
  double credit_return_timeout_us = 200.0;
  // Liveness fallback when credit repair is off: after this long with
  // staged traffic and a closed window, the sender performs an expensive
  // resynchronization with the receiver (models an MPICH timeout path).
  double credit_timeout_us = 5000.0;
};

class HostComm {
 public:
  HostComm(hw::Node& node, CommOptions opts = {});

  // Hands a logical packet to the stack. May transmit immediately, or stage
  // it behind flow control / NIC backpressure. Per-destination FIFO order is
  // preserved.
  void send(hw::Packet pkt);

  // Upcall for every application-level packet (events, GVT control…) that
  // clears the stack; runs in host-task context.
  void set_deliver(std::function<void(hw::Packet)> fn) { deliver_ = std::move(fn); }

  // Messages currently staged (either for credits or for a NIC slot).
  std::size_t staged() const;

  // Minimum receive timestamp over staged *event* messages (inf if none).
  // GVT estimation must fold this in: a credit-stalled event is invisible to
  // both host LVT and wire-level accounting.
  VirtualTime min_staged_event_ts() const;

  // Sender-side credits currently available toward `dst` (test hook).
  std::int64_t credits_for(NodeId dst) const;

  // The local NIC dropped `n` of our packets to `dst` in place (early
  // cancellation). They never reached the wire, so their credits come
  // straight back — the paper's "NIC keeps track of credit from dropped
  // packets". Without this, a channel whose final in-window packets are
  // dropped wedges shut forever (no later packet reveals the gap).
  void refund_credits(NodeId dst, std::int64_t n);

  // Debug: prints per-channel credit/staging state to stderr.
  void dump_state() const;

  // Credit-conservation checker (the window is a fixed token supply): for
  // the channel sender -> receiver,
  //
  //   credits + (consumed - refunded - accepted) + owed
  //           + (returned - granted) + clamped == window
  //
  // i.e. every credit is either held by the sender, attached to an event in
  // flight, owed at the receiver, riding a return update, or was destroyed
  // by a documented clamp. The identity holds at every host-task boundary;
  // a channel that took the emergency resync path (which mints a fresh
  // window) is skipped. Aborts via NW_CHECK on violation.
  static void check_invariants(const HostComm& sender, const HostComm& receiver);

 private:
  struct ChannelTx {  // per destination
    bool touched{false};  // channel state ever created (was: map entry exists)
    bool opened{false};
    std::int64_t credits{0};
    std::int64_t consumed_total{0};
    std::int64_t granted_total{0};
    std::int64_t refunded_total{0};
    std::int64_t clamped_total{0};  // credits destroyed by window clamps
    std::uint64_t next_seq{1};
    FlatRing<hw::PacketRef> credit_waiting;
    SimTime stall_since{SimTime::max()};
    // Emergency resync bookkeeping (bounded-retry recovery path).
    std::int64_t resync_attempts{0};
    bool resynced{false};  // ever took the resync path (breaks conservation)
    SimTime next_resync_ok{SimTime::zero()};
  };
  struct ChannelRx {  // per source
    bool touched{false};
    std::uint64_t expected_seq{1};
    std::int64_t credits_owed{0};  // consumed but not yet returned
    std::int64_t returned_total{0};
    std::int64_t accepted_total{0};  // event packets that cleared the stack
  };

  // Channel accessors at every site the old code did `tx_[id]` / `rx_[id]`:
  // first touch appends to the activation-order list.
  ChannelTx& tx_at(NodeId dst);
  ChannelRx& rx_at(NodeId src);

  void on_raw_rx(hw::PacketRef ref);
  void send_ref(hw::PacketRef ref);   // credit-check a pooled packet
  void dispatch(hw::PacketRef ref);   // stamp seq/credits and go to the NIC
  void pump_nic_queue();
  void pump_credit_queue(NodeId dst);
  void maybe_return_credits(NodeId src);
  void send_credit_update(NodeId src);
  void arm_credit_timer();
  void grant_credits(NodeId src, std::int64_t n);
  void check_stalls();
  bool is_sequenced(const hw::Packet& pkt) const;

  hw::Node& node_;
  CommOptions opts_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  LatencyRecorder& latency_;
  hw::PacketPool& pool_;
  std::int64_t window_;
  std::vector<ChannelTx> tx_;  // indexed by destination node
  std::vector<ChannelRx> rx_;  // indexed by source node
  // First-touch activation order; periodic sweeps iterate these newest-first
  // (the predecessor unordered_map's iteration order for distinct buckets).
  std::vector<NodeId> tx_order_;
  std::vector<NodeId> rx_order_;
  FlatRing<hw::PacketRef> nic_waiting_;  // credit already consumed, NIC busy
  std::function<void(hw::Packet)> deliver_;
  bool stall_probe_scheduled_{false};
  bool credit_timer_armed_{false};
};

}  // namespace nicwarp::comm
