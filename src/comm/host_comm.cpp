#include "comm/host_comm.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "core/log.hpp"

namespace nicwarp::comm {

HostComm::HostComm(hw::Node& node, CommOptions opts)
    : node_(node),
      opts_(opts),
      stats_(node.stats()),
      trace_(node.trace()),
      latency_(node.latency()),
      pool_(node.pool()),
      window_(node.cost().mpi_credit_window) {
  tx_.resize(node.world_size());
  rx_.resize(node.world_size());
  node_.set_raw_rx([this](hw::PacketRef ref) { on_raw_rx(ref); });
  node_.set_tx_ready_cb([this] { pump_nic_queue(); });
}

HostComm::ChannelTx& HostComm::tx_at(NodeId dst) {
  NW_CHECK(dst < tx_.size());
  ChannelTx& ch = tx_[dst];
  if (!ch.touched) {
    ch.touched = true;
    tx_order_.push_back(dst);
  }
  return ch;
}

HostComm::ChannelRx& HostComm::rx_at(NodeId src) {
  NW_CHECK(src < rx_.size());
  ChannelRx& ch = rx_[src];
  if (!ch.touched) {
    ch.touched = true;
    rx_order_.push_back(src);
  }
  return ch;
}

bool HostComm::is_sequenced(const hw::Packet& pkt) const {
  switch (pkt.hdr.kind) {
    case hw::PacketKind::kEvent:
    case hw::PacketKind::kHostGvtToken:
    case hw::PacketKind::kPGvtReport:
    case hw::PacketKind::kPGvtRequest:
    case hw::PacketKind::kAck:
      return true;
    case hw::PacketKind::kGvtBroadcast:
    case hw::PacketKind::kCreditUpdate:
      // On an unreliable fabric these ride the sequenced stream too: a lost
      // credit return must be replayed or the window leaks shut, and a lost
      // host GVT broadcast would strand peers after the root stops. The
      // NIC's exactly-once accept then makes duplicated credit grants
      // idempotent per seq.
      return node_.cost().rel_enabled;
    case hw::PacketKind::kNicGvtToken:
    case hw::PacketKind::kNak:
      return false;  // NIC-generated traffic never joins the BIP stream
  }
  return false;
}

void HostComm::send(hw::Packet pkt) {
  NW_CHECK_MSG(pkt.hdr.dst != node_.id(), "local delivery must bypass HostComm");
  pkt.hdr.src = node_.id();
  // Latency pipeline origin: stamped before any staging/backpressure so the
  // delivery histogram includes credit-stall and NIC-queue time.
  if (pkt.hdr.kind == hw::PacketKind::kEvent && latency_.enabled()) {
    pkt.hdr.sent_at = node_.engine().now();
  }
  send_ref(pool_.acquire(std::move(pkt)));
}

void HostComm::send_ref(hw::PacketRef ref) {
  ScopedPhaseTimer phase_scope(&node_.phases(), Phase::kCommPump);
  hw::Packet& pkt = pool_.get(ref);
  ChannelTx& ch = tx_at(pkt.hdr.dst);
  if (!ch.opened) {  // first contact with this peer: the window opens full
    ch.opened = true;
    ch.credits = window_;
  }
  // Only event-class traffic consumes credits; tiny control packets ride the
  // dedicated control path (as MPICH's internal packets do).
  const bool needs_credit = pkt.hdr.kind == hw::PacketKind::kEvent;
  if (needs_credit) {
    if (ch.credits == 0) {
      if (trace_.enabled(TraceCat::kCredit)) {
        trace_.record({node_.engine().now(), pkt.hdr.recv_ts, TraceCat::kCredit,
                       TracePoint::kCreditStall, pkt.hdr.negative, node_.id(),
                       pkt.hdr.dst, pkt.hdr.event_id,
                       static_cast<std::uint64_t>(ch.credit_waiting.size() + 1), 0});
      }
      ch.credit_waiting.push_back(ref);
      if (ch.stall_since == SimTime::max()) ch.stall_since = node_.engine().now();
      stats_.counter("comm.credit_stalls").add(1);
      if (node_.entity().enabled()) {
        node_.entity().record_credit_stall(node_.id());
        node_.entity().note_link_queue_depth(node_.id(), pkt.hdr.dst,
                                             ch.credit_waiting.size());
      }
      check_stalls();
      return;
    }
    --ch.credits;
    ++ch.consumed_total;
  }
  dispatch(ref);
}

void HostComm::dispatch(hw::PacketRef ref) {
  hw::Packet& pkt = pool_.get(ref);
  ChannelTx& ch = tx_at(pkt.hdr.dst);
  if (is_sequenced(pkt)) pkt.hdr.bip_seq = ch.next_seq++;
  // NOTE: credit returns deliberately do NOT piggyback on event packets --
  // the cancellation firmware may drop those in place, and credits riding a
  // dropped packet would leak irrecoverably. Returns travel only on
  // dedicated kCreditUpdate packets, which the NIC never drops.
  if (node_.nic_tx_ready() && nic_waiting_.empty()) {
    node_.dma_to_nic(ref);
  } else {
    nic_waiting_.push_back(ref);
    stats_.counter("comm.nic_backpressure").add(1);
  }
}

void HostComm::pump_nic_queue() {
  while (!nic_waiting_.empty() && node_.nic_tx_ready()) {
    node_.dma_to_nic(nic_waiting_.pop_front());
  }
}

void HostComm::pump_credit_queue(NodeId dst) {
  ChannelTx& ch = tx_at(dst);
  while (!ch.credit_waiting.empty() && ch.credits > 0) {
    const hw::PacketRef ref = ch.credit_waiting.pop_front();
    --ch.credits;
    ++ch.consumed_total;
    dispatch(ref);
  }
  if (ch.credit_waiting.empty()) {
    ch.stall_since = SimTime::max();
    // The channel recovered; a future stall starts a fresh retry budget.
    ch.resync_attempts = 0;
    ch.next_resync_ok = SimTime::zero();
  }
}

void HostComm::grant_credits(NodeId src, std::int64_t n) {
  if (n <= 0) return;
  ChannelTx& ch = tx_at(src);
  if (!ch.opened) {
    ch.opened = true;
    ch.credits = window_;  // peer contacted us first; open our window lazily
    pump_credit_queue(src);
    return;  // a fresh window already covers anything owed
  }
  ch.credits += n;
  ch.granted_total += n;
  if (ch.credits > window_) {
    stats_.counter("comm.credit_clamped").add(ch.credits - window_);
    ch.clamped_total += ch.credits - window_;
    ch.credits = window_;  // clamp against repair races
  }
  if (trace_.enabled(TraceCat::kCredit)) {
    trace_.record({node_.engine().now(), VirtualTime::inf(), TraceCat::kCredit,
                   TracePoint::kCreditGrant, false, node_.id(), src, kInvalidEvent,
                   static_cast<std::uint64_t>(n),
                   static_cast<std::uint64_t>(ch.credits)});
  }
  pump_credit_queue(src);
}

void HostComm::send_credit_update(NodeId src) {
  ChannelRx& rxch = rx_at(src);
  if (rxch.credits_owed <= 0) return;
  hw::Packet cr;
  cr.hdr.kind = hw::PacketKind::kCreditUpdate;
  cr.hdr.dst = src;
  cr.hdr.size_bytes = static_cast<std::uint32_t>(node_.cost().credit_msg_bytes);
  cr.hdr.credits_pb = static_cast<std::uint32_t>(rxch.credits_owed);
  rxch.returned_total += rxch.credits_owed;
  rxch.credits_owed = 0;
  stats_.counter("comm.credit_msgs").add(1);
  if (trace_.enabled(TraceCat::kCredit)) {
    trace_.record({node_.engine().now(), VirtualTime::inf(), TraceCat::kCredit,
                   TracePoint::kCreditUpdateSent, false, node_.id(), src,
                   kInvalidEvent, cr.hdr.credits_pb, 0});
  }
  send(std::move(cr));
}

void HostComm::maybe_return_credits(NodeId src) {
  // Without reverse traffic to piggyback on, return credits explicitly once
  // half the window has accumulated; a timer covers the quiescent tail.
  if (rx_at(src).credits_owed >= window_ / 2) {
    send_credit_update(src);
  } else {
    arm_credit_timer();
  }
}

void HostComm::arm_credit_timer() {
  if (credit_timer_armed_) return;
  credit_timer_armed_ = true;
  node_.engine().schedule(SimTime::from_us(opts_.credit_return_timeout_us), [this] {
    credit_timer_armed_ = false;
    bool more = false;
    // Newest-activated channel first — see the activation-order note in the
    // header; the emission order here is observable in traces and timing.
    for (std::size_t i = rx_order_.size(); i > 0; --i) {
      const NodeId src = rx_order_[i - 1];
      if (rx_[src].credits_owed > 0) {
        send_credit_update(src);
        more = true;
      }
    }
    if (more) arm_credit_timer();
  });
}

void HostComm::on_raw_rx(hw::PacketRef ref) {
  ScopedPhaseTimer phase_scope(&node_.phases(), Phase::kCommPump);
  const NodeId src = pool_.get(ref).hdr.src;
  // 1. Credits returned to us (piggybacked on anything).
  if (pool_.get(ref).hdr.credits_pb > 0) {
    grant_credits(src, pool_.get(ref).hdr.credits_pb);
  }

  const hw::Packet& pkt = pool_.get(ref);
  // 2. BIP sequencing / drop detection.
  if (is_sequenced(pkt) && pkt.hdr.bip_seq != 0) {
    ChannelRx& rxch = rx_at(src);
    NW_CHECK_MSG(pkt.hdr.bip_seq >= rxch.expected_seq,
                 "BIP sequence moved backwards on a FIFO fabric");
    const std::uint64_t gap = pkt.hdr.bip_seq - rxch.expected_seq;
    if (gap > 0) {
      // On a FIFO fabric a gap proves the sender's NIC dropped packets in
      // place (early cancellation). Repair the sender's credit accounting.
      // Detection only: the credits themselves are refunded at the sender
      // (refund_credits), keeping the accounting exact.
      stats_.counter("comm.seq_gaps").add(static_cast<std::int64_t>(gap));
      if (trace_.enabled(TraceCat::kCredit)) {
        trace_.record({node_.engine().now(), VirtualTime::inf(), TraceCat::kCredit,
                       TracePoint::kSeqGap, false, node_.id(), src, kInvalidEvent,
                       gap, pkt.hdr.bip_seq});
      }
    }
    rxch.expected_seq = pkt.hdr.bip_seq + 1;
  }

  // 3. Credit consumption accounting for event traffic.
  if (pkt.hdr.kind == hw::PacketKind::kEvent) {
    ChannelRx& rxch = rx_at(src);
    rxch.credits_owed += 1;
    rxch.accepted_total += 1;
    maybe_return_credits(src);
  }

  // 4. Pure credit packets are consumed here.
  if (pkt.hdr.kind == hw::PacketKind::kCreditUpdate) {
    pool_.release(ref);
    return;
  }

  NW_CHECK_MSG(deliver_ != nullptr, "no deliver handler installed");
  deliver_(pool_.take(ref));
}

void HostComm::check_stalls() {
  // The resync path runs when repair is off (credits leak by design, A2
  // ablation) and, as a bounded-retry backstop, on an unreliable fabric
  // (where it should never actually fire if the NIC recovery works).
  const bool recovery_active = !opts_.credit_repair || node_.cost().rel_enabled;
  if (!recovery_active || stall_probe_scheduled_) return;
  stall_probe_scheduled_ = true;
  node_.engine().schedule(SimTime::from_us(opts_.credit_timeout_us), [this] {
    stall_probe_scheduled_ = false;
    bool still_stalled = false;
    // Newest-activated channel first (predecessor map order); resync order
    // across channels is observable through host-task timing.
    for (std::size_t i = tx_order_.size(); i > 0; --i) {
      const NodeId dst = tx_order_[i - 1];
      ChannelTx& ch = tx_[dst];
      if (!ch.credit_waiting.empty() &&
          node_.engine().now() - ch.stall_since >=
              SimTime::from_us(opts_.credit_timeout_us) &&
          node_.engine().now() >= ch.next_resync_ok) {
        if (ch.resync_attempts >= node_.cost().credit_resync_max_retries) {
          // Bounded: give up on this channel and leave the evidence in the
          // stats rather than resyncing forever against a broken peer.
          stats_.counter("comm.credit_resync_exhausted").add(1);
          continue;
        }
        stats_.counter("comm.credit_resyncs").add(1);
        if (trace_.enabled(TraceCat::kCredit)) {
          trace_.record({node_.engine().now(), VirtualTime::inf(), TraceCat::kCredit,
                         TracePoint::kCreditResync, false, node_.id(), dst,
                         kInvalidEvent,
                         static_cast<std::uint64_t>(ch.credit_waiting.size()),
                         static_cast<std::uint64_t>(ch.resync_attempts)});
        }
        // Resynchronize: recover the full window after a costly host-side
        // timeout handler. Retries back off exponentially.
        node_.run_host_task(node_.cost().us(node_.cost().host_msg_recv_us * 4), [] {});
        ch.resynced = true;
        ch.next_resync_ok =
            node_.engine().now() +
            SimTime::from_us(opts_.credit_timeout_us *
                             static_cast<double>(std::int64_t{1}
                                                 << std::min<std::int64_t>(
                                                        ch.resync_attempts, 16)));
        ++ch.resync_attempts;
        ch.credits = window_;
        pump_credit_queue(dst);
      }
      still_stalled |= !ch.credit_waiting.empty();
    }
    if (still_stalled) check_stalls();
  });
}

void HostComm::check_invariants(const HostComm& sender, const HostComm& receiver) {
  const NodeId dst = receiver.node_.id();
  if (dst >= sender.tx_.size()) return;
  const ChannelTx& tx = sender.tx_[dst];
  if (!tx.touched || !tx.opened) return;
  if (tx.resynced) return;  // the emergency path mints credits by design

  std::int64_t accepted = 0, owed = 0, returned = 0;
  const NodeId src = sender.node_.id();
  if (src < receiver.rx_.size() && receiver.rx_[src].touched) {
    accepted = receiver.rx_[src].accepted_total;
    owed = receiver.rx_[src].credits_owed;
    returned = receiver.rx_[src].returned_total;
  }
  const std::int64_t in_flight = tx.consumed_total - tx.refunded_total - accepted;
  const std::int64_t returning = returned - tx.granted_total;
  NW_CHECK_MSG(tx.credits >= 0 && tx.credits <= sender.window_,
               "credit balance outside [0, window]");
  NW_CHECK_MSG(in_flight >= 0, "more events accepted than consumed credits");
  NW_CHECK_MSG(returning >= 0, "more credits granted than the receiver returned");
  NW_CHECK_MSG(owed >= 0, "negative credits owed");
  NW_CHECK_MSG(tx.credits + in_flight + owed + returning + tx.clamped_total ==
                   sender.window_,
               "credit conservation violated: window leaked open or shut");
}

void HostComm::refund_credits(NodeId dst, std::int64_t n) {
  if (!opts_.credit_repair || n <= 0) return;
  ChannelTx& ch = tx_at(dst);
  ch.credits += n;
  ch.refunded_total += n;
  if (ch.credits > window_) {
    stats_.counter("comm.credit_clamped_refund").add(ch.credits - window_);
    ch.clamped_total += ch.credits - window_;
    ch.credits = window_;
  }
  stats_.counter("comm.credits_refunded").add(n);
  if (trace_.enabled(TraceCat::kCredit)) {
    trace_.record({node_.engine().now(), VirtualTime::inf(), TraceCat::kCredit,
                   TracePoint::kCreditRefund, false, node_.id(), dst, kInvalidEvent,
                   static_cast<std::uint64_t>(n),
                   static_cast<std::uint64_t>(ch.credits)});
  }
  pump_credit_queue(dst);
}

void HostComm::dump_state() const {
  for (const NodeId dst : tx_order_) {
    const ChannelTx& ch = tx_[dst];
    std::fprintf(stderr,
                 "  node%u->%u credits=%lld staged=%zu consumed=%lld granted=%lld refunded=%lld\n",
                 node_.id(), dst, (long long)ch.credits, ch.credit_waiting.size(),
                 (long long)ch.consumed_total, (long long)ch.granted_total,
                 (long long)ch.refunded_total);
  }
  for (const NodeId src : rx_order_) {
    const ChannelRx& ch = rx_[src];
    std::fprintf(stderr, "  node%u<-%u expected_seq=%llu owed=%lld returned=%lld\n",
                 node_.id(), src, (unsigned long long)ch.expected_seq,
                 (long long)ch.credits_owed, (long long)ch.returned_total);
  }
  std::fprintf(stderr, "  node%u nic_waiting=%zu\n", node_.id(), nic_waiting_.size());
}

std::size_t HostComm::staged() const {
  std::size_t n = nic_waiting_.size();
  for (const NodeId dst : tx_order_) n += tx_[dst].credit_waiting.size();
  return n;
}

VirtualTime HostComm::min_staged_event_ts() const {
  VirtualTime m = VirtualTime::inf();
  auto fold = [&m, this](hw::PacketRef ref) {
    const hw::Packet& p = pool_.get(ref);
    if (p.hdr.kind == hw::PacketKind::kEvent) m = VirtualTime::min(m, p.hdr.recv_ts);
  };
  for (std::size_t i = 0; i < nic_waiting_.size(); ++i) fold(nic_waiting_.at(i));
  for (const NodeId dst : tx_order_) {
    const FlatRing<hw::PacketRef>& q = tx_[dst].credit_waiting;
    for (std::size_t i = 0; i < q.size(); ++i) fold(q.at(i));
  }
  return m;
}

std::int64_t HostComm::credits_for(NodeId dst) const {
  if (dst >= tx_.size() || !tx_[dst].touched) return window_;
  return tx_[dst].credits;
}

}  // namespace nicwarp::comm
