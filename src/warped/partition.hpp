// Object -> LP (node) placement.
#pragma once

#include <unordered_map>

#include "core/assert.hpp"
#include "core/types.hpp"

namespace nicwarp::warped {

struct Partition {
  std::unordered_map<ObjectId, NodeId> owner;

  NodeId of(ObjectId obj) const {
    auto it = owner.find(obj);
    NW_CHECK_MSG(it != owner.end(), "object not placed in partition");
    return it->second;
  }

  void place(ObjectId obj, NodeId node) {
    NW_CHECK_MSG(owner.emplace(obj, node).second, "object placed twice");
  }
};

}  // namespace nicwarp::warped
