// Simulation objects and their rollback-able state.
//
// Mirrors WARPED's object model: an application derives from
// SimulationObject, keeps ALL mutable simulation data inside a State
// subclass (the kernel snapshots it before every event — copy state saving),
// and interacts with the world only through the ObjectContext passed to
// execute(). Randomness comes from ctx.rng(), which is derived from the
// event's deterministic id, so re-execution after a rollback replays the
// same draws.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "core/undo_log.hpp"
#include "warped/event.hpp"

namespace nicwarp::warped {

// Base class for object state. `signature` is a model-maintained checksum
// folded on every committed-effect update; because it lives in the state it
// is rolled back with it, so the final sum over all objects is a
// schedule-independent fingerprint of the simulation's result.
//
// Write barrier: under incremental state saving (StateSaveMode::kIncremental)
// every mutation of a state field must go through mut(), which logs the
// field's old bytes into the attached undo log before handing back a
// writable reference. Under copy state saving the attachment is null and
// mut() is a plain pass-through (one predicted-false branch). The contract:
//
//   st.mut(st.field) = v;      // any write to rollback-able data
//   st.mut(st.count) += 1;
//
// Only trivially-copyable fields qualify (enforced at compile time); states
// with out-of-line storage must keep it behind trivially-copyable handles or
// stay on copy state saving.
struct State {
  std::int64_t signature{0};

  State() = default;
  // Copies carry only the simulation-visible payload. The undo attachment is
  // identity, not state: clones (snapshots) and restored states start
  // detached, which is what keeps coast-forward replay from logging.
  State(const State& other) : signature(other.signature) {}
  State& operator=(const State& other) {
    signature = other.signature;
    return *this;
  }

  virtual ~State() = default;
  virtual std::unique_ptr<State> clone() const = 0;
  // Approximate footprint of one saved copy (heatmap state_save_bytes
  // attribution). The default undercounts states with out-of-line storage;
  // override for exact accounting.
  virtual std::size_t byte_size() const { return sizeof(State); }

  // Record-before-write barrier; see the class comment.
  template <typename T>
  T& mut(T& field) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "undo logging restores raw bytes; field must be "
                  "trivially copyable");
    if (undo_ != nullptr) undo_->record(&field, sizeof(T));
    return field;
  }

  // Kernel hook: attaches (or detaches, with null) the undo log that mut()
  // feeds. Not owned.
  void set_undo(core::UndoLog* log) { undo_ = log; }
  core::UndoLog* undo() const { return undo_; }

 private:
  core::UndoLog* undo_{nullptr};
};

// CRTP convenience: gives a copyable state struct its clone().
template <typename Derived>
struct CloneableState : State {
  std::unique_ptr<State> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
  std::size_t byte_size() const override { return sizeof(Derived); }
};

// Interface through which execute() affects the world.
class ObjectContext {
 public:
  virtual ~ObjectContext() = default;

  // Virtual time of the event being executed.
  virtual VirtualTime now() const = 0;

  // Emits an event to `dst` (which may be local or remote — the kernel
  // routes it) with the given receive timestamp (must be > now()).
  virtual void send(ObjectId dst, VirtualTime recv_ts,
                    std::vector<std::int64_t> data = {}) = 0;

  // Rollback-safe randomness: seeded from the executing event's id.
  virtual Rng& rng() = 0;

  // Folds a value into the object's result signature (stored in State, so
  // it is undone by rollback).
  virtual void fold_signature(std::int64_t v) = 0;
};

class SimulationObject {
 public:
  // `initial_state` must not be null; it becomes the rollback-able state.
  SimulationObject(ObjectId id, std::string name, std::unique_ptr<State> initial_state)
      : id_(id), name_(std::move(name)), state_(std::move(initial_state)) {}
  virtual ~SimulationObject() = default;

  SimulationObject(const SimulationObject&) = delete;
  SimulationObject& operator=(const SimulationObject&) = delete;

  ObjectId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Called once at virtual time zero; typically schedules initial events.
  virtual void initialize(ObjectContext& ctx) = 0;

  // Processes one event. Must only read/write data reachable from state().
  virtual void execute(ObjectContext& ctx, const EventMsg& ev) = 0;

  State& state() { return *state_; }
  const State& state() const { return *state_; }

  // Kernel hooks for copy state saving / rollback restoration.
  std::unique_ptr<State> snapshot_state() const { return state_->clone(); }
  void replace_state(std::unique_ptr<State> s) { state_ = std::move(s); }

 protected:
  // Typed access for derived classes.
  template <typename T>
  T& state_as() {
    return static_cast<T&>(*state_);
  }
  template <typename T>
  const T& state_as() const {
    return static_cast<const T&>(*state_);
  }

 private:
  ObjectId id_;
  std::string name_;
  std::unique_ptr<State> state_;
};

}  // namespace nicwarp::warped
