// Time-Warp event messages.
//
// Event identity is *deterministic*: an event's id is a stable mix of its
// parent event's id, the sending object, and the send's index within that
// execution. Re-executing an event after a rollback therefore regenerates
// byte-identical children (same ids), which is what makes (a) anti-message
// annihilation exact and (b) the committed trajectory of a model independent
// of the rollback schedule — the core invariant the test suite checks when
// comparing baseline and NIC-optimized runs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"

namespace nicwarp::warped {

struct EventMsg {
  ObjectId src_obj{kInvalidObject};
  ObjectId dst_obj{kInvalidObject};
  VirtualTime send_ts{VirtualTime::zero()};
  VirtualTime recv_ts{VirtualTime::zero()};
  EventId id{kInvalidEvent};
  bool negative{false};
  std::vector<std::int64_t> data;

  EventMsg as_anti() const {
    EventMsg a = *this;
    a.negative = true;
    a.data.clear();
    return a;
  }
};

// Canonical total order on events: (recv_ts, dst_obj, id). Every LP
// processes, rolls back, and annihilates against this order, which makes the
// committed execution sequence unique regardless of message arrival timing.
struct EventOrder {
  bool operator()(const EventMsg& a, const EventMsg& b) const {
    if (a.recv_ts != b.recv_ts) return a.recv_ts < b.recv_ts;
    if (a.dst_obj != b.dst_obj) return a.dst_obj < b.dst_obj;
    return a.id < b.id;
  }
};

inline bool event_before(const EventMsg& a, const EventMsg& b) {
  return EventOrder{}(a, b);
}

// Deterministic child-event id: parent execution id x sending object x
// send index.
inline EventId make_event_id(EventId parent, ObjectId src, std::uint32_t send_index) {
  std::uint64_t s = parent;
  s ^= 0x9e3779b97f4a7c15ULL + (static_cast<std::uint64_t>(src) << 17) + send_index;
  return splitmix64(s);
}

// Root id for an object's initial (self-scheduled) events.
inline EventId make_root_id(ObjectId obj) {
  std::uint64_t s = 0xD1B54A32D192ED03ULL ^ obj;
  return splitmix64(s);
}

}  // namespace nicwarp::warped
