// Logical Process: the per-node optimistic simulation engine.
//
// Owns the node's simulation objects, their pending/processed event queues,
// copy-saved states and output records; implements straggler detection,
// rollback with aggressive cancellation (§3.2's baseline behaviour),
// anti-message annihilation (including antis that arrive before their
// positives), and GVT-driven fossil collection.
//
// The LP is purely a virtual-time machine — it knows nothing about hardware
// costs or wall-clock. The Kernel wraps every LP operation in host-CPU tasks
// and charges the cost model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/latency.hpp"
#include "core/phase_profiler.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "warped/event.hpp"
#include "warped/object.hpp"

namespace nicwarp::warped {

// Rollback granularity.
//  kObject — only the straggler's destination object rolls back (modern,
//            minimal-undo semantics).
//  kLp     — a straggler rolls the WHOLE LP back to its timestamp (the
//            shared-input-queue semantics of 2002-era WARPED deployments).
//            This is the semantics under which the paper's Figure 3(b)
//            cancellation rule — drop ALL queued messages with send_ts
//            beyond the anti's timestamp — is sound.
enum class RollbackScope { kObject, kLp };

// Anti-message strategy on rollback.
//  kAggressive — cancel every undone output immediately (the paper's §3.2
//                baseline, WARPED's "aggressive cancellation" [27]).
//  kLazy       — hold undone outputs; if re-execution regenerates an
//                identical send (deterministic event ids make this an exact
//                test) no anti is ever sent; an anti goes out only when the
//                generator is annihilated or re-executes without
//                regenerating the send. Not combinable with NIC early
//                cancellation (the drop machinery assumes every doomed
//                message gets an anti).
enum class CancellationMode { kAggressive, kLazy };

// State-saving strategy.
//  kCopy        — clone the whole object state every k-th event (WARPED's
//                 copy state saving; k = state_save_period).
//  kIncremental — record-before-write undo logging: mutations through
//                 State::mut() copy old bytes into a pooled undo log, and a
//                 rollback rewinds entries in reverse. Full snapshots are
//                 still cut every k-th event as anchors for the fallback
//                 path (log overflow, state replacement); between them the
//                 log alone carries the history.
enum class StateSaveMode { kCopy, kIncremental };

class LogicalProcess {
 public:
  // `state_save_period` >= 1 fixes the snapshot cadence; 0 selects the
  // adaptive interval (Lin–Lazowska square-root rule driven by the observed
  // events-per-rollback ratio, see current_period()).
  LogicalProcess(NodeId rank, StatsRegistry& stats, std::uint64_t seed,
                 RollbackScope scope = RollbackScope::kObject,
                 CancellationMode cancellation = CancellationMode::kAggressive,
                 std::int64_t state_save_period = 1,
                 StateSaveMode state_mode = StateSaveMode::kCopy);

  void add_object(std::unique_ptr<SimulationObject> obj);
  bool has_object(ObjectId id) const { return objs_.count(id) != 0; }
  std::vector<ObjectId> object_ids() const;
  NodeId rank() const { return rank_; }

  // Runs every object's initialize() at virtual time 0 and returns the
  // events they scheduled (the kernel routes them).
  std::vector<EventMsg> initialize_objects();

  // --- message insertion (local sends and network arrivals) ---
  struct InsertResult {
    bool annihilated{false};
    bool rollback{false};
    std::size_t events_undone{0};
    // Coast-forward replays performed to rebuild state from the nearest
    // snapshot (only > 0 when state_save_period > 1).
    std::size_t events_replayed{0};
    bool stored_orphan{false};
    // Aggressive cancellation: anti-messages for every output of an undone
    // event. The caller dispatches them (possibly suppressing NIC-dropped
    // ones).
    std::vector<EventMsg> antis;
    // Ids of the undone executions, in undo order. Only filled when
    // set_collect_undone(true) — profiling pays for the copies, plain runs
    // never do.
    std::vector<EventId> undone_ids;
  };
  // `from_network` marks messages delivered by the comm stack (as opposed
  // to local sends): only network anti-messages advance the anti counters
  // piggybacked for the NIC, which counts antis at wire arrival.
  InsertResult insert(EventMsg ev, bool from_network = false);

  // --- event processing ---
  bool has_ready_event() const;
  VirtualTime next_event_ts() const;  // inf when idle

  struct ExecResult {
    bool executed{false};
    VirtualTime ts{VirtualTime::zero()};
    ObjectId obj{kInvalidObject};
    EventId id{kInvalidEvent};  // the executed event (parent of its sends)
    std::vector<EventMsg> sends;
    // kLazy: antis for held outputs whose generators are now past (flushed
    // because execution moved beyond them without regenerating).
    std::vector<EventMsg> antis;
    // True when this step cut a full state snapshot (always at period 1;
    // sparse under periodic/adaptive saving). The kernel charges the save
    // cost per actual snapshot in those modes.
    bool snapshot_saved{false};
    // kIncremental: bytes the executed event appended to the undo log (the
    // kernel charges the per-byte logging cost).
    std::uint64_t undo_bytes{0};
  };
  // Executes the globally-least pending event (canonical EventOrder).
  ExecResult execute_next();

  // --- GVT consumers ---
  VirtualTime lvt() const;  // min pending recv_ts across objects (inf if idle)
  // Reclaims history strictly below gvt; returns records reclaimed.
  std::size_t fossil_collect(VirtualTime gvt);

  // --- early-cancellation hooks ---
  // Per-object counter of anti-messages this LP has processed for that
  // object (as destination); piggybacked on the object's outgoing messages.
  std::uint64_t anti_counter(ObjectId obj) const;
  // Timestamp of the last anti processed for `obj` (the paper's CM
  // piggyback field).
  VirtualTime last_anti_ts(ObjectId obj) const;
  // Counter to piggyback on outgoing messages from `obj`: per-object under
  // kObject scope, LP-wide under kLp scope (must match the cancellation
  // firmware's scope).
  std::uint64_t anti_counter_piggyback(ObjectId obj) const;
  RollbackScope scope() const { return scope_; }

  // --- metrics / invariant hooks ---
  std::uint64_t events_processed() const { return events_processed_; }
  std::uint64_t lazy_records() const;
  std::uint64_t events_rolled_back() const { return events_rolled_back_; }
  std::uint64_t rollbacks() const { return rollbacks_; }
  // --- heatmap counters (EntityStats harvest) ---
  std::uint64_t max_rollback_depth() const { return max_rollback_depth_; }
  std::uint64_t events_replayed() const { return events_replayed_; }
  std::uint64_t state_saves() const { return state_saves_; }
  std::uint64_t state_save_bytes() const { return state_save_bytes_; }
  // kIncremental accounting: bytes appended to undo logs, rollbacks served
  // purely by rewinding them (no coast-forward), and pool high-water mark.
  std::uint64_t undo_bytes_logged() const { return undo_bytes_logged_; }
  std::uint64_t undo_rewinds() const { return undo_rewinds_; }
  std::size_t undo_pool_peak_chunks() const { return undo_pool_.peak(); }
  StateSaveMode state_mode() const { return state_mode_; }
  // Snapshot cadence currently in force: the fixed period, or the adaptive
  // estimate when state_save_period == 0.
  std::int64_t effective_period() const { return current_period(); }
  std::uint64_t committed_lower_bound() const {
    return events_processed_ - events_rolled_back_;
  }
  std::int64_t signature_sum() const;
  // Enables O(queue) duplicate-positive detection on every insert — used by
  // the test suite to catch cancellation pairing violations at their source.
  void set_paranoia(bool on) { paranoia_ = on; }
  // Makes InsertResult carry the ids of undone executions (profiler food).
  void set_collect_undone(bool on) { collect_undone_ = on; }
  // Commit-latency recording: `clock` supplies the node's engine time (the
  // LP itself is purely virtual-time; the kernel injects hardware context).
  // Null recorder disables. Samples are taken at fossil collection — an
  // event "commits" when GVT passes it.
  void set_latency(LatencyRecorder* recorder, std::function<SimTime()> clock) {
    latency_ = recorder;
    latency_clock_ = std::move(clock);
  }
  // Wall-clock phase attribution (state saves, rollbacks). Null restores the
  // shared disabled profiler.
  void set_phases(PhaseProfiler* phases) {
    phases_ = phases != nullptr ? phases : &PhaseProfiler::null_profiler();
  }
  std::size_t total_pending() const;
  std::size_t total_processed_records() const;
  std::size_t orphan_antis() const;
  VirtualTime max_gvt_seen() const { return max_gvt_seen_; }

 private:
  struct ProcessedRecord {
    EventMsg ev;
    // State before executing ev; null when periodic state saving skipped
    // this record (rollback then coast-forwards from an earlier snapshot).
    std::unique_ptr<State> pre_state;
    std::vector<EventMsg> outputs;  // for anti generation / lazy matching
    // Engine clock at execution; stamped only while latency recording is on
    // (zero otherwise). Feeds the commit_us histogram at fossil collection.
    SimTime exec_at{SimTime::zero()};
    // kIncremental: undo-log position before this event executed. Rewinding
    // to it restores exactly this record's pre-state — valid only while
    // undo_ok holds and the mark is still >= the log's first_pos() (reset /
    // fossil trim make marks stale).
    core::UndoLog::Mark undo_mark{0};
    // False when the log overflowed mid-event (capped pool) or the LP runs
    // copy state saving; such records roll back via snapshot+coast-forward.
    bool undo_ok{false};
  };
  // kLazy: an output of an undone event, held until its generator either
  // regenerates it (no anti) or disappears (anti now).
  struct LazyRecord {
    EventMsg output;
    EventMsg gen;  // generating event (key fields only)
  };
  using PendingQueue = std::multiset<EventMsg, EventOrder>;

  struct ObjRt {
    SimulationObject* obj{nullptr};
    PendingQueue pending;
    // Hot-path index: event id -> its node in `pending`, so anti-message
    // annihilation is a hash probe instead of an O(pending) scan. Multiset
    // iterators are node-stable, so entries survive unrelated mutations.
    std::unordered_map<EventId, PendingQueue::iterator> pending_by_id;
    std::deque<ProcessedRecord> processed;  // ascending EventOrder
    std::multiset<EventMsg, EventOrder> orphan_antis;  // antis without positives
    std::vector<LazyRecord> lazy;  // kLazy: held outputs, ascending gen order
    // kIncremental: this object's undo-log view over the LP's shared chunk
    // pool (created on first execution, null under kCopy).
    std::unique_ptr<core::UndoLog> undo;
    std::uint64_t antis_processed{0};
    std::uint64_t exec_count{0};   // drives the state-saving period
    VirtualTime last_anti_ts{VirtualTime::zero()};
    // Lazy ready-heap bookkeeping (see ready_heap_): the head key this
    // object last pushed, if any. Only the entry matching (adv_ts, adv_id)
    // is live; older entries for this object are discarded on pop.
    bool head_advertised{false};
    VirtualTime adv_ts{VirtualTime::zero()};
    EventId adv_id{kInvalidEvent};
  };

  // Rolls `rt` back so every processed record at position >= pos is undone;
  // appends the undone records' cancellation antis to `out` (kAggressive) or
  // holds them as lazy records (kLazy). Returns events undone; adds
  // coast-forward replays to `replayed`.
  std::size_t rollback_to(ObjRt& rt, std::size_t pos, std::vector<EventMsg>& out,
                          std::size_t& replayed, std::vector<EventId>* undone_ids);
  // Re-executes `ev` against the object's current state without emitting
  // sends (used to rebuild state between a snapshot and the rollback point).
  void coast_forward(ObjRt& rt, const EventMsg& ev);
  // kLazy: resolves held outputs for the event about to execute / just
  // annihilated. See lp.cpp.
  void flush_lazy_before(ObjRt& rt, const EventMsg& next, std::vector<EventMsg>& antis);
  void flush_lazy_for_gen(ObjRt& rt, EventId gen_id, std::vector<EventMsg>& antis);
  // kLp scope: rolls EVERY object back past `pivot` (canonical order).
  std::size_t rollback_all(const EventMsg& pivot, std::vector<EventMsg>& out,
                           std::size_t& replayed, std::vector<EventId>* undone_ids);
  // First processed position in `rt` at or after `pivot`.
  static std::size_t rollback_pos(const ObjRt& rt, const EventMsg& pivot);
  bool is_straggler(const ObjRt& rt, const EventMsg& ev) const;
  // Snapshot cadence in force (fixed period, or the adaptive estimate).
  std::int64_t current_period() const {
    return state_save_period_ > 0 ? state_save_period_ : eff_period_;
  }
  // Adaptive interval: re-derives eff_period_ from the decayed event /
  // rollback window (Lin–Lazowska square-root rule).
  void recompute_adaptive_period();

  ObjRt& runtime_for(ObjectId id);

  // --- pending-queue maintenance (keeps pending_by_id, pending_total_ and
  // the ready-heap advertisement in sync; ALL pending mutations go through
  // these) ---
  void pending_insert(ObjRt& rt, EventMsg ev);
  void pending_erase(ObjRt& rt, PendingQueue::iterator it);
  // Finds the pending positive with this id, pending.end() if absent.
  PendingQueue::iterator pending_find(ObjRt& rt, EventId id);
  // Pushes the object's current least pending event onto the ready-heap
  // (no-op when pending is empty).
  void advertise_head(ObjRt& rt);

  NodeId rank_;
  StatsRegistry& stats_;
  std::uint64_t seed_;
  RollbackScope scope_;
  CancellationMode cancellation_;
  std::int64_t state_save_period_;  // 0 = adaptive (eff_period_ governs)
  StateSaveMode state_mode_;
  // Shared slab for every object's undo log (kIncremental). Capped so a
  // runaway log degrades to snapshot+coast-forward instead of eating memory.
  core::UndoChunkPool undo_pool_;
  // Adaptive-interval state: current estimate plus a decayed observation
  // window of executions and rollbacks. Driven purely by deterministic
  // counters, so the cadence is identical across reruns of a seed.
  std::int64_t eff_period_{8};
  std::uint64_t win_events_{0};
  std::uint64_t win_rollbacks_{0};
  bool paranoia_{false};
  bool collect_undone_{false};
  std::uint64_t lp_antis_processed_{0};
  VirtualTime lp_last_anti_ts_{VirtualTime::zero()};
  std::map<ObjectId, ObjRt> objs_;
  std::vector<std::unique_ptr<SimulationObject>> storage_;

  // Lazy min-heap over per-object queue heads, ordered by the canonical
  // EventOrder key of each object's least pending event. execute_next pops
  // the global minimum in O(log #objects) instead of scanning every object.
  // Entries are advertisements, not truth: insertions that lower an
  // object's head push a fresh entry (superseding the old one), removals
  // leave stale entries behind, and pops validate against the object's
  // actual head, discarding or re-advertising as needed — "lazy repair".
  struct HeadEntry {
    VirtualTime recv_ts;
    ObjectId dst_obj;
    EventId id;
    ObjRt* rt;
  };
  struct HeadLater {  // std::push_heap is a max-heap; invert to get a min-heap
    bool operator()(const HeadEntry& a, const HeadEntry& b) const {
      if (a.recv_ts != b.recv_ts) return a.recv_ts > b.recv_ts;
      if (a.dst_obj != b.dst_obj) return a.dst_obj > b.dst_obj;
      return a.id > b.id;
    }
  };
  std::vector<HeadEntry> ready_heap_;
  std::size_t pending_total_{0};  // sum of pending.size() across objects

  std::uint64_t events_processed_{0};
  std::uint64_t events_rolled_back_{0};
  std::uint64_t rollbacks_{0};
  std::uint64_t max_rollback_depth_{0};  // largest single-rollback undo count
  std::uint64_t events_replayed_{0};     // coast-forward re-executions
  std::uint64_t state_saves_{0};
  std::uint64_t state_save_bytes_{0};
  std::uint64_t undo_bytes_logged_{0};  // kIncremental: total bytes recorded
  std::uint64_t undo_rewinds_{0};       // rollbacks served without replay
  VirtualTime max_gvt_seen_{VirtualTime::zero()};

  LatencyRecorder* latency_{nullptr};
  std::function<SimTime()> latency_clock_;
  PhaseProfiler* phases_{&PhaseProfiler::null_profiler()};
};

}  // namespace nicwarp::warped
