#include "warped/kernel.hpp"

#include "core/assert.hpp"
#include "core/log.hpp"

namespace nicwarp::warped {

namespace {

hw::Packet event_to_packet(const EventMsg& ev, NodeId dst_node, const hw::CostModel& cm) {
  hw::Packet pkt;
  pkt.hdr.kind = hw::PacketKind::kEvent;
  pkt.hdr.dst = dst_node;
  pkt.hdr.src_obj = ev.src_obj;
  pkt.hdr.dst_obj = ev.dst_obj;
  pkt.hdr.event_id = ev.id;
  pkt.hdr.send_ts = ev.send_ts;
  pkt.hdr.recv_ts = ev.recv_ts;
  pkt.hdr.negative = ev.negative;
  pkt.hdr.size_bytes = static_cast<std::uint32_t>(
      cm.event_msg_bytes + 8 * static_cast<std::int64_t>(ev.data.size()));
  pkt.app = ev.data;
  return pkt;
}

EventMsg packet_to_event(const hw::Packet& pkt) {
  EventMsg ev;
  ev.src_obj = pkt.hdr.src_obj;
  ev.dst_obj = pkt.hdr.dst_obj;
  ev.id = pkt.hdr.event_id;
  ev.send_ts = pkt.hdr.send_ts;
  ev.recv_ts = pkt.hdr.recv_ts;
  ev.negative = pkt.hdr.negative;
  ev.data = pkt.app;
  return ev;
}

}  // namespace

Kernel::Kernel(hw::Node& node, comm::HostComm& comm, std::shared_ptr<const Partition> part,
               std::unique_ptr<GvtManager> mgr, KernelOptions opts, std::uint64_t seed)
    : node_(node),
      comm_(comm),
      part_(std::move(part)),
      mgr_(std::move(mgr)),
      opts_(opts),
      world_size_(0),
      lp_(node.id(), node.stats(), seed, opts.rollback_scope, opts.cancellation,
          opts.state_save_period, opts.state_mode),
      jitter_rng_(seed ^ node.id(), "kernel.jitter") {
  NW_CHECK(part_ != nullptr);
  NW_CHECK(mgr_ != nullptr);
  lp_.set_paranoia(opts.paranoia_checks);
  // The profiler needs to know which executions each rollback undid.
  lp_.set_collect_undone(opts.profile != nullptr);
  // The LP is purely virtual-time; hand it the node clock so fossil
  // collection can compute modeled commit latencies.
  lp_.set_latency(&node.latency(), [this] { return node_.engine().now(); });
  lp_.set_phases(&node.phases());
  comm_.set_deliver([this](hw::Packet pkt) { on_deliver(std::move(pkt)); });
  mgr_->attach(*this);
}

void Kernel::start() {
  NW_CHECK(!started_);
  started_ = true;
  // World size = number of distinct nodes in the partition's codomain is the
  // cluster size; the node knows it via its NIC.
  world_size_ = node_.nic().world_size();

  hw::Mailbox& mb = node_.mailbox();
  mb.rank = node_.id();
  mb.world_size = world_size_;
  mb.timewarp_initialised = true;

  // Object initialization is real host work.
  node_.host_cpu().submit_dynamic(
      [this] {
        double cost_us = node_.cost().host_event_exec_us;  // setup overhead
        std::vector<EventMsg> initial = lp_.initialize_objects();
        for (auto& ev : initial) dispatch_event(std::move(ev), cost_us);
        mgr_->start();
        return node_.cost().us(cost_us);
      },
      [this] { pump(); });

  idle_tick();
}

VirtualTime Kernel::safe_local_min() const {
  return VirtualTime::min(lp_.lvt(), comm_.min_staged_event_ts());
}

void Kernel::send_control(hw::Packet pkt) {
  if (pkt.hdr.dst == rank()) {
    // Degenerate self-send (e.g. a 1-node ring): short-circuit locally but
    // still pay the control-handling cost.
    node_.run_host_task(cost().us(cost().host_gvt_ctrl_us),
                        [this, p = std::move(pkt)] { mgr_->on_control(p); });
    return;
  }
  node_.run_host_task(cost().us(cost().host_gvt_ctrl_us),
                      [this, p = std::move(pkt)]() mutable { comm_.send(std::move(p)); });
}

void Kernel::on_new_gvt(VirtualTime g) {
  ScopedPhaseTimer phase_scope(&node_.phases(), Phase::kGvt);
  if (node_.trace().enabled(TraceCat::kGvt)) {
    node_.trace().record({now(), g, TraceCat::kGvt, TracePoint::kGvtHostAdopt,
                          false, rank(), kInvalidNode, kInvalidEvent,
                          node_.mailbox().gvt_epoch, 0});
  }
  if (opts_.sampler != nullptr) opts_.sampler->on_gvt(now(), g);
  const std::size_t reclaimed = lp_.fossil_collect(g);
  if (reclaimed > 0) {
    node_.run_host_task(
        cost().us(cost().host_fossil_per_event_us * static_cast<double>(reclaimed)),
        [] {});
  }
  if (g.is_inf() && !stopped_) {
    stopped_ = true;
    stop_time_ = node_.engine().now();
    node_.stats().counter("tw.kernels_terminated").add(1);
  }
}

SimTime Kernel::jittered_exec_cost() {
  const double j = node_.cost().host_exec_jitter;
  const double f = 1.0 + j * (2.0 * jitter_rng_.next_double() - 1.0);
  return cost().us(cost().host_event_exec_us * f);
}

void Kernel::drain_drop_notices(double& cost_us) {
  hw::Mailbox& mb = node_.mailbox();
  while (!mb.drop_notices.empty()) {
    const hw::DropNotice n = mb.drop_notices.front();
    mb.drop_notices.pop_front();
    if (opts_.profile != nullptr) {
      opts_.profile->on_nic_drop(rank(), n.id, n.negative, n.cause_anti);
    }
    mgr_->on_nic_drop(n);
    comm_.refund_credits(n.dst, 1);
    node_.stats().counter("tw.drop_notices").add(1);
    cost_us += 0.2;  // one uncached mailbox read
  }
}

void Kernel::pump() {
  if (step_active_ || stopped_ || !started_) return;
  if (!lp_.has_ready_event()) return;  // idle_tick keeps the manager alive
  step_active_ = true;
  node_.host_cpu().submit_dynamic([this] { return do_step(); },
                                  [this] {
                                    step_active_ = false;
                                    pump();
                                  });
}

SimTime Kernel::do_step() {
  double cost_us = 0.0;
  drain_drop_notices(cost_us);

  if (!lp_.has_ready_event() || stopped_) return cost().us(cost_us + 0.5);

  LogicalProcess::ExecResult r;
  {
    ScopedPhaseTimer phase_scope(&node_.phases(), Phase::kEventExec);
    r = lp_.execute_next();
  }
  NW_CHECK(r.executed);
  if (opts_.profile != nullptr) {
    opts_.profile->on_execute(rank(), r.obj, r.id, r.ts);
    // Send edges for the positives only; the lazy-flush antis in r.antis
    // belong to older generators, not this execution.
    for (const EventMsg& s : r.sends) {
      opts_.profile->on_send(rank(), r.id, s.id, s.dst_obj, s.recv_ts);
    }
  }
  // State-saving cost. Copy saving with a fixed period keeps the historical
  // amortized charge (cost/period every step — byte-identical to the
  // pre-incremental kernels). Adaptive and incremental modes charge what the
  // step actually did: a full clone only on snapshot steps, plus the
  // per-byte undo-logging tax.
  double save_us = 0.0;
  if (opts_.state_mode == StateSaveMode::kCopy && opts_.state_save_period >= 1) {
    save_us = cost().host_state_save_us / static_cast<double>(opts_.state_save_period);
  } else {
    if (r.snapshot_saved) save_us += cost().host_state_save_us;
    save_us += cost().host_undo_byte_us * static_cast<double>(r.undo_bytes);
  }
  SimTime c = jittered_exec_cost() + cost().us(save_us);
  for (auto& ev : r.antis) dispatch_event(std::move(ev), cost_us);
  for (auto& ev : r.sends) dispatch_event(std::move(ev), cost_us);

  // Keep the NIC's liveness hint fresh (a plain store into mapped SRAM).
  node_.mailbox().events_processed = static_cast<std::int64_t>(lp_.events_processed());
  mgr_->on_event_processed();
  return c + cost().us(cost_us);
}

void Kernel::dispatch_event(EventMsg ev, double& cost_us) {
  const NodeId dst_node = part_->of(ev.dst_obj);
  if (ev.id == traced_event()) {
    std::fprintf(stderr, "[trace %llu] dispatch node=%u neg=%d send_ts=%lld t=%lld\n",
                 (unsigned long long)ev.id, rank(), ev.negative ? 1 : 0,
                 (long long)ev.send_ts.t, (long long)now().ns);
  }

  // NOTE: the paper also lets the host suppress anti-messages by consulting
  // the shared dropped-id buffer at generation time (§3.2). That check is
  // inherently racy against anti-messages already in flight toward the NIC:
  // a dispatch-time suppression can steal the pool entry an in-flight anti
  // was owed, letting it escape to the wire as an orphan that later
  // annihilates a VALID positive. We therefore do all filtering at the NIC
  // (on_host_tx), where channel-FIFO order makes the pairing exact; the
  // saved work is the same minus one I/O-bus crossing per filtered anti.

  if (dst_node == rank()) {
    cost_us += cost().host_local_msg_us;
    const EventId cause_id = ev.id;
    const bool cause_negative = ev.negative;
    apply_insert_result(lp_.insert(std::move(ev)), cost_us, cause_id,
                        cause_negative, kInvalidNode);
    return;
  }

  hw::Packet pkt = event_to_packet(ev, dst_node, cost());
  pkt.hdr.anti_counter_pb = lp_.anti_counter_piggyback(ev.src_obj);
  mgr_->stamp_outgoing(pkt.hdr);
  cost_us += cost().host_msg_send_us;
  node_.stats().counter(ev.negative ? "tw.antis_sent" : "tw.events_sent").add(1);
  if (node_.trace().enabled(TraceCat::kMsg)) {
    node_.trace().record({now(), ev.recv_ts, TraceCat::kMsg,
                          TracePoint::kHostEnqueue, ev.negative, rank(), dst_node,
                          ev.id, pkt.hdr.size_bytes, 0});
  }
  comm_.send(std::move(pkt));
}

void Kernel::apply_insert_result(const LogicalProcess::InsertResult& res,
                                 double& cost_us, EventId cause_id,
                                 bool cause_negative, NodeId cause_src) {
  if (res.rollback) {
    cost_us += cost().host_rollback_fixed_us +
               cost().host_rollback_per_event_us * static_cast<double>(res.events_undone);
    // Coast-forward replays re-execute model code in full.
    cost_us += cost().host_event_exec_us * static_cast<double>(res.events_replayed);
    // The record names its trigger: (event_id, negative, peer) identify the
    // straggler or anti so offline analysis can rebuild the cascade forest.
    if (node_.trace().enabled(TraceCat::kRollback)) {
      node_.trace().record({now(), lp_.lvt(), TraceCat::kRollback,
                            TracePoint::kRollback, cause_negative, rank(),
                            cause_src, cause_id,
                            static_cast<std::uint64_t>(res.events_undone),
                            static_cast<std::uint64_t>(res.events_replayed)});
    }
    // Report BEFORE dispatching the antis: a local anti can trigger the next
    // rollback re-entrantly, and its cascade parent must exist by then.
    if (opts_.profile != nullptr) {
      RollbackProfile rb;
      rb.node = rank();
      rb.at = now();
      rb.cause_id = cause_id;
      rb.cause_negative = cause_negative;
      rb.cause_src = cause_src;
      rb.events_undone = res.events_undone;
      rb.events_replayed = res.events_replayed;
      rb.undone = res.undone_ids;
      rb.antis.reserve(res.antis.size());
      for (const EventMsg& anti : res.antis) rb.antis.push_back(anti.id);
      opts_.profile->on_rollback(rb);
    }
  }
  // Aggressive cancellation: dispatch the antis now (may cascade locally).
  for (const EventMsg& anti : res.antis) dispatch_event(anti, cost_us);
}

void Kernel::on_deliver(hw::Packet pkt) {
  // Runs inside the host receive task (its base cost is already charged).
  switch (pkt.hdr.kind) {
    case hw::PacketKind::kEvent: {
      mgr_->on_event_received(pkt.hdr);
      if (node_.trace().enabled(TraceCat::kMsg)) {
        node_.trace().record({now(), pkt.hdr.recv_ts, TraceCat::kMsg,
                              TracePoint::kHostDeliver, pkt.hdr.negative, rank(),
                              pkt.hdr.src, pkt.hdr.event_id, 0, 0});
      }
      // Full delivery leg: origin HostComm::send -> this kernel insert, in
      // virtual time (recv_ts - send_ts) and modeled elapsed microseconds.
      if (node_.latency().enabled() && pkt.hdr.sent_at.ns > 0) {
        node_.latency().record_delivery(pkt.hdr.recv_ts.t - pkt.hdr.send_ts.t,
                                        (now() - pkt.hdr.sent_at).micros());
      }
      double cost_us = 0.0;
      drain_drop_notices(cost_us);
      apply_insert_result(lp_.insert(packet_to_event(pkt), /*from_network=*/true),
                          cost_us, pkt.hdr.event_id, pkt.hdr.negative, pkt.hdr.src);
      if (cost_us > 0.0) node_.run_host_task(cost().us(cost_us), [] {});
      pump();
      return;
    }
    case hw::PacketKind::kHostGvtToken:
    case hw::PacketKind::kGvtBroadcast:
    case hw::PacketKind::kNicGvtToken:
    case hw::PacketKind::kPGvtRequest:
    case hw::PacketKind::kPGvtReport:
    case hw::PacketKind::kAck: {
      ScopedPhaseTimer phase_scope(&node_.phases(), Phase::kGvt);
      mgr_->on_control(pkt);
      pump();
      return;
    }
    case hw::PacketKind::kCreditUpdate:
      return;  // consumed by HostComm before it gets here
    case hw::PacketKind::kNak:
      return;  // NIC reliability traffic; never crosses the I/O bus
  }
}

void Kernel::idle_tick() {
  if (stopped_) return;
  node_.engine().schedule(SimTime::from_us(opts_.idle_poll_us), [this] {
    if (stopped_) return;
    double cost_us = 0.0;
    drain_drop_notices(cost_us);
    mgr_->idle_poll();
    pump();
    idle_tick();
  });
}

}  // namespace nicwarp::warped
