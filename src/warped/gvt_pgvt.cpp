#include "warped/gvt_pgvt.hpp"

#include "core/assert.hpp"

namespace nicwarp::warped {

void PGvtManager::start() { last_completion_ = api_->now(); }

void PGvtManager::on_event_processed() {
  if (is_root()) maybe_initiate(/*force=*/false);
}

void PGvtManager::idle_poll() {
  if (!is_root() || gathering_) return;
  if (api_->lp_idle() &&
      api_->now() - last_completion_ >= SimTime::from_us(opts_.idle_initiate_us)) {
    maybe_initiate(/*force=*/true);
  }
}

void PGvtManager::maybe_initiate(bool force) {
  if (gathering_) return;
  if (!force && api_->events_processed() - events_at_last_init_ < opts_.period) return;
  gathering_ = true;
  events_at_last_init_ = api_->events_processed();
  ++gather_epoch_;
  reporters_.clear();
  gather_min_ = local_report();
  api_->stats().counter("gvt.estimations").add(1);
  api_->stats().counter("gvt.rounds").add(1);
  for (NodeId n = 0; n < api_->world_size(); ++n) {
    if (n == api_->rank()) continue;
    hw::Packet req;
    req.hdr.kind = hw::PacketKind::kPGvtRequest;
    req.hdr.dst = n;
    req.hdr.size_bytes = static_cast<std::uint32_t>(api_->cost().gvt_ctrl_bytes);
    req.hdr.gvt.epoch = gather_epoch_;
    api_->send_control(std::move(req));
  }
  if (api_->world_size() == 1) {
    // Degenerate single-node world: complete immediately.
    gathering_ = false;
    last_completion_ = api_->now();
    publish_gvt(gather_min_);
  }
}

VirtualTime PGvtManager::local_report() {
  VirtualTime m = VirtualTime::min(low_water_, api_->safe_local_min());
  for (const auto& [k, p] : outstanding_) m = VirtualTime::min(m, p.ts);
  low_water_ = VirtualTime::inf();  // new reporting interval starts now
  return m;
}

void PGvtManager::stamp_outgoing(hw::PacketHeader& hdr) {
  if (hdr.kind != hw::PacketKind::kEvent) return;
  Pending& p = outstanding_[key(hdr.event_id, hdr.negative)];
  p.copies += 1;
  p.ts = VirtualTime::min(p.ts, hdr.recv_ts);
  low_water_ = VirtualTime::min(low_water_, hdr.recv_ts);
}

void PGvtManager::release_outstanding(std::uint64_t k) {
  auto it = outstanding_.find(k);
  NW_CHECK_MSG(it != outstanding_.end() && it->second.copies > 0,
               "pGVT released a send it was not tracking");
  if (--it->second.copies == 0) outstanding_.erase(it);
}

void PGvtManager::on_event_received(const hw::PacketHeader& hdr) {
  low_water_ = VirtualTime::min(low_water_, hdr.recv_ts);
  send_ack(hdr);
}

void PGvtManager::send_ack(const hw::PacketHeader& hdr) {
  hw::Packet ack;
  ack.hdr.kind = hw::PacketKind::kAck;
  ack.hdr.dst = hdr.src;
  ack.hdr.event_id = hdr.event_id;
  ack.hdr.negative = hdr.negative;
  ack.hdr.size_bytes = static_cast<std::uint32_t>(api_->cost().ack_msg_bytes);
  api_->stats().counter("gvt.acks").add(1);
  api_->send_control(std::move(ack));
}

void PGvtManager::on_nic_drop(const hw::DropNotice& n) {
  // A dropped packet will never be acknowledged; release its copy. Its
  // timestamp stays in low_water_, which is merely conservative. A tracked
  // copy MUST exist — each stamped send is released exactly once, by its ack
  // or by its DropNotice. A miss would mean the drop and ack paths disagree
  // about which message this was, silently pinning `outstanding_` (a GVT
  // floor leak) or double-releasing a copy still in flight (unsafe GVT).
  release_outstanding(key(n.id, n.negative));
}

void PGvtManager::on_control(const hw::Packet& pkt) {
  switch (pkt.hdr.kind) {
    case hw::PacketKind::kAck:
      release_outstanding(key(pkt.hdr.event_id, pkt.hdr.negative));
      return;
    case hw::PacketKind::kPGvtRequest: {
      hw::Packet rep;
      rep.hdr.kind = hw::PacketKind::kPGvtReport;
      rep.hdr.dst = pkt.hdr.src;
      rep.hdr.size_bytes = static_cast<std::uint32_t>(api_->cost().gvt_ctrl_bytes);
      rep.hdr.gvt.epoch = pkt.hdr.gvt.epoch;
      rep.hdr.gvt.t = local_report();
      api_->send_control(std::move(rep));
      return;
    }
    case hw::PacketKind::kPGvtReport: {
      if (!gathering_ || pkt.hdr.gvt.epoch != gather_epoch_) return;
      // Track reporters by identity, not by count: a duplicated report must
      // not complete the gather while some node has not answered (its
      // in-flight messages would be missing from the minimum).
      if (!reporters_.insert(pkt.hdr.src).second) return;
      gather_min_ = VirtualTime::min(gather_min_, pkt.hdr.gvt.t);
      if (reporters_.size() == api_->world_size() - 1) {
        gathering_ = false;
        last_completion_ = api_->now();
        for (NodeId n = 0; n < api_->world_size(); ++n) {
          if (n == api_->rank()) continue;
          hw::Packet fin;
          fin.hdr.kind = hw::PacketKind::kGvtBroadcast;
          fin.hdr.dst = n;
          fin.hdr.size_bytes = static_cast<std::uint32_t>(api_->cost().gvt_ctrl_bytes);
          fin.hdr.gvt.gvt = gather_min_;
          api_->send_control(std::move(fin));
        }
        publish_gvt(gather_min_);
      }
      return;
    }
    case hw::PacketKind::kGvtBroadcast:
      publish_gvt(pkt.hdr.gvt.gvt);
      return;
    default:
      return;
  }
}

}  // namespace nicwarp::warped
