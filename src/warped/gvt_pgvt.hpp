// pGVT-style acknowledgement-based GVT (WARPED's second algorithm; the
// paper uses Mattern because pGVT "has a higher overhead" — ablation A4
// quantifies that).
//
// Every remote event message (positive or anti) is acknowledged by the
// receiving CM with a small kAck control packet. Each LP keeps
//  * the set of unacknowledged sends (their min recv_ts bounds in-flight
//    messages), and
//  * a low-water mark of every timestamp it saw since its last report
//    (bounds rollback-induced LVT regression between reports).
// A manager at LP0 periodically broadcasts a report request; GVT is the min
// over all fresh reports and is broadcast back.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "warped/gvt_manager.hpp"

namespace nicwarp::warped {

struct PGvtOptions {
  std::int64_t period = 100;
  double idle_initiate_us = 300.0;
};

class PGvtManager final : public GvtManager {
 public:
  explicit PGvtManager(PGvtOptions opts) : opts_(opts) {}

  void start() override;
  void on_event_processed() override;
  void stamp_outgoing(hw::PacketHeader& hdr) override;
  void on_event_received(const hw::PacketHeader& hdr) override;
  void on_control(const hw::Packet& pkt) override;
  void on_nic_drop(const hw::DropNotice& n) override;
  void idle_poll() override;

  std::size_t unacked() const { return outstanding_.size(); }

  // One (event id, negative) key can cover several in-flight copies: after a
  // rollback the kernel re-sends the same event id while the original copy
  // (or its anti) may still be unacknowledged. The entry therefore counts
  // copies; it pins the GVT floor until *every* copy is acked or reported
  // dropped by the NIC. A plain set here is the classic silent bug: the
  // first ack would release the timestamp while a copy is still in flight.
  struct Pending {
    std::int64_t copies{0};
    VirtualTime ts{VirtualTime::inf()};
  };

 private:
  static std::uint64_t key(EventId id, bool negative) {
    return (id << 1) | (negative ? 1u : 0u);
  }
  bool is_root() const { return api_->rank() == 0; }
  void maybe_initiate(bool force);
  VirtualTime local_report();
  void send_ack(const hw::PacketHeader& hdr);

  PGvtOptions opts_;

  void release_outstanding(std::uint64_t k);

  std::unordered_map<std::uint64_t, Pending> outstanding_;  // unacked sends
  VirtualTime low_water_{VirtualTime::inf()};  // since last report

  // Root gather state.
  bool gathering_{false};
  std::uint64_t gather_epoch_{0};
  std::set<NodeId> reporters_;  // nodes whose report for gather_epoch_ arrived
  VirtualTime gather_min_{VirtualTime::inf()};
  std::int64_t events_at_last_init_{0};
  SimTime last_completion_{SimTime::zero()};
};

}  // namespace nicwarp::warped
