// pGVT-style acknowledgement-based GVT (WARPED's second algorithm; the
// paper uses Mattern because pGVT "has a higher overhead" — ablation A4
// quantifies that).
//
// Every remote event message (positive or anti) is acknowledged by the
// receiving CM with a small kAck control packet. Each LP keeps
//  * the set of unacknowledged sends (their min recv_ts bounds in-flight
//    messages), and
//  * a low-water mark of every timestamp it saw since its last report
//    (bounds rollback-induced LVT regression between reports).
// A manager at LP0 periodically broadcasts a report request; GVT is the min
// over all fresh reports and is broadcast back.
#pragma once

#include <map>
#include <unordered_map>

#include "warped/gvt_manager.hpp"

namespace nicwarp::warped {

struct PGvtOptions {
  std::int64_t period = 100;
  double idle_initiate_us = 300.0;
};

class PGvtManager final : public GvtManager {
 public:
  explicit PGvtManager(PGvtOptions opts) : opts_(opts) {}

  void start() override;
  void on_event_processed() override;
  void stamp_outgoing(hw::PacketHeader& hdr) override;
  void on_event_received(const hw::PacketHeader& hdr) override;
  void on_control(const hw::Packet& pkt) override;
  void on_nic_drop(const hw::DropNotice& n) override;
  void idle_poll() override;

  std::size_t unacked() const { return outstanding_.size(); }

 private:
  static std::uint64_t key(EventId id, bool negative) {
    return (id << 1) | (negative ? 1u : 0u);
  }
  bool is_root() const { return api_->rank() == 0; }
  void maybe_initiate(bool force);
  VirtualTime local_report();
  void send_ack(const hw::PacketHeader& hdr);

  PGvtOptions opts_;

  std::unordered_map<std::uint64_t, VirtualTime> outstanding_;  // unacked sends
  VirtualTime low_water_{VirtualTime::inf()};  // since last report

  // Root gather state.
  bool gathering_{false};
  std::uint64_t gather_epoch_{0};
  std::uint32_t replies_{0};
  VirtualTime gather_min_{VirtualTime::inf()};
  std::int64_t events_at_last_init_{0};
  SimTime last_completion_{SimTime::zero()};
};

}  // namespace nicwarp::warped
