// GVT manager interface and the kernel services it runs against.
//
// Three implementations:
//   MatternGvtManager — host-resident Mattern two-cut snapshot (WARPED's
//                       default; the paper's baseline);
//   NicGvtManager     — the *host half* of the paper's NIC-level GVT: color
//                       decisions and LVT live here, token transport and
//                       white counting live in firmware::GvtFirmware;
//   PGvtManager       — acknowledgement-based pGVT (WARPED's other
//                       algorithm; ablation A4).
#pragma once

#include <cstdint>

#include "core/small_fn.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "hw/cost_model.hpp"
#include "hw/mailbox.hpp"
#include "hw/packet.hpp"

namespace nicwarp::warped {

// Services the Kernel exposes to its GVT manager.
class KernelApi {
 public:
  virtual ~KernelApi() = default;

  virtual NodeId rank() const = 0;
  virtual std::uint32_t world_size() const = 0;
  virtual const hw::CostModel& cost() const = 0;
  virtual StatsRegistry& stats() = 0;
  virtual hw::Mailbox& mailbox() = 0;

  // LVT including everything still staged in the host comm layer — the
  // value a correct estimate must fold in (a credit-stalled event's
  // timestamp is otherwise invisible to wire-level accounting).
  virtual VirtualTime safe_local_min() const = 0;

  virtual std::int64_t events_processed() const = 0;
  virtual bool lp_idle() const = 0;

  // Sends a control packet as a host task (charges host_gvt_ctrl_us).
  virtual void send_control(hw::Packet pkt) = 0;

  // Runs `fn` as a host-CPU task of the given cost (e.g. a dedicated
  // mailbox write when no outgoing message offered a piggyback ride).
  virtual void run_host_task(SimTime cost, SmallFn<void(), 64> fn) = 0;

  // Schedules `fn` after `delay` (engine timer; use for token timeouts and
  // idle re-initiation). The callback runs outside host-task context.
  virtual void schedule(SimTime delay, SmallFn<void(), 64> fn) = 0;

  // Reports a new GVT estimate; the kernel fossil-collects and terminates
  // when the estimate reaches +inf.
  virtual void on_new_gvt(VirtualTime gvt) = 0;

  virtual SimTime now() const = 0;
};

class GvtManager {
 public:
  virtual ~GvtManager() = default;

  virtual void attach(KernelApi& api) { api_ = &api; }

  // Simulation is initialized and traffic may flow.
  virtual void start() {}

  // One local event was executed (gates periodic initiation at the root).
  virtual void on_event_processed() {}

  // An event packet is about to leave this host: stamp color / GVT fields.
  virtual void stamp_outgoing(hw::PacketHeader& hdr) { (void)hdr; }

  // An event packet arrived at this host (already past the NIC).
  virtual void on_event_received(const hw::PacketHeader& hdr) { (void)hdr; }

  // A control packet addressed to this manager arrived.
  virtual void on_control(const hw::Packet& pkt) { (void)pkt; }

  // The local NIC dropped (or filtered) a packet in place; reconcile any
  // host-side accounting that assumed it was sent.
  virtual void on_nic_drop(const hw::DropNotice& n) { (void)n; }

  // Periodic idle callback (kernel's poll loop) — keeps tokens moving when
  // no events remain, so termination is detected.
  virtual void idle_poll() {}

  VirtualTime gvt() const { return gvt_; }

 protected:
  void publish_gvt(VirtualTime g) {
    if (gvt_ < g) {
      gvt_ = g;
      api_->on_new_gvt(g);
    }
  }

  KernelApi* api_{nullptr};
  VirtualTime gvt_{VirtualTime::zero()};
};

}  // namespace nicwarp::warped
