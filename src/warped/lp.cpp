#include "warped/lp.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"
#include "core/log.hpp"

namespace nicwarp::warped {

namespace {

// Undo-pool cap per LP: 4096 chunks x 64 slots x ~56 B ≈ 14 MB. Hitting it
// marks the in-flight record undo_ok=false (graceful fallback to
// snapshot+coast-forward) instead of growing without bound.
constexpr std::size_t kUndoPoolMaxChunks = 4096;

// Adaptive checkpoint interval bounds and window decay threshold.
constexpr std::int64_t kAdaptiveMinPeriod = 1;
constexpr std::int64_t kAdaptiveMaxPeriod = 64;
constexpr std::uint64_t kAdaptiveWindowCap = 4096;

// ObjectContext used during execute()/initialize(): collects sends and
// provides per-execution deterministic randomness.
class ExecCtx final : public ObjectContext {
 public:
  ExecCtx(SimulationObject& obj, VirtualTime now, EventId parent, std::uint64_t seed)
      : obj_(obj), now_(now), parent_(parent), rng_(seed ^ parent, obj.name()) {}

  VirtualTime now() const override { return now_; }

  void send(ObjectId dst, VirtualTime recv_ts, std::vector<std::int64_t> data) override {
    NW_CHECK_MSG(recv_ts > now_, "events must be scheduled strictly in the future");
    EventMsg ev;
    ev.src_obj = obj_.id();
    ev.dst_obj = dst;
    ev.send_ts = now_;
    ev.recv_ts = recv_ts;
    ev.id = make_event_id(parent_, obj_.id(), static_cast<std::uint32_t>(sends_.size()));
    ev.data = std::move(data);
    sends_.push_back(std::move(ev));
  }

  Rng& rng() override { return rng_; }

  void fold_signature(std::int64_t v) override {
    // Order-insensitive fold so the commit schedule cannot affect it. Goes
    // through the write barrier: the signature is rollback-able state.
    State& st = obj_.state();
    st.mut(st.signature) += v * 0x9E3779B97F4A7C15LL + 0x165667B19E3779F9LL;
  }

  std::vector<EventMsg> take_sends() { return std::move(sends_); }

 private:
  SimulationObject& obj_;
  VirtualTime now_;
  EventId parent_;
  Rng rng_;
  std::vector<EventMsg> sends_;
};

}  // namespace

LogicalProcess::LogicalProcess(NodeId rank, StatsRegistry& stats, std::uint64_t seed,
                               RollbackScope scope, CancellationMode cancellation,
                               std::int64_t state_save_period, StateSaveMode state_mode)
    : rank_(rank),
      stats_(stats),
      seed_(seed),
      scope_(scope),
      cancellation_(cancellation),
      state_save_period_(state_save_period),
      state_mode_(state_mode),
      undo_pool_(kUndoPoolMaxChunks) {
  NW_CHECK(state_save_period_ >= 0);  // 0 = adaptive interval
}

void LogicalProcess::recompute_adaptive_period() {
  // Lin–Lazowska: the checkpoint interval minimizing save + coast-forward
  // cost is ~sqrt(2µ) for µ events per rollback. The window decays by
  // halving so the estimate tracks phase changes in rollback pressure; all
  // inputs are deterministic counts, so so is the cadence.
  const double mu = static_cast<double>(win_events_ + 1) /
                    static_cast<double>(win_rollbacks_ + 1);
  const auto p = static_cast<std::int64_t>(std::llround(std::sqrt(2.0 * mu)));
  eff_period_ = std::clamp(p, kAdaptiveMinPeriod, kAdaptiveMaxPeriod);
  if (win_events_ >= kAdaptiveWindowCap) {
    win_events_ /= 2;
    win_rollbacks_ /= 2;
  }
}

void LogicalProcess::add_object(std::unique_ptr<SimulationObject> obj) {
  NW_CHECK(obj != nullptr);
  NW_CHECK_MSG(objs_.count(obj->id()) == 0, "duplicate object id on LP");
  ObjRt rt;
  rt.obj = obj.get();
  objs_.emplace(obj->id(), std::move(rt));
  storage_.push_back(std::move(obj));
}

std::vector<ObjectId> LogicalProcess::object_ids() const {
  std::vector<ObjectId> out;
  out.reserve(objs_.size());
  for (const auto& [id, rt] : objs_) out.push_back(id);
  return out;
}

LogicalProcess::ObjRt& LogicalProcess::runtime_for(ObjectId id) {
  auto it = objs_.find(id);
  NW_CHECK_MSG(it != objs_.end(), "event routed to LP that does not own the object");
  return it->second;
}

std::vector<EventMsg> LogicalProcess::initialize_objects() {
  std::vector<EventMsg> out;
  for (auto& [id, rt] : objs_) {
    ExecCtx ctx(*rt.obj, VirtualTime::zero(), make_root_id(id), seed_);
    rt.obj->initialize(ctx);
    for (auto& ev : ctx.take_sends()) out.push_back(std::move(ev));
  }
  return out;
}

LogicalProcess::InsertResult LogicalProcess::insert(EventMsg ev, bool from_network) {
  InsertResult res;
  if (ev.id == traced_event()) {
    std::fprintf(stderr, "[trace %llu] insert rank=%u neg=%d net=%d\n",
                 (unsigned long long)ev.id, rank_, ev.negative ? 1 : 0, from_network ? 1 : 0);
  }
  if (ev.negative && ev.id == traced_event()) {
    std::fprintf(stderr, "[trace %llu]   (anti outcome logged below)\n",
                 (unsigned long long)ev.id);
  }
  ObjRt& rt = runtime_for(ev.dst_obj);
  NW_CHECK_MSG(!(ev.recv_ts < max_gvt_seen_),
               "message below GVT arrived — GVT estimation is unsound");

  if (ev.negative) {
    if (from_network) {
      // Must stay in lock-step with the NIC's per-arrival count (the early
      // cancellation "generated before the host processed it" test).
      rt.antis_processed += 1;
      rt.last_anti_ts = ev.recv_ts;
      lp_antis_processed_ += 1;
      lp_last_anti_ts_ = ev.recv_ts;
    }
    stats_.counter("tw.antis_received").add(1);

    // 1. Annihilate against a pending positive (indexed: one hash probe).
    if (auto it = pending_find(rt, ev.id); it != rt.pending.end()) {
      pending_erase(rt, it);
      // kLazy: the annihilated event will never re-execute; any outputs
      // it had already put on the wire must be cancelled now.
      flush_lazy_for_gen(rt, ev.id, res.antis);
      res.annihilated = true;
      stats_.counter("tw.annihilations").add(1);
      return res;
    }
    // 2. Positive already processed: roll back to just before it, then the
    // positive reappears in pending — annihilate it there.
    for (std::size_t i = 0; i < rt.processed.size(); ++i) {
      if (rt.processed[i].ev.id == ev.id) {
        std::vector<EventId>* sink = collect_undone_ ? &res.undone_ids : nullptr;
        {
          ScopedPhaseTimer phase_scope(phases_, Phase::kRollback);
          if (scope_ == RollbackScope::kLp) {
            // Copy the pivot: rollback_all mutates the deque it lives in.
            const EventMsg pivot = rt.processed[i].ev;
            res.events_undone = rollback_all(pivot, res.antis, res.events_replayed, sink);
          } else {
            res.events_undone = rollback_to(rt, i, res.antis, res.events_replayed, sink);
          }
        }
        if (res.events_undone > max_rollback_depth_) {
          max_rollback_depth_ = res.events_undone;
        }
        res.rollback = true;
        // The straggler positive is now the least pending event for this
        // object; remove it (indexed lookup, no scan).
        auto it = pending_find(rt, ev.id);
        NW_CHECK_MSG(it != rt.pending.end(),
                     "rolled-back positive missing from pending queue");
        pending_erase(rt, it);
        flush_lazy_for_gen(rt, ev.id, res.antis);
        res.annihilated = true;
        stats_.counter("tw.annihilations").add(1);
        stats_.counter("tw.anti_rollbacks").add(1);
        return res;
      }
    }
    // 3. The anti outran its positive (possible on distinct channels); park
    // it until the positive shows up.
    rt.orphan_antis.insert(std::move(ev));
    res.stored_orphan = true;
    stats_.counter("tw.orphan_antis").add(1);
    return res;
  }

  // Positive message. Annihilate against a parked anti first.
  for (auto it = rt.orphan_antis.begin(); it != rt.orphan_antis.end(); ++it) {
    if (it->id == ev.id) {
      rt.orphan_antis.erase(it);
      res.annihilated = true;
      stats_.counter("tw.annihilations").add(1);
      return res;
    }
  }

  // Paranoia mode: a second live positive with the same id means the
  // drop/filter pairing broke somewhere upstream (see firmware/cancel).
  if (paranoia_) {
    NW_CHECK_MSG(pending_find(rt, ev.id) == rt.pending.end(),
                 "duplicate positive (pending) — cancellation pairing broken");
    for (const auto& rec : rt.processed) {
      NW_CHECK_MSG(rec.ev.id != ev.id,
                   "duplicate positive (processed) — cancellation pairing broken");
    }
  }

  // Straggler detection against the canonical order.
  if (is_straggler(rt, ev)) {
    std::vector<EventId>* sink = collect_undone_ ? &res.undone_ids : nullptr;
    {
      ScopedPhaseTimer phase_scope(phases_, Phase::kRollback);
      if (scope_ == RollbackScope::kLp) {
        res.events_undone = rollback_all(ev, res.antis, res.events_replayed, sink);
      } else {
        res.events_undone = rollback_to(rt, rollback_pos(rt, ev), res.antis,
                                        res.events_replayed, sink);
      }
    }
    if (res.events_undone > max_rollback_depth_) {
      max_rollback_depth_ = res.events_undone;
    }
    res.rollback = true;
    stats_.counter("tw.straggler_rollbacks").add(1);
  }

  pending_insert(rt, std::move(ev));
  return res;
}

void LogicalProcess::pending_insert(ObjRt& rt, EventMsg ev) {
  const EventId id = ev.id;
  const auto it = rt.pending.insert(std::move(ev));
  rt.pending_by_id.emplace(id, it);
  ++pending_total_;
  // Advertise when this insertion lowered the object's head below what the
  // ready-heap already knows about (or nothing was advertised at all).
  if (!rt.head_advertised) {
    advertise_head(rt);
  } else if (it == rt.pending.begin() &&
             (it->recv_ts < rt.adv_ts ||
              (it->recv_ts == rt.adv_ts && it->id < rt.adv_id))) {
    advertise_head(rt);
  }
}

void LogicalProcess::pending_erase(ObjRt& rt, PendingQueue::iterator it) {
  // Only unmap if the index points at THIS node (a duplicate id — which
  // paranoia mode rejects outright — must not strand the survivor's entry).
  if (auto idx = rt.pending_by_id.find(it->id);
      idx != rt.pending_by_id.end() && idx->second == it) {
    rt.pending_by_id.erase(idx);
  }
  rt.pending.erase(it);
  --pending_total_;
  // A stale advertisement (head gone or grown) is fine: pops validate
  // against the live head and re-advertise, so no repair is needed here.
}

LogicalProcess::PendingQueue::iterator LogicalProcess::pending_find(ObjRt& rt,
                                                                    EventId id) {
  const auto idx = rt.pending_by_id.find(id);
  return idx == rt.pending_by_id.end() ? rt.pending.end() : idx->second;
}

void LogicalProcess::advertise_head(ObjRt& rt) {
  if (rt.pending.empty()) return;
  const EventMsg& head = *rt.pending.begin();
  rt.head_advertised = true;
  rt.adv_ts = head.recv_ts;
  rt.adv_id = head.id;
  ready_heap_.push_back(HeadEntry{head.recv_ts, head.dst_obj, head.id, &rt});
  std::push_heap(ready_heap_.begin(), ready_heap_.end(), HeadLater{});
}

bool LogicalProcess::is_straggler(const ObjRt& rt, const EventMsg& ev) const {
  if (scope_ == RollbackScope::kObject) {
    return !rt.processed.empty() && event_before(ev, rt.processed.back().ev);
  }
  for (const auto& [id, r] : objs_) {
    if (!r.processed.empty() && event_before(ev, r.processed.back().ev)) return true;
  }
  return false;
}

std::size_t LogicalProcess::rollback_pos(const ObjRt& rt, const EventMsg& pivot) {
  // Undo every record at or after the pivot in canonical order (>=, so an
  // anti-rollback undoes the annihilated positive's own execution too).
  std::size_t pos = rt.processed.size();
  while (pos > 0 && !event_before(rt.processed[pos - 1].ev, pivot)) --pos;
  return pos;
}

std::size_t LogicalProcess::rollback_all(const EventMsg& pivot, std::vector<EventMsg>& out,
                                         std::size_t& replayed,
                                         std::vector<EventId>* undone_ids) {
  // 2002-era shared-queue semantics: every object returns to the straggler's
  // point in the canonical order. All optimistic output beyond it is
  // cancelled — which is precisely what licenses the NIC's timestamp-only
  // send-ring purge (Fig. 3b of the paper).
  std::size_t undone = 0;
  for (auto& [id, rt] : objs_) {
    const std::size_t pos = rollback_pos(rt, pivot);
    if (pos < rt.processed.size()) {
      undone += rollback_to(rt, pos, out, replayed, undone_ids);
    }
  }
  return undone;
}

std::size_t LogicalProcess::rollback_to(ObjRt& rt, std::size_t pos,
                                        std::vector<EventMsg>& out,
                                        std::size_t& replayed,
                                        std::vector<EventId>* undone_ids) {
  NW_CHECK(pos < rt.processed.size());
  const std::size_t undone = rt.processed.size() - pos;

  // Incremental fast path: when every record being undone logged its writes
  // completely (undo_ok) and the target mark is still live, restoring is a
  // reverse byte replay — no snapshot clone, no coast-forward.
  bool pure_undo = state_mode_ == StateSaveMode::kIncremental && rt.undo != nullptr &&
                   rt.processed[pos].undo_mark >= rt.undo->first_pos();
  if (pure_undo) {
    for (std::size_t i = pos; i < rt.processed.size(); ++i) {
      if (!rt.processed[i].undo_ok) {
        pure_undo = false;
        break;
      }
    }
  }
  if (pure_undo) {
    rt.undo->rewind_to(rt.processed[pos].undo_mark);
    undo_rewinds_ += 1;
    stats_.counter("tw.undo_rewinds").add(1);
  } else {
    // The record at `pos` may have no snapshot (periodic saving skipped it,
    // or its undo entries are unusable): restore the nearest earlier
    // snapshot and coast-forward (deterministic re-execution with sends
    // suppressed) up to the rollback point.
    std::size_t snap = pos;
    while (rt.processed[snap].pre_state == nullptr) {
      NW_CHECK_MSG(snap > 0, "no state snapshot reachable — fossil collection bug");
      --snap;
    }
    rt.obj->replace_state(rt.processed[snap].pre_state->clone());
    for (std::size_t i = snap; i < pos; ++i) {
      coast_forward(rt, rt.processed[i].ev);
      ++replayed;
    }
    events_replayed_ += pos - snap;
    stats_.counter("tw.events_replayed").add(static_cast<std::int64_t>(pos - snap));
    // replace_state destroyed the object the undo entries point into; burn
    // the whole log so their marks turn stale (later rollbacks route to
    // snapshots) instead of rewinding through dangling addresses.
    if (rt.undo != nullptr) rt.undo->reset();
  }
  win_rollbacks_ += 1;

  for (std::size_t i = pos; i < rt.processed.size(); ++i) {
    ProcessedRecord& rec = rt.processed[i];
    if (undone_ids != nullptr) undone_ids->push_back(rec.ev.id);
    // Undone events go back to pending for re-execution.
    pending_insert(rt, rec.ev);
    if (cancellation_ == CancellationMode::kAggressive) {
      // Aggressive cancellation: anti-message per output.
      for (const EventMsg& outp : rec.outputs) out.push_back(outp.as_anti());
    } else {
      // Lazy: hold the outputs; re-execution decides their fate.
      for (const EventMsg& outp : rec.outputs) {
        rt.lazy.push_back(LazyRecord{outp, rec.ev});
      }
    }
  }
  rt.processed.erase(rt.processed.begin() + static_cast<std::ptrdiff_t>(pos),
                     rt.processed.end());
  rollbacks_ += 1;
  events_rolled_back_ += undone;
  stats_.counter("tw.rollbacks").add(1);
  stats_.counter("tw.events_rolled_back").add(static_cast<std::int64_t>(undone));
  return undone;
}

void LogicalProcess::coast_forward(ObjRt& rt, const EventMsg& ev) {
  // Deterministic replay: same event, same per-execution RNG stream, same
  // state trajectory — only the sends are discarded (they are already out).
  ExecCtx ctx(*rt.obj, ev.recv_ts, ev.id, seed_);
  rt.obj->execute(ctx, ev);
  (void)ctx.take_sends();
}

void LogicalProcess::flush_lazy_before(ObjRt& rt, const EventMsg& next,
                                       std::vector<EventMsg>& antis) {
  // Safety net: a held output whose generator sorts before the event about
  // to execute can never be regenerated (the generator would have executed
  // first). Normally annihilation flushes these exactly; this catches any
  // stragglers of the bookkeeping.
  std::erase_if(rt.lazy, [&](const LazyRecord& rec) {
    if (!event_before(rec.gen, next)) return false;
    antis.push_back(rec.output.as_anti());
    stats_.counter("tw.lazy_flush_before").add(1);
    return true;
  });
}

void LogicalProcess::flush_lazy_for_gen(ObjRt& rt, EventId gen_id,
                                        std::vector<EventMsg>& antis) {
  std::erase_if(rt.lazy, [&](const LazyRecord& rec) {
    if (rec.gen.id != gen_id) return false;
    antis.push_back(rec.output.as_anti());
    stats_.counter("tw.lazy_cancelled").add(1);
    return true;
  });
}

bool LogicalProcess::has_ready_event() const { return pending_total_ > 0; }

VirtualTime LogicalProcess::next_event_ts() const { return lvt(); }

VirtualTime LogicalProcess::lvt() const {
  VirtualTime m = VirtualTime::inf();
  for (const auto& [id, rt] : objs_) {
    if (!rt.pending.empty()) m = VirtualTime::min(m, rt.pending.begin()->recv_ts);
    // Parked antis hold LVT too: until the positive arrives and the pair
    // annihilates, virtual time `recv_ts` is not safely in the past.
    if (!rt.orphan_antis.empty()) {
      m = VirtualTime::min(m, rt.orphan_antis.begin()->recv_ts);
    }
    // So do lazily-held outputs: their anti-message may still be sent.
    for (const auto& rec : rt.lazy) m = VirtualTime::min(m, rec.output.recv_ts);
  }
  return m;
}

LogicalProcess::ExecResult LogicalProcess::execute_next() {
  // Pick the globally least pending event under the canonical order by
  // popping ready-heap advertisements until one matches a live queue head.
  // Every object with pending events keeps an advertisement at or below its
  // head key in the heap (pending_insert maintains this), so the first
  // validated entry IS the global minimum.
  ObjRt* best = nullptr;
  while (!ready_heap_.empty()) {
    std::pop_heap(ready_heap_.begin(), ready_heap_.end(), HeadLater{});
    const HeadEntry e = ready_heap_.back();
    ready_heap_.pop_back();
    ObjRt& rt = *e.rt;
    // Superseded advertisement (a lower head was pushed later): discard.
    if (!rt.head_advertised || e.recv_ts != rt.adv_ts || e.id != rt.adv_id) continue;
    rt.head_advertised = false;
    if (!rt.pending.empty()) {
      const EventMsg& head = *rt.pending.begin();
      if (head.recv_ts == e.recv_ts && head.id == e.id) {
        best = &rt;
        break;
      }
      // The advertised event was annihilated; re-advertise the real head
      // and keep looking (lazy repair).
      advertise_head(rt);
    }
  }
  ExecResult res;
  if (best == nullptr) {
    NW_CHECK_MSG(pending_total_ == 0, "ready-heap lost a pending queue head");
    return res;
  }

  EventMsg ev = *best->pending.begin();
  pending_erase(*best, best->pending.begin());
  advertise_head(*best);  // next head (if any) becomes this object's advert

  if (cancellation_ == CancellationMode::kLazy) {
    flush_lazy_before(*best, ev, res.antis);
  }

  ProcessedRecord rec;
  // An empty history needs an anchor snapshot regardless of the period: a
  // rollback can only restore from a snapshot at or before its position.
  if (best->processed.empty() ||
      best->exec_count % static_cast<std::uint64_t>(current_period()) == 0) {
    ScopedPhaseTimer save_scope(phases_, Phase::kStateSave);
    rec.pre_state = best->obj->snapshot_state();
    state_saves_ += 1;
    state_save_bytes_ += rec.pre_state->byte_size();
    res.snapshot_saved = true;
  }
  best->exec_count += 1;

  std::uint64_t undo_bytes_before = 0;
  if (state_mode_ == StateSaveMode::kIncremental) {
    if (best->undo == nullptr) {
      best->undo = std::make_unique<core::UndoLog>(undo_pool_);
    }
    // (Re-)attach every event: a fallback rollback replaces the state with a
    // detached clone, and snapshots/restores never carry the attachment.
    best->obj->state().set_undo(best->undo.get());
    rec.undo_mark = best->undo->mark();
    best->undo->clear_overflow();
    undo_bytes_before = best->undo->bytes_logged();
  }

  ExecCtx ctx(*best->obj, ev.recv_ts, ev.id, seed_);
  best->obj->execute(ctx, ev);
  rec.outputs = ctx.take_sends();

  if (state_mode_ == StateSaveMode::kIncremental) {
    rec.undo_ok = !best->undo->overflowed();
    res.undo_bytes = best->undo->bytes_logged() - undo_bytes_before;
    undo_bytes_logged_ += res.undo_bytes;
  }
  win_events_ += 1;
  if (state_save_period_ == 0) recompute_adaptive_period();

  res.executed = true;
  res.ts = ev.recv_ts;
  res.obj = best->obj->id();
  res.id = ev.id;

  if (cancellation_ == CancellationMode::kLazy && !best->lazy.empty()) {
    // Match regenerated sends against held outputs. The deterministic id is
    // NOT enough: re-execution can regenerate the same logical send with
    // different content (its pre-state may differ once the straggler's
    // effects are in). Only a byte-identical message may stay on the wire;
    // a content-divergent one is cancelled (leftover flush below) and the
    // fresh version is sent — the kernel dispatches antis before sends, so
    // the receiver sees anti-then-replacement in FIFO order.
    for (const EventMsg& outp : rec.outputs) {
      bool matched = false;
      std::erase_if(best->lazy, [&](const LazyRecord& held) {
        if (matched || held.output.id != outp.id) return false;
        if (held.output.recv_ts != outp.recv_ts || held.output.dst_obj != outp.dst_obj ||
            held.output.data != outp.data) {
          return false;  // same identity, different content: must cancel it
        }
        matched = true;
        stats_.counter("tw.lazy_matched").add(1);
        return true;
      });
      if (!matched) res.sends.push_back(outp);
    }
    flush_lazy_for_gen(*best, ev.id, res.antis);
  } else {
    res.sends = rec.outputs;  // copy: the record keeps its own for cancellation
  }

  if (latency_ != nullptr && latency_->enabled()) rec.exec_at = latency_clock_();
  rec.ev = std::move(ev);
  best->processed.push_back(std::move(rec));
  events_processed_ += 1;
  stats_.counter("tw.events_processed").add(1);
  return res;
}

std::size_t LogicalProcess::fossil_collect(VirtualTime gvt) {
  if (gvt < max_gvt_seen_) return 0;
  max_gvt_seen_ = gvt;
  std::size_t reclaimed = 0;
  for (auto& [id, rt] : objs_) {
    // Keep every record with recv_ts >= gvt: a rollback to exactly gvt must
    // still find a pre-state.
    auto& q = rt.processed;
    std::size_t keep_from = 0;
    while (keep_from < q.size() && q[keep_from].ev.recv_ts < gvt) ++keep_from;
    // Periodic state saving: the first surviving record must be able to
    // anchor a rollback, so back up to the latest snapshot at or before it.
    while (keep_from < q.size() && keep_from > 0 && q[keep_from].pre_state == nullptr) {
      --keep_from;
    }
    reclaimed += keep_from;
    // Commit latency: the records about to be reclaimed are exactly the
    // events this GVT advance committed. Final gvt == inf carries no usable
    // distance, so the run-drain sweep records nothing.
    if (latency_ != nullptr && latency_->enabled() && !gvt.is_inf() && keep_from > 0) {
      const SimTime commit_now = latency_clock_();
      for (std::size_t i = 0; i < keep_from; ++i) {
        const ProcessedRecord& rec = q[i];
        latency_->record_commit(gvt.t - rec.ev.recv_ts.t,
                                rec.exec_at.ns > 0 ? (commit_now - rec.exec_at).micros()
                                                   : 0.0);
      }
    }
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(keep_from));

    // Undo entries below the first surviving record's mark can never be
    // rewound to again; hand their chunks back to the pool. An emptied
    // history frees the whole log (the next execution re-anchors).
    if (rt.undo != nullptr) {
      if (q.empty()) {
        rt.undo->reset();
      } else if (q.front().undo_mark > rt.undo->first_pos()) {
        rt.undo->release_below(q.front().undo_mark);
      }
    }

    // Orphan antis strictly below GVT can never meet their positive (the
    // positive was NIC-dropped or annihilated); they are garbage now.
    for (auto it = rt.orphan_antis.begin(); it != rt.orphan_antis.end();) {
      if (it->recv_ts < gvt) {
        it = rt.orphan_antis.erase(it);
      } else {
        ++it;
      }
    }
  }
  stats_.counter("tw.fossil_reclaimed").add(static_cast<std::int64_t>(reclaimed));
  return reclaimed;
}

std::uint64_t LogicalProcess::anti_counter_piggyback(ObjectId obj) const {
  return scope_ == RollbackScope::kLp ? lp_antis_processed_ : anti_counter(obj);
}

std::uint64_t LogicalProcess::anti_counter(ObjectId obj) const {
  auto it = objs_.find(obj);
  NW_CHECK(it != objs_.end());
  return it->second.antis_processed;
}

VirtualTime LogicalProcess::last_anti_ts(ObjectId obj) const {
  auto it = objs_.find(obj);
  NW_CHECK(it != objs_.end());
  return it->second.last_anti_ts;
}

std::int64_t LogicalProcess::signature_sum() const {
  std::int64_t s = 0;
  for (const auto& [id, rt] : objs_) s += rt.obj->state().signature;
  return s;
}

std::size_t LogicalProcess::total_pending() const { return pending_total_; }

std::size_t LogicalProcess::total_processed_records() const {
  std::size_t n = 0;
  for (const auto& [id, rt] : objs_) n += rt.processed.size();
  return n;
}

std::uint64_t LogicalProcess::lazy_records() const {
  std::uint64_t n = 0;
  for (const auto& [id, rt] : objs_) n += rt.lazy.size();
  return n;
}

std::size_t LogicalProcess::orphan_antis() const {
  std::size_t n = 0;
  for (const auto& [id, rt] : objs_) n += rt.orphan_antis.size();
  return n;
}

}  // namespace nicwarp::warped
