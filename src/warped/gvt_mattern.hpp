// Host-resident Mattern GVT (the paper's baseline, WARPED's default).
//
// Generalized to epoch-numbered colors: estimation E treats messages colored
// E-1 as "white" and everything colored >= E as "red". The token makes
// counting circulations until the accumulated white count drains to zero,
// then the root broadcasts GVT = min(LVT samples, red-send minima).
//
// Crucially — and unlike the NIC firmware, whose GvtTokenPending flag
// serializes estimations — the host baseline initiates a new estimation
// every `period` events even while earlier tokens are still circulating
// (bounded by `max_outstanding`). At GVT_COUNT = 1 this floods the cluster
// with control messages, each costing host CPU on both ends plus two I/O-bus
// crossings: the storm behind the left side of the paper's Figures 4/5a and
// the ~450k-round curve of Figure 5b.
#pragma once

#include <map>
#include <set>

#include "warped/gvt_manager.hpp"

namespace nicwarp::warped {

struct MatternOptions {
  std::int64_t period = 100;        // events between initiations (root)
  std::size_t max_outstanding = 64; // concurrent estimations cap
  double idle_initiate_us = 300.0;  // initiate when idle this long (root)
};

class MatternGvtManager final : public GvtManager {
 public:
  explicit MatternGvtManager(MatternOptions opts) : opts_(opts) {}

  void start() override;
  void on_event_processed() override;
  void stamp_outgoing(hw::PacketHeader& hdr) override;
  void on_event_received(const hw::PacketHeader& hdr) override;
  void on_control(const hw::Packet& pkt) override;
  void on_nic_drop(const hw::DropNotice& n) override;
  void idle_poll() override;

  std::size_t outstanding() const { return outstanding_.size(); }

 private:
  bool is_root() const { return api_->rank() == 0; }
  NodeId next_rank() const { return (api_->rank() + 1) % api_->world_size(); }
  void maybe_initiate();
  // Applies this LP's contribution for the token's estimation and forwards
  // it to the next LP in the ring.
  void contribute(hw::GvtFields& token);
  void forward(const hw::GvtFields& token, NodeId dst, hw::PacketKind kind);
  void complete(std::uint32_t epoch, VirtualTime gvt_value);
  VirtualTime red_min(std::uint32_t estimation_epoch) const;
  void prune_below(std::uint32_t epoch);

  MatternOptions opts_;

  // Coloring state (current color = epoch_).
  std::uint32_t epoch_{0};
  std::map<std::uint32_t, std::int64_t> sent_;      // by message color
  std::map<std::uint32_t, std::int64_t> received_;  // by message color
  std::map<std::uint32_t, VirtualTime> tmin_sent_;  // by message color

  // Per-estimation incremental reporting: what this LP last told the token.
  struct Reported {
    std::int64_t sent{0};
    std::int64_t recv{0};
  };
  std::map<std::uint32_t, Reported> reported_;

  // Root-only state.
  std::set<std::uint32_t> outstanding_;  // estimation epochs in flight
  std::uint32_t last_epoch_started_{0};
  std::int64_t events_at_last_init_{0};
  SimTime last_completion_{SimTime::zero()};
};

}  // namespace nicwarp::warped
