// Host-resident Mattern GVT (the paper's baseline, WARPED's default).
//
// Generalized to epoch-numbered colors: estimation E treats messages colored
// E-1 as "white" and everything colored >= E as "red". The token makes
// counting circulations until the accumulated white count drains to zero,
// then the root broadcasts GVT = min(LVT samples, red-send minima).
//
// Crucially — and unlike the NIC firmware, whose GvtTokenPending flag
// serializes estimations — the host baseline initiates a new estimation
// every `period` events even while earlier tokens are still circulating
// (bounded by `max_outstanding`). At GVT_COUNT = 1 this floods the cluster
// with control messages, each costing host CPU on both ends plus two I/O-bus
// crossings: the storm behind the left side of the paper's Figures 4/5a and
// the ~450k-round curve of Figure 5b.
#pragma once

#include <set>
#include <vector>

#include "warped/gvt_manager.hpp"

namespace nicwarp::warped {

struct MatternOptions {
  std::int64_t period = 100;        // events between initiations (root)
  std::size_t max_outstanding = 64; // concurrent estimations cap
  double idle_initiate_us = 300.0;  // initiate when idle this long (root)
};

class MatternGvtManager final : public GvtManager {
 public:
  explicit MatternGvtManager(MatternOptions opts) : opts_(opts) {}

  void start() override;
  void on_event_processed() override;
  void stamp_outgoing(hw::PacketHeader& hdr) override;
  void on_event_received(const hw::PacketHeader& hdr) override;
  void on_control(const hw::Packet& pkt) override;
  void on_nic_drop(const hw::DropNotice& n) override;
  void idle_poll() override;

  std::size_t outstanding() const { return outstanding_.size(); }

 private:
  bool is_root() const { return api_->rank() == 0; }
  NodeId next_rank() const { return (api_->rank() + 1) % api_->world_size(); }
  void maybe_initiate();
  // Applies this LP's contribution for the token's estimation and forwards
  // it to the next LP in the ring.
  void contribute(hw::GvtFields& token);
  void forward(const hw::GvtFields& token, NodeId dst, hw::PacketKind kind);
  void complete(std::uint32_t epoch, VirtualTime gvt_value);
  VirtualTime red_min(std::uint32_t estimation_epoch) const;
  void prune_below(std::uint32_t epoch);

  // All per-color state for one epoch, packed into one cache line's worth
  // of fields instead of four node-based std::map entries. Colors are dense
  // consecutive integers, so the collection is a flat vector indexed by
  // (epoch - color_base_); prune_below slides color_base_ forward at round
  // completion, keeping the window bounded by max_outstanding + 2.
  struct ColorCell {
    std::int64_t sent{0};
    std::int64_t received{0};
    VirtualTime tmin_sent{VirtualTime::inf()};
    // Per-estimation incremental reporting: what this LP last told the
    // token whose estimation epoch maps to this cell.
    std::int64_t reported_sent{0};
    std::int64_t reported_recv{0};
  };

  // Mutable access to epoch's cell, growing the window as colors advance.
  ColorCell& cell(std::uint32_t epoch);
  // Read-only access; pruned or never-touched epochs read as a zero cell.
  const ColorCell& cell_at(std::uint32_t epoch) const;

  MatternOptions opts_;

  // Coloring state (current color = epoch_).
  std::uint32_t epoch_{0};
  std::uint32_t color_base_{0};     // epoch of colors_[0]
  std::vector<ColorCell> colors_;   // window [color_base_, color_base_+size)
  std::size_t color_peak_{0};       // high-water window size (gvt.color_map_peak)
  // Write sink for epochs already pruned (e.g. a packet whose color predates
  // the retained window landing late): the write is sound to discard — no
  // live estimation can read that color again — but callers still need an
  // lvalue. Zeroed on every handout.
  ColorCell scratch_;

  // Root-only state.
  std::set<std::uint32_t> outstanding_;  // estimation epochs in flight
  std::uint32_t last_epoch_started_{0};
  std::int64_t events_at_last_init_{0};
  SimTime last_completion_{SimTime::zero()};
};

}  // namespace nicwarp::warped
