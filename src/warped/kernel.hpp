// Per-node Time-Warp kernel: glues the LogicalProcess (virtual-time machine)
// to the hardware model (host CPU costs, comm stack, NIC mailbox) and to the
// GVT manager.
//
// Scheduling model: the kernel keeps at most one "step" task on the host CPU
// at a time; each step executes the least pending event, dispatches its
// sends (local inserts or remote packets), and returns its modelled cost.
// Message arrivals are integrated inside the host receive task and any
// rollback work is charged as a follow-up host task.
#pragma once

#include <functional>
#include <memory>

#include "comm/host_comm.hpp"
#include "core/profile_hook.hpp"
#include "core/rng.hpp"
#include "core/timeseries.hpp"
#include "core/trace.hpp"
#include "hw/node.hpp"
#include "warped/gvt_manager.hpp"
#include "warped/lp.hpp"
#include "warped/partition.hpp"

namespace nicwarp::warped {

enum class GvtMode { kHostMattern, kNic, kPGvt };

struct KernelOptions {
  RollbackScope rollback_scope = RollbackScope::kLp;  // paper-era default
  CancellationMode cancellation = CancellationMode::kAggressive;
  // Full-snapshot cadence: every N events (N >= 1), or 0 for the adaptive
  // interval driven by observed rollback depth.
  std::int64_t state_save_period = 1;
  // Copy state saving (clone per snapshot) vs incremental undo logging
  // (record-before-write via State::mut, rewind on rollback).
  StateSaveMode state_mode = StateSaveMode::kCopy;
  double idle_poll_us = 50.0;  // manager poll cadence when nothing else runs
  bool paranoia_checks = false;  // LP-level pairing checks (tests)
  // When set, every GVT adoption on THIS kernel is reported to the sampler.
  // The harness wires it to exactly one kernel (rank 0) so a cluster-wide
  // adoption yields one sample, not world_size of them. Not owned.
  TimeSeriesSampler* sampler = nullptr;
  // Online profiler (src/profile). Null = off; every hook site is one
  // predicted-false branch. Enabling it also turns on undone-id collection
  // in the LP (the only extra work plain runs would otherwise pay). Not
  // owned; one hook may serve every kernel in the testbed.
  ProfileHook* profile = nullptr;
};

class Kernel final : public KernelApi {
 public:
  Kernel(hw::Node& node, comm::HostComm& comm, std::shared_ptr<const Partition> part,
         std::unique_ptr<GvtManager> mgr, KernelOptions opts, std::uint64_t seed);

  void add_object(std::unique_ptr<SimulationObject> obj) { lp_.add_object(std::move(obj)); }

  // Initializes objects (a host task) and begins pumping. Call after all
  // kernels exist (cross-node traffic may start immediately).
  void start();

  LogicalProcess& lp() { return lp_; }
  GvtManager& gvt_manager() { return *mgr_; }
  bool stopped() const { return stopped_; }
  // Simulated instant at which this kernel detected termination.
  SimTime stop_time() const { return stop_time_; }
  VirtualTime gvt() const { return mgr_->gvt(); }

  // --- KernelApi ---
  NodeId rank() const override { return node_.id(); }
  std::uint32_t world_size() const override { return world_size_; }
  const hw::CostModel& cost() const override { return node_.cost(); }
  StatsRegistry& stats() override { return node_.stats(); }
  hw::Mailbox& mailbox() override { return node_.mailbox(); }
  VirtualTime safe_local_min() const override;
  std::int64_t events_processed() const override {
    return static_cast<std::int64_t>(lp_.events_processed());
  }
  bool lp_idle() const override { return !lp_.has_ready_event() && comm_.staged() == 0; }
  void send_control(hw::Packet pkt) override;
  void run_host_task(SimTime task_cost, SmallFn<void(), 64> fn) override {
    node_.run_host_task(task_cost, std::move(fn));
  }
  void schedule(SimTime delay, SmallFn<void(), 64> fn) override {
    node_.engine().schedule(delay, std::move(fn));
  }
  void on_new_gvt(VirtualTime g) override;
  SimTime now() const override { return node_.engine().now(); }

 private:
  void pump();
  SimTime do_step();  // returns the step's host-CPU cost
  // Routes one event; accumulates host cost (µs) into `cost_us`.
  void dispatch_event(EventMsg ev, double& cost_us);
  // `cause_*` describe the message whose insertion produced `res` (the
  // rollback trigger when res.rollback): id, polarity, and the sending node
  // (kInvalidNode for local sends).
  void apply_insert_result(const LogicalProcess::InsertResult& res, double& cost_us,
                           EventId cause_id, bool cause_negative, NodeId cause_src);
  void on_deliver(hw::Packet pkt);
  void idle_tick();
  void drain_drop_notices(double& cost_us);
  SimTime jittered_exec_cost();

  hw::Node& node_;
  comm::HostComm& comm_;
  std::shared_ptr<const Partition> part_;
  std::unique_ptr<GvtManager> mgr_;
  KernelOptions opts_;
  std::uint32_t world_size_;
  LogicalProcess lp_;
  Rng jitter_rng_;

  bool started_{false};
  SimTime stop_time_{SimTime::zero()};
  bool step_active_{false};
  bool stopped_{false};
};

}  // namespace nicwarp::warped
