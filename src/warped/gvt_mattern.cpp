#include "warped/gvt_mattern.hpp"

#include "core/assert.hpp"

namespace nicwarp::warped {

void MatternGvtManager::start() { last_completion_ = api_->now(); }

void MatternGvtManager::on_event_processed() {
  if (is_root()) maybe_initiate();
}

void MatternGvtManager::idle_poll() {
  if (!is_root() || !outstanding_.empty()) return;
  if (api_->lp_idle() &&
      api_->now() - last_completion_ >= SimTime::from_us(opts_.idle_initiate_us)) {
    // Idle initiation ignores the period so termination is always detected.
    events_at_last_init_ = api_->events_processed() - opts_.period;
    maybe_initiate();
  }
}

void MatternGvtManager::maybe_initiate() {
  if (outstanding_.size() >= opts_.max_outstanding) return;
  if (api_->events_processed() - events_at_last_init_ < opts_.period) return;
  events_at_last_init_ = api_->events_processed();

  const std::uint32_t e = std::max(epoch_, last_epoch_started_) + 1;
  last_epoch_started_ = e;
  outstanding_.insert(e);
  api_->stats().counter("gvt.estimations").add(1);

  hw::GvtFields token;
  token.epoch = e;
  token.round = 1;
  token.white_count = 0;
  token.t = VirtualTime::inf();
  token.tmin = VirtualTime::inf();
  contribute(token);
  forward(token, next_rank(), hw::PacketKind::kHostGvtToken);
}

MatternGvtManager::ColorCell& MatternGvtManager::cell(std::uint32_t epoch) {
  if (epoch < color_base_) {
    // Pruned color: the estimation that cared completed long ago; accept
    // (and discard) the write.
    scratch_ = ColorCell{};
    return scratch_;
  }
  const std::size_t idx = epoch - color_base_;
  if (idx >= colors_.size()) {
    colors_.resize(idx + 1);
    if (colors_.size() > color_peak_) {
      color_peak_ = colors_.size();
      // Gauge semantics on a counter: raise it to the new high-water mark.
      auto& peak = api_->stats().counter("gvt.color_map_peak");
      peak.add(static_cast<std::int64_t>(color_peak_) - peak.get());
    }
  }
  return colors_[idx];
}

const MatternGvtManager::ColorCell& MatternGvtManager::cell_at(
    std::uint32_t epoch) const {
  static const ColorCell kZero{};
  if (epoch < color_base_) return kZero;
  const std::size_t idx = epoch - color_base_;
  return idx < colors_.size() ? colors_[idx] : kZero;
}

void MatternGvtManager::stamp_outgoing(hw::PacketHeader& hdr) {
  if (hdr.kind != hw::PacketKind::kEvent) return;
  hdr.color_epoch = epoch_;
  ColorCell& c = cell(epoch_);
  c.sent += 1;
  c.tmin_sent = VirtualTime::min(c.tmin_sent, hdr.recv_ts);
}

void MatternGvtManager::on_event_received(const hw::PacketHeader& hdr) {
  cell(hdr.color_epoch).received += 1;
}

void MatternGvtManager::on_nic_drop(const hw::DropNotice& n) {
  // The packet never left this node; retract its "sent" contribution so the
  // white count can drain. (Its timestamp stays folded into tmin_sent,
  // which is only conservative.)
  cell(n.color_epoch).sent -= 1;
}

VirtualTime MatternGvtManager::red_min(std::uint32_t estimation_epoch) const {
  // "Red" for estimation E is every send colored >= E (later concurrent
  // estimations only recolor upward). A flat sweep over the bounded color
  // window, not a std::map walk.
  VirtualTime m = VirtualTime::inf();
  const std::uint32_t start = std::max(estimation_epoch, color_base_);
  for (std::size_t i = start - color_base_; i < colors_.size(); ++i) {
    m = VirtualTime::min(m, colors_[i].tmin_sent);
  }
  return m;
}

void MatternGvtManager::contribute(hw::GvtFields& token) {
  const auto e = static_cast<std::uint32_t>(token.epoch);
  NW_CHECK(e >= 1);
  if (epoch_ < e) epoch_ = e;  // the cut passes this LP now

  // Incremental white-count contribution for THIS estimation. Take the
  // estimation cell first: cell() may grow the window, which would
  // invalidate a previously-taken reference into it.
  ColorCell& est = cell(e);
  const std::int64_t s = cell_at(e - 1).sent;
  const std::int64_t r = cell_at(e - 1).received;
  token.white_count += (s - est.reported_sent) - (r - est.reported_recv);
  est.reported_sent = s;
  est.reported_recv = r;

  // Minima: each white's receipt is reported at a visit whose LVT sample
  // already reflects it (receives are counted and inserted in the same host
  // task), so the accumulated minima soundly bound GVT once the count drains.
  token.t = VirtualTime::min(token.t, api_->safe_local_min());
  token.tmin = VirtualTime::min(token.tmin, red_min(e));
}

void MatternGvtManager::forward(const hw::GvtFields& token, NodeId dst,
                                hw::PacketKind kind) {
  hw::Packet pkt;
  pkt.hdr.kind = kind;
  pkt.hdr.dst = dst;
  pkt.hdr.size_bytes = static_cast<std::uint32_t>(api_->cost().gvt_ctrl_bytes);
  pkt.hdr.gvt = token;
  api_->send_control(std::move(pkt));
}

void MatternGvtManager::on_control(const hw::Packet& pkt) {
  switch (pkt.hdr.kind) {
    case hw::PacketKind::kGvtBroadcast: {
      publish_gvt(pkt.hdr.gvt.gvt);
      prune_below(pkt.hdr.gvt.epoch);
      return;
    }
    case hw::PacketKind::kHostGvtToken:
      break;
    default:
      return;  // not ours (acks etc. are pGVT's)
  }

  hw::GvtFields token = pkt.hdr.gvt;
  if (!is_root()) {
    contribute(token);
    forward(token, next_rank(), hw::PacketKind::kHostGvtToken);
    return;
  }

  // Token returned to the root: one full circulation done; the root's
  // sighting is both a return and a visit.
  api_->stats().counter("gvt.rounds").add(1);
  contribute(token);
  if (token.white_count == 0) {
    complete(token.epoch, VirtualTime::min(token.t, token.tmin));
  } else {
    token.round += 1;
    NW_CHECK_MSG(token.round < 1000000, "GVT counting never converges");
    forward(token, next_rank(), hw::PacketKind::kHostGvtToken);
  }
}

void MatternGvtManager::complete(std::uint32_t epoch, VirtualTime gvt_value) {
  outstanding_.erase(epoch);
  last_completion_ = api_->now();
  hw::GvtFields fin;
  fin.epoch = epoch;
  fin.gvt = gvt_value;
  for (NodeId n = 0; n < api_->world_size(); ++n) {
    if (n == api_->rank()) continue;
    forward(fin, n, hw::PacketKind::kGvtBroadcast);
  }
  prune_below(epoch);
  publish_gvt(gvt_value);
}

void MatternGvtManager::prune_below(std::uint32_t epoch) {
  // Estimations more than max_outstanding behind can no longer be in flight;
  // their color counters are dead. (The root could prune exactly via its
  // outstanding set, but non-roots need a bound too.) Sliding color_base_
  // forward keeps the flat window bounded for the whole run — the
  // gvt.color_map_peak stat records the widest it ever got.
  if (epoch < opts_.max_outstanding + 2) return;
  const std::uint32_t floor =
      epoch - static_cast<std::uint32_t>(opts_.max_outstanding) - 2;
  if (floor <= color_base_) return;
  const std::size_t drop =
      std::min<std::size_t>(floor - color_base_, colors_.size());
  colors_.erase(colors_.begin(), colors_.begin() + static_cast<std::ptrdiff_t>(drop));
  color_base_ += static_cast<std::uint32_t>(drop);
  if (colors_.empty()) color_base_ = floor;  // nothing retained: jump ahead
}

}  // namespace nicwarp::warped
