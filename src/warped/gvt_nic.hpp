// Host half of the paper's NIC-level GVT (§3.1).
//
// Everything token-related lives in firmware::GvtFirmware on the NIC; the
// host's only jobs are the ones Figure 2 of the paper assigns it:
//  * keep the NIC's events_processed hint fresh (done by the Kernel);
//  * answer the NIC's handshake request with T (the host's safe local
//    minimum), preferably by piggybacking on the next outgoing event message
//    ("encodes the values ... in four unused fields in the Basic Event
//    Message"), else by a dedicated mailbox write after a short window;
//  * adopt new GVT values the NIC reports.
//
// Consistency: the host answers only after the NIC's *request notification
// packet* arrives — that packet travels the same FIFO rx path as event
// traffic, so by reply time every event message the NIC had already received
// at the wire is inserted in the LP and reflected in the reply's T. This
// FIFO barrier is the model's version of the paper's "handshaking is carried
// out to enforce consistency".
#pragma once

#include "warped/gvt_manager.hpp"

namespace nicwarp::warped {

struct NicGvtHostOptions {
  // How long to wait for an outgoing event to carry the handshake reply
  // before paying for a dedicated mailbox write.
  double piggyback_window_us = 25.0;
  bool piggyback = true;  // ablation A1: always use the dedicated write
};

class NicGvtManager final : public GvtManager {
 public:
  explicit NicGvtManager(NicGvtHostOptions opts) : opts_(opts) {}

  void stamp_outgoing(hw::PacketHeader& hdr) override;
  void on_control(const hw::Packet& pkt) override;
  void idle_poll() override;

 private:
  void answer_by_mailbox_write();
  VirtualTime host_t() const { return api_->safe_local_min(); }

  NicGvtHostOptions opts_;
  bool request_pending_{false};   // notification received, reply not yet sent
  std::uint64_t request_epoch_{0};
  bool reply_timer_armed_{false};
};

}  // namespace nicwarp::warped
