#include "warped/gvt_nic.hpp"

namespace nicwarp::warped {

void NicGvtManager::stamp_outgoing(hw::PacketHeader& hdr) {
  if (hdr.kind != hw::PacketKind::kEvent) return;
  if (opts_.piggyback && request_pending_) {
    // Free ride: the reply travels in the event message's unused fields and
    // the NIC strips it in its on_host_tx hook.
    hdr.gvt_handshake = true;
    hdr.gvt.epoch = request_epoch_;
    hdr.gvt.t = host_t();
    request_pending_ = false;
    api_->mailbox().handshake_requested = false;
    api_->stats().counter("gvt.handshake_piggybacked").add(1);
  }
}

void NicGvtManager::on_control(const hw::Packet& pkt) {
  switch (pkt.hdr.kind) {
    case hw::PacketKind::kNicGvtToken: {
      // The NIC asked for host values ("ControlMessagePending"). Thanks to
      // the FIFO rx path, every event the NIC received before asking is
      // already inserted in the LP. Wait briefly for a piggyback
      // opportunity, then fall back to a dedicated mailbox write.
      request_pending_ = true;
      request_epoch_ = pkt.hdr.gvt.epoch;
      if (!opts_.piggyback) {
        answer_by_mailbox_write();
        return;
      }
      if (!reply_timer_armed_) {
        reply_timer_armed_ = true;
        api_->schedule(SimTime::from_us(opts_.piggyback_window_us), [this] {
          reply_timer_armed_ = false;
          if (request_pending_) answer_by_mailbox_write();
        });
      }
      return;
    }
    case hw::PacketKind::kGvtBroadcast:
      // The NIC already wrote the value to the mailbox.
      publish_gvt(api_->mailbox().gvt);
      return;
    default:
      return;
  }
}

void NicGvtManager::idle_poll() {
  // Adopt any GVT the NIC published while we were not looking.
  if (api_->mailbox().gvt > gvt()) publish_gvt(api_->mailbox().gvt);
}

void NicGvtManager::answer_by_mailbox_write() {
  api_->run_host_task(api_->cost().us(api_->cost().host_mailbox_write_us), [this] {
    if (!request_pending_) return;  // a piggyback beat us to it
    hw::Mailbox& mb = api_->mailbox();
    mb.host_values.valid = true;
    mb.host_values.epoch = request_epoch_;
    mb.host_values.lvt = host_t();
    mb.host_values.white_delta = 0;            // wire-level counting owns V
    mb.host_values.tmin = VirtualTime::inf();  // wire-level coloring owns Tmin
    request_pending_ = false;
    mb.handshake_requested = false;
    api_->stats().counter("gvt.handshake_mailbox").add(1);
  });
}

}  // namespace nicwarp::warped
