#include "harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace nicwarp::harness {

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << "%";
  return os.str();
}

void Table::add_error_row(std::vector<std::string> label_cells, const std::string& error) {
  if (!has_error_col_) {
    header_.push_back("error");
    has_error_col_ = true;
  }
  while (label_cells.size() + 1 < header_.size()) label_cells.push_back("-");
  label_cells.push_back(error.empty() ? "unknown failure" : error);
  rows_.push_back(std::move(label_cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[i])) << c << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Emits the cell as a JSON number when it parses fully as one (so "12" and
// "3.50" stay numeric for plotting scripts) and as a string otherwise
// ("12%" keeps its suffix).
void json_cell(std::ostringstream& os, const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    const double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() + cell.size() && std::isfinite(v)) {
      os << cell;  // already canonical decimal text
      return;
    }
  }
  json_escape(os, cell);
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << "{\"title\":";
  json_escape(os, title_);
  os << ",\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) os << ',';
    os << '{';
    const auto& row = rows_[r];
    const std::size_t n = std::min(row.size(), header_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (i) os << ',';
      json_escape(os, header_[i]);
      os << ':';
      json_cell(os, row[i]);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace nicwarp::harness
