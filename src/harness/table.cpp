#include "harness/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

namespace nicwarp::harness {

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << "%";
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit = [&os, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[i])) << c << ' ';
    }
    os << "|\n";
  };
  emit(header_);
  os << "|";
  for (std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace nicwarp::harness
