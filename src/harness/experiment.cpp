#include "harness/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "core/assert.hpp"
#include "core/log.hpp"
#include "firmware/combined_firmware.hpp"
#include "sim/shard_sync.hpp"
#include "warped/gvt_mattern.hpp"
#include "warped/gvt_nic.hpp"
#include "warped/gvt_pgvt.hpp"

namespace nicwarp::harness {

namespace {

hw::FirmwareFactory make_firmware_factory(const ExperimentConfig& cfg) {
  firmware::GvtFirmwareOptions gopts;
  gopts.period = cfg.gvt_period;
  gopts.piggyback_tokens = cfg.piggyback;
  firmware::CancelFirmwareOptions copts;
  copts.lp_scope = cfg.rollback_scope == warped::RollbackScope::kLp;

  const bool nic_gvt = cfg.gvt_mode == warped::GvtMode::kNic;
  const bool cancel = cfg.early_cancel;
  return [=](NodeId) -> std::unique_ptr<hw::Firmware> {
    if (nic_gvt && cancel) return std::make_unique<firmware::CombinedFirmware>(gopts, copts);
    if (nic_gvt) return std::make_unique<firmware::GvtFirmware>(gopts);
    if (cancel) return std::make_unique<firmware::CancelFirmware>(copts);
    return std::make_unique<hw::BaselineFirmware>();
  };
}

std::unique_ptr<warped::GvtManager> make_manager(const ExperimentConfig& cfg) {
  switch (cfg.gvt_mode) {
    case warped::GvtMode::kHostMattern: {
      warped::MatternOptions o;
      o.period = cfg.gvt_period;
      return std::make_unique<warped::MatternGvtManager>(o);
    }
    case warped::GvtMode::kNic: {
      warped::NicGvtHostOptions o;
      o.piggyback = cfg.piggyback;
      o.piggyback_window_us = cfg.cost.handshake_piggyback_window_us;
      return std::make_unique<warped::NicGvtManager>(o);
    }
    case warped::GvtMode::kPGvt: {
      warped::PGvtOptions o;
      o.period = cfg.gvt_period;
      return std::make_unique<warped::PGvtManager>(o);
    }
  }
  NW_UNREACHABLE("unknown GVT mode");
}

models::BuiltModel build_model(const ExperimentConfig& cfg) {
  switch (cfg.model) {
    case ModelKind::kRaid: return models::build_raid(cfg.raid, cfg.nodes);
    case ModelKind::kPolice: return models::build_police(cfg.police, cfg.nodes);
    case ModelKind::kPhold: return models::build_phold(cfg.phold, cfg.nodes);
  }
  NW_UNREACHABLE("unknown model");
}

void emit_vt(std::ostream& os, VirtualTime v) {
  if (v.is_inf()) {
    os << "null";
  } else {
    os << v.t;
  }
}

// The watchdog's post-mortem: which virtual time each kernel is stuck at,
// what the GVT token machinery last saw, and how full each NIC ring is —
// enough to tell a lost token from a wedged credit window from a dead LP.
void write_watchdog_snapshot(std::ostream& os, Testbed& tb,
                             const WatchdogConfig& wd, VirtualTime stuck_gvt) {
  sim::Engine& eng = tb.cluster->engine();
  os << "{\"type\": \"watchdog_snapshot\", \"schema_version\": 1,\n"
     << " \"wall_budget_seconds\": " << wd.stall_wall_seconds << ",\n"
     << " \"engine_now_ns\": " << eng.now().ns << ",\n"
     << " \"engine_pending_tasks\": " << eng.pending() << ",\n"
     << " \"stuck_gvt\": ";
  emit_vt(os, stuck_gvt);
  os << ",\n \"kernels\": [";
  for (std::size_t i = 0; i < tb.kernels.size(); ++i) {
    warped::Kernel& k = *tb.kernels[i];
    hw::Node& node = tb.cluster->node(static_cast<NodeId>(i));
    if (i > 0) os << ",";
    os << "\n  {\"rank\": " << i << ", \"gvt\": ";
    emit_vt(os, k.gvt());
    os << ", \"safe_local_min\": ";
    emit_vt(os, k.safe_local_min());
    os << ", \"stopped\": " << (k.stopped() ? 1 : 0)
       << ", \"events_processed\": " << k.lp().events_processed()
       << ", \"pending_events\": " << k.lp().total_pending()
       << ", \"gvt_epoch\": " << node.mailbox().gvt_epoch
       << ", \"nic_ring_slots_in_use\": " << node.nic().slots_in_use() << "}";
  }
  os << "\n]}\n";
}

}  // namespace

Testbed build_testbed(const ExperimentConfig& cfg) {
  // Validate by throwing, not NW_CHECK-aborting: sweeps (run_parallel) must
  // be able to report one bad grid point without killing the whole process.
  if (cfg.nodes == 0) {
    throw std::invalid_argument("ExperimentConfig.nodes must be >= 1");
  }
  if (cfg.shards == 0 || cfg.shards > cfg.nodes) {
    throw std::invalid_argument(
        "ExperimentConfig.shards must satisfy 1 <= shards <= nodes");
  }
  if (cfg.profile.on() && cfg.shards > 1) {
    throw std::invalid_argument(
        "ExperimentConfig.profile is incompatible with shards > 1: the "
        "cascade collector is single-threaded");
  }
  if ((cfg.model == ModelKind::kRaid && cfg.raid.total_requests <= 0) ||
      (cfg.model == ModelKind::kPolice && cfg.police.stations <= 0) ||
      (cfg.model == ModelKind::kPhold && cfg.phold.objects <= 0)) {
    throw std::invalid_argument("ExperimentConfig model workload must be non-empty");
  }
  Testbed tb;
  hw::CostModel cost = cfg.cost;
  // Chaos implies recovery: without the reliability sublayer a lossy fabric
  // deadlocks Time-Warp (lost events, wedged credit windows, dead tokens).
  if (cfg.fault.enabled()) cost.rel_enabled = true;
  tb.cluster = std::make_unique<hw::Cluster>(cost, cfg.nodes,
                                             make_firmware_factory(cfg), cfg.seed,
                                             cfg.fault, cfg.shards);
  tb.shards = cfg.shards;
  tb.pin_threads = cfg.pin_threads;
  if (!cfg.trace.categories.empty()) {
    tb.cluster->configure_trace(parse_trace_categories(cfg.trace.categories),
                                cfg.trace.capacity);
  }
  if (cfg.latency.on()) {
    tb.cluster->set_latency_enabled(true);
  }
  if (cfg.heatmap.on()) {
    tb.cluster->configure_entity(cfg.nodes);
  }
  if (cfg.phase.enabled) {
    tb.cluster->enable_phases();
  }
  if (cfg.metrics.enabled()) {
    TimeSeriesSampler::Options sopts;
    sopts.every_gvt_rounds = cfg.metrics.sample_every_gvt_rounds > 0
                                 ? cfg.metrics.sample_every_gvt_rounds
                                 : (cfg.metrics.sample_virtual_dt > 0 ? 0 : 1);
    sopts.min_virtual_dt = cfg.metrics.sample_virtual_dt;
    tb.sampler = std::make_unique<TimeSeriesSampler>(tb.cluster->stats(), sopts);
  }
  models::BuiltModel model = build_model(cfg);

  comm::CommOptions comm_opts;
  comm_opts.credit_repair = cfg.credit_repair;

  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    tb.comms.push_back(std::make_unique<comm::HostComm>(tb.cluster->node(n), comm_opts));
  }
  NW_CHECK_MSG(!(cfg.early_cancel &&
                 cfg.cancellation == warped::CancellationMode::kLazy),
               "NIC early cancellation requires aggressive cancellation: the "
               "drop machinery assumes every doomed message gets an anti");
  if (cfg.profile.on()) {
    tb.profiler = std::make_unique<profile::ProfileCollector>();
  }
  warped::KernelOptions kopts;
  kopts.rollback_scope = cfg.rollback_scope;
  kopts.cancellation = cfg.cancellation;
  kopts.state_save_period = cfg.state_save_period;
  kopts.state_mode = cfg.state_mode;
  kopts.paranoia_checks = cfg.paranoia_checks;
  kopts.profile = tb.profiler.get();
  for (std::uint32_t n = 0; n < cfg.nodes; ++n) {
    // Only rank 0 feeds the sampler: a cluster-wide GVT adoption must yield
    // one sample, not world_size duplicates.
    kopts.sampler = (n == 0) ? tb.sampler.get() : nullptr;
    auto kernel = std::make_unique<warped::Kernel>(
        tb.cluster->node(n), *tb.comms[n], model.partition, make_manager(cfg), kopts,
        cfg.seed);
    for (auto& obj : model.per_node[n]) kernel->add_object(std::move(obj));
    tb.kernels.push_back(std::move(kernel));
  }
  return tb;
}

bool Testbed::all_stopped() const {
  for (const auto& k : kernels) {
    if (!k->stopped()) return false;
  }
  return true;
}

namespace {

// The sharded run loop: one worker thread per shard, advancing in
// conservative windows under the two-phase LBTS exchange (sim/shard_sync.hpp,
// docs/SHARDING.md). Per shard s, round r (starting at 1):
//
//   Phase A  await fence[p] >= r-1 from every peer (all round-(r-1) mailbox
//            pushes are then visible), drain inbound entries stamped <= r-1
//            onto the engine, publish (h = next_time, done, best GVT) as the
//            round-r snapshot.
//   Phase B  await every shard's round-r snapshot, decide floor = min h and
//            all_done = AND done — identically on every shard — then run the
//            window [.., floor + lookahead - 1] and publish fence = r.
//
// The wall-clock GVT watchdog lives on the shard-0 worker and keys off the
// *published* best GVT, not the floor: the kernels' idle-poll timers keep
// every engine non-empty, so the floor advances even when GVT is wedged.
bool run_sharded(Testbed& tb, double max_sim_seconds,
                 const WatchdogConfig& watchdog) {
  hw::Cluster& cl = *tb.cluster;
  const std::uint32_t num_shards = cl.shards();
  sim::ShardSync sync(num_shards);
  const std::int64_t cap_ns = SimTime::from_seconds(max_sim_seconds).ns;
  const std::int64_t lookahead_ns = cl.lookahead().ns;
  NW_CHECK_MSG(lookahead_ns > 0, "sharded run requires positive lookahead");

  std::vector<std::vector<warped::Kernel*>> by_shard(num_shards);
  for (std::size_t i = 0; i < tb.kernels.size(); ++i) {
    by_shard[cl.shard_of(static_cast<NodeId>(i))].push_back(tb.kernels[i].get());
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    // Blocked-push hook: staging our own inbound rings is what lets the peer
    // we are pushing to always make progress (deadlock freedom, see
    // hw/shard_mailbox.hpp).
    cl.set_shard_idle_hook(s, [&cl, &sync, s] {
      cl.stage_shard_inbound(s);
      return sync.aborted();
    });
  }
  // start() touches only the kernel's own shard engine; do it here, single
  // threaded, before any worker exists.
  for (auto& k : tb.kernels) k->start();

  std::vector<std::string> errors(num_shards);
  std::atomic<bool> stalled{false};
  std::atomic<std::int64_t> rounds0{0};

  auto worker = [&](std::uint32_t s) {
    try {
      sim::Engine& eng = cl.engine(s);
      const auto idle = [&cl, s] { cl.stage_shard_inbound(s); };
      VirtualTime wd_best = VirtualTime::zero();
      auto wd_last = std::chrono::steady_clock::now();
      for (std::uint64_t r = 1;; ++r) {
        if (!sync.await_fences(s, r - 1, idle)) break;  // aborted
        cl.stage_shard_inbound(s);
        cl.drain_shard_inbound(s, r - 1);
        cl.shard_round(s) = r;  // outbound pushes below are stamped r
        bool done = true;
        std::int64_t best_gvt = VirtualTime::zero().t;
        for (const warped::Kernel* k : by_shard[s]) {
          if (!k->stopped()) done = false;
          best_gvt = std::max(best_gvt, k->gvt().t);
        }
        sync.publish(s, r, eng.next_time().ns, done, best_gvt);
        if (!sync.await_rounds(r, idle)) break;  // aborted
        const sim::ShardSync::Decision d = sync.decide();
        if (d.all_done || d.floor_ns == sim::ShardSync::kInfNs ||
            d.floor_ns > cap_ns) {
          // Uniform decision: every shard reads the same round-r snapshot
          // and takes this exit in the same round.
          if (s == 0) rounds0.store(static_cast<std::int64_t>(r),
                                    std::memory_order_relaxed);
          sync.set_fence(s, r);
          break;
        }
        const SimTime deadline{std::min(d.floor_ns + (lookahead_ns - 1), cap_ns)};
        // run_until can return early on a latched kernel stop(); keep going
        // until the window is genuinely exhausted.
        while (!sync.aborted() && eng.next_time() <= deadline) {
          eng.run_until(deadline);
        }
        sync.set_fence(s, r);
        if (s != 0) continue;
        rounds0.store(static_cast<std::int64_t>(r), std::memory_order_relaxed);
        if (!watchdog.on()) continue;
        const VirtualTime g{sync.global_best_gvt()};
        if (wd_best < g) {
          wd_best = g;
          wd_last = std::chrono::steady_clock::now();
          continue;
        }
        const double stalled_for =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          wd_last)
                .count();
        if (stalled_for < watchdog.stall_wall_seconds) continue;
        if (cl.trace(0).enabled(TraceCat::kWatchdog)) {
          cl.trace(0).record(
              {eng.now(), wd_best, TraceCat::kWatchdog,
               TracePoint::kWatchdogStall, false, 0, kInvalidNode, kInvalidEvent,
               static_cast<std::uint64_t>(watchdog.stall_wall_seconds * 1000.0),
               static_cast<std::uint64_t>(eng.pending())});
        }
        stalled.store(true, std::memory_order_relaxed);
        sync.abort();
        break;
      }
    } catch (const std::exception& e) {
      errors[s] = e.what();
      sync.abort();
    } catch (...) {
      errors[s] = "unknown exception";
      sync.abort();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    threads.emplace_back(worker, s);
#ifdef __linux__
    if (tb.pin_threads) {
      cpu_set_t set;
      CPU_ZERO(&set);
      const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
      CPU_SET(s % cores, &set);
      pthread_setaffinity_np(threads.back().native_handle(), sizeof(set), &set);
    }
#endif
  }
  for (auto& t : threads) t.join();
  tb.shard_rounds = rounds0.load(std::memory_order_relaxed);

  if (stalled.load(std::memory_order_relaxed)) {
    const VirtualTime stuck{sync.global_best_gvt()};
    if (!watchdog.snapshot_out.empty()) {
      std::ofstream os(watchdog.snapshot_out);
      NW_CHECK_MSG(os.good(), "cannot open watchdog snapshot file");
      write_watchdog_snapshot(os, tb, watchdog, stuck);
    }
    std::ostringstream msg;
    msg << "GVT watchdog: no GVT advance past " << stuck.t << " within "
        << watchdog.stall_wall_seconds << "s of wall time (sharded run, "
        << num_shards << " shards, " << tb.shard_rounds << " LBTS rounds)";
    throw std::runtime_error(msg.str());
  }
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (!errors[s].empty()) {
      throw std::runtime_error("shard " + std::to_string(s) +
                               " worker failed: " + errors[s]);
    }
  }
  return tb.all_stopped();
}

}  // namespace

bool Testbed::run_to_completion(double max_sim_seconds,
                                const WatchdogConfig& watchdog) {
  if (shards > 1) return run_sharded(*this, max_sim_seconds, watchdog);
  for (auto& k : kernels) k->start();
  sim::Engine& eng = cluster->engine();
  const SimTime cap = SimTime::from_seconds(max_sim_seconds);
  const SimTime chunk = SimTime::from_us(50000);  // 50 ms of simulated time
  // Watchdog state: the best GVT any kernel has adopted, and the wall-clock
  // instant it last improved. The engine staying busy while this stands
  // still is the signature of a dead token / wedged window, not slowness.
  VirtualTime best_gvt = VirtualTime::zero();
  auto last_advance = std::chrono::steady_clock::now();
  while (!all_stopped() && eng.pending() > 0 && eng.now() < cap) {
    eng.run_until(SimTime{std::min(cap.ns, (eng.now() + chunk).ns)});
    if (!watchdog.on()) continue;
    VirtualTime g = VirtualTime::zero();
    for (const auto& k : kernels) g = VirtualTime::max(g, k->gvt());
    if (best_gvt < g) {
      best_gvt = g;
      last_advance = std::chrono::steady_clock::now();
      continue;
    }
    const double stalled_for =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_advance)
            .count();
    if (stalled_for < watchdog.stall_wall_seconds) continue;
    if (cluster->trace().enabled(TraceCat::kWatchdog)) {
      cluster->trace().record(
          {eng.now(), best_gvt, TraceCat::kWatchdog, TracePoint::kWatchdogStall,
           false, 0, kInvalidNode, kInvalidEvent,
           static_cast<std::uint64_t>(watchdog.stall_wall_seconds * 1000.0),
           static_cast<std::uint64_t>(eng.pending())});
    }
    if (!watchdog.snapshot_out.empty()) {
      std::ofstream os(watchdog.snapshot_out);
      NW_CHECK_MSG(os.good(), "cannot open watchdog snapshot file");
      write_watchdog_snapshot(os, *this, watchdog, best_gvt);
    }
    std::ostringstream msg;
    msg << "GVT watchdog: no GVT advance past " << best_gvt.t << " within "
        << watchdog.stall_wall_seconds << "s of wall time (engine busy, "
        << eng.pending() << " tasks pending at simulated " << eng.now().ns
        << "ns)";
    throw std::runtime_error(msg.str());
  }
  return all_stopped();
}

ExperimentResult extract_result(Testbed& tb, bool completed) {
  ExperimentResult r;
  r.completed = completed;
  // Execution time = the instant the last kernel detected termination (the
  // engine may have coasted past it on housekeeping timers).
  SimTime done = SimTime::zero();
  for (const auto& k : tb.kernels) done = std::max(done, k->stop_time());
  r.sim_seconds = completed ? done.seconds() : tb.cluster->now_max().seconds();
  const StatsRegistry& st = tb.cluster->merged_stats();

  for (const auto& k : tb.kernels) {
    const warped::LogicalProcess& lp = k->lp();
    r.events_processed += static_cast<std::int64_t>(lp.events_processed());
    r.events_rolled_back += static_cast<std::int64_t>(lp.events_rolled_back());
    r.rollbacks += static_cast<std::int64_t>(lp.rollbacks());
    r.state_saves += static_cast<std::int64_t>(lp.state_saves());
    r.state_save_bytes += static_cast<std::int64_t>(lp.state_save_bytes());
    r.undo_bytes_logged += static_cast<std::int64_t>(lp.undo_bytes_logged());
    r.undo_rewinds += static_cast<std::int64_t>(lp.undo_rewinds());
    r.signature += lp.signature_sum();
    r.final_gvt = VirtualTime::max(r.final_gvt, k->gvt());
  }
  r.committed_events = r.events_processed - r.events_rolled_back;

  r.event_msgs_generated = st.value("tw.events_sent");
  r.antis_generated = st.value("tw.antis_sent") + st.value("tw.antis_suppressed");
  r.wire_packets = st.value("net.packets");
  r.wire_bytes = st.value("net.bytes");
  r.dropped_by_nic = st.value("cancel.dropped_positive");
  r.filtered_antis = st.value("cancel.filtered_anti");
  r.antis_suppressed = st.value("tw.antis_suppressed");
  r.events_replayed = st.value("tw.events_replayed");
  r.lazy_matched = st.value("tw.lazy_matched");
  r.gvt_rounds = st.value("gvt.rounds");
  r.gvt_estimations = st.value("gvt.estimations");
  r.host_gvt_ctrl_msgs = st.value("comm.credit_msgs");
  r.shard_rounds = tb.shard_rounds;

  r.fault_drops = st.value("net.fault_drops");
  r.fault_dups = st.value("net.fault_dups");
  r.fault_corrupts = st.value("net.fault_corrupts");
  r.fault_delays = st.value("net.fault_delays");
  r.retransmits = st.value("nic.retransmits");
  r.naks_sent = st.value("nic.naks_sent");
  r.retx_timeouts = st.value("nic.retx_timeouts");
  r.retx_evicted = st.value("nic.retx_evicted");
  r.rel_crc_discards = st.value("nic.rel_crc_discards");
  r.rel_dup_discards = st.value("nic.rel_dup_discards");
  r.rel_gap_discards = st.value("nic.rel_gap_discards");
  r.gvt_token_regens = st.value("gvt.token_regens");
  r.gvt_tokens_stale = st.value("gvt.tokens_stale");
  r.credit_resyncs = st.value("comm.credit_resyncs");

  if (tb.sampler != nullptr) {
    // Close the series with the end-of-run state (final GVT is +inf on a
    // completed run; the sampler serializes that as null).
    tb.sampler->force_sample(tb.cluster->engine().now(), r.final_gvt);
    r.series = tb.sampler->samples();
  }
  {
    const TraceRecorder& tr = tb.cluster->merged_trace();
    r.trace_records = tr.total_recorded();
    r.trace_overwritten = tr.overwritten();
  }
  r.latency = tb.cluster->merged_latency().report();

  if (tb.cluster->entity().enabled()) {
    // Roll the per-LP counters into the owning shard's registry (each rank
    // belongs to exactly one shard, so the merge below is a disjoint union);
    // the link/node rows were filled on the hot paths as the run went.
    for (std::size_t i = 0; i < tb.kernels.size(); ++i) {
      const warped::LogicalProcess& lp = tb.kernels[i]->lp();
      LpHeat h;
      h.processed = lp.events_processed();
      h.rolled_back = lp.events_rolled_back();
      h.committed = lp.events_processed() - lp.events_rolled_back();
      h.rollbacks = lp.rollbacks();
      h.max_rollback_depth = lp.max_rollback_depth();
      h.replayed = lp.events_replayed();
      h.state_saves = lp.state_saves();
      h.state_save_bytes = lp.state_save_bytes();
      const NodeId rank = static_cast<NodeId>(i);
      tb.cluster->entity(tb.cluster->shard_of(rank)).set_lp(rank, h);
    }
    std::ostringstream os;
    tb.cluster->merged_entity().to_json(os);
    r.heatmap_json = os.str();
  }
  if (tb.cluster->phases().enabled()) {
    r.phase_enabled = true;
    const PhaseProfiler& pp = tb.cluster->merged_phases();
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      const Phase ph = static_cast<Phase>(p);
      r.phase_seconds[p] = pp.seconds(ph);
      r.phase_calls[p] = pp.calls(ph);
    }
  }

  if (tb.profiler != nullptr && !tb.kernels.empty()) {
    profile::ProfileCollector::FinishParams fp;
    fp.sim_seconds = r.sim_seconds;
    fp.event_cost_us = tb.kernels[0]->cost().host_event_exec_us;
    r.profile = std::make_shared<profile::ProfileReport>(tb.profiler->finish(fp));
  }
  return r;
}

namespace {

void write_experiment_outputs(const ExperimentConfig& cfg, Testbed& tb,
                              const ExperimentResult& r) {
  auto open = [](const std::string& path) {
    std::ofstream os(path);
    NW_CHECK_MSG(os.good(), "cannot open output file");
    return os;
  };
  if (!cfg.trace.chrome_out.empty()) {
    auto os = open(cfg.trace.chrome_out);
    tb.cluster->merged_trace().export_chrome_json(os);
  }
  if (!cfg.trace.jsonl_out.empty()) {
    auto os = open(cfg.trace.jsonl_out);
    tb.cluster->merged_trace().export_jsonl(os);
  }
  if (tb.sampler != nullptr && !cfg.metrics.out_path.empty()) {
    auto os = open(cfg.metrics.out_path);
    tb.sampler->export_jsonl(os);
  }
  if (r.profile != nullptr && !cfg.profile.json_out.empty()) {
    auto os = open(cfg.profile.json_out);
    r.profile->to_json(os);
  }
  if (!cfg.latency.json_out.empty()) {
    auto os = open(cfg.latency.json_out);
    r.latency.to_json(os);
  }
  if (!cfg.heatmap.json_out.empty()) {
    auto os = open(cfg.heatmap.json_out);
    os << r.heatmap_json;
  }
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  Testbed tb = build_testbed(cfg);
  const bool completed = tb.run_to_completion(cfg.max_sim_seconds, cfg.watchdog);
  ExperimentResult r = extract_result(tb, completed);
  write_experiment_outputs(cfg, tb, r);
  return r;
}

std::vector<ExperimentResult> run_parallel(const std::vector<ExperimentConfig>& cfgs,
                                           unsigned max_threads) {
  if (max_threads == 0) max_threads = std::max(1u, std::thread::hardware_concurrency());
  std::vector<ExperimentResult> results(cfgs.size());
  std::atomic<std::size_t> next{0};
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(max_threads, cfgs.size()));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= cfgs.size()) return;
        // An exception escaping a worker thread would std::terminate the
        // whole sweep; catch per-config and record a failed result instead.
        try {
          results[i] = run_experiment(cfgs[i]);
        } catch (const std::exception& e) {
          results[i] = ExperimentResult{};
          results[i].error = e.what();
        } catch (...) {
          results[i] = ExperimentResult{};
          results[i].error = "unknown exception";
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].failed()) {
      NW_WARN("run_parallel: config %zu of %zu failed: %s", i, cfgs.size(),
              results[i].error.c_str());
    }
  }
  return results;
}

std::string ExperimentResult::to_string() const {
  std::ostringstream os;
  if (failed()) {
    os << "FAILED error=\"" << error << "\"";
    return os.str();
  }
  os << "sim_seconds=" << sim_seconds << " committed=" << committed_events
     << " processed=" << events_processed << " rollbacks=" << rollbacks
     << " wire_packets=" << wire_packets << " dropped_by_nic=" << dropped_by_nic
     << " gvt_rounds=" << gvt_rounds << " completed=" << (completed ? 1 : 0);
  return os.str();
}

}  // namespace nicwarp::harness
