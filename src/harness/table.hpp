// Aligned console tables for the bench binaries (one table per paper
// figure) plus CSV output for plotting.
#pragma once

#include <string>
#include <vector>

namespace nicwarp::harness {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols) { header_ = std::move(cols); }
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Adds a row for a sweep point whose experiment failed: `label_cells` fill
  // the leading identity columns, every remaining metric column shows "-",
  // and the failure reason lands in a trailing "error" column that is
  // appended to the header the first time an error row appears (tables from
  // fully-successful sweeps keep their exact historical shape).
  void add_error_row(std::vector<std::string> label_cells, const std::string& error);

  // Convenience formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);
  static std::string pct(double v, int precision = 1);

  std::string to_string() const;  // aligned, boxed
  std::string to_csv() const;
  // Machine-readable export: {"title":..., "rows":[{header:cell,...},...]}.
  // Cells that parse fully as numbers are emitted as JSON numbers, the rest
  // as strings; short rows simply omit the missing columns.
  std::string to_json() const;
  void print() const;             // to stdout

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  bool has_error_col_ = false;
};

}  // namespace nicwarp::harness
