// Aligned console tables for the bench binaries (one table per paper
// figure) plus CSV output for plotting.
#pragma once

#include <string>
#include <vector>

namespace nicwarp::harness {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols) { header_ = std::move(cols); }
  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  // Convenience formatting helpers.
  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);
  static std::string pct(double v, int precision = 1);

  std::string to_string() const;  // aligned, boxed
  std::string to_csv() const;
  // Machine-readable export: {"title":..., "rows":[{header:cell,...},...]}.
  // Cells that parse fully as numbers are emitted as JSON numbers, the rest
  // as strings; short rows simply omit the missing columns.
  std::string to_json() const;
  void print() const;             // to stdout

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nicwarp::harness
