// Experiment runner: builds a full testbed (cluster + firmware + comm +
// kernels + workload) from one config struct, runs it to Time-Warp
// termination, and extracts the metric set the paper's figures report.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/host_comm.hpp"
#include "core/latency.hpp"
#include "core/phase_profiler.hpp"
#include "core/timeseries.hpp"
#include "core/trace.hpp"
#include "hw/cluster.hpp"
#include "models/phold.hpp"
#include "profile/collector.hpp"
#include "models/police.hpp"
#include "models/raid.hpp"
#include "warped/kernel.hpp"

namespace nicwarp::harness {

enum class ModelKind { kRaid, kPolice, kPhold };

// Structured tracing knobs. Tracing is off (and costs one predicted-false
// branch per site) unless `categories` is non-empty.
struct TraceConfig {
  // Comma-separated category list ("msg,gvt,cancel,rollback,credit" or
  // "all"); empty disables tracing entirely.
  std::string categories;
  std::size_t capacity = 1u << 16;  // ring slots; oldest records overwritten
  std::string chrome_out;  // write Chrome trace_event JSON here after the run
  std::string jsonl_out;   // write one-record-per-line JSONL here
};

// Counter time-series knobs. Sampling is on when any field is set.
struct MetricsConfig {
  std::int64_t sample_every_gvt_rounds = 0;  // 0 = off (1 = every adoption)
  std::int64_t sample_virtual_dt = 0;  // extra samples per GVT advance of dt
  std::string out_path;                // write sample JSONL here after the run

  bool enabled() const {
    return sample_every_gvt_rounds > 0 || sample_virtual_dt > 0 || !out_path.empty();
  }
};

// Online profiler knobs (src/profile): cascade causality + critical-path
// lower bound. On when `enabled` is set or a JSON output path is given.
struct ProfileConfig {
  bool enabled = false;
  std::string json_out;  // write the ProfileReport JSON here after the run

  bool on() const { return enabled || !json_out.empty(); }
};

// Tail-latency histogram knobs (core/latency). On when `enabled` is set or a
// JSON output path is given. All samples are simulated times, so the
// resulting histograms are byte-identical across reruns of the same seed.
struct LatencyConfig {
  bool enabled = false;
  std::string json_out;  // write the {"type":"latency_report"} JSON here

  bool on() const { return enabled || !json_out.empty(); }
};

// Per-entity hotspot heatmap (core/entity_stats). On when `enabled` is set
// or a JSON output path is given. Everything in it is counts and simulated
// time, so the report is byte-identical across reruns of the same seed.
struct HeatmapConfig {
  bool enabled = false;
  std::string json_out;  // write the {"type":"heatmap"} JSON here

  bool on() const { return enabled || !json_out.empty(); }
};

// Wall-clock phase profiler (core/phase_profiler). Deliberately NOISY —
// results surface only in noisy output blocks, never in deterministic ones.
struct PhaseConfig {
  bool enabled = false;
};

// GVT-progress watchdog: if GVT stops advancing for longer than
// `stall_wall_seconds` of real time while the engine still has work, dump a
// diagnostic snapshot (when `snapshot_out` is set) and throw. 0 disables.
// Wall-clock by design: a healthy run's outputs are unaffected, and a stall
// is a bug regardless of where the wall budget lands.
struct WatchdogConfig {
  double stall_wall_seconds = 0.0;
  std::string snapshot_out;  // write the {"type":"watchdog_snapshot"} JSON here

  bool on() const { return stall_wall_seconds > 0.0; }
};

struct ExperimentConfig {
  ModelKind model = ModelKind::kRaid;
  models::RaidParams raid;
  models::PoliceParams police;
  models::PholdParams phold;

  std::uint32_t nodes = 8;
  // Host-thread sharding (docs/SHARDING.md): partition the node ranks across
  // this many engine slices, one worker thread each, synchronized by the
  // conservative-window LBTS protocol. 1 (the default) is the classic
  // single-threaded run and its outputs are byte-identical to pre-sharding
  // builds. Multi-shard runs are seed-stable across reruns but are a
  // *different* event schedule than shards=1. Incompatible with cfg.profile
  // (the cascade collector is single-threaded).
  std::uint32_t shards = 1;
  // Pin worker thread s to CPU (s mod hardware_concurrency) (Linux only;
  // ignored elsewhere). Off by default: the scheduler usually does fine, and
  // pinning oversubscribed shards onto one core hurts.
  bool pin_threads = false;
  warped::GvtMode gvt_mode = warped::GvtMode::kHostMattern;
  std::int64_t gvt_period = 100;   // "GVT Period (Events)" on the figures' x axes
  bool early_cancel = false;       // install the cancellation firmware
  bool piggyback = true;           // ablation A1 (NIC-GVT token/handshake rides)
  warped::RollbackScope rollback_scope = warped::RollbackScope::kLp;
  // WARPED-style tuning knobs (extensions; see DESIGN.md):
  warped::CancellationMode cancellation = warped::CancellationMode::kAggressive;
  std::int64_t state_save_period = 1;  // 0 = adaptive checkpoint interval
  warped::StateSaveMode state_mode = warped::StateSaveMode::kCopy;
  bool credit_repair = true;       // ablation A2 (§3.2 sequence-number fix)

  hw::CostModel cost{};
  // Deterministic fabric chaos (inert by default). A non-trivial plan
  // force-enables the NIC reliability sublayer (cost.rel_enabled) — faults
  // without recovery deadlock Time-Warp (lost events, wedged credit windows,
  // dead GVT tokens). Use raw hw::Cluster to study the unprotected modes.
  hw::FaultPlan fault{};
  std::uint64_t seed = 42;
  double max_sim_seconds = 900.0;  // wall-clock (simulated) safety cap
  bool paranoia_checks = false;    // expensive LP-level pairing checks (tests)

  TraceConfig trace;      // observability: structured event traces
  MetricsConfig metrics;  // observability: GVT-cadence counter samples
  ProfileConfig profile;  // observability: cascade / critical-path profiler
  LatencyConfig latency;  // observability: tail-latency histograms
  HeatmapConfig heatmap;  // observability: per-entity hotspot attribution
  PhaseConfig phase;      // observability: wall-clock phase timers (noisy)
  WatchdogConfig watchdog;  // liveness: fail fast on a stalled GVT
};

struct ExperimentResult {
  bool completed = false;     // reached GVT == +inf before the cap
  double sim_seconds = 0.0;   // the paper's "Simulation Time (sec)"

  std::int64_t committed_events = 0;
  std::int64_t events_processed = 0;
  std::int64_t events_rolled_back = 0;
  std::int64_t rollbacks = 0;
  std::int64_t events_replayed = 0;  // coast-forward (periodic state saving)
  std::int64_t lazy_matched = 0;     // lazy cancellation: regenerated sends

  // State-saving work (sums across kernels). Snapshot counts/bytes reflect
  // clones actually cut; undo_bytes_logged / undo_rewinds are nonzero only
  // under StateSaveMode::kIncremental.
  std::int64_t state_saves = 0;
  std::int64_t state_save_bytes = 0;
  std::int64_t undo_bytes_logged = 0;
  std::int64_t undo_rewinds = 0;

  // Event messages generated at hosts (includes ones later cancelled) —
  // the paper's "overall messages generated" (Fig. 8).
  std::int64_t event_msgs_generated = 0;
  std::int64_t antis_generated = 0;
  // Packets that actually crossed the wire — the paper's "messages sent"
  // (Fig. 6b).
  std::int64_t wire_packets = 0;
  std::int64_t wire_bytes = 0;

  std::int64_t dropped_by_nic = 0;    // early cancellation, positives
  std::int64_t filtered_antis = 0;    // early cancellation, negatives
  std::int64_t antis_suppressed = 0;  // host never emitted them

  std::int64_t gvt_rounds = 0;
  std::int64_t gvt_estimations = 0;
  std::int64_t host_gvt_ctrl_msgs = 0;  // wire tokens + broadcasts from hosts

  // LBTS rounds the shard-0 worker completed (0 on single-shard runs).
  std::int64_t shard_rounds = 0;

  // Fault injection (zero unless cfg.fault is enabled).
  std::int64_t fault_drops = 0;
  std::int64_t fault_dups = 0;
  std::int64_t fault_corrupts = 0;
  std::int64_t fault_delays = 0;
  // Reliability-layer recovery work (zero on a healthy fabric).
  std::int64_t retransmits = 0;
  std::int64_t naks_sent = 0;
  std::int64_t retx_timeouts = 0;
  std::int64_t retx_evicted = 0;      // nonzero == a loss became unrecoverable
  std::int64_t rel_crc_discards = 0;
  std::int64_t rel_dup_discards = 0;
  std::int64_t rel_gap_discards = 0;
  std::int64_t gvt_token_regens = 0;
  std::int64_t gvt_tokens_stale = 0;
  std::int64_t credit_resyncs = 0;

  std::int64_t signature = 0;  // schedule-independent result fingerprint
  VirtualTime final_gvt{VirtualTime::zero()};

  // Non-empty when run_parallel caught an exception from this config's run:
  // the sweep survives, this row carries the reason instead of metrics.
  std::string error;
  bool failed() const { return !error.empty(); }

  // Counter snapshots taken at GVT cadence (empty unless cfg.metrics set).
  std::vector<TimeSample> series;
  // Profiler output (null unless cfg.profile is on). shared_ptr because
  // results are copied around by the sweep/bench registries.
  std::shared_ptr<const profile::ProfileReport> profile;
  // Trace-recorder accounting (zero unless cfg.trace.categories set).
  std::uint64_t trace_records = 0;
  std::uint64_t trace_overwritten = 0;
  // Tail-latency summary (all-zero unless cfg.latency is on). Fully
  // deterministic: counts, min/max, and interpolated quantiles alike.
  LatencyReport latency;
  // Per-entity heatmap JSON (empty unless cfg.heatmap is on). Deterministic:
  // integer counts and simulated nanoseconds only.
  std::string heatmap_json;
  // Wall-clock phase attribution (zero unless cfg.phase.enabled). NOISY —
  // report only next to wall_seconds, never in a deterministic block.
  bool phase_enabled = false;
  std::array<double, kPhaseCount> phase_seconds{};
  std::array<std::uint64_t, kPhaseCount> phase_calls{};

  std::string to_string() const;
};

// A fully-wired testbed; exposed so tests and examples can poke at parts.
struct Testbed {
  std::unique_ptr<hw::Cluster> cluster;
  std::vector<std::unique_ptr<comm::HostComm>> comms;
  std::vector<std::unique_ptr<warped::Kernel>> kernels;
  // Non-null when cfg.metrics is enabled; fed by rank 0's kernel.
  std::unique_ptr<TimeSeriesSampler> sampler;
  // Non-null when cfg.profile is on; one collector serves every kernel.
  std::unique_ptr<profile::ProfileCollector> profiler;
  // Copied from the config by build_testbed; drives run_to_completion's
  // choice between the single-threaded loop and the sharded round protocol.
  std::uint32_t shards = 1;
  bool pin_threads = false;
  // Filled by the sharded run: LBTS rounds shard 0 completed.
  std::int64_t shard_rounds = 0;

  bool all_stopped() const;
  // Runs until every kernel terminated or the cap; returns completed flag.
  // When `watchdog` is armed, a GVT stall dumps its snapshot and throws
  // std::runtime_error (run_parallel turns that into a failed result row).
  bool run_to_completion(double max_sim_seconds,
                         const WatchdogConfig& watchdog = {});
};

// Throws std::invalid_argument when `cfg` cannot build a testbed (e.g. zero
// nodes or a zero-object model) instead of misbehaving downstream.
Testbed build_testbed(const ExperimentConfig& cfg);
ExperimentResult extract_result(Testbed& tb, bool completed);
ExperimentResult run_experiment(const ExperimentConfig& cfg);

// Runs independent experiments on a thread pool (each run is single-threaded
// and deterministic; parallelism is across sweep points only).
//
// A config whose run throws does NOT kill the sweep (an escaped exception in
// a worker thread would std::terminate the process): the exception is caught
// per-config, logged with the failing config's index, and returned as a
// failed ExperimentResult (result.failed() true, result.error = reason);
// every other config still runs to completion.
std::vector<ExperimentResult> run_parallel(const std::vector<ExperimentConfig>& cfgs,
                                           unsigned max_threads = 0);

}  // namespace nicwarp::harness
