// Experiment runner: builds a full testbed (cluster + firmware + comm +
// kernels + workload) from one config struct, runs it to Time-Warp
// termination, and extracts the metric set the paper's figures report.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "comm/host_comm.hpp"
#include "hw/cluster.hpp"
#include "models/phold.hpp"
#include "models/police.hpp"
#include "models/raid.hpp"
#include "warped/kernel.hpp"

namespace nicwarp::harness {

enum class ModelKind { kRaid, kPolice, kPhold };

struct ExperimentConfig {
  ModelKind model = ModelKind::kRaid;
  models::RaidParams raid;
  models::PoliceParams police;
  models::PholdParams phold;

  std::uint32_t nodes = 8;
  warped::GvtMode gvt_mode = warped::GvtMode::kHostMattern;
  std::int64_t gvt_period = 100;   // "GVT Period (Events)" on the figures' x axes
  bool early_cancel = false;       // install the cancellation firmware
  bool piggyback = true;           // ablation A1 (NIC-GVT token/handshake rides)
  warped::RollbackScope rollback_scope = warped::RollbackScope::kLp;
  // WARPED-style tuning knobs (extensions; see DESIGN.md):
  warped::CancellationMode cancellation = warped::CancellationMode::kAggressive;
  std::int64_t state_save_period = 1;
  bool credit_repair = true;       // ablation A2 (§3.2 sequence-number fix)

  hw::CostModel cost{};
  std::uint64_t seed = 42;
  double max_sim_seconds = 900.0;  // wall-clock (simulated) safety cap
  bool paranoia_checks = false;    // expensive LP-level pairing checks (tests)
};

struct ExperimentResult {
  bool completed = false;     // reached GVT == +inf before the cap
  double sim_seconds = 0.0;   // the paper's "Simulation Time (sec)"

  std::int64_t committed_events = 0;
  std::int64_t events_processed = 0;
  std::int64_t events_rolled_back = 0;
  std::int64_t rollbacks = 0;
  std::int64_t events_replayed = 0;  // coast-forward (periodic state saving)
  std::int64_t lazy_matched = 0;     // lazy cancellation: regenerated sends

  // Event messages generated at hosts (includes ones later cancelled) —
  // the paper's "overall messages generated" (Fig. 8).
  std::int64_t event_msgs_generated = 0;
  std::int64_t antis_generated = 0;
  // Packets that actually crossed the wire — the paper's "messages sent"
  // (Fig. 6b).
  std::int64_t wire_packets = 0;
  std::int64_t wire_bytes = 0;

  std::int64_t dropped_by_nic = 0;    // early cancellation, positives
  std::int64_t filtered_antis = 0;    // early cancellation, negatives
  std::int64_t antis_suppressed = 0;  // host never emitted them

  std::int64_t gvt_rounds = 0;
  std::int64_t gvt_estimations = 0;
  std::int64_t host_gvt_ctrl_msgs = 0;  // wire tokens + broadcasts from hosts

  std::int64_t signature = 0;  // schedule-independent result fingerprint
  VirtualTime final_gvt{VirtualTime::zero()};

  std::string to_string() const;
};

// A fully-wired testbed; exposed so tests and examples can poke at parts.
struct Testbed {
  std::unique_ptr<hw::Cluster> cluster;
  std::vector<std::unique_ptr<comm::HostComm>> comms;
  std::vector<std::unique_ptr<warped::Kernel>> kernels;

  bool all_stopped() const;
  // Runs until every kernel terminated or the cap; returns completed flag.
  bool run_to_completion(double max_sim_seconds);
};

Testbed build_testbed(const ExperimentConfig& cfg);
ExperimentResult extract_result(Testbed& tb, bool completed);
ExperimentResult run_experiment(const ExperimentConfig& cfg);

// Runs independent experiments on a thread pool (each run is single-threaded
// and deterministic; parallelism is across sweep points only).
std::vector<ExperimentResult> run_parallel(const std::vector<ExperimentConfig>& cfgs,
                                           unsigned max_threads = 0);

}  // namespace nicwarp::harness
