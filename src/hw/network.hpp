// Myrinet-like switch fabric: one injection link per node (serialized at
// link bandwidth) feeding a non-blocking crossbar with fixed traversal
// latency. Links are FIFO, so packets between a node pair arrive in
// transmission order — the property BIP sequence numbers rely on to turn a
// receive-side gap into proof of an intentional NIC drop.
//
// Packets in flight live in the shared PacketPool; the fabric moves 8-byte
// PacketRefs. Ownership of a ref passes to the fabric at transmit() and to
// the sink at delivery; a fabric drop releases the slot here.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/entity_stats.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "hw/cost_model.hpp"
#include "hw/fault.hpp"
#include "hw/packet_pool.hpp"
#include "sim/engine.hpp"
#include "sim/server.hpp"

namespace nicwarp::hw {

class Network {
 public:
  using Sink = std::function<void(NodeId dst, PacketRef ref)>;

  // `trace` / `entity` may be null (tests); records then go to a
  // never-enabled sink.
  Network(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost,
          PacketPool& pool, std::uint32_t num_nodes, TraceRecorder* trace = nullptr,
          EntityStats* entity = nullptr);

  // Routes packets that complete wire traversal; set once by the Cluster.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  // Cross-shard egress (sharded clusters only; see docs/SHARDING.md). When
  // `is_remote[dst]` is set, a packet completing wire traversal is moved OUT
  // of this shard's pool and handed to `push` as a value, together with its
  // absolute delivery time `now + link latency + fault extra`; the
  // destination shard re-acquires it into its own pool and runs the sink
  // there. An empty mask (the default) leaves every delivery on the exact
  // single-shard path. Faults are all drawn on the source side, so the fault
  // schedule of a link is identical however the cluster is sharded.
  using RemotePush = std::function<void(NodeId dst, SimTime deliver_at, Packet&& pkt)>;
  void set_remote_route(std::vector<std::uint8_t> is_remote, RemotePush push) {
    remote_ = std::move(is_remote);
    remote_push_ = std::move(push);
  }

  // Arms deterministic fault injection. One RNG stream per injection link so
  // traffic on one link never perturbs another's fault schedule. An inert
  // plan (enabled() == false) leaves delivery byte-identical to the reliable
  // fabric.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return fault_; }

  // Transmits the pooled packet from `src`'s injection link, taking ownership
  // of the ref. `on_link_free` fires when the link has finished serializing
  // the packet (the NIC may then start the next send-ring entry); delivery at
  // the destination happens `link_latency` later.
  void transmit(NodeId src, PacketRef ref, std::function<void()> on_link_free);

  std::uint64_t packets_delivered() const { return delivered_; }

 private:
  sim::Engine& engine_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  EntityStats& entity_;
  const CostModel& cost_;
  PacketPool& pool_;
  std::vector<std::unique_ptr<sim::Server>> links_;
  Sink sink_;
  std::vector<std::uint8_t> remote_;  // empty unless sharded (1 = off-shard dst)
  RemotePush remote_push_;
  std::uint64_t delivered_{0};

  // Applies the fault plan to one serialized packet; schedules 0, 1, or 2
  // deliveries. Called from the link-completion path when fault_.enabled().
  void deliver_with_faults(NodeId src, PacketRef ref);
  void schedule_delivery(PacketRef ref, SimTime extra);

  FaultPlan fault_{};
  std::vector<Rng> fault_rngs_;  // one per injection link
};

}  // namespace nicwarp::hw
