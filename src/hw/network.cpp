#include "hw/network.hpp"

#include "core/assert.hpp"

namespace nicwarp::hw {

Network::Network(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost,
                 std::uint32_t num_nodes, TraceRecorder* trace)
    : engine_(engine),
      stats_(stats),
      trace_(trace ? *trace : TraceRecorder::null_recorder()),
      cost_(cost) {
  links_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    links_.push_back(
        std::make_unique<sim::Server>(engine, "link" + std::to_string(i), &stats));
  }
}

void Network::transmit(NodeId src, Packet pkt, std::function<void()> on_link_free) {
  NW_CHECK(src < links_.size());
  NW_CHECK_MSG(pkt.hdr.dst < links_.size(), "packet to unknown node");
  NW_CHECK_MSG(pkt.hdr.dst != src, "network loopback not modelled; local sends bypass the NIC");
  const SimTime serialize = cost_.wire_time(pkt.hdr.size_bytes);
  links_[src]->submit(
      serialize,
      [this, src, pkt = std::move(pkt), done = std::move(on_link_free)]() mutable {
        stats_.counter("net.packets").add(1);
        stats_.counter("net.bytes").add(pkt.hdr.size_bytes);
        if (pkt.hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
          trace_.record({engine_.now(), pkt.hdr.recv_ts, TraceCat::kMsg,
                         TracePoint::kWireDepart, pkt.hdr.negative, src, pkt.hdr.dst,
                         pkt.hdr.event_id, pkt.hdr.size_bytes, 0});
        }
        if (done) done();
        const NodeId dst = pkt.hdr.dst;
        engine_.schedule(cost_.us(cost_.link_latency_us),
                         [this, dst, p = std::move(pkt)]() mutable {
                           ++delivered_;
                           sink_(dst, std::move(p));
                         });
      });
}

}  // namespace nicwarp::hw
