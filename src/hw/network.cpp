#include "hw/network.hpp"

#include "core/assert.hpp"

namespace nicwarp::hw {

Network::Network(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost,
                 std::uint32_t num_nodes)
    : engine_(engine), stats_(stats), cost_(cost) {
  links_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    links_.push_back(
        std::make_unique<sim::Server>(engine, "link" + std::to_string(i), &stats));
  }
}

void Network::transmit(NodeId src, Packet pkt, std::function<void()> on_link_free) {
  NW_CHECK(src < links_.size());
  NW_CHECK_MSG(pkt.hdr.dst < links_.size(), "packet to unknown node");
  NW_CHECK_MSG(pkt.hdr.dst != src, "network loopback not modelled; local sends bypass the NIC");
  const SimTime serialize = cost_.wire_time(pkt.hdr.size_bytes);
  links_[src]->submit(
      serialize,
      [this, pkt = std::move(pkt), done = std::move(on_link_free)]() mutable {
        stats_.counter("net.packets").add(1);
        stats_.counter("net.bytes").add(pkt.hdr.size_bytes);
        if (done) done();
        const NodeId dst = pkt.hdr.dst;
        engine_.schedule(cost_.us(cost_.link_latency_us),
                         [this, dst, p = std::move(pkt)]() mutable {
                           ++delivered_;
                           sink_(dst, std::move(p));
                         });
      });
}

}  // namespace nicwarp::hw
