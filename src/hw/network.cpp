#include "hw/network.hpp"

#include "core/assert.hpp"

namespace nicwarp::hw {

Network::Network(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost,
                 PacketPool& pool, std::uint32_t num_nodes, TraceRecorder* trace,
                 EntityStats* entity)
    : engine_(engine),
      stats_(stats),
      trace_(trace ? *trace : TraceRecorder::null_recorder()),
      entity_(entity ? *entity : EntityStats::null_stats()),
      cost_(cost),
      pool_(pool) {
  links_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    links_.push_back(
        std::make_unique<sim::Server>(engine, "link" + std::to_string(i), &stats));
  }
}

void Network::set_fault_plan(const FaultPlan& plan) {
  fault_ = plan;
  fault_rngs_.clear();
  if (!fault_.enabled()) return;
  fault_rngs_.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    fault_rngs_.emplace_back(fault_.seed, "fault.link" + std::to_string(i));
  }
}

void Network::transmit(NodeId src, PacketRef ref, std::function<void()> on_link_free) {
  NW_CHECK(src < links_.size());
  const PacketHeader& hdr = pool_.get(ref).hdr;
  NW_CHECK_MSG(hdr.dst < links_.size(), "packet to unknown node");
  NW_CHECK_MSG(hdr.dst != src, "network loopback not modelled; local sends bypass the NIC");
  const SimTime serialize = cost_.wire_time(hdr.size_bytes);
  links_[src]->submit(
      serialize, [this, src, ref, done = std::move(on_link_free)]() mutable {
        const PacketHeader& h = pool_.get(ref).hdr;
        stats_.counter("net.packets").add(1);
        stats_.counter("net.bytes").add(h.size_bytes);
        if (entity_.enabled()) entity_.record_link_packet(src, h.dst, h.size_bytes);
        if (h.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
          trace_.record({engine_.now(), h.recv_ts, TraceCat::kMsg,
                         TracePoint::kWireDepart, h.negative, src, h.dst,
                         h.event_id, h.size_bytes, 0});
        }
        if (done) done();
        if (fault_.enabled()) {
          deliver_with_faults(src, ref);
        } else {
          schedule_delivery(ref, SimTime::zero());
        }
      });
}

void Network::schedule_delivery(PacketRef ref, SimTime extra) {
  const NodeId dst = pool_.get(ref).hdr.dst;
  const SimTime dt = cost_.us(cost_.link_latency_us) + extra;
  if (!remote_.empty() && remote_[dst]) {
    // Off-shard destination: the packet leaves this shard's pool as a value
    // and crosses via the shard mailbox; the destination engine delivers it
    // at the same absolute instant the local path would have.
    stats_.counter("net.xshard_packets").add(1);
    remote_push_(dst, engine_.now() + dt, pool_.take(ref));
    return;
  }
  engine_.schedule(dt, [this, dst, ref] {
    ++delivered_;
    sink_(dst, ref);
  });
}

void Network::deliver_with_faults(NodeId src, PacketRef ref) {
  Rng& rng = fault_rngs_[src];
  // Targeted GVT-token loss is checked first and draws ONLY when armed, so
  // plans without it keep byte-identical fault schedules below.
  if (fault_.token_drop_rate > 0.0) {
    const PacketHeader& h = pool_.get(ref).hdr;
    if (h.kind == PacketKind::kNicGvtToken || h.kind == PacketKind::kHostGvtToken) {
      if (rng.next_double() < fault_.token_drop_rate) {
        stats_.counter("net.fault_token_drops").add(1);
        if (entity_.enabled()) entity_.record_link_fault(src, h.dst);
        if (trace_.enabled(TraceCat::kFault)) {
          trace_.record({engine_.now(), h.recv_ts, TraceCat::kFault,
                         TracePoint::kFaultDrop, h.negative, src, h.dst,
                         h.event_id, h.bip_seq, 0});
        }
        pool_.release(ref);
        return;
      }
    }
  }
  // A FIXED number of draws per packet, consumed unconditionally, so the
  // fault schedule of packet N never depends on which faults hit packets
  // 1..N-1 (stream alignment across sweeps of a single rate knob).
  const double u_drop = rng.next_double();
  const double u_dup = rng.next_double();
  const double u_corrupt = rng.next_double();
  const double u_delay = rng.next_double();
  const double u_delay_amt = rng.next_double();
  const double u_dup_delay = rng.next_double();

  Packet& pkt = pool_.get(ref);
  const auto fault_trace = [&](TracePoint point, std::uint64_t a) {
    if (trace_.enabled(TraceCat::kFault)) {
      trace_.record({engine_.now(), pkt.hdr.recv_ts, TraceCat::kFault, point,
                     pkt.hdr.negative, src, pkt.hdr.dst, pkt.hdr.event_id, a, 0});
    }
  };

  if (u_drop < fault_.drop_rate) {
    stats_.counter("net.fault_drops").add(1);
    if (entity_.enabled()) entity_.record_link_fault(src, pkt.hdr.dst);
    fault_trace(TracePoint::kFaultDrop, pkt.hdr.bip_seq);
    pool_.release(ref);
    return;  // the fabric ate it; recovery is the NIC's problem
  }
  if (u_corrupt < fault_.corrupt_rate) {
    stats_.counter("net.fault_corrupts").add(1);
    if (entity_.enabled()) entity_.record_link_fault(src, pkt.hdr.dst);
    fault_trace(TracePoint::kFaultCorrupt, pkt.hdr.bip_seq);
    pkt.hdr.crc ^= 0xdeadbeefu;  // never maps a stamped crc back to itself
  }
  SimTime extra = SimTime::zero();
  if (u_delay < fault_.delay_rate) {
    extra = SimTime::from_ns(
        static_cast<std::int64_t>(u_delay_amt * fault_.delay_max_us * 1e3));
    stats_.counter("net.fault_delays").add(1);
    if (entity_.enabled()) entity_.record_link_fault(src, pkt.hdr.dst);
    fault_trace(TracePoint::kFaultDelay, static_cast<std::uint64_t>(extra.ns));
  }
  if (u_dup < fault_.dup_rate) {
    stats_.counter("net.fault_dups").add(1);
    if (entity_.enabled()) entity_.record_link_fault(src, pkt.hdr.dst);
    fault_trace(TracePoint::kFaultDup, pkt.hdr.bip_seq);
    schedule_delivery(pool_.clone(ref),
                      extra + SimTime::from_ns(static_cast<std::int64_t>(
                                  u_dup_delay * fault_.delay_max_us * 1e3)));
  }
  schedule_delivery(ref, extra);
}

}  // namespace nicwarp::hw
