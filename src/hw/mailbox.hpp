// The "global buffer shared between the host and the NIC" (§3.1).
//
// On the real hardware this is a region of NIC SRAM mapped into the host's
// address space. Both sides read and write it without synchronization, which
// is exactly the consistency hazard the paper discusses: a value the NIC
// reads may be stale with respect to in-flight host work, and vice versa.
// In the model, staleness arises naturally because the host only touches the
// mailbox inside host-CPU tasks and the NIC inside NIC-CPU jobs, which are
// serialized at different simulated instants.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "core/ring_buffer.hpp"
#include "core/types.hpp"

namespace nicwarp::hw {

// Host -> NIC GVT handshake payload: the values the host encodes "in four
// unused fields in the Basic Event Message" when the NIC requests them.
struct HostGvtValues {
  bool valid{false};
  std::uint64_t epoch{0};
  std::int64_t white_delta{0};          // V contribution from the host side
  VirtualTime tmin{VirtualTime::inf()}; // min ts of outgoing RED messages
  VirtualTime lvt{VirtualTime::inf()};  // host LVT
};

// Record of a packet the NIC dropped in place (or an anti-message it
// filtered). The host drains these to keep its own accounting sound: the
// Mattern manager un-counts the colored send, pGVT clears the pending
// acknowledgement, and the kernel's statistics stay truthful.
struct DropNotice {
  EventId id{kInvalidEvent};
  ObjectId src_obj{kInvalidObject};
  NodeId dst{kInvalidNode};
  std::uint32_t color_epoch{0};
  VirtualTime recv_ts{VirtualTime::zero()};
  bool negative{false};
  // For a dropped positive: the anti-message whose NIC arrival doomed it
  // (the profiler's causal edge). kInvalidEvent when unknown; always
  // kInvalidEvent for filtered antis (they are their own cause).
  EventId cause_anti{kInvalidEvent};
};

struct Mailbox {
  // --- initialization (host writes once at startup) ---
  bool timewarp_initialised{false};  // paper: TimewarpInitialised
  std::uint32_t rank{0};
  std::uint32_t world_size{0};

  // --- liveness hints (host writes, NIC polls) ---
  std::int64_t events_processed{0};  // gates GVT initiation at the root NIC

  // --- GVT handshake (paper: ControlMessagePending / ReceivedHostVariables) ---
  bool handshake_requested{false};   // NIC sets; host clears when answering
  std::uint64_t handshake_epoch{0};  // NIC sets; host echoes in its reply
  HostGvtValues host_values{};       // host writes; NIC consumes (clears valid)

  // --- GVT result (NIC writes, host reads) ---
  VirtualTime gvt{VirtualTime::zero()};
  std::uint64_t gvt_epoch{0};

  // --- early cancellation: dropped-event-ID buffers (§3.2) ---
  // "For every object on the LP we allocate a buffer of size 10 ... so that
  // it can be accessed by both the host and the NIC." NIC inserts the ids of
  // positive messages it drops; the host removes an id to suppress the
  // matching anti-message; the NIC also filters antis that raced past the
  // host's check.
  std::unordered_map<ObjectId, RingBuffer<EventId>> dropped_ids;

  // Accounting notices for every drop/filter (see DropNotice). New DROPS are
  // refused above the soft limit so that the matching anti FILTERS — which
  // cannot be refused without orphaning an anti on the wire — always find
  // room below the hard limit. Losing a filter notice would silently leak a
  // flow-control credit.
  static constexpr std::size_t kDropNoticeSoftLimit = 32768;
  static constexpr std::size_t kMaxDropNotices = 65536;
  std::deque<DropNotice> drop_notices;

  RingBuffer<EventId>& dropped_ring(ObjectId obj, std::int64_t slots) {
    auto it = dropped_ids.find(obj);
    if (it == dropped_ids.end()) {
      it = dropped_ids.emplace(obj, RingBuffer<EventId>(static_cast<std::size_t>(slots))).first;
    }
    return it->second;
  }

  // Returns true (and removes the entry) if `id` is recorded as dropped for
  // `obj` — used by the host to suppress an anti-message, and by the NIC to
  // filter one that was already sent.
  bool take_dropped(ObjectId obj, EventId id) {
    auto it = dropped_ids.find(obj);
    if (it == dropped_ids.end()) return false;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (it->second.at(i) == id) {
        it->second.remove_at(i);
        return true;
      }
    }
    return false;
  }
};

}  // namespace nicwarp::hw
