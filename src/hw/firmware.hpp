// The NIC firmware programming model.
//
// This is the reproduction's equivalent of reprogramming the LANai Myrinet
// Control Program: a Firmware object is installed per NIC and gets per-packet
// hooks plus a timer facility. Each hook returns the NIC-CPU time its work
// costs; the NIC serializes hook execution on its (slow) processor, so heavy
// firmware visibly delays traffic — the effect behind the right-hand side of
// the paper's Figure 4.
//
// Hook points:
//   on_host_tx  — packet arrived from the host over the I/O bus, about to be
//                 staged in the send ring. May drop or consume it.
//   on_wire_tx  — packet is leaving on the wire (no veto; last chance to
//                 stamp piggyback fields and count at the wire level).
//   on_net_rx   — packet arrived from the wire, about to be DMA'd to the
//                 host. May drop or consume it (e.g. absorb a NIC-level GVT
//                 token without burdening the host).
#pragma once

#include <functional>
#include <memory>

#include "core/entity_stats.hpp"
#include "core/small_fn.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"
#include "hw/cost_model.hpp"
#include "hw/mailbox.hpp"
#include "hw/packet.hpp"

namespace nicwarp::hw {

class Nic;  // defined in hw/nic.hpp

// Services the NIC exposes to its firmware. Implemented by Nic.
class NicContext {
 public:
  virtual ~NicContext() = default;

  virtual NodeId node_id() const = 0;
  virtual std::uint32_t world_size() const = 0;
  virtual SimTime now() const = 0;
  virtual const CostModel& cost() const = 0;
  virtual Mailbox& mailbox() = 0;
  virtual StatsRegistry& stats() = 0;
  // Structured trace recorder; sites must check trace().enabled(cat) first.
  // Defaults to the shared disabled recorder so bare test contexts need not
  // override it.
  virtual TraceRecorder& trace() { return TraceRecorder::null_recorder(); }
  // Heatmap registry; sites must check entity().enabled() first. Defaults to
  // the shared disabled registry so bare test contexts need not override it.
  virtual EntityStats& entity() { return EntityStats::null_stats(); }

  // --- send-ring inspection & in-place cancellation ---
  virtual std::size_t send_ring_size() const = 0;
  virtual const Packet& send_ring_at(std::size_t i) const = 0;
  virtual Packet& send_ring_mutable_at(std::size_t i) = 0;
  // Removes slot i from the ring (the "early cancellation" primitive).
  virtual Packet drop_from_send_ring(std::size_t i) = 0;

  // Emits a NIC-generated wire packet (e.g. a GVT token). Never touches the
  // I/O bus or the host CPU. The emission itself costs `nic_token_handle_us`
  // which the caller should include in its returned hook cost.
  virtual void emit(Packet pkt) = 0;

  // Injects a packet up to the host (DMA + host receive task) — used to
  // report a new GVT value without a wire message.
  virtual void deliver_to_host(Packet pkt) = 0;

  // Schedules `fn` to run as a NIC-CPU job after `delay`; `fn` returns the
  // NIC-CPU cost of whatever it did.
  virtual void schedule(SimTime delay, SmallFn<SimTime(), 64> fn) = 0;
};

class Firmware {
 public:
  enum class Action : std::uint8_t {
    kForward,  // continue along the normal path
    kDrop,     // discard silently (early cancellation / filtered anti)
    kConsume,  // firmware absorbed it (e.g. token handled on the NIC)
  };

  struct HookResult {
    Action action{Action::kForward};
    SimTime cost{SimTime::zero()};
  };

  virtual ~Firmware() = default;

  // Called once when installed, before any traffic.
  virtual void attach(NicContext& ctx) { ctx_ = &ctx; }

  virtual HookResult on_host_tx(Packet& pkt) = 0;
  virtual SimTime on_wire_tx(Packet& pkt) = 0;
  virtual HookResult on_net_rx(Packet& pkt) = 0;

 protected:
  NicContext* ctx_{nullptr};
};

// Pass-through firmware: charges only the base per-packet handling cost.
// This is the unmodified-MCP baseline every optimized run is compared with.
class BaselineFirmware : public Firmware {
 public:
  HookResult on_host_tx(Packet&) override {
    return {Action::kForward, ctx_->cost().us(ctx_->cost().nic_per_packet_us)};
  }
  SimTime on_wire_tx(Packet&) override { return SimTime::zero(); }
  HookResult on_net_rx(Packet&) override {
    return {Action::kForward, ctx_->cost().us(ctx_->cost().nic_per_packet_us)};
  }
};

using FirmwareFactory = std::function<std::unique_ptr<Firmware>(NodeId)>;

}  // namespace nicwarp::hw
