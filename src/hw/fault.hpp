// Deterministic fault-injection plan for the simulated fabric.
//
// A FaultPlan describes an *unreliable* Myrinet: per-packet probabilities of
// loss, duplication, header corruption, and extra delivery delay, evaluated
// per source link from a seeded `core/rng` stream so every run is exactly
// reproducible. The plan is applied by hw::Network at the point a packet
// leaves the wire (after serialization, before the latency hop), which is
// the earliest point at which the fabric — rather than the NIC — owns the
// packet.
//
// A default-constructed plan is inert: `enabled()` is false and the network
// takes a branch-free fast path that is byte-identical to the reliable
// fabric, so fault-free baselines (and their RNG streams) are unchanged.
#pragma once

#include <cstdint>

namespace nicwarp::hw {

struct FaultPlan {
  double drop_rate{0.0};     // P(packet silently vanishes on the wire)
  double dup_rate{0.0};      // P(a second copy is delivered)
  double corrupt_rate{0.0};  // P(header CRC is flipped in flight)
  double delay_rate{0.0};    // P(extra delivery delay is added)
  double delay_max_us{50.0}; // uniform extra delay bound (breaks FIFO order)
  // P(a GVT token packet vanishes). Targets only kNicGvtToken/kHostGvtToken
  // and draws from the RNG stream only when armed, so existing plans keep
  // byte-identical fault schedules. 1.0 starves GVT entirely — the watchdog
  // test's livelock recipe.
  double token_drop_rate{0.0};
  std::uint64_t seed{1};     // fault-stream seed, independent of the model seed

  bool enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || corrupt_rate > 0.0 ||
           delay_rate > 0.0 || token_drop_rate > 0.0;
  }
};

}  // namespace nicwarp::hw
