#include "hw/node.hpp"

#include "core/assert.hpp"

namespace nicwarp::hw {

Node::Node(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost, NodeId id,
           std::uint32_t world_size, Network& network, PacketPool& pool,
           std::unique_ptr<Firmware> firmware, TraceRecorder* trace,
           LatencyRecorder* latency, EntityStats* entity, PhaseProfiler* phases)
    : engine_(engine),
      stats_(stats),
      cost_(cost),
      id_(id),
      world_size_(world_size),
      pool_(pool),
      host_cpu_(engine, "host" + std::to_string(id) + ".cpu", &stats),
      bus_(engine, "bus" + std::to_string(id), &stats),
      phases_(phases ? phases : &PhaseProfiler::null_profiler()) {
  nic_ = std::make_unique<Nic>(engine, stats, cost, id, world_size, network, bus_,
                               pool, std::move(firmware), trace, latency, entity);
  nic_->set_host_deliver([this](PacketRef ref) {
    // The packet landed in host memory; charge the host receive path
    // (interrupt + protocol stack) before the comm layer sees it.
    host_cpu_.submit(host_recv_cost(pool_.get(ref)), [this, ref] {
      NW_CHECK_MSG(raw_rx_ != nullptr, "no raw rx handler installed");
      raw_rx_(ref);
    });
  });
}

void Node::dma_to_nic(PacketRef ref) {
  nic_->reserve_tx_slot();
  stats_.counter("host.tx_packets").add(1);
  bus_.submit(cost_.bus_transfer(pool_.get(ref).hdr.size_bytes),
              [this, ref] { nic_->accept_from_host(ref); });
}

void Node::set_tx_ready_cb(std::function<void()> fn) {
  nic_->set_tx_slot_freed(std::move(fn));
}

SimTime Node::host_recv_cost(const Packet& pkt) const {
  switch (pkt.hdr.kind) {
    case PacketKind::kEvent:
      return cost_.us(cost_.host_msg_recv_us);
    case PacketKind::kHostGvtToken:
    case PacketKind::kGvtBroadcast:
    case PacketKind::kPGvtReport:
    case PacketKind::kPGvtRequest:
      return cost_.us(cost_.host_gvt_ctrl_us);
    case PacketKind::kNicGvtToken:
      // Should normally be consumed on the NIC; if one surfaces, it is a
      // cheap notification.
      return cost_.us(cost_.host_mailbox_write_us);
    case PacketKind::kCreditUpdate:
    case PacketKind::kAck:
      return cost_.us(cost_.host_msg_recv_us * 0.5);
    case PacketKind::kNak:
      // Link-level NAKs live entirely inside the NIC reliability sublayer;
      // one reaching the host means the NIC failed to consume it.
      NW_UNREACHABLE("kNak surfaced to the host");
  }
  NW_UNREACHABLE("unknown packet kind");
}

}  // namespace nicwarp::hw
