#include "hw/cluster.hpp"

#include "core/assert.hpp"

namespace nicwarp::hw {

Cluster::Cluster(CostModel cost, std::uint32_t num_nodes, const FirmwareFactory& firmware,
                 std::uint64_t seed, const FaultPlan& faults)
    : cost_(cost), seed_(seed),
      network_(engine_, stats_, cost_, pool_, num_nodes, &trace_, &entity_) {
  NW_CHECK(num_nodes >= 1);
  if (faults.enabled()) network_.set_fault_plan(faults);
  nodes_.reserve(num_nodes);
  rngs_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(engine_, stats_, cost_, i, num_nodes,
                                            network_, pool_, firmware(i), &trace_,
                                            &latency_, &entity_, &phases_));
    rngs_.push_back(std::make_unique<Rng>(seed, "node" + std::to_string(i)));
  }
  network_.set_sink(
      [this](NodeId dst, PacketRef ref) { nodes_.at(dst)->nic().receive_from_net(ref); });
}

SimTime Cluster::run(SimTime max_time) {
  engine_.run_until(max_time);
  return engine_.now();
}

}  // namespace nicwarp::hw
