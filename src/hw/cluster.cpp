#include "hw/cluster.hpp"

#include <thread>

#include "core/assert.hpp"

namespace nicwarp::hw {

Cluster::Cluster(CostModel cost, std::uint32_t num_nodes, const FirmwareFactory& firmware,
                 std::uint64_t seed, const FaultPlan& faults, std::uint32_t shards)
    : cost_(cost), seed_(seed) {
  NW_CHECK(num_nodes >= 1);
  NW_CHECK_MSG(shards >= 1 && shards <= num_nodes,
               "cluster shards must satisfy 1 <= shards <= nodes");
  // Contiguous block partition: rank blocks of size ceil/floor(N/S), the
  // first N % S shards one node larger. Contiguity keeps the heavy intra-app
  // traffic of neighbor-structured models on one engine where possible.
  shard_of_.resize(num_nodes);
  {
    const std::uint32_t base = num_nodes / shards;
    const std::uint32_t rem = num_nodes % shards;
    std::uint32_t rank = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const std::uint32_t count = base + (s < rem ? 1 : 0);
      for (std::uint32_t i = 0; i < count; ++i) shard_of_[rank++] = s;
    }
    NW_CHECK(rank == num_nodes);
  }
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    auto ctx = std::make_unique<ShardCtx>();
    // Every shard's Network is built over all N injection links so the link
    // server names and the per-link fault RNG streams ("fault.link<i>") are
    // laid out exactly as in the unsharded fabric; only the links of locally
    // owned ranks ever carry traffic.
    ctx->network = std::make_unique<Network>(ctx->engine, ctx->stats, cost_,
                                            ctx->pool, num_nodes, &ctx->trace,
                                            &ctx->entity);
    if (faults.enabled()) ctx->network->set_fault_plan(faults);
    shards_.push_back(std::move(ctx));
  }
  if (shards > 1) {
    NW_CHECK_MSG(lookahead() > SimTime::zero(),
                 "sharding requires a positive link latency (the lookahead)");
    mailboxes_ = std::make_unique<ShardMailboxes>(shards);
  }
  stall_.assign(shards, [] {
    std::this_thread::yield();
    return false;
  });
  nodes_.reserve(num_nodes);
  rngs_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    ShardCtx& ctx = shard(shard_of_[i]);
    nodes_.push_back(std::make_unique<Node>(ctx.engine, ctx.stats, cost_, i,
                                            num_nodes, *ctx.network, ctx.pool,
                                            firmware(i), &ctx.trace, &ctx.latency,
                                            &ctx.entity, &ctx.phases));
    rngs_.push_back(std::make_unique<Rng>(seed, "node" + std::to_string(i)));
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    // The sink only ever sees on-shard destinations: remote ones divert to
    // the mailbox inside Network::schedule_delivery.
    shard(s).network->set_sink([this](NodeId dst, PacketRef ref) {
      nodes_.at(dst)->nic().receive_from_net(ref);
    });
    if (shards > 1) {
      std::vector<std::uint8_t> remote(num_nodes, 0);
      for (std::uint32_t i = 0; i < num_nodes; ++i) {
        remote[i] = shard_of_[i] != s ? 1 : 0;
      }
      shard(s).network->set_remote_route(
          std::move(remote), [this, s](NodeId dst, SimTime at, Packet&& pkt) {
            push_remote(s, dst, at, std::move(pkt));
          });
    }
  }
}

void Cluster::push_remote(std::uint32_t src_shard, NodeId dst, SimTime deliver_at,
                          Packet&& pkt) {
  ShardMsg m;
  m.deliver_at_ns = deliver_at.ns;
  m.stamp = shard(src_shard).round;
  m.dst = dst;
  m.pkt = std::move(pkt);
  mailboxes_->push(src_shard, shard_of_[dst], std::move(m), stall_[src_shard]);
}

void Cluster::stage_shard_inbound(std::uint32_t s) { mailboxes_->stage(s); }

void Cluster::drain_shard_inbound(std::uint32_t s, std::uint64_t max_stamp) {
  ShardCtx& ctx = shard(s);
  for (std::uint32_t src = 0; src < shards(); ++src) {
    if (src == s) continue;
    mailboxes_->drain(src, s, max_stamp, [&](ShardMsg&& m) {
      // Re-acquire into the destination pool; from here the delivery is the
      // ordinary sink path, at the absolute instant the source computed.
      const PacketRef ref = ctx.pool.acquire(std::move(m.pkt));
      const NodeId dst = m.dst;
      ctx.stats.counter("net.xshard_delivered").add(1);
      ctx.engine.schedule_at(SimTime{m.deliver_at_ns}, [this, dst, ref] {
        nodes_[dst]->nic().receive_from_net(ref);
      });
    });
  }
}

void Cluster::configure_trace(std::uint32_t category_mask, std::size_t capacity) {
  for (auto& s : shards_) s->trace.configure(category_mask, capacity);
}

void Cluster::set_latency_enabled(bool on) {
  for (auto& s : shards_) s->latency.set_enabled(on);
}

void Cluster::configure_entity(std::uint32_t nodes) {
  for (auto& s : shards_) s->entity.configure(nodes);
}

void Cluster::enable_phases() {
  for (auto& s : shards_) s->phases.enable();
}

StatsRegistry& Cluster::merged_stats() {
  if (shards() == 1) return shards_[0]->stats;
  merged_stats_ = StatsRegistry{};
  for (auto& s : shards_) merged_stats_.merge_from(s->stats);
  return merged_stats_;
}

LatencyRecorder& Cluster::merged_latency() {
  if (shards() == 1) return shards_[0]->latency;
  merged_latency_ = LatencyRecorder{};
  merged_latency_.set_enabled(shards_[0]->latency.enabled());
  for (auto& s : shards_) merged_latency_.merge_from(s->latency);
  return merged_latency_;
}

EntityStats& Cluster::merged_entity() {
  if (shards() == 1) return shards_[0]->entity;
  merged_entity_ = EntityStats{};
  if (shards_[0]->entity.enabled()) {
    merged_entity_.configure(shards_[0]->entity.nodes());
    for (auto& s : shards_) merged_entity_.merge_from(s->entity);
  }
  return merged_entity_;
}

PhaseProfiler& Cluster::merged_phases() {
  if (shards() == 1) return shards_[0]->phases;
  merged_phases_ = PhaseProfiler{};
  for (auto& s : shards_) merged_phases_.merge_from(s->phases);
  return merged_phases_;
}

TraceRecorder& Cluster::merged_trace() {
  if (shards() == 1) return shards_[0]->trace;
  std::size_t total_size = 0;
  std::uint64_t total_recorded = 0;
  std::uint64_t overwritten = 0;
  for (auto& s : shards_) {
    total_size += s->trace.size();
    total_recorded += s->trace.total_recorded();
    overwritten += s->trace.overwritten();
  }
  merged_trace_.configure(shards_[0]->trace.mask(),
                          total_size > 0 ? total_size : 1);
  // K-way merge on (at, shard index): each shard's retained window is
  // already in SimTime order, and the shard index breaks equal-time ties the
  // same way every run.
  std::vector<std::size_t> pos(shards(), 0);
  for (;;) {
    std::size_t best = shards();
    for (std::size_t s = 0; s < shards(); ++s) {
      if (pos[s] >= shards_[s]->trace.size()) continue;
      if (best == shards() ||
          shards_[s]->trace.at(pos[s]).at < shards_[best]->trace.at(pos[best]).at) {
        best = s;
      }
    }
    if (best == shards()) break;
    merged_trace_.record(shards_[best]->trace.at(pos[best]));
    ++pos[best];
  }
  merged_trace_.set_accounting(total_recorded, overwritten);
  return merged_trace_;
}

SimTime Cluster::now_max() const {
  SimTime t = SimTime::zero();
  for (const auto& s : shards_) t = std::max(t, s->engine.now());
  return t;
}

SimTime Cluster::run(SimTime max_time) {
  NW_CHECK_MSG(shards() == 1,
               "Cluster::run drives one engine; sharded runs go through the harness");
  engine().run_until(max_time);
  return engine().now();
}

}  // namespace nicwarp::hw
