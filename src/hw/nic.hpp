// Programmable NIC model (LANai4-class).
//
// The NIC owns a slow processor (every firmware hook serializes on it), a
// bounded send ring in SRAM (the staging window early cancellation scans),
// the host/NIC shared mailbox, and DMA access to the node's I/O bus. All
// traffic in both directions flows through the installed Firmware.
//
// Every staged or in-flight packet lives in the cluster's shared PacketPool;
// the send ring, control queue, retransmit queue, and the reliability
// layer's stored-copy rings are all rings of 8-byte PacketRefs. The
// firmware-facing NicContext interface stays value/reference-typed — refs
// are acquired and released at those boundaries.
#pragma once

#include <memory>
#include <vector>

#include "core/entity_stats.hpp"
#include "core/flat_ring.hpp"
#include "core/latency.hpp"
#include "core/ring_buffer.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "hw/cost_model.hpp"
#include "hw/firmware.hpp"
#include "hw/mailbox.hpp"
#include "hw/network.hpp"
#include "hw/packet_pool.hpp"
#include "sim/engine.hpp"
#include "sim/server.hpp"

namespace nicwarp::hw {

class Nic final : public NicContext {
 public:
  // `bus` is the node's I/O bus (shared with host-side tx DMA). `trace`,
  // `latency`, and `entity` may be null (tests); records then go to
  // never-enabled sinks.
  Nic(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost, NodeId id,
      std::uint32_t world_size, Network& network, sim::Server& bus, PacketPool& pool,
      std::unique_ptr<Firmware> firmware, TraceRecorder* trace = nullptr,
      LatencyRecorder* latency = nullptr, EntityStats* entity = nullptr);

  // ----- host-facing interface (called from Node / comm layer) -----

  // True if a send-ring slot can be reserved for one more host packet.
  bool tx_slot_available() const;
  // Reserves a slot; precondition tx_slot_available().
  void reserve_tx_slot();
  // Hands a pooled packet to the NIC (DMA already accounted by the caller);
  // runs the on_host_tx hook and stages or discards the packet.
  void accept_from_host(PacketRef ref);

  // Called with every packet that completed rx DMA to the host. Set by Node.
  void set_host_deliver(std::function<void(PacketRef)> fn) {
    host_deliver_ = std::move(fn);
  }
  // Invoked whenever a reserved slot is released (drop or wire completion).
  void set_tx_slot_freed(std::function<void()> fn) { tx_slot_freed_ = std::move(fn); }

  // ----- network-facing interface (called by the Cluster's sink) -----
  void receive_from_net(PacketRef ref);

  // ----- NicContext (firmware services) -----
  NodeId node_id() const override { return id_; }
  std::uint32_t world_size() const override { return world_size_; }
  SimTime now() const override { return engine_.now(); }
  const CostModel& cost() const override { return cost_; }
  Mailbox& mailbox() override { return mailbox_; }
  StatsRegistry& stats() override { return stats_; }
  TraceRecorder& trace() override { return trace_; }
  LatencyRecorder& latency() { return latency_; }
  EntityStats& entity() override { return entity_; }
  std::size_t send_ring_size() const override { return send_ring_.size(); }
  const Packet& send_ring_at(std::size_t i) const override;
  Packet& send_ring_mutable_at(std::size_t i) override;
  Packet drop_from_send_ring(std::size_t i) override;
  void emit(Packet pkt) override;
  void deliver_to_host(Packet pkt) override;
  void schedule(SimTime delay, SmallFn<SimTime(), 64> fn) override;

  Firmware& firmware() { return *firmware_; }
  std::size_t slots_in_use() const { return slots_in_use_; }

 private:
  void pump_tx();
  void deliver_ref_to_host(PacketRef ref);

  // ----- reliability sublayer (active only when cost().rel_enabled) -----
  // Sits below the firmware hooks: a received packet passes CRC verification
  // and the go-back-N accept filter before any firmware sees it, so the GVT
  // message counters and the cancellation unit observe every logical message
  // exactly once even when the fabric drops, duplicates, or reorders copies.
  //
  // Per tx channel (this node -> dst) the NIC keeps the unacked sequenced
  // packets in a bounded retransmit ring plus the *exact* set of sequence
  // numbers it intentionally voided (early cancellation). At first wire
  // departure each packet is stamped with the cumulative void count below its
  // own seq — an immutable value, since the send ring is FIFO: every void of
  // a lower seq has already happened by the time a packet departs. The
  // receiver can then distinguish an intentional gap (gap == void delta:
  // accept) from fabric loss (gap > void delta: NAK + go-back-N replay).
  struct RelTx {
    FlatRing<PacketRef> ring;        // unacked sequenced packets, seq order
    FlatRing<std::uint64_t> voided;  // intentionally voided seqs, sorted
    std::uint64_t voids_retired{0};  // voided seqs pruned below the ack floor
    std::int64_t backoff{1};         // RTO multiplier (exponential, capped)
    SimTime last_event{SimTime::zero()};  // last ack progress / retransmit
    SimTime last_retx{SimTime::zero()};
  };
  struct RelRx {
    std::uint64_t expected_seq{1};
    std::uint64_t voids_seen{0};  // void_cum of the last accepted packet
    SimTime last_nak{SimTime{-1}};
  };

  // Records an intentional drop of a sequenced packet (never retransmitted;
  // its seq becomes an explained gap for the receiver).
  void rel_record_void(NodeId dst, std::uint64_t seq);
  // Retires ring entries below the peer's cumulative ack.
  void rel_on_ack(NodeId from, std::uint64_t ack);
  // Replays every unacked packet to `dst` (rate-limited unless `force`).
  void rel_go_back_n(NodeId dst, bool force);
  // CRC + ack + sequence filter; false == the NIC consumed the packet.
  bool rel_rx_process(Packet& pkt, SimTime& cost);
  // Rate-limited kNak carrying our expected_seq for the channel to -> us.
  void rel_send_status(NodeId to);
  // Stamps void_cum (+ stored ring copy) on first departures, then ack + CRC.
  void rel_stamp_outgoing(PacketRef ref, bool first_departure);
  void arm_rel_timer();
  void rel_check_timeouts();

  sim::Engine& engine_;
  StatsRegistry& stats_;
  TraceRecorder& trace_;
  LatencyRecorder& latency_;
  EntityStats& entity_;
  const CostModel& cost_;
  NodeId id_;
  std::uint32_t world_size_;
  Network& network_;
  sim::Server& bus_;
  PacketPool& pool_;
  std::unique_ptr<Firmware> firmware_;
  sim::Server nic_cpu_;

  Mailbox mailbox_;
  RingBuffer<PacketRef> send_ring_;   // host event traffic, FIFO, bounded SRAM
  FlatRing<PacketRef> ctrl_queue_;    // NIC-generated control traffic (priority)
  FlatRing<PacketRef> retx_queue_;    // reliability replays (top wire priority)
  std::size_t slots_in_use_{0};       // reserved + staged + on-wire host packets
  bool tx_busy_{false};
  // Hook verdict carried from a nic_cpu_ job's work fn to its completion fn.
  // Safe as a single member: the FIFO server strictly pairs them (the next
  // job's work only starts inside the previous completion).
  Firmware::Action pending_action_{Firmware::Action::kForward};

  std::vector<RelTx> rel_tx_;  // indexed by destination node
  std::vector<RelRx> rel_rx_;  // indexed by source node
  bool rel_timer_armed_{false};

  std::function<void(PacketRef)> host_deliver_;
  std::function<void()> tx_slot_freed_;
};

}  // namespace nicwarp::hw
