// One cluster node: host CPU + I/O bus + programmable NIC.
//
// The host CPU is a FIFO server the Time-Warp kernel submits its work items
// to; the I/O bus is shared by tx and rx DMA (both directions contend, which
// is the bottleneck the paper's NIC-resident GVT traffic sidesteps).
#pragma once

#include <functional>
#include <memory>

#include "core/phase_profiler.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "hw/cost_model.hpp"
#include "hw/nic.hpp"
#include "sim/engine.hpp"
#include "sim/server.hpp"

namespace nicwarp::hw {

class Node {
 public:
  // `trace`/`latency`/`entity`/`phases` may be null (tests); records then go
  // to a never-enabled sink.
  Node(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost, NodeId id,
       std::uint32_t world_size, Network& network, PacketPool& pool,
       std::unique_ptr<Firmware> firmware, TraceRecorder* trace = nullptr,
       LatencyRecorder* latency = nullptr, EntityStats* entity = nullptr,
       PhaseProfiler* phases = nullptr);

  NodeId id() const { return id_; }
  std::uint32_t world_size() const { return world_size_; }
  sim::Server& host_cpu() { return host_cpu_; }
  sim::Server& bus() { return bus_; }
  Nic& nic() { return *nic_; }
  Mailbox& mailbox() { return nic_->mailbox(); }
  const CostModel& cost() const { return cost_; }
  sim::Engine& engine() { return engine_; }
  StatsRegistry& stats() { return stats_; }
  TraceRecorder& trace() { return nic_->trace(); }
  LatencyRecorder& latency() { return nic_->latency(); }
  EntityStats& entity() { return nic_->entity(); }
  PhaseProfiler& phases() { return *phases_; }
  PacketPool& pool() { return pool_; }

  // --- raw packet interface for the comm layer (host-task context) ---

  // True if the NIC can accept one more host packet.
  bool nic_tx_ready() const { return nic_->tx_slot_available(); }

  // DMAs a pooled packet to the NIC. Precondition: nic_tx_ready(). The
  // host-CPU cost of building the message is the *caller's* to charge; this
  // only models the bus transfer and NIC-side handling.
  void dma_to_nic(PacketRef ref);
  // Value-typed convenience (tests, models): acquires a pool slot first.
  void dma_to_nic(Packet pkt) { dma_to_nic(pool_.acquire(std::move(pkt))); }

  // Handler invoked (inside a host CPU task, after the modelled receive
  // cost) for every packet that reaches the host. The handler owns the ref.
  void set_raw_rx(std::function<void(PacketRef)> fn) { raw_rx_ = std::move(fn); }

  // Invoked whenever the NIC frees a tx slot (backpressure release).
  void set_tx_ready_cb(std::function<void()> fn);

  // Convenience: submit host work.
  void run_host_task(SimTime cost, sim::Server::CompletionFn fn) {
    host_cpu_.submit(cost, std::move(fn));
  }

  // Host-side receive cost by packet kind.
  SimTime host_recv_cost(const Packet& pkt) const;

 private:
  sim::Engine& engine_;
  StatsRegistry& stats_;
  const CostModel& cost_;
  NodeId id_;
  std::uint32_t world_size_;
  PacketPool& pool_;
  sim::Server host_cpu_;
  sim::Server bus_;
  std::unique_ptr<Nic> nic_;
  PhaseProfiler* phases_;  // never null; defaults to the null profiler
  std::function<void(PacketRef)> raw_rx_;
};

}  // namespace nicwarp::hw
