// The whole testbed: N nodes plus the switch fabric, partitioned into
// `shards` independently-clocked slices (one engine, stats registry, packet
// pool, trace/latency/entity/phase recorder and Network per shard), with
// per-node deterministic RNG streams for the workload models.
//
// shards == 1 (the default) is the classic single-threaded testbed and is
// byte-identical to the pre-sharding Cluster: one ShardCtx holds exactly the
// members the old flat layout held, constructed in the same order, and every
// legacy accessor (engine(), stats(), ...) resolves to shard 0.
//
// shards > 1 partitions node ranks into contiguous blocks (shard_of()); each
// shard owns its nodes outright and all cross-shard traffic flows through
// SPSC mailbox rings (hw/shard_mailbox.hpp) under the conservative-window
// protocol driven by the harness (sim/shard_sync.hpp, docs/SHARDING.md).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/entity_stats.hpp"
#include "core/latency.hpp"
#include "core/phase_profiler.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "hw/cost_model.hpp"
#include "hw/network.hpp"
#include "hw/node.hpp"
#include "hw/shard_mailbox.hpp"
#include "sim/engine.hpp"

namespace nicwarp::hw {

class Cluster {
 public:
  // `faults` configures deterministic fabric fault injection (inert by
  // default); pair a non-trivial plan with cost.rel_enabled or Time-Warp
  // correctness is forfeit. `shards` partitions the node ranks across that
  // many engine slices (1 <= shards <= num_nodes).
  Cluster(CostModel cost, std::uint32_t num_nodes, const FirmwareFactory& firmware,
          std::uint64_t seed, const FaultPlan& faults = {},
          std::uint32_t shards = 1);

  // ---- shard topology ----
  std::uint32_t shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  std::uint32_t shard_of(NodeId id) const { return shard_of_.at(id); }
  // Conservative lookahead between shards: the minimum cross-shard link
  // latency, which with a single crossbar is THE link latency. Every
  // cross-shard delivery happens >= lookahead after the sending event.
  SimTime lookahead() const { return cost_.us(cost_.link_latency_us); }

  // ---- per-shard accessors (the no-arg forms resolve to shard 0, which is
  // the whole cluster when shards() == 1) ----
  sim::Engine& engine(std::uint32_t s = 0) { return shard(s).engine; }
  StatsRegistry& stats(std::uint32_t s = 0) { return shard(s).stats; }
  // Shard trace recorder; disabled (mask 0) until configure_trace()d.
  TraceRecorder& trace(std::uint32_t s = 0) { return shard(s).trace; }
  // Shard latency recorder; disabled until set_latency_enabled(true).
  LatencyRecorder& latency(std::uint32_t s = 0) { return shard(s).latency; }
  // Per-LP / per-link / per-node heatmap registry; disabled until
  // configure_entity()d.
  EntityStats& entity(std::uint32_t s = 0) { return shard(s).entity; }
  // Wall-clock phase profiler (noisy); disabled until enable_phases()d.
  PhaseProfiler& phases(std::uint32_t s = 0) { return shard(s).phases; }
  // Shard packet slab: comm staging, NIC rings, packets on the wire. Packets
  // never cross shard pools — the mailbox hand-off moves them by value.
  PacketPool& pool(std::uint32_t s = 0) { return shard(s).pool; }
  Network& network(std::uint32_t s = 0) { return *shard(s).network; }

  const CostModel& cost() const { return cost_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_.at(id); }
  Rng& node_rng(NodeId id) { return *rngs_.at(id); }
  std::uint64_t seed() const { return seed_; }

  // ---- cluster-wide observability config (applies to every shard) ----
  void configure_trace(std::uint32_t category_mask, std::size_t capacity);
  void set_latency_enabled(bool on);
  void configure_entity(std::uint32_t nodes);
  void enable_phases();

  // ---- merged end-of-run views. With shards() == 1 these return shard 0's
  // live objects (zero-copy, byte-identical to the unsharded testbed); with
  // more they rebuild a cached merge in ascending shard order on every call,
  // so call them after the run, not per-event. ----
  StatsRegistry& merged_stats();
  LatencyRecorder& merged_latency();
  EntityStats& merged_entity();
  PhaseProfiler& merged_phases();
  // K-way merge of the shard trace rings ordered by (SimTime, shard index);
  // total_recorded()/overwritten() on the merged view sum the shards.
  TraceRecorder& merged_trace();

  // Latest engine clock across shards (they advance in loose lockstep, one
  // conservative window apart at most).
  SimTime now_max() const;

  // ---- sharded-run plumbing (driven by harness::Testbed) ----
  // The sender-round stamp used for this shard's outbound mailbox pushes;
  // the shard's own worker thread sets it at each window start.
  std::uint64_t& shard_round(std::uint32_t s) { return shard(s).round; }
  // Installed per shard before the worker threads start: called while a
  // mailbox push is blocked on a full ring (must stage shard `s`'s inbound
  // traffic) and returns true when the run is aborting.
  void set_shard_idle_hook(std::uint32_t s, std::function<bool()> hook) {
    stall_.at(s) = std::move(hook);
  }
  // Moves every visible inbound ring entry of shard `s` into its staging
  // deques (consumer thread only; safe at any point in the round).
  void stage_shard_inbound(std::uint32_t s);
  // Schedules every inbound entry with stamp <= max_stamp onto shard `s`'s
  // engine at its recorded delivery time, in fixed sender order (consumer
  // thread only; call only at the round boundary, after the fences).
  void drain_shard_inbound(std::uint32_t s, std::uint64_t max_stamp);

  // Runs the hardware simulation until the event queue drains or `max_time`
  // is reached; returns the final engine clock. Single-shard clusters only —
  // sharded runs go through harness::Testbed::run_to_completion.
  SimTime run(SimTime max_time = SimTime::max());

 private:
  // One slice of the testbed. Member order inside the struct preserves the
  // pre-sharding Cluster's destruction contract: the pool outlives the
  // network (which holds live refs in in-flight callbacks).
  struct ShardCtx {
    sim::Engine engine;
    StatsRegistry stats;
    TraceRecorder trace;      // must outlive network and nodes
    LatencyRecorder latency;  // must outlive network and nodes
    EntityStats entity;       // must outlive network and nodes
    PhaseProfiler phases;     // must outlive network and nodes
    PacketPool pool;          // must outlive network and nodes
    std::unique_ptr<Network> network;
    std::uint64_t round{0};  // current LBTS round (worker thread only)
  };

  ShardCtx& shard(std::uint32_t s) { return *shards_.at(s); }
  void push_remote(std::uint32_t src_shard, NodeId dst, SimTime deliver_at,
                   Packet&& pkt);

  CostModel cost_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> shard_of_;            // rank -> shard
  std::vector<std::unique_ptr<ShardCtx>> shards_;  // must outlive nodes_
  std::unique_ptr<ShardMailboxes> mailboxes_;      // null when shards() == 1
  std::vector<std::function<bool()>> stall_;       // per-shard blocked-push hook
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Rng>> rngs_;

  // Merge caches, rebuilt on each merged_*() call when shards() > 1.
  StatsRegistry merged_stats_;
  LatencyRecorder merged_latency_;
  EntityStats merged_entity_;
  PhaseProfiler merged_phases_;
  TraceRecorder merged_trace_;
};

}  // namespace nicwarp::hw
