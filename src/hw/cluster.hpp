// The whole testbed: N nodes plus the switch fabric, one engine, one stats
// registry, and per-node deterministic RNG streams for the workload models.
#pragma once

#include <memory>
#include <vector>

#include "core/entity_stats.hpp"
#include "core/latency.hpp"
#include "core/phase_profiler.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "hw/cost_model.hpp"
#include "hw/network.hpp"
#include "hw/node.hpp"
#include "sim/engine.hpp"

namespace nicwarp::hw {

class Cluster {
 public:
  // `faults` configures deterministic fabric fault injection (inert by
  // default); pair a non-trivial plan with cost.rel_enabled or Time-Warp
  // correctness is forfeit.
  Cluster(CostModel cost, std::uint32_t num_nodes, const FirmwareFactory& firmware,
          std::uint64_t seed, const FaultPlan& faults = {});

  sim::Engine& engine() { return engine_; }
  StatsRegistry& stats() { return stats_; }
  // Cluster-wide trace recorder; disabled (mask 0) until configure()d.
  TraceRecorder& trace() { return trace_; }
  // Cluster-wide latency recorder; disabled until set_enabled(true).
  LatencyRecorder& latency() { return latency_; }
  // Per-LP / per-link / per-node heatmap registry; disabled until configure()d.
  EntityStats& entity() { return entity_; }
  // Wall-clock phase profiler (noisy); disabled until enable()d.
  PhaseProfiler& phases() { return phases_; }
  const CostModel& cost() const { return cost_; }
  // Shared packet slab for the whole datapath (comm staging, NIC rings,
  // packets on the wire).
  PacketPool& pool() { return pool_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_.at(id); }
  Network& network() { return network_; }
  Rng& node_rng(NodeId id) { return *rngs_.at(id); }
  std::uint64_t seed() const { return seed_; }

  // Runs the hardware simulation until the event queue drains or `max_time`
  // is reached; returns the final engine clock.
  SimTime run(SimTime max_time = SimTime::max());

 private:
  CostModel cost_;
  std::uint64_t seed_;
  sim::Engine engine_;
  StatsRegistry stats_;
  TraceRecorder trace_;      // must outlive network_ and nodes_
  LatencyRecorder latency_;  // must outlive network_ and nodes_
  EntityStats entity_;       // must outlive network_ and nodes_
  PhaseProfiler phases_;     // must outlive network_ and nodes_
  PacketPool pool_;          // must outlive network_ and nodes_
  Network network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Rng>> rngs_;
};

}  // namespace nicwarp::hw
