// Cost model of the paper's testbed (§4): 8 nodes of Pentium III 550 MHz
// hosts, 32-bit/33 MHz PCI I/O buses, 1.2 Gb/s Myrinet links, and LANai4
// NICs (66 MHz, 1 MB SRAM). Every parameter is overridable from a ParamSet
// so benches can sweep them (e.g. the "better NIC processor" ablation).
//
// Calibration notes:
//  * host:NIC clock ratio 550:66 ≈ 8.3 — NIC per-packet work is priced
//    several times the equivalent host-side header handling;
//  * PCI at 132 MB/s ≈ 7.6 ns/B; Myrinet at 150 MB/s ≈ 6.7 ns/B — every
//    host-visible message pays the bus twice (tx DMA + rx DMA), which is the
//    resource NIC-resident GVT traffic avoids;
//  * WARPED event grains are tens of microseconds (fine-grained PDES).
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "core/types.hpp"

namespace nicwarp::hw {

struct CostModel {
  // --- Host CPU (per-task costs, microseconds) ---
  double host_event_exec_us = 18.0;     // run one TW event through the model
  double host_state_save_us = 3.0;      // copy state saving per event
  // Incremental state saving: per-byte cost of the record-before-write undo
  // log (a short memcpy into a warm slab; ~2 ns/B at the testbed's host).
  double host_undo_byte_us = 0.002;
  double host_msg_send_us = 11.0;       // MPI+BIP send-side stack per message
  double host_msg_recv_us = 13.0;       // interrupt + stack + enqueue per message
  double host_gvt_ctrl_us = 9.0;        // build/consume one host GVT control msg
  double host_rollback_fixed_us = 8.0;  // rollback bookkeeping
  double host_rollback_per_event_us = 3.0;  // per event undone
  double host_fossil_per_event_us = 0.25;   // per event reclaimed
  double host_mailbox_write_us = 1.5;   // PIO write of handshake values to NIC
  double host_local_msg_us = 2.0;       // enqueue a same-LP event (no network)

  // --- I/O bus (PCI) ---
  double bus_bandwidth_mb_s = 132.0;  // 32-bit 33 MHz PCI
  double bus_setup_us = 0.8;          // DMA descriptor setup per transfer

  // --- Network (Myrinet) ---
  double link_bandwidth_mb_s = 150.0;  // 1.2 Gb/s
  double link_latency_us = 0.6;        // switch traversal + cable

  // --- NIC (LANai4-class) ---
  // Calibrated so the NIC processor is the system bottleneck (as the LANai4
  // was: "we are currently limited by NIC speed", §5): ~660 cycles at 66 MHz
  // of firmware per packet per direction.
  double nic_per_packet_us = 10.0;  // baseline firmware per packet, per direction
  double nic_gvt_check_us = 0.6;    // extra per-packet cost of the GVT firmware
  double nic_token_handle_us = 6.0; // process/emit one token or broadcast
  double nic_cancel_base_us = 0.4;  // anti-message detection + bookkeeping
  double nic_cancel_scan_per_entry_us = 0.15;  // send-ring scan per slot
  std::int64_t nic_send_ring_slots = 32;  // bounded SRAM staging (≈4 KB window)
  std::int64_t nic_recv_ring_slots = 32;
  std::int64_t nic_sram_bytes = 1 << 20;  // 1 MB

  // --- Wire sizes (bytes) ---
  std::int64_t event_msg_bytes = 128;  // WARPED Basic Event Message
  std::int64_t gvt_ctrl_bytes = 64;
  std::int64_t credit_msg_bytes = 32;
  std::int64_t ack_msg_bytes = 32;

  // --- Protocol knobs ---
  std::int64_t mpi_credit_window = 64;  // sender window ("increased" per §3.2)
  double handshake_piggyback_window_us = 25.0;  // wait this long for a free ride
  std::int64_t nic_event_id_ring_slots = 10;    // paper: "a buffer of size 10"

  // --- Reliability sublayer (go-back-N over the unreliable fabric) ---
  // Off by default: a reliable fabric needs none of it, and fault-free
  // baselines must stay byte-identical. The harness turns it on whenever a
  // FaultPlan is active.
  bool rel_enabled = false;
  double rel_rto_us = 400.0;        // base retransmit timeout (oldest unacked)
  std::int64_t rel_backoff_max = 8; // RTO multiplier cap (exponential backoff)
  double rel_poll_us = 100.0;       // retransmit-timer poll interval
  double rel_nak_holdoff_us = 60.0; // min spacing between NAKs per channel
  std::int64_t nic_retx_ring_slots = 256;  // per-destination retransmit ring
  double nic_retx_us = 1.0;         // NIC cost to replay one stored packet
  std::int64_t credit_resync_max_retries = 8;  // bounded credit recovery
  double gvt_token_timeout_us = 4000.0;  // NIC-GVT token regeneration timeout
  double gvt_rebroadcast_us = 1000.0;    // periodic root GVT re-announce

  // Multiplicative jitter (+/- fraction) on host event execution, drawn from
  // a per-node deterministic stream; models instruction-path variance.
  double host_exec_jitter = 0.20;

  // Applies "cm.<field>=value" overrides.
  static CostModel from_params(const ParamSet& p);
  ParamSet to_params() const;

  // Derived helpers.
  SimTime bus_transfer(std::int64_t bytes) const;
  SimTime wire_time(std::int64_t bytes) const;
  SimTime us(double micros) const { return SimTime::from_us(micros); }
};

}  // namespace nicwarp::hw
