// Cross-shard packet mailboxes: one SPSC ring per ordered shard pair.
//
// When a packet finishes wire traversal on its source shard and its
// destination node lives on another shard, the source network takes the
// value-typed Packet out of its pool and pushes a ShardMsg here (see
// Network::set_remote_route / docs/SHARDING.md). The destination shard
// drains its inbound rings at the top of each LBTS round and re-acquires the
// packet into its OWN pool — pools never cross threads; the Packet value is
// the hand-off boundary, exactly like pool.take() at host delivery.
//
// Entries carry the sender's round number as a `stamp`; stamps on one ring
// are nondecreasing (a shard's round only grows), so "drain everything with
// stamp <= r-1" is a prefix pop and the LBTS fence guarantees that prefix is
// complete when the consumer looks.
//
// Deadlock freedom by opportunistic staging: rings have fixed capacity, and
// a producer blocked on a full ring could otherwise cycle-wait with a
// consumer blocked on an LBTS fence. Every spin loop in the round protocol —
// fence waits, publish waits, AND the blocked-push loop itself (via the
// cluster's per-shard idle hook) — calls stage(), which moves inbound ring
// entries into plain per-source deques owned by the consumer thread.
// Staging frees ring space unconditionally; PROCESSING stays restricted to
// drain() at the round boundary, in fixed sender order, staged prefix first,
// so the schedule seen by the destination engine is timing-independent and
// multi-shard runs stay seed-stable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/assert.hpp"
#include "core/spsc_ring.hpp"
#include "core/types.hpp"
#include "hw/packet.hpp"

namespace nicwarp::hw {

struct ShardMsg {
  std::int64_t deliver_at_ns{0};  // absolute destination-engine delivery time
  std::uint64_t stamp{0};         // sender's LBTS round when pushed
  NodeId dst{kInvalidNode};
  Packet pkt;
};

class ShardMailboxes {
 public:
  explicit ShardMailboxes(std::uint32_t shards, std::size_t ring_slots = 1u << 12)
      : shards_(shards), staged_(static_cast<std::size_t>(shards) * shards) {
    NW_CHECK(shards >= 2);
    rings_.resize(static_cast<std::size_t>(shards) * shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      for (std::uint32_t t = 0; t < shards; ++t) {
        if (s == t) continue;
        rings_[idx(s, t)] = std::make_unique<SpscRing<ShardMsg>>(ring_slots);
      }
    }
  }

  // Producer side (thread `src` only). Blocks while the ring is full; `idle`
  // is the shard's idle hook (stages src's own inbound traffic so the peer
  // can always make progress) and returns true to abandon the push on abort.
  void push(std::uint32_t src, std::uint32_t dst, ShardMsg&& m,
            const std::function<bool()>& idle) {
    SpscRing<ShardMsg>& ring = *rings_[idx(src, dst)];
    while (!ring.try_push(std::move(m))) {
      if (idle && idle()) return;  // aborted run: the message dies with it
      std::this_thread::yield();
    }
  }

  // Consumer side (thread `dst` only): moves every currently-visible ring
  // entry into the staged deques. Safe at any time; changes nothing about
  // what drain() delivers or in what order.
  void stage(std::uint32_t dst) {
    for (std::uint32_t src = 0; src < shards_; ++src) {
      if (src == dst) continue;
      SpscRing<ShardMsg>& ring = *rings_[idx(src, dst)];
      std::deque<ShardMsg>& dq = staged_[idx(src, dst)];
      while (ShardMsg* m = ring.front()) {
        dq.push_back(std::move(*m));
        ring.pop();
      }
    }
  }

  // Consumer side (thread `dst` only): delivers, in FIFO order, every entry
  // from `src` with stamp <= max_stamp — staged prefix first, then the ring.
  template <typename Fn>
  void drain(std::uint32_t src, std::uint32_t dst, std::uint64_t max_stamp,
             Fn&& fn) {
    std::deque<ShardMsg>& dq = staged_[idx(src, dst)];
    while (!dq.empty() && dq.front().stamp <= max_stamp) {
      fn(std::move(dq.front()));
      dq.pop_front();
    }
    if (!dq.empty()) return;  // newer-round entries; ring holds only >= stamps
    SpscRing<ShardMsg>& ring = *rings_[idx(src, dst)];
    while (ShardMsg* m = ring.front()) {
      if (m->stamp > max_stamp) break;
      fn(std::move(*m));
      ring.pop();
    }
  }

 private:
  std::size_t idx(std::uint32_t src, std::uint32_t dst) const {
    return static_cast<std::size_t>(src) * shards_ + dst;
  }

  std::uint32_t shards_;
  std::vector<std::unique_ptr<SpscRing<ShardMsg>>> rings_;  // [src][dst]
  std::vector<std::deque<ShardMsg>> staged_;                // touched by dst only
};

}  // namespace nicwarp::hw
