#include "hw/cost_model.hpp"

namespace nicwarp::hw {

namespace {
constexpr const char* kPrefix = "cm.";
std::string key(const char* field) { return std::string(kPrefix) + field; }
}  // namespace

CostModel CostModel::from_params(const ParamSet& p) {
  CostModel m;
  m.host_event_exec_us = p.get_f64(key("host_event_exec_us"), m.host_event_exec_us);
  m.host_state_save_us = p.get_f64(key("host_state_save_us"), m.host_state_save_us);
  m.host_undo_byte_us = p.get_f64(key("host_undo_byte_us"), m.host_undo_byte_us);
  m.host_msg_send_us = p.get_f64(key("host_msg_send_us"), m.host_msg_send_us);
  m.host_msg_recv_us = p.get_f64(key("host_msg_recv_us"), m.host_msg_recv_us);
  m.host_gvt_ctrl_us = p.get_f64(key("host_gvt_ctrl_us"), m.host_gvt_ctrl_us);
  m.host_rollback_fixed_us = p.get_f64(key("host_rollback_fixed_us"), m.host_rollback_fixed_us);
  m.host_rollback_per_event_us =
      p.get_f64(key("host_rollback_per_event_us"), m.host_rollback_per_event_us);
  m.host_fossil_per_event_us =
      p.get_f64(key("host_fossil_per_event_us"), m.host_fossil_per_event_us);
  m.host_mailbox_write_us = p.get_f64(key("host_mailbox_write_us"), m.host_mailbox_write_us);
  m.host_local_msg_us = p.get_f64(key("host_local_msg_us"), m.host_local_msg_us);
  m.bus_bandwidth_mb_s = p.get_f64(key("bus_bandwidth_mb_s"), m.bus_bandwidth_mb_s);
  m.bus_setup_us = p.get_f64(key("bus_setup_us"), m.bus_setup_us);
  m.link_bandwidth_mb_s = p.get_f64(key("link_bandwidth_mb_s"), m.link_bandwidth_mb_s);
  m.link_latency_us = p.get_f64(key("link_latency_us"), m.link_latency_us);
  m.nic_per_packet_us = p.get_f64(key("nic_per_packet_us"), m.nic_per_packet_us);
  m.nic_gvt_check_us = p.get_f64(key("nic_gvt_check_us"), m.nic_gvt_check_us);
  m.nic_token_handle_us = p.get_f64(key("nic_token_handle_us"), m.nic_token_handle_us);
  m.nic_cancel_base_us = p.get_f64(key("nic_cancel_base_us"), m.nic_cancel_base_us);
  m.nic_cancel_scan_per_entry_us =
      p.get_f64(key("nic_cancel_scan_per_entry_us"), m.nic_cancel_scan_per_entry_us);
  m.nic_send_ring_slots = p.get_i64(key("nic_send_ring_slots"), m.nic_send_ring_slots);
  m.nic_recv_ring_slots = p.get_i64(key("nic_recv_ring_slots"), m.nic_recv_ring_slots);
  m.nic_sram_bytes = p.get_i64(key("nic_sram_bytes"), m.nic_sram_bytes);
  m.event_msg_bytes = p.get_i64(key("event_msg_bytes"), m.event_msg_bytes);
  m.gvt_ctrl_bytes = p.get_i64(key("gvt_ctrl_bytes"), m.gvt_ctrl_bytes);
  m.credit_msg_bytes = p.get_i64(key("credit_msg_bytes"), m.credit_msg_bytes);
  m.ack_msg_bytes = p.get_i64(key("ack_msg_bytes"), m.ack_msg_bytes);
  m.mpi_credit_window = p.get_i64(key("mpi_credit_window"), m.mpi_credit_window);
  m.handshake_piggyback_window_us =
      p.get_f64(key("handshake_piggyback_window_us"), m.handshake_piggyback_window_us);
  m.nic_event_id_ring_slots =
      p.get_i64(key("nic_event_id_ring_slots"), m.nic_event_id_ring_slots);
  m.rel_enabled = p.get_bool(key("rel_enabled"), m.rel_enabled);
  m.rel_rto_us = p.get_f64(key("rel_rto_us"), m.rel_rto_us);
  m.rel_backoff_max = p.get_i64(key("rel_backoff_max"), m.rel_backoff_max);
  m.rel_poll_us = p.get_f64(key("rel_poll_us"), m.rel_poll_us);
  m.rel_nak_holdoff_us = p.get_f64(key("rel_nak_holdoff_us"), m.rel_nak_holdoff_us);
  m.nic_retx_ring_slots = p.get_i64(key("nic_retx_ring_slots"), m.nic_retx_ring_slots);
  m.nic_retx_us = p.get_f64(key("nic_retx_us"), m.nic_retx_us);
  m.credit_resync_max_retries =
      p.get_i64(key("credit_resync_max_retries"), m.credit_resync_max_retries);
  m.gvt_token_timeout_us = p.get_f64(key("gvt_token_timeout_us"), m.gvt_token_timeout_us);
  m.gvt_rebroadcast_us = p.get_f64(key("gvt_rebroadcast_us"), m.gvt_rebroadcast_us);
  m.host_exec_jitter = p.get_f64(key("host_exec_jitter"), m.host_exec_jitter);
  return m;
}

ParamSet CostModel::to_params() const {
  ParamSet p;
  p.set_f64(key("host_event_exec_us"), host_event_exec_us);
  p.set_f64(key("host_msg_send_us"), host_msg_send_us);
  p.set_f64(key("host_msg_recv_us"), host_msg_recv_us);
  p.set_f64(key("nic_per_packet_us"), nic_per_packet_us);
  p.set_f64(key("nic_gvt_check_us"), nic_gvt_check_us);
  p.set_i64(key("mpi_credit_window"), mpi_credit_window);
  return p;
}

SimTime CostModel::bus_transfer(std::int64_t bytes) const {
  const double ns = bus_setup_us * 1e3 +
                    static_cast<double>(bytes) / (bus_bandwidth_mb_s * 1e6) * 1e9;
  return SimTime::from_ns(static_cast<std::int64_t>(ns));
}

SimTime CostModel::wire_time(std::int64_t bytes) const {
  const double ns = static_cast<double>(bytes) / (link_bandwidth_mb_s * 1e6) * 1e9;
  return SimTime::from_ns(static_cast<std::int64_t>(ns));
}

}  // namespace nicwarp::hw
