#include "hw/nic.hpp"

#include "core/assert.hpp"
#include "core/log.hpp"

namespace nicwarp::hw {

Nic::Nic(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost, NodeId id,
         std::uint32_t world_size, Network& network, sim::Server& bus,
         std::unique_ptr<Firmware> firmware, TraceRecorder* trace)
    : engine_(engine),
      stats_(stats),
      trace_(trace ? *trace : TraceRecorder::null_recorder()),
      cost_(cost),
      id_(id),
      world_size_(world_size),
      network_(network),
      bus_(bus),
      firmware_(std::move(firmware)),
      nic_cpu_(engine, "nic" + std::to_string(id) + ".cpu", &stats) {
  NW_CHECK(firmware_ != nullptr);
  firmware_->attach(*this);
}

bool Nic::tx_slot_available() const {
  return slots_in_use_ < static_cast<std::size_t>(cost_.nic_send_ring_slots);
}

void Nic::reserve_tx_slot() {
  NW_CHECK_MSG(tx_slot_available(), "tx slot reservation without availability check");
  ++slots_in_use_;
}

void Nic::accept_from_host(Packet pkt) {
  auto state = std::make_shared<std::pair<Packet, Firmware::Action>>(
      std::move(pkt), Firmware::Action::kForward);
  nic_cpu_.submit_dynamic(
      [this, state] {
        const Firmware::HookResult r = firmware_->on_host_tx(state->first);
        state->second = r.action;
        return r.cost;
      },
      [this, state] {
        const PacketHeader& hdr = state->first.hdr;
        switch (state->second) {
          case Firmware::Action::kForward:
            if (hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
              trace_.record({engine_.now(), hdr.recv_ts, TraceCat::kMsg,
                             TracePoint::kNicStage, hdr.negative, id_, hdr.dst,
                             hdr.event_id, send_ring_.size(), 0});
            }
            send_ring_.push_back(std::move(state->first));
            pump_tx();
            break;
          case Firmware::Action::kDrop:
          case Firmware::Action::kConsume:
            if (hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
              trace_.record({engine_.now(), hdr.recv_ts, TraceCat::kMsg,
                             TracePoint::kNicDropTx, hdr.negative, id_, hdr.dst,
                             hdr.event_id, 0, 0});
            }
            // The packet never reaches the wire; its slot frees immediately.
            NW_CHECK(slots_in_use_ > 0);
            --slots_in_use_;
            if (tx_slot_freed_) tx_slot_freed_();
            break;
        }
      });
}

const Packet& Nic::send_ring_at(std::size_t i) const {
  NW_CHECK(i < send_ring_.size());
  return send_ring_[i];
}

Packet& Nic::send_ring_mutable_at(std::size_t i) {
  NW_CHECK(i < send_ring_.size());
  return send_ring_[i];
}

Packet Nic::drop_from_send_ring(std::size_t i) {
  NW_CHECK(i < send_ring_.size());
  Packet out = std::move(send_ring_[i]);
  send_ring_.erase(send_ring_.begin() + static_cast<std::ptrdiff_t>(i));
  NW_CHECK(slots_in_use_ > 0);
  --slots_in_use_;
  stats_.counter("nic.ring_drops").add(1);
  if (out.hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
    trace_.record({engine_.now(), out.hdr.recv_ts, TraceCat::kMsg,
                   TracePoint::kNicDropRing, out.hdr.negative, id_, out.hdr.dst,
                   out.hdr.event_id, i, 0});
  }
  if (tx_slot_freed_) tx_slot_freed_();
  return out;
}

void Nic::emit(Packet pkt) {
  // NIC-generated control traffic uses a dedicated SRAM buffer (it does not
  // consume host send-ring slots) and has priority on the wire: the paper's
  // NIC forwards GVT information "whenever it gets a chance".
  pkt.hdr.src = id_;
  pkt.hdr.bip_seq = 0;  // unsequenced: never part of the BIP host stream
  ctrl_queue_.push_back(std::move(pkt));
  stats_.counter("nic.emitted").add(1);
  pump_tx();
}

void Nic::deliver_to_host(Packet pkt) {
  bus_.submit(cost_.bus_transfer(pkt.hdr.size_bytes),
              [this, p = std::move(pkt)]() mutable {
                NW_CHECK(host_deliver_ != nullptr);
                host_deliver_(std::move(p));
              });
}

void Nic::schedule(SimTime delay, std::function<SimTime()> fn) {
  engine_.schedule(delay, [this, fn = std::move(fn)]() mutable {
    nic_cpu_.submit_dynamic(std::move(fn), nullptr);
  });
}

void Nic::pump_tx() {
  if (tx_busy_) return;
  const bool from_ctrl = !ctrl_queue_.empty();
  if (!from_ctrl && send_ring_.empty()) return;
  tx_busy_ = true;

  auto pkt = std::make_shared<Packet>();
  if (from_ctrl) {
    *pkt = std::move(ctrl_queue_.front());
    ctrl_queue_.pop_front();
  } else {
    *pkt = std::move(send_ring_.front());
    send_ring_.pop_front();
  }

  if (pkt->hdr.event_id == traced_event() && pkt->hdr.kind == PacketKind::kEvent) {
    std::fprintf(stderr, "[trace %llu] WIRE-TX nic=%u neg=%d t=%lld\n",
                 (unsigned long long)pkt->hdr.event_id, id_, pkt->hdr.negative ? 1 : 0,
                 (long long)engine_.now().ns);
  }
  if (pkt->hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
    trace_.record({engine_.now(), pkt->hdr.recv_ts, TraceCat::kMsg,
                   TracePoint::kWireTx, pkt->hdr.negative, id_, pkt->hdr.dst,
                   pkt->hdr.event_id, from_ctrl ? 1u : 0u, 0});
  }
  nic_cpu_.submit_dynamic(
      [this, pkt] { return firmware_->on_wire_tx(*pkt); },
      [this, pkt, from_ctrl] {
        network_.transmit(id_, std::move(*pkt), [this, from_ctrl] {
          tx_busy_ = false;
          if (!from_ctrl) {
            // The SRAM buffer is recycled once the link drained the packet.
            NW_CHECK(slots_in_use_ > 0);
            --slots_in_use_;
            if (tx_slot_freed_) tx_slot_freed_();
          }
          pump_tx();
        });
      });
}

void Nic::receive_from_net(Packet pkt) {
  if (pkt.hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
    trace_.record({engine_.now(), pkt.hdr.recv_ts, TraceCat::kMsg,
                   TracePoint::kNicRx, pkt.hdr.negative, id_, pkt.hdr.src,
                   pkt.hdr.event_id, 0, 0});
  }
  auto state = std::make_shared<std::pair<Packet, Firmware::Action>>(
      std::move(pkt), Firmware::Action::kForward);
  nic_cpu_.submit_dynamic(
      [this, state] {
        const Firmware::HookResult r = firmware_->on_net_rx(state->first);
        state->second = r.action;
        return r.cost;
      },
      [this, state] {
        if (state->second == Firmware::Action::kForward) {
          deliver_to_host(std::move(state->first));
        }
        // kDrop / kConsume: the packet dies on the NIC, saving the bus
        // crossing and the host receive path entirely.
      });
}

}  // namespace nicwarp::hw
