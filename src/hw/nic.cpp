#include "hw/nic.hpp"

#include <algorithm>

#include "core/assert.hpp"
#include "core/log.hpp"

namespace nicwarp::hw {

Nic::Nic(sim::Engine& engine, StatsRegistry& stats, const CostModel& cost, NodeId id,
         std::uint32_t world_size, Network& network, sim::Server& bus, PacketPool& pool,
         std::unique_ptr<Firmware> firmware, TraceRecorder* trace,
         LatencyRecorder* latency, EntityStats* entity)
    : engine_(engine),
      stats_(stats),
      trace_(trace ? *trace : TraceRecorder::null_recorder()),
      latency_(latency ? *latency : LatencyRecorder::null_recorder()),
      entity_(entity ? *entity : EntityStats::null_stats()),
      cost_(cost),
      id_(id),
      world_size_(world_size),
      network_(network),
      bus_(bus),
      pool_(pool),
      firmware_(std::move(firmware)),
      nic_cpu_(engine, "nic" + std::to_string(id) + ".cpu", &stats),
      send_ring_(static_cast<std::size_t>(cost.nic_send_ring_slots)) {
  NW_CHECK(firmware_ != nullptr);
  rel_tx_.resize(world_size_);
  rel_rx_.resize(world_size_);
  firmware_->attach(*this);
}

bool Nic::tx_slot_available() const {
  return slots_in_use_ < static_cast<std::size_t>(cost_.nic_send_ring_slots);
}

void Nic::reserve_tx_slot() {
  NW_CHECK_MSG(tx_slot_available(), "tx slot reservation without availability check");
  ++slots_in_use_;
  if (entity_.enabled()) entity_.note_ring_occupancy(id_, slots_in_use_);
}

void Nic::accept_from_host(PacketRef ref) {
  nic_cpu_.submit_dynamic(
      [this, ref] {
        const Firmware::HookResult r = firmware_->on_host_tx(pool_.get(ref));
        pending_action_ = r.action;
        return r.cost;
      },
      [this, ref] {
        const PacketHeader& hdr = pool_.get(ref).hdr;
        switch (pending_action_) {
          case Firmware::Action::kForward:
            if (hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
              trace_.record({engine_.now(), hdr.recv_ts, TraceCat::kMsg,
                             TracePoint::kNicStage, hdr.negative, id_, hdr.dst,
                             hdr.event_id, send_ring_.size(), 0});
            }
            NW_CHECK(send_ring_.try_push(ref));  // slots_in_use_ bounds the ring
            pump_tx();
            break;
          case Firmware::Action::kDrop:
          case Firmware::Action::kConsume:
            if (hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
              trace_.record({engine_.now(), hdr.recv_ts, TraceCat::kMsg,
                             TracePoint::kNicDropTx, hdr.negative, id_, hdr.dst,
                             hdr.event_id, 0, 0});
            }
            // The packet never reaches the wire; its slot frees immediately.
            rel_record_void(hdr.dst, hdr.bip_seq);
            pool_.release(ref);
            NW_CHECK(slots_in_use_ > 0);
            --slots_in_use_;
            if (tx_slot_freed_) tx_slot_freed_();
            break;
        }
      });
}

const Packet& Nic::send_ring_at(std::size_t i) const {
  return pool_.get(send_ring_.at(i));
}

Packet& Nic::send_ring_mutable_at(std::size_t i) {
  return pool_.get(send_ring_.at(i));
}

Packet Nic::drop_from_send_ring(std::size_t i) {
  const PacketRef ref = send_ring_.remove_at(i);
  Packet out = pool_.take(ref);
  rel_record_void(out.hdr.dst, out.hdr.bip_seq);
  NW_CHECK(slots_in_use_ > 0);
  --slots_in_use_;
  stats_.counter("nic.ring_drops").add(1);
  if (out.hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
    trace_.record({engine_.now(), out.hdr.recv_ts, TraceCat::kMsg,
                   TracePoint::kNicDropRing, out.hdr.negative, id_, out.hdr.dst,
                   out.hdr.event_id, i, 0});
  }
  if (tx_slot_freed_) tx_slot_freed_();
  return out;
}

void Nic::emit(Packet pkt) {
  // NIC-generated control traffic uses a dedicated SRAM buffer (it does not
  // consume host send-ring slots) and has priority on the wire: the paper's
  // NIC forwards GVT information "whenever it gets a chance".
  pkt.hdr.src = id_;
  pkt.hdr.bip_seq = 0;  // unsequenced: never part of the BIP host stream
  ctrl_queue_.push_back(pool_.acquire(std::move(pkt)));
  stats_.counter("nic.emitted").add(1);
  pump_tx();
}

void Nic::deliver_to_host(Packet pkt) {
  deliver_ref_to_host(pool_.acquire(std::move(pkt)));
}

void Nic::deliver_ref_to_host(PacketRef ref) {
  bus_.submit(cost_.bus_transfer(pool_.get(ref).hdr.size_bytes), [this, ref] {
    NW_CHECK(host_deliver_ != nullptr);
    host_deliver_(ref);
  });
}

void Nic::schedule(SimTime delay, SmallFn<SimTime(), 64> fn) {
  engine_.schedule(delay, [this, fn = std::move(fn)]() mutable {
    nic_cpu_.submit_dynamic(std::move(fn), nullptr);
  });
}

void Nic::pump_tx() {
  if (tx_busy_) return;
  // Reliability replays first (they unblock a stalled receiver), then
  // NIC-generated control traffic, then the host send ring.
  const bool from_retx = !retx_queue_.empty();
  const bool from_ctrl = !from_retx && !ctrl_queue_.empty();
  if (!from_retx && !from_ctrl && send_ring_.empty()) return;
  tx_busy_ = true;

  PacketRef ref;
  if (from_retx) {
    ref = retx_queue_.pop_front();
  } else if (from_ctrl) {
    ref = ctrl_queue_.pop_front();
  } else {
    ref = send_ring_.pop();
  }

  const PacketHeader& hdr = pool_.get(ref).hdr;
  if (hdr.event_id == traced_event() && hdr.kind == PacketKind::kEvent) {
    std::fprintf(stderr, "[trace %llu] WIRE-TX nic=%u neg=%d t=%lld\n",
                 (unsigned long long)hdr.event_id, id_, hdr.negative ? 1 : 0,
                 (long long)engine_.now().ns);
  }
  if (hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
    trace_.record({engine_.now(), hdr.recv_ts, TraceCat::kMsg,
                   TracePoint::kWireTx, hdr.negative, id_, hdr.dst,
                   hdr.event_id, from_retx ? 2u : (from_ctrl ? 1u : 0u), 0});
  }
  nic_cpu_.submit_dynamic(
      [this, ref, from_retx] {
        // A replay is a stored-copy DMA out of SRAM; the firmware hooks
        // already ran (and counted) the original, so they must not run again.
        if (from_retx) return cost_.us(cost_.nic_retx_us);
        return firmware_->on_wire_tx(pool_.get(ref));
      },
      [this, ref, from_ctrl, from_retx] {
        const bool host_pkt = !from_ctrl && !from_retx;
        if (cost_.rel_enabled) rel_stamp_outgoing(ref, host_pkt);
        network_.transmit(id_, ref, [this, host_pkt] {
          tx_busy_ = false;
          if (host_pkt) {
            // The SRAM buffer is recycled once the link drained the packet.
            NW_CHECK(slots_in_use_ > 0);
            --slots_in_use_;
            if (tx_slot_freed_) tx_slot_freed_();
          }
          pump_tx();
        });
      });
}

void Nic::receive_from_net(PacketRef ref) {
  {
    const PacketHeader& hdr = pool_.get(ref).hdr;
    if (hdr.kind == PacketKind::kEvent && trace_.enabled(TraceCat::kMsg)) {
      trace_.record({engine_.now(), hdr.recv_ts, TraceCat::kMsg,
                     TracePoint::kNicRx, hdr.negative, id_, hdr.src,
                     hdr.event_id, 0, 0});
    }
    // NIC/link leg of the delivery pipeline: host send -> remote NIC rx.
    // Counts every arriving copy (fault duplicates and replays included) —
    // under chaos that inflation *is* the tail signal.
    if (hdr.kind == PacketKind::kEvent && latency_.enabled() && hdr.sent_at.ns > 0) {
      latency_.record_nic_wire((engine_.now() - hdr.sent_at).micros());
    }
  }
  nic_cpu_.submit_dynamic(
      [this, ref] {
        Packet& pkt = pool_.get(ref);
        if (cost_.rel_enabled) {
          SimTime rel_cost = SimTime::zero();
          if (!rel_rx_process(pkt, rel_cost)) {
            pending_action_ = Firmware::Action::kConsume;
            return rel_cost;
          }
          const Firmware::HookResult r = firmware_->on_net_rx(pkt);
          pending_action_ = r.action;
          return r.cost + rel_cost;
        }
        const Firmware::HookResult r = firmware_->on_net_rx(pkt);
        pending_action_ = r.action;
        return r.cost;
      },
      [this, ref] {
        if (pending_action_ == Firmware::Action::kForward) {
          deliver_ref_to_host(ref);
        } else {
          // kDrop / kConsume: the packet dies on the NIC, saving the bus
          // crossing and the host receive path entirely.
          pool_.release(ref);
        }
      });
}

// ---------------------------------------------------------------------------
// Reliability sublayer.
// ---------------------------------------------------------------------------

namespace {
// First logical index in `v` (sorted ascending) whose value is >= seq.
std::size_t ring_lower_bound(const FlatRing<std::uint64_t>& v, std::uint64_t seq) {
  std::size_t lo = 0;
  std::size_t hi = v.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (v.at(mid) < seq) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}
}  // namespace

void Nic::rel_record_void(NodeId dst, std::uint64_t seq) {
  if (!cost_.rel_enabled || seq == 0) return;
  // Ring scans can void a higher seq before a lower one (anti/positive
  // pairing is not FIFO within the window), so keep the set sorted.
  auto& v = rel_tx_[dst].voided;
  v.insert_at(ring_lower_bound(v, seq), seq);
}

void Nic::rel_on_ack(NodeId from, std::uint64_t ack) {
  if (ack == 0) return;
  RelTx& tx = rel_tx_[from];
  bool progress = false;
  while (!tx.ring.empty() && pool_.get(tx.ring.front()).hdr.bip_seq < ack) {
    pool_.release(tx.ring.pop_front());
    progress = true;
  }
  // Voids below the ack floor can never be consulted again (future packets
  // all carry higher seqs); fold them into the retired count.
  while (!tx.voided.empty() && tx.voided.front() < ack) {
    tx.voided.pop_front();
    ++tx.voids_retired;
  }
  if (progress) {
    tx.backoff = 1;
    tx.last_event = engine_.now();
  }
}

void Nic::rel_go_back_n(NodeId dst, bool force) {
  RelTx& tx = rel_tx_[dst];
  if (tx.ring.empty()) return;
  if (!force &&
      engine_.now() < tx.last_retx + cost_.us(cost_.rel_nak_holdoff_us)) {
    return;
  }
  tx.last_retx = engine_.now();
  for (std::size_t i = 0; i < tx.ring.size(); ++i) {
    const PacketRef stored = tx.ring.at(i);
    ++pool_.get(stored).hdr.retx_count;
    const PacketRef copy_ref = pool_.clone(stored);
    Packet& copy = pool_.get(copy_ref);
    copy.hdr.rel_ack_pb = rel_rx_[dst].expected_seq;
    copy.hdr.crc = header_crc(copy);
    stats_.counter("nic.retransmits").add(1);
    if (entity_.enabled()) entity_.record_link_retx(id_, dst);
    if (trace_.enabled(TraceCat::kFault)) {
      trace_.record({engine_.now(), copy.hdr.recv_ts, TraceCat::kFault,
                     TracePoint::kRelRetransmit, copy.hdr.negative, id_, dst,
                     copy.hdr.event_id, copy.hdr.bip_seq, copy.hdr.retx_count});
    }
    retx_queue_.push_back(copy_ref);
  }
  pump_tx();
}

bool Nic::rel_rx_process(Packet& pkt, SimTime& cost) {
  const NodeId src = pkt.hdr.src;
  cost = SimTime::zero();
  // 1. Integrity: every packet on a reliability-enabled fabric is stamped, so
  // crc == 0 (clobbered to the unstamped sentinel) is corruption too.
  if (pkt.hdr.crc == 0 || header_crc(pkt) != pkt.hdr.crc) {
    // A corrupt header's ack/seq fields are garbage: do not process them.
    stats_.counter("nic.rel_crc_discards").add(1);
    if (trace_.enabled(TraceCat::kFault)) {
      trace_.record({engine_.now(), VirtualTime::zero(), TraceCat::kFault,
                     TracePoint::kRelCrcDiscard, false, id_, src,
                     kInvalidEvent, pkt.hdr.bip_seq, 0});
    }
    cost = cost_.us(cost_.nic_retx_us);
    return false;
  }
  // 2. Cumulative ack rides on every valid packet, including ones about to
  // be discarded as duplicates.
  rel_on_ack(src, pkt.hdr.rel_ack_pb);
  // 3. A NAK is a pure sequence-status report: the ack above already retired
  // what the receiver has; replay whatever remains.
  if (pkt.hdr.kind == PacketKind::kNak) {
    rel_go_back_n(src, /*force=*/false);
    cost = cost_.us(cost_.nic_retx_us);
    return false;
  }
  // 4. Sequenced stream: exactly-once, in-order accept.
  if (pkt.hdr.bip_seq != 0) {
    RelRx& rx = rel_rx_[src];
    const std::uint64_t seq = pkt.hdr.bip_seq;
    if (seq < rx.expected_seq) {
      stats_.counter("nic.rel_dup_discards").add(1);
      if (trace_.enabled(TraceCat::kFault)) {
        trace_.record({engine_.now(), pkt.hdr.recv_ts, TraceCat::kFault,
                       TracePoint::kRelDupDiscard, pkt.hdr.negative, id_, src,
                       pkt.hdr.event_id, seq, 0});
      }
      rel_send_status(src);  // quench: tells the sender how far we really are
      cost = cost_.us(cost_.nic_retx_us);
      return false;
    }
    const std::uint64_t gap = seq - rx.expected_seq;
    const std::uint64_t void_delta = pkt.hdr.void_cum - rx.voids_seen;
    NW_CHECK_MSG(void_delta <= gap,
                 "void accounting claims more intentional drops than the gap");
    if (void_delta < gap) {
      // Fabric loss (or reordering): the gap is not fully explained by
      // intentional NIC drops. Hold the line and ask for a replay.
      stats_.counter("nic.rel_gap_discards").add(1);
      if (trace_.enabled(TraceCat::kFault)) {
        trace_.record({engine_.now(), pkt.hdr.recv_ts, TraceCat::kFault,
                       TracePoint::kRelGapDiscard, pkt.hdr.negative, id_, src,
                       pkt.hdr.event_id, seq, rx.expected_seq});
      }
      rel_send_status(src);
      cost = cost_.us(cost_.nic_retx_us);
      return false;
    }
    rx.expected_seq = seq + 1;
    rx.voids_seen = pkt.hdr.void_cum;
    // Recovered data: report progress promptly so the sender's ring drains
    // even if we have no reverse traffic of our own.
    if (pkt.hdr.retx_count > 0) rel_send_status(src);
  }
  return true;
}

void Nic::rel_send_status(NodeId to) {
  RelRx& rx = rel_rx_[to];
  if (rx.last_nak.ns >= 0 &&
      engine_.now() < rx.last_nak + cost_.us(cost_.rel_nak_holdoff_us)) {
    return;
  }
  rx.last_nak = engine_.now();
  Packet nak;
  nak.hdr.kind = PacketKind::kNak;
  nak.hdr.dst = to;
  nak.hdr.size_bytes = static_cast<std::uint32_t>(cost_.ack_msg_bytes);
  stats_.counter("nic.naks_sent").add(1);
  if (trace_.enabled(TraceCat::kFault)) {
    trace_.record({engine_.now(), VirtualTime::zero(), TraceCat::kFault,
                   TracePoint::kRelNak, false, id_, to, kInvalidEvent,
                   rx.expected_seq, 0});
  }
  emit(std::move(nak));  // rel_ack_pb is stamped with expected_seq at pump
}

void Nic::rel_stamp_outgoing(PacketRef ref, bool first_departure) {
  Packet& pkt = pool_.get(ref);
  const NodeId dst = pkt.hdr.dst;
  if (first_departure && pkt.hdr.bip_seq != 0) {
    RelTx& tx = rel_tx_[dst];
    // Exact and immutable: the send ring is FIFO, so every void of a lower
    // seq is already recorded; later ring voids all carry higher seqs.
    pkt.hdr.void_cum =
        tx.voids_retired +
        static_cast<std::uint64_t>(ring_lower_bound(tx.voided, pkt.hdr.bip_seq));
    if (tx.ring.size() >=
        static_cast<std::size_t>(cost_.nic_retx_ring_slots)) {
      // SRAM pressure: drop the oldest stored copy. Recovery then depends on
      // it already having been delivered; chaos tests assert this never
      // fires at the default sizing.
      pool_.release(tx.ring.pop_front());
      stats_.counter("nic.retx_evicted").add(1);
    }
    if (tx.ring.empty()) tx.last_event = engine_.now();
    // Stored copy is taken before the ack/crc stamp (a replay re-stamps both
    // at its own departure), exactly like the legacy deque path.
    tx.ring.push_back(pool_.clone(ref));
    arm_rel_timer();
  }
  pkt.hdr.rel_ack_pb = rel_rx_[dst].expected_seq;
  pkt.hdr.crc = header_crc(pkt);
}

void Nic::arm_rel_timer() {
  if (rel_timer_armed_ || !cost_.rel_enabled) return;
  bool any = false;
  for (const RelTx& tx : rel_tx_) {
    if (!tx.ring.empty()) {
      any = true;
      break;
    }
  }
  if (!any) return;  // self-disarming: the engine can drain when idle
  rel_timer_armed_ = true;
  schedule(cost_.us(cost_.rel_poll_us), [this] {
    rel_timer_armed_ = false;
    rel_check_timeouts();
    arm_rel_timer();
    return SimTime::zero();
  });
}

void Nic::rel_check_timeouts() {
  for (NodeId d = 0; d < world_size_; ++d) {
    RelTx& tx = rel_tx_[d];
    if (tx.ring.empty()) continue;
    const SimTime rto =
        cost_.us(cost_.rel_rto_us * static_cast<double>(tx.backoff));
    if (engine_.now() >= tx.last_event + rto) {
      stats_.counter("nic.retx_timeouts").add(1);
      tx.backoff = std::min(tx.backoff * 2, cost_.rel_backoff_max);
      tx.last_event = engine_.now();
      rel_go_back_n(d, /*force=*/true);
    }
  }
}

}  // namespace nicwarp::hw
