// Shared packet slab with generation-checked references.
//
// Every packet that crosses the simulated datapath (host comm -> NIC ring ->
// wire -> reliability -> delivery) lives in one slot of this pool; the layers
// hand each other 8-byte PacketRefs instead of copying ~100-byte Packets
// through four layers of deques. Slots are allocated from chunked slabs so a
// Packet& obtained from get() stays valid across later acquires — firmware
// hooks hold a reference into the pool while calling NicContext::emit(),
// which may grow it.
//
// Refs carry a generation stamp: releasing a slot bumps its generation, so a
// stale ref held across slot reuse is caught by NW_CHECK instead of silently
// aliasing another packet. release() clears the header but keeps the payload
// vector's capacity — after warm-up the datapath allocates nothing per
// packet, which is the point (cf. ROSS's pooled event memory).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/assert.hpp"
#include "hw/packet.hpp"

namespace nicwarp::hw {

struct PacketRef {
  static constexpr std::uint32_t kNullIdx = 0xFFFFFFFFu;
  std::uint32_t idx{kNullIdx};
  std::uint32_t gen{0};

  bool is_null() const { return idx == kNullIdx; }
  explicit operator bool() const { return idx != kNullIdx; }
  friend bool operator==(PacketRef a, PacketRef b) {
    return a.idx == b.idx && a.gen == b.gen;
  }
};

class PacketPool {
 public:
  // max_slots == 0 means unbounded (the slab grows on demand); a nonzero cap
  // makes try_acquire() return a null ref once `live() == max_slots`.
  explicit PacketPool(std::size_t max_slots = 0) : max_slots_(max_slots) {}

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  PacketRef acquire() {
    PacketRef ref = try_acquire();
    NW_CHECK_MSG(!ref.is_null(), "packet pool exhausted");
    return ref;
  }

  PacketRef acquire(Packet&& init) {
    PacketRef ref = acquire();
    slot(ref.idx).pkt = std::move(init);
    return ref;
  }

  PacketRef try_acquire() {
    if (free_head_ == PacketRef::kNullIdx) {
      if (max_slots_ != 0 && slots_ >= max_slots_) return PacketRef{};
      grow();
    }
    const std::uint32_t idx = free_head_;
    Slot& s = slot(idx);
    free_head_ = s.next_free;
    s.live = true;
    ++live_;
    if (live_ > peak_) peak_ = live_;
    return PacketRef{idx, s.gen};
  }

  // Deep copy src into a fresh slot. Chunked slabs keep src's address stable
  // across the acquire even when it grows the pool.
  PacketRef clone(PacketRef src) {
    const Packet& from = get(src);
    PacketRef ref = acquire();
    Packet& to = slot(ref.idx).pkt;
    to.hdr = from.hdr;
    to.app = from.app;  // assignment reuses the slot's existing capacity
    return ref;
  }

  Packet& get(PacketRef ref) {
    Slot& s = checked_slot(ref);
    return s.pkt;
  }
  const Packet& get(PacketRef ref) const {
    const Slot& s = checked_slot(ref);
    return s.pkt;
  }

  bool alive(PacketRef ref) const {
    if (ref.idx >= slots_) return false;
    const Slot& s = slot(ref.idx);
    return s.live && s.gen == ref.gen;
  }

  // Moves the packet out and releases the slot — the boundary call for
  // handing a value-typed Packet to code outside the pooled datapath
  // (host delivery callbacks, firmware-facing APIs).
  Packet take(PacketRef ref) {
    Slot& s = checked_slot(ref);
    Packet out;
    out.hdr = s.pkt.hdr;
    out.app.swap(s.pkt.app);
    do_release(ref.idx, s);
    return out;
  }

  void release(PacketRef ref) { do_release(ref.idx, checked_slot(ref)); }

  std::size_t live() const { return live_; }
  std::size_t peak() const { return peak_; }
  std::size_t slots() const { return slots_; }

 private:
  // Chunked slab: chunk addresses never move, so Packet& stays valid while
  // the pool grows. 64 slots per chunk keeps the first allocation modest.
  static constexpr std::size_t kChunkSlots = 64;

  struct Slot {
    Packet pkt;
    std::uint32_t gen{1};
    std::uint32_t next_free{PacketRef::kNullIdx};
    bool live{false};
  };

  Slot& slot(std::uint32_t idx) {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx / kChunkSlots][idx % kChunkSlots];
  }

  Slot& checked_slot(PacketRef ref) {
    NW_CHECK_MSG(ref.idx < slots_, "packet ref out of range");
    Slot& s = slot(ref.idx);
    NW_CHECK_MSG(s.live && s.gen == ref.gen, "stale packet ref");
    return s;
  }
  const Slot& checked_slot(PacketRef ref) const {
    NW_CHECK_MSG(ref.idx < slots_, "packet ref out of range");
    const Slot& s = slot(ref.idx);
    NW_CHECK_MSG(s.live && s.gen == ref.gen, "stale packet ref");
    return s;
  }

  void do_release(std::uint32_t idx, Slot& s) {
    s.pkt.hdr = PacketHeader{};
    s.pkt.app.clear();  // keeps capacity: the slot's payload buffer is the win
    ++s.gen;
    s.live = false;
    s.next_free = free_head_;
    free_head_ = idx;
    --live_;
  }

  void grow() {
    std::size_t add = kChunkSlots;
    if (max_slots_ != 0 && slots_ + add > max_slots_) add = max_slots_ - slots_;
    NW_CHECK(add > 0);
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
    // Thread the new slots onto the freelist newest-first so the lowest index
    // is handed out first (keeps ref indices dense and runs deterministic).
    for (std::size_t i = add; i > 0; --i) {
      const auto idx = static_cast<std::uint32_t>(slots_ + i - 1);
      Slot& s = slot(idx);
      s.next_free = free_head_;
      free_head_ = idx;
    }
    slots_ += add;
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t max_slots_{0};
  std::size_t slots_{0};
  std::size_t live_{0};
  std::size_t peak_{0};
  std::uint32_t free_head_{PacketRef::kNullIdx};
};

}  // namespace nicwarp::hw
